"""Tests for repro.serve: the HTTP API, single-flight, fairness.

One module-scoped live server (asyncio loop in a thread, real worker
processes, tiny tseng jobs) backs the end-to-end tests; the scheduler
unit tests poke `Server` queue internals without starting it.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.runner.spec import JobSpec
from repro.serve import ServeClient, ServeError, Server, serve_async
from repro.serve.server import _batch_jobs
from repro.store import ResultStore

TINY = dict(circuit="tseng", scale=0.01, width=40)


def _spec(seed=1, **kw):
    return JobSpec(seed=seed, **TINY, **kw)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """A running server: (ServeClient factory, Server, store)."""
    store = ResultStore(str(tmp_path_factory.mktemp("serve") / "store"),
                        code="serve-test")
    box = {}
    ready_evt = threading.Event()

    def main():
        def ready(server):
            box["server"] = server
            ready_evt.set()
        asyncio.run(serve_async(store, workers=2, retries=1, ready=ready))

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert ready_evt.wait(15), "server did not come up"
    server = box["server"]

    def client(name="anon"):
        return ServeClient(port=server.port, name=name, timeout_s=120.0)

    yield client, server, store
    try:
        client().shutdown()
    except Exception:  # noqa: BLE001 - already down is fine
        pass
    thread.join(10)


class TestHTTP:
    def test_healthz(self, live):
        client, _, _ = live
        doc = client().healthz()
        assert doc["ok"] is True and doc["schema"] == 1

    def test_unknown_route_is_404(self, live):
        client, _, _ = live
        with pytest.raises(ServeError) as err:
            client()._request("GET", "/nope")
        assert err.value.status == 404

    def test_bad_body_is_surfaced_not_fatal(self, live):
        client, _, _ = live
        with pytest.raises(ServeError) as err:
            client()._request("POST", "/flow", {"job": 42})
        assert err.value.status == 500
        assert client().healthz()["ok"] is True


class TestExecutionAndCaching:
    def test_first_flow_executes_then_hits(self, live):
        client, _, _ = live
        first = client("exec").flow(_spec(seed=11))
        assert first["how"] == "executed"
        assert first["result"].status == "ok"
        second = client("exec").flow(_spec(seed=11))
        assert second["how"] == "hit"
        assert second["result"].identity() == first["result"].identity()

    def test_concurrent_identical_batches_coalesce(self, live):
        client, _, _ = live
        jobs = [_spec(seed=21), _spec(seed=22)]
        out = {}

        def submit(name):
            out[name] = client(name).batch(jobs)

        threads = [threading.Thread(target=submit, args=(n,))
                   for n in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        how = [out["alice"]["how"], out["bob"]["how"]]
        total = lambda k: sum(h.get(k, 0) for h in how)  # noqa: E731
        assert total("executed") == 2, how
        assert total("executed") + total("coalesced") + total("hit") == 4
        ids = lambda name: [r.identity() for r in out[name]["results"]]  # noqa: E731
        assert ids("alice") == ids("bob")

    def test_warm_batch_is_all_hits(self, live):
        client, _, _ = live
        jobs = [_spec(seed=21), _spec(seed=22)]
        doc = client("warm").batch(jobs)
        assert doc["how"] == {"hit": 2}

    def test_sweep_expands_matrix(self, live):
        client, _, _ = live
        doc = client("sweep").sweep(circuits=["tseng"],
                                    variants=["baseline"], seeds=[11],
                                    widths=[40], scale=0.01)
        assert len(doc["results"]) == 1
        assert doc["how"] == {"hit": 1}  # published by the flow test

    def test_stats_counts_dispositions(self, live):
        client, server, _ = live
        doc = client().stats()
        assert doc["requests"] >= doc["hits"] + doc["executed"]
        assert doc["store"]["entries"] >= 1
        assert doc["queue_depth"] == 0
        assert doc["store"]["code"] == "serve-test"

    def test_gc_endpoint_runs(self, live):
        client, _, _ = live
        doc = client().gc()
        assert set(doc) == {"kept_entries", "evicted_entries",
                            "dropped_blobs", "bytes_before", "bytes_after"}
        assert doc["evicted_entries"] == 0  # no bounds configured


class TestEvents:
    def test_stream_delivers_hello_then_worker_events(self, live):
        client, _, _ = live
        events = []

        def watch():
            for event in client("watcher").events(max_events=5,
                                                  timeout_s=60):
                events.append(event)

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        time.sleep(0.2)
        client("emitter").flow(_spec(seed=31))
        thread.join(30)
        assert events and events[0]["ev"] == "serve.hello"
        assert len(events) >= 2, "no worker telemetry reached the stream"
        assert all("ev" in event for event in events)


class TestSchedulerUnits:
    """Queue mechanics on an unstarted Server — no sockets, no jobs."""

    def _server(self, tmp_path):
        return Server(ResultStore(str(tmp_path), code="unit"))

    def _submit(self, server, client, priority, seed):
        from repro.serve.server import _Submission
        submission = _Submission(spec=_spec(seed=seed), client=client,
                                 priority=priority, future=None, index=seed)
        server._enqueue(submission)
        return submission

    def test_priority_classes_drain_in_order(self, tmp_path):
        server = self._server(tmp_path)
        low = self._submit(server, "a", 5, seed=1)
        high = self._submit(server, "a", 0, seed=2)
        assert server._next_submission() is high
        assert server._next_submission() is low
        assert server._next_submission() is None

    def test_clients_round_robin_within_class(self, tmp_path):
        server = self._server(tmp_path)
        a1 = self._submit(server, "a", 0, seed=1)
        a2 = self._submit(server, "a", 0, seed=2)
        b1 = self._submit(server, "b", 0, seed=3)
        drained = [server._next_submission() for _ in range(3)]
        # One from each client before a's second: no starvation.
        assert drained.index(b1) < drained.index(a2)
        assert drained[0] is a1

    def test_queue_depth_tracks_enqueues(self, tmp_path):
        server = self._server(tmp_path)
        assert server.queue_depth() == 0
        self._submit(server, "a", 0, seed=1)
        self._submit(server, "b", 1, seed=2)
        assert server.queue_depth() == 2
        server._next_submission()
        assert server.queue_depth() == 1

    def test_fault_jobs_get_distinct_flight_keys(self, tmp_path):
        server = self._server(tmp_path)
        plain = server._flight_key(_spec(seed=1))
        fault = server._flight_key(_spec(seed=1, fault="crash"))
        assert plain != fault
        assert fault.startswith("fault:")


class TestBatchJobs:
    def test_explicit_jobs_list(self):
        docs = [_spec(seed=1).to_dict(), _spec(seed=2).to_dict()]
        jobs = _batch_jobs({"jobs": docs, "client": "x"})
        assert [j.key for j in jobs] == [_spec(seed=1).key, _spec(seed=2).key]

    def test_matrix_axes(self):
        jobs = _batch_jobs({"circuits": ["tseng"], "variants": ["baseline"],
                            "seeds": [1, 2], "widths": [40], "scale": 0.01,
                            "client": "x", "priority": 3})
        assert len(jobs) == 2
