"""Routing determinism across graph representations.

PathFinder's heap tie-breaks follow adjacency push order, so handing
the router a legacy `RRGraph` or the equivalent `FabricIR` must yield
the *same* routing — trees, wirelength, iteration count — not merely a
legal one.  This is the acceptance gate for the IR migration.
"""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph
from repro.fabric import FabricIR, get_fabric
from repro.netlist.suites import load_circuit
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import PathFinderRouter, build_route_nets, route_design

ARCH = ArchParams(channel_width=24, segment_length=2)


@pytest.fixture(scope="module")
def placement():
    netlist = load_circuit("tseng", scale=0.015)
    clustered = pack(netlist, ARCH)
    return place(clustered, seed=1)


@pytest.fixture(scope="module")
def route_nets(placement):
    return build_route_nets(placement)


def _tree_shapes(routing):
    return {
        name: (sorted(tree.parent.items()), sorted(tree.sink_nodes))
        for name, tree in routing.trees.items()
    }


class TestRepresentationIdentity:
    def test_legacy_and_ir_route_identically(self, placement, route_nets):
        legacy = RRGraph(ARCH, placement.grid_width, placement.grid_height)
        ir = FabricIR.build(ARCH, placement.grid_width, placement.grid_height)
        r_legacy = PathFinderRouter(legacy).route(route_nets)
        r_ir = PathFinderRouter(ir).route(route_nets)
        assert r_legacy.success and r_ir.success
        assert r_legacy.wirelength == r_ir.wirelength
        assert r_legacy.iterations == r_ir.iterations
        assert _tree_shapes(r_legacy) == _tree_shapes(r_ir)

    def test_route_design_returns_cached_ir(self, placement):
        routing, graph = route_design(placement, ARCH)
        assert isinstance(graph, FabricIR)
        assert routing.success
        assert graph is get_fabric(
            ARCH, placement.grid_width, placement.grid_height
        )

    def test_shared_ir_reroutes_identically(self, placement, route_nets):
        """One cached IR serves many routers without state bleed."""
        ir = get_fabric(ARCH, placement.grid_width, placement.grid_height)
        first = PathFinderRouter(ir).route(route_nets)
        second = PathFinderRouter(ir).route(route_nets)
        assert _tree_shapes(first) == _tree_shapes(second)
        assert first.wirelength == second.wirelength
