"""FabricIR <-> legacy RRGraph equivalence property tests.

The IR is only allowed to exist because it is *exactly* the legacy
graph in flat clothing: same nodes (attributes and ids), same
adjacency in the same per-source order (router heap tie-breaks depend
on it), same tile lookup maps, same base costs and capacities.  These
tests pin that contract over a grid of architectures so the two build
paths cannot drift apart silently.
"""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph
from repro.fabric import KIND_NAMES, FabricIR, as_fabric

GRIDS = [(3, 3), (4, 4), (4, 5)]
ARCHES = [
    ArchParams(channel_width=6, segment_length=1),
    ArchParams(channel_width=8, segment_length=2),
    ArchParams(channel_width=12, segment_length=4),
    ArchParams(channel_width=8, segment_length=2, fc_in=0.5, fc_out=0.25),
    ArchParams(channel_width=8, segment_length=2, directionality="unidir"),
    ArchParams(channel_width=12, segment_length=4, directionality="unidir"),
]


def _case_id(case):
    params, (nx, ny) = case
    return (f"W{params.channel_width}_L{params.segment_length}"
            f"_fc{params.fc_in}_{params.directionality}_{nx}x{ny}")


CASES = [(params, grid) for params in ARCHES for grid in GRIDS]


@pytest.fixture(params=CASES, ids=_case_id, scope="module")
def pair(request):
    params, (nx, ny) = request.param
    return RRGraph(params, nx, ny), FabricIR.build(params, nx, ny)


class TestNodeEquivalence:
    def test_node_count(self, pair):
        legacy, ir = pair
        assert ir.num_nodes == len(legacy.nodes)

    def test_node_attributes(self, pair):
        legacy, ir = pair
        for node in legacy.nodes:
            assert KIND_NAMES[ir.kind[node.id]] == node.kind.value
            assert ir.xs[node.id] == node.x
            assert ir.ys[node.id] == node.y
            assert ir.spans[node.id] == node.span
            assert ir.tracks[node.id] == node.track
            assert ir.directions[node.id] == node.direction

    def test_base_costs_and_capacities(self, pair):
        legacy, ir = pair
        for node in legacy.nodes:
            assert ir.base_costs[node.id] == legacy.base_cost(node)
            assert ir.capacities[node.id] == legacy.node_capacity(node)


class TestAdjacencyEquivalence:
    def test_csr_matches_adjacency_in_order(self, pair):
        """Per-source CSR slices equal legacy lists *element for
        element* — order included (routing determinism rides on it)."""
        legacy, ir = pair
        offsets = ir.csr_offsets()
        targets = ir.csr_targets()
        for u, neighbours in enumerate(legacy.adjacency):
            assert targets[offsets[u]:offsets[u + 1]] == neighbours

    def test_edge_count(self, pair):
        legacy, ir = pair
        assert ir.num_edges == sum(len(a) for a in legacy.adjacency)


class TestLookupEquivalence:
    def test_source_and_sink_maps(self, pair):
        legacy, ir = pair
        assert dict(ir.source_of) == legacy.source_of
        assert dict(ir.sink_of) == legacy.sink_of

    def test_describe(self, pair):
        legacy, ir = pair
        assert ir.describe() == legacy.describe()


class TestConversionEquivalence:
    def test_from_rrgraph_matches_build(self, pair):
        """The conversion path produces the identical IR."""
        legacy, ir = pair
        converted = as_fabric(legacy)
        assert (converted.kind == ir.kind).all()
        assert (converted.xs == ir.xs).all()
        assert (converted.ys == ir.ys).all()
        assert (converted.spans == ir.spans).all()
        assert (converted.tracks == ir.tracks).all()
        assert (converted.directions == ir.directions).all()
        assert (converted.edge_offsets == ir.edge_offsets).all()
        assert (converted.edge_targets == ir.edge_targets).all()
        assert (converted.edge_switch == ir.edge_switch).all()
        assert (converted.source_table == ir.source_table).all()
        assert (converted.sink_table == ir.sink_table).all()

    def test_as_fabric_memoises(self, pair):
        legacy, _ = pair
        assert as_fabric(legacy) is as_fabric(legacy)

    def test_as_fabric_passthrough(self, pair):
        _, ir = pair
        assert as_fabric(ir) is ir
