"""Tests for repro.fabric.cache (keyed FabricIR cache)."""

import pytest

from repro.arch.params import ArchParams
from repro.fabric import FabricCache, FabricIR, fabric_cache, get_fabric

ARCH = ArchParams(channel_width=6, segment_length=1)


class TestFabricCache:
    def test_miss_then_hit_returns_same_instance(self):
        cache = FabricCache()
        first = cache.get(ARCH, 3, 3)
        second = cache.get(ARCH, 3, 3)
        assert first is second
        assert isinstance(first, FabricIR)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_distinct_keys_build_distinct_irs(self):
        cache = FabricCache()
        a = cache.get(ARCH, 3, 3)
        b = cache.get(ARCH, 3, 4)
        c = cache.get(ARCH.with_channel_width(8), 3, 3)
        assert a is not b and a is not c
        assert cache.stats() == {"entries": 3, "hits": 0, "misses": 3}

    def test_lru_eviction(self):
        cache = FabricCache(maxsize=2)
        a = cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 4)
        cache.get(ARCH, 3, 5)  # evicts (3, 3), the oldest
        assert len(cache) == 2
        again = cache.get(ARCH, 3, 3)  # rebuild
        assert again is not a
        assert cache.misses == 4

    def test_lru_touch_on_hit(self):
        cache = FabricCache(maxsize=2)
        a = cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 4)
        cache.get(ARCH, 3, 3)  # refresh (3, 3)
        cache.get(ARCH, 3, 5)  # evicts (3, 4) instead
        assert cache.get(ARCH, 3, 3) is a

    def test_clear(self):
        cache = FabricCache()
        cache.get(ARCH, 3, 3)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            FabricCache(maxsize=0)


class TestGlobalCache:
    def test_get_fabric_uses_process_cache(self):
        before = fabric_cache().hits
        first = get_fabric(ARCH, 3, 3)
        assert get_fabric(ARCH, 3, 3) is first
        assert fabric_cache().hits > before

    def test_cache_metrics_emitted(self):
        from repro.obs import get_registry

        cache = FabricCache()
        cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 3)
        registry = get_registry()
        assert registry.counter("fabric.cache_hits").value >= 1
        assert registry.counter("fabric.cache_misses").value >= 1
