"""Tests for repro.fabric.cache (keyed FabricIR cache)."""

import threading

import pytest

from repro.arch.params import ArchParams
from repro.fabric import FabricCache, FabricIR, fabric_cache, get_fabric

ARCH = ArchParams(channel_width=6, segment_length=1)


class TestFabricCache:
    def test_miss_then_hit_returns_same_instance(self):
        cache = FabricCache()
        first = cache.get(ARCH, 3, 3)
        second = cache.get(ARCH, 3, 3)
        assert first is second
        assert isinstance(first, FabricIR)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_distinct_keys_build_distinct_irs(self):
        cache = FabricCache()
        a = cache.get(ARCH, 3, 3)
        b = cache.get(ARCH, 3, 4)
        c = cache.get(ARCH.with_channel_width(8), 3, 3)
        assert a is not b and a is not c
        assert cache.stats() == {"entries": 3, "hits": 0, "misses": 3}

    def test_lru_eviction(self):
        cache = FabricCache(maxsize=2)
        a = cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 4)
        cache.get(ARCH, 3, 5)  # evicts (3, 3), the oldest
        assert len(cache) == 2
        again = cache.get(ARCH, 3, 3)  # rebuild
        assert again is not a
        assert cache.misses == 4

    def test_lru_touch_on_hit(self):
        cache = FabricCache(maxsize=2)
        a = cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 4)
        cache.get(ARCH, 3, 3)  # refresh (3, 3)
        cache.get(ARCH, 3, 5)  # evicts (3, 4) instead
        assert cache.get(ARCH, 3, 3) is a

    def test_clear(self):
        cache = FabricCache()
        cache.get(ARCH, 3, 3)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            FabricCache(maxsize=0)


class TestConcurrency:
    """Regression tests for the locked LRU + single-flight rewrite.

    Pre-fix, concurrent `get` calls mutated the OrderedDict and the
    hit/miss counters without a lock: `move_to_end` during another
    thread's eviction scan corrupts the dict, and simultaneous misses
    on one key built the IR twice.
    """

    def test_thread_hammer_same_key_builds_once(self, monkeypatch):
        builds = []
        build_gate = threading.Event()
        real_build = FabricIR.build

        def slow_build(params, nx, ny):
            builds.append((nx, ny))
            build_gate.wait(5.0)  # hold every racer inside the miss window
            return real_build(params, nx, ny)

        monkeypatch.setattr(FabricIR, "build", staticmethod(slow_build))
        cache = FabricCache()
        got = []
        threads = [
            threading.Thread(target=lambda: got.append(cache.get(ARCH, 3, 3)))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        # All 8 threads are now either building or waiting on the
        # single-flight event; release the one builder.
        build_gate.set()
        for thread in threads:
            thread.join(10.0)
        assert len(builds) == 1  # single-flight: one build despite 8 racers
        assert len(got) == 8
        assert all(ir is got[0] for ir in got)
        assert cache.stats() == {"entries": 1, "hits": 7, "misses": 1}

    def test_thread_hammer_mixed_keys_with_eviction(self):
        """Many threads, many keys, maxsize small enough to force
        constant eviction — must neither corrupt the LRU dict nor
        lose track of in-flight builds."""
        cache = FabricCache(maxsize=2)
        keys = [(3, 3), (3, 4), (3, 5), (4, 3)]
        errors = []

        def hammer(seed):
            try:
                for i in range(12):
                    nx, ny = keys[(seed + i) % len(keys)]
                    ir = cache.get(ARCH, nx, ny)
                    assert ir.nx == nx and ir.ny == ny
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(cache) <= 2
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 12

    def test_failed_build_releases_waiters_for_retry(self, monkeypatch):
        """A builder that raises must not strand the waiting threads —
        one of them re-elects itself and the build succeeds."""
        real_build = FabricIR.build
        fail_once = [True]

        def flaky_build(params, nx, ny):
            if fail_once[0]:
                fail_once[0] = False
                raise RuntimeError("injected build failure")
            return real_build(params, nx, ny)

        monkeypatch.setattr(FabricIR, "build", staticmethod(flaky_build))
        cache = FabricCache()
        with pytest.raises(RuntimeError):
            cache.get(ARCH, 3, 3)
        # The key must not be stuck "building": the next get retries.
        ir = cache.get(ARCH, 3, 3)
        assert isinstance(ir, FabricIR)
        assert cache.stats()["entries"] == 1


class TestGlobalCache:
    def test_get_fabric_uses_process_cache(self):
        before = fabric_cache().hits
        first = get_fabric(ARCH, 3, 3)
        assert get_fabric(ARCH, 3, 3) is first
        assert fabric_cache().hits > before

    def test_cache_metrics_emitted(self):
        from repro.obs import get_registry

        cache = FabricCache()
        cache.get(ARCH, 3, 3)
        cache.get(ARCH, 3, 3)
        registry = get_registry()
        assert registry.counter("fabric.cache_hits").value >= 1
        assert registry.counter("fabric.cache_misses").value >= 1
