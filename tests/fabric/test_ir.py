"""Tests for repro.fabric.ir (FabricIR structure and facade)."""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import NodeKind, RRGraph
from repro.fabric import (
    KIND_HWIRE,
    KIND_IPIN,
    KIND_OPIN,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
    FabricIR,
    SwitchKind,
    TileLookup,
    switch_kind_code,
)

ARCH = ArchParams(channel_width=8, segment_length=2)


@pytest.fixture(scope="module")
def ir():
    return FabricIR.build(ARCH, 4, 4)


class TestSwitchKindCode:
    def test_programmable_patterns(self):
        assert switch_kind_code(KIND_OPIN, KIND_HWIRE) == SwitchKind.OPIN_WIRE
        assert switch_kind_code(KIND_OPIN, KIND_VWIRE) == SwitchKind.OPIN_WIRE
        assert switch_kind_code(KIND_HWIRE, KIND_VWIRE) == SwitchKind.WIRE_WIRE
        assert switch_kind_code(KIND_VWIRE, KIND_VWIRE) == SwitchKind.WIRE_WIRE
        assert switch_kind_code(KIND_HWIRE, KIND_IPIN) == SwitchKind.WIRE_IPIN

    def test_hardwired_patterns(self):
        assert switch_kind_code(KIND_SOURCE, KIND_OPIN) == SwitchKind.NONE
        assert switch_kind_code(KIND_IPIN, KIND_SINK) == SwitchKind.NONE


class TestEdgeSwitchTable:
    def test_table_matches_scalar_classifier(self, ir):
        offsets = ir.csr_offsets()
        targets = ir.csr_targets()
        for u in range(ir.num_nodes):
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                assert ir.edge_switch[e] == switch_kind_code(
                    int(ir.kind[u]), int(ir.kind[v])
                )

    def test_switch_kind_between(self, ir):
        offsets = ir.csr_offsets()
        targets = ir.csr_targets()
        u = next(u for u in range(ir.num_nodes)
                 if offsets[u + 1] > offsets[u])
        v = targets[offsets[u]]
        assert ir.switch_kind_between(u, v) is SwitchKind(
            int(ir.edge_switch[offsets[u]])
        )

    def test_switch_kind_between_non_edge(self, ir):
        # SOURCE never points at another SOURCE: classifier fallback.
        sources = [i for i in range(ir.num_nodes)
                   if ir.kind[i] == KIND_SOURCE]
        assert ir.switch_kind_between(sources[0], sources[1]) is SwitchKind.NONE


class TestStats:
    def test_stats_shape(self, ir):
        stats = ir.stats()
        assert stats["grid"] == [4, 4]
        assert stats["channel_width"] == 8
        assert stats["num_nodes"] == sum(stats["nodes_by_kind"].values())
        assert stats["num_edges"] == sum(stats["edges_by_switch"].values())
        assert stats["memory_bytes"] > 0
        assert stats["build"]["constructor"] == "build"
        assert stats["build"]["build_wall_s"] >= 0

    def test_memory_counts_core_arrays(self, ir):
        assert ir.memory_bytes() >= (
            ir.kind.nbytes + ir.edge_targets.nbytes + ir.edge_offsets.nbytes
        )

    def test_describe_matches_legacy_format(self, ir):
        counts = ir.describe()
        assert set(counts) == {
            "source", "sink", "opin", "ipin", "hwire", "vwire", "edges",
        }


class TestTileLookup:
    def test_mapping_protocol(self, ir):
        lookup = ir.source_of
        assert isinstance(lookup, TileLookup)
        assert len(lookup) == 16
        assert set(lookup) == {(x, y) for x in range(4) for y in range(4)}
        assert ir.kind[lookup[(1, 2)]] == KIND_SOURCE

    def test_missing_tile_raises(self, ir):
        with pytest.raises(KeyError):
            ir.source_of[(9, 9)]
        with pytest.raises(KeyError):
            ir.sink_of[(-1, 0)]


class TestLegacyFacade:
    def test_nodes_view(self, ir):
        nodes = ir.nodes
        assert len(nodes) == ir.num_nodes
        node = nodes[0]
        assert node.id == 0
        assert isinstance(node.kind, NodeKind)

    def test_adjacency_view(self, ir):
        adjacency = ir.adjacency
        assert len(adjacency) == ir.num_nodes
        assert sum(len(a) for a in adjacency) == ir.num_edges

    def test_cost_and_capacity_accessors(self, ir):
        wire = ir.wire_nodes()[0]
        assert ir.base_cost(wire) == float(wire.span)
        assert ir.node_capacity(wire) == 1
        source = ir.nodes[ir.source_of[(0, 0)]]
        assert ir.node_capacity(source) >= 10 ** 9

    def test_positions_match_legacy_router_expectations(self, ir):
        positions = ir.positions
        assert len(positions) == ir.num_nodes
        wire = ir.wire_nodes()[0]
        px, py = positions[wire.id]
        assert px >= wire.x and py >= wire.y


class TestBuildStats:
    def test_conversion_provenance(self):
        legacy = RRGraph(ARCH, 3, 3)
        ir = FabricIR.from_rrgraph(legacy)
        assert ir.build_stats["constructor"] == "from_rrgraph"
