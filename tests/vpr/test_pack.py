"""Tests for repro.vpr.pack (VPack clustering)."""

import pytest

from repro.arch.params import ArchParams
from repro.netlist.core import Netlist
from repro.vpr.pack import form_bles, pack, packing_stats

from .conftest import ARCH


class TestFormBles:
    def test_ff_merges_with_sole_driver(self):
        n = Netlist("m")
        n.add_input("a")
        n.add_lut("l", ["a"])
        n.add_ff("f", "l")
        n.add_output("o", "f")
        bles = form_bles(n)
        assert len(bles) == 1
        assert bles[0].lut == "l" and bles[0].ff == "f"
        assert bles[0].output_net == "f"

    def test_ff_with_shared_lut_gets_own_ble(self):
        # LUT output used combinationally AND registered: the 2:1 mux
        # exposes one signal, so the FF needs its own BLE.
        n = Netlist("m")
        n.add_input("a")
        n.add_lut("l", ["a"])
        n.add_ff("f", "l")
        n.add_lut("l2", ["l"])
        n.add_output("o", "f")
        n.add_output("o2", "l2")
        bles = form_bles(n)
        names = {b.name for b in bles}
        assert names == {"l", "f", "l2"}

    def test_lone_ff_input_net(self):
        n = Netlist("m")
        n.add_input("a")
        n.add_ff("f", "a")
        n.add_output("o", "f")
        bles = form_bles(n)
        assert bles[0].input_nets == ["a"]


class TestPack:
    def test_all_bles_packed_once(self, netlist, clustered):
        packed = [b.name for c in clustered.clusters for b in c.bles]
        assert len(packed) == len(set(packed))
        assert len(packed) == len(form_bles(netlist))

    def test_cluster_capacity_respected(self, clustered):
        assert all(len(c.bles) <= ARCH.n for c in clustered.clusters)

    def test_cluster_inputs_respected(self, clustered):
        assert all(len(c.input_nets) <= ARCH.inputs_per_lb for c in clustered.clusters)

    def test_feedback_nets_not_counted_as_inputs(self, clustered):
        for cluster in clustered.clusters:
            outputs = {b.name for b in cluster.bles}
            assert not (cluster.input_nets & outputs)

    def test_high_fill_rate(self, clustered):
        stats = packing_stats(clustered)
        assert stats["avg_fill"] > 0.85

    def test_cluster_of_covers_every_signal(self, netlist, clustered):
        for lut in netlist.luts:
            assert lut.name in clustered.cluster_of
        for ff in netlist.ffs:
            assert ff.name in clustered.cluster_of

    def test_external_nets_exclude_intra_cluster(self, netlist, clustered):
        for driver, sinks in clustered.external_nets().items():
            driver_block = netlist.blocks[driver]
            if driver_block.type.value == "input":
                continue
            dc = clustered.cluster_of[driver]
            for sink in sinks:
                sink_block = netlist.blocks[sink]
                if sink_block.type.value == "output":
                    continue
                assert clustered.cluster_of[sink] != dc

    def test_pi_nets_always_external(self, netlist, clustered):
        nets = clustered.external_nets()
        for pi in netlist.inputs:
            if netlist.fanout().get(pi.name):
                assert pi.name in nets

    def test_single_lut_circuit(self):
        n = Netlist("one")
        n.add_input("a")
        n.add_lut("l", ["a"])
        n.add_output("o", "l")
        clustered = pack(n, ArchParams(channel_width=8))
        assert clustered.num_clusters == 1

    def test_output_nets_marked(self, clustered):
        marked = set()
        for c in clustered.clusters:
            marked |= c.output_nets
        assert marked  # some BLE outputs leave their cluster
        for name in marked:
            assert clustered.cluster_of[name] is not None
