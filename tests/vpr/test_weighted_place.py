"""Tests for criticality-weighted placement."""

import pytest

from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.pack import pack
from repro.vpr.place import place

from .conftest import ARCH


def _bbox_of_net(placement, clustered, driver):
    netlist = clustered.netlist
    blocks = [driver] if driver in placement.location_of else [
        f"c{clustered.cluster_of[driver]}"
    ]
    tiles = [placement.location_of[blocks[0]]]
    for sink in clustered.external_nets().get(driver, []):
        block = netlist.blocks[sink]
        if block.type.value == "output":
            tiles.append(placement.location_of[sink])
        else:
            tiles.append(placement.location_of[f"c{clustered.cluster_of[sink]}"])
    xs = [t[0] for t in tiles]
    ys = [t[1] for t in tiles]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


@pytest.fixture(scope="module")
def clustered_small():
    netlist = generate(GeneratorParams("wp", num_luts=150, ff_fraction=0.2, seed=31))
    return pack(netlist, ARCH)


class TestWeightedPlacement:
    def test_default_weights_identity(self, clustered_small):
        a = place(clustered_small, seed=4)
        b = place(clustered_small, seed=4, net_weights={})
        assert a.location_of == b.location_of

    def test_heavily_weighted_nets_shrink(self, clustered_small):
        """Weighting a subset of nets 20x must pull their bounding
        boxes in relative to the unweighted placement (on average)."""
        nets = list(clustered_small.external_nets())
        favored = sorted(nets)[: max(3, len(nets) // 10)]
        weights = {name: 20.0 for name in favored}
        baseline = place(clustered_small, seed=4)
        weighted = place(clustered_small, seed=4, net_weights=weights)
        base_bb = sum(_bbox_of_net(baseline, clustered_small, n) for n in favored)
        heavy_bb = sum(_bbox_of_net(weighted, clustered_small, n) for n in favored)
        assert heavy_bb <= base_bb

    def test_weighted_placement_still_legal(self, clustered_small):
        nets = list(clustered_small.external_nets())
        weights = {name: 5.0 for name in nets[: len(nets) // 2]}
        placement = place(clustered_small, seed=4, net_weights=weights)
        for i in range(clustered_small.num_clusters):
            x, y = placement.location_of[f"c{i}"]
            assert not placement.is_perimeter(x, y)
