"""Tests for timing-driven routing (criticality-blended PathFinder)."""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph
from repro.core.variants import baseline_variant
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.flow import run_flow, run_timing_driven_flow
from repro.vpr.route import PathFinderRouter
from repro.vpr.timing import analyze_timing, estimate_hop_delay, node_delay_costs

PARAMS = ArchParams(channel_width=32)


@pytest.fixture(scope="module")
def fabric():
    return baseline_variant(PARAMS).fabric()


@pytest.fixture(scope="module")
def circuit():
    return generate(GeneratorParams("td", num_luts=200, ff_fraction=0.25, seed=9))


@pytest.fixture(scope="module")
def flows(circuit, fabric):
    base = run_flow(circuit, PARAMS)
    assert base.success
    base_report = analyze_timing(base.placement, base.routing, base.graph, fabric)
    td_flow, td_report = run_timing_driven_flow(circuit, PARAMS, fabric, sta_passes=2)
    assert td_flow.success
    return base, base_report, td_flow, td_report


class TestDelayCosts:
    def test_hop_delay_positive_and_monotone_in_span(self, fabric):
        d_half = estimate_hop_delay(fabric, 0.5)
        d_full = estimate_hop_delay(fabric, 1.0)
        assert 0 < d_half < d_full

    def test_rejects_nonpositive_span(self, fabric):
        with pytest.raises(ValueError):
            estimate_hop_delay(fabric, 0.0)

    def test_per_node_costs_shape(self, fabric):
        graph = RRGraph(PARAMS, 4, 4)
        costs = node_delay_costs(graph, fabric)
        assert len(costs) == graph.num_nodes
        assert all(c >= 0 for c in costs)

    def test_full_span_wire_normalised_to_base_cost(self, fabric):
        graph = RRGraph(PARAMS, 8, 8)
        costs = node_delay_costs(graph, fabric)
        full_span = [
            costs[n.id]
            for n in graph.wire_nodes()
            if n.span == PARAMS.segment_length
        ]
        assert full_span
        assert full_span[0] == pytest.approx(PARAMS.segment_length)

    def test_router_rejects_mismatched_costs(self, fabric):
        graph = RRGraph(PARAMS, 3, 3)
        with pytest.raises(ValueError):
            PathFinderRouter(graph, delay_costs=[1.0, 2.0])


class TestTimingDrivenFlow:
    def test_never_worse_than_routability(self, flows):
        _base, base_report, _td_flow, td_report = flows
        assert td_report.critical_path <= base_report.critical_path + 1e-15

    def test_improves_under_congestion(self, flows):
        """At this W (just above Wmin) the routability router detours
        critical nets; the timing-driven pass recovers measurable
        delay (deterministic instance, ~10% on this circuit)."""
        _base, base_report, _td_flow, td_report = flows
        assert td_report.critical_path < 0.97 * base_report.critical_path

    def test_result_still_legal(self, flows):
        _base, _base_report, td_flow, _td_report = flows
        from collections import Counter

        occupancy = Counter()
        for tree in td_flow.routing.trees.values():
            for node in tree.nodes:
                occupancy[node] += 1
        graph = td_flow.graph
        for node_id, occ in occupancy.items():
            assert occ <= graph.node_capacity(graph.nodes[node_id])

    def test_zero_sta_passes_is_routability(self, circuit, fabric):
        flow, report = run_timing_driven_flow(circuit, PARAMS, fabric, sta_passes=0)
        assert flow.success
        assert report is not None

    def test_rejects_negative_passes(self, circuit, fabric):
        with pytest.raises(ValueError):
            run_timing_driven_flow(circuit, PARAMS, fabric, sta_passes=-1)
