"""Smaller unit tests filling coverage gaps across the VPR substrate."""

import dataclasses

import pytest

from repro.arch.params import ArchParams
from repro.core.variants import baseline_variant, optimized_nem_variant
from repro.vpr.timing import estimate_hop_delay

from .conftest import ARCH


class TestFabricElectricalHelpers:
    def test_stage_input_cap_with_buffer(self):
        fabric = baseline_variant(ARCH).fabric()
        assert fabric.stage_input_cap() == pytest.approx(
            fabric.wire_buffer.input_capacitance
        )

    def test_stage_input_cap_without_buffer(self):
        fabric = dataclasses.replace(baseline_variant(ARCH).fabric(), wire_buffer=None)
        assert fabric.stage_input_cap() == 0.0

    def test_sink_input_cap_prefers_buffer(self):
        base = baseline_variant(ARCH).fabric()
        assert base.sink_input_cap() == pytest.approx(
            base.lb_input_buffer.input_capacitance
        )

    def test_sink_input_cap_uses_crossbar_row_when_unbuffered(self):
        opt = optimized_nem_variant(ARCH, 4.0).fabric()
        assert opt.lb_input_buffer is None
        assert opt.sink_input_cap() == pytest.approx(opt.crossbar_row_cap)

    def test_wire_off_load_product(self):
        fabric = baseline_variant(ARCH).fabric()
        assert fabric.wire_off_load == pytest.approx(
            fabric.off_taps_per_wire * fabric.switch_c_off
        )

    def test_hop_delay_unbuffered_branch(self):
        fabric = dataclasses.replace(baseline_variant(ARCH).fabric(), wire_buffer=None)
        assert estimate_hop_delay(fabric, 1.0) > 0


class TestDynamicPowerLocalHops:
    def test_num_local_hops_rescales(self):
        from repro.netlist.generate import GeneratorParams, generate
        from repro.power.activity import estimate_activities
        from repro.power.dynamic import dynamic_power

        netlist = generate(GeneratorParams("hops", num_luts=40, seed=2))
        activities = estimate_activities(netlist)
        spec = baseline_variant(ARCH).dynamic_spec()
        kwargs = dict(
            netlist=netlist, net_delays={}, activities=activities,
            spec=spec, frequency=1e9, num_tiles=25,
        )
        default = dynamic_power(**kwargs)
        estimated_hops = sum(len(lut.inputs) for lut in netlist.luts)
        doubled = dynamic_power(**kwargs, num_local_hops=2 * estimated_hops)
        assert doubled["local_interconnect"] == pytest.approx(
            2 * default["local_interconnect"]
        )


class TestRoutingResultFields:
    def test_wirelength_counts_spans(self, routed):
        result, graph = routed
        from repro.arch.rrgraph import NodeKind

        manual = 0
        for tree in result.trees.values():
            for node_id in tree.nodes:
                node = graph.nodes[node_id]
                if node.kind in (NodeKind.HWIRE, NodeKind.VWIRE):
                    manual += node.span
        assert result.wirelength == manual

    def test_iterations_positive(self, routed):
        result, _graph = routed
        assert result.iterations >= 1


class TestVariantAblationKnob:
    def test_keep_lb_buffers_hybrid(self):
        from repro.core.variants import FpgaVariant, VariantConfig, VariantKind

        hybrid = FpgaVariant(
            ARCH, VariantConfig(VariantKind.CMOS_NEM_OPT, 8.0, keep_lb_buffers=True)
        )
        assert hybrid.lb_input_buffer is not None
        assert hybrid.lb_output_buffer is not None
        full = optimized_nem_variant(ARCH, 8.0)
        # Keeping LB buffers costs CMOS area relative to the full
        # technique (footprint may tie if relay-limited).
        assert hybrid.area.cmos_mwta > full.area.cmos_mwta

    def test_keep_lb_buffers_rejected_off_opt(self):
        from repro.core.variants import VariantConfig, VariantKind

        with pytest.raises(ValueError):
            VariantConfig(VariantKind.CMOS_ONLY, keep_lb_buffers=True)
