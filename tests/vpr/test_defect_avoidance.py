"""Tests for defect-avoidance routing (blocked RR nodes)."""

import random

import pytest

from repro.arch.rrgraph import NodeKind, RRGraph
from repro.vpr.route import PathFinderRouter, build_route_nets

from .conftest import ARCH


@pytest.fixture(scope="module")
def graph(placement):
    return RRGraph(ARCH, placement.grid_width, placement.grid_height)


class TestBlockedNodes:
    def test_blocked_nodes_never_used(self, placement, graph, route_nets):
        rng = random.Random(5)
        wires = [n.id for n in graph.wire_nodes()]
        blocked = set(rng.sample(wires, len(wires) // 20))  # 5% dead wires
        router = PathFinderRouter(graph, blocked_nodes=blocked)
        result = router.route(route_nets)
        assert result.success
        for tree in result.trees.values():
            assert not (set(tree.nodes) & blocked)

    def test_moderate_defects_still_route(self, placement, route_nets):
        """Relay fabrics with a few percent dead switches remain
        routable — reconfiguration as repair (paper Sec. 1's limited
        endurance, mitigated)."""
        graph = RRGraph(ARCH, placement.grid_width, placement.grid_height)
        rng = random.Random(11)
        wires = [n.id for n in graph.wire_nodes()]
        blocked = set(rng.sample(wires, len(wires) // 10))  # 10%
        router = PathFinderRouter(graph, blocked_nodes=blocked)
        result = router.route(route_nets)
        assert result.success

    def test_blocking_everything_fails(self, placement, route_nets):
        graph = RRGraph(ARCH, placement.grid_width, placement.grid_height)
        blocked = {n.id for n in graph.wire_nodes()}
        router = PathFinderRouter(graph, blocked_nodes=blocked, max_iterations=3)
        result = router.route(route_nets)
        assert not result.success

    def test_unblocked_equals_default(self, graph, route_nets):
        default = PathFinderRouter(graph)
        explicit = PathFinderRouter(
            RRGraph(ARCH, graph.nx, graph.ny), blocked_nodes=set()
        )
        a = default.route(route_nets)
        b = explicit.route(route_nets)
        assert a.success and b.success
        assert {k: sorted(t.nodes) for k, t in a.trees.items()} == {
            k: sorted(t.nodes) for k, t in b.trees.items()
        }
