"""Tests for repro.vpr.flow.StageCache: reuse, keying, LRU bound."""

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.vpr.flow import StageCache, run_flow

from .conftest import ARCH


class TestUnit:
    def test_get_or_compute_caches(self):
        cache = StageCache()
        calls = []
        value, hit = cache.get_or_compute("pack", ("k",),
                                          lambda: calls.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_compute("pack", ("k",), lambda: "other")
        assert (value, hit) == ("v", True)
        assert calls == [1]

    def test_stage_is_part_of_the_key(self):
        cache = StageCache()
        cache.get_or_compute("pack", ("k",), lambda: "packed")
        value, hit = cache.get_or_compute("place", ("k",), lambda: "placed")
        assert (value, hit) == ("placed", False)

    def test_lru_bound_evicts_oldest(self):
        cache = StageCache(max_entries=2)
        cache.get_or_compute("s", (1,), lambda: 1)
        cache.get_or_compute("s", (2,), lambda: 2)
        cache.get_or_compute("s", (1,), lambda: None)  # refresh 1
        cache.get_or_compute("s", (3,), lambda: 3)     # evicts 2
        assert len(cache) == 2
        _, hit = cache.get_or_compute("s", (2,), lambda: 2)
        assert hit is False

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            StageCache(max_entries=0)

    def test_hit_and_miss_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = StageCache()
            cache.get_or_compute("s", ("k",), lambda: 1)
            cache.get_or_compute("s", ("k",), lambda: 1)
        snap = registry.snapshot()
        assert snap["flow.stage_cache.misses"]["value"] == 1.0
        assert snap["flow.stage_cache.hits"]["value"] == 1.0


class TestFlowIntegration:
    def test_repeat_flow_reuses_pack_and_place(self, netlist):
        cache = StageCache()
        registry = MetricsRegistry()
        with use_registry(registry):
            first = run_flow(netlist, ARCH, seed=1, stage_cache=cache)
            second = run_flow(netlist, ARCH, seed=1, stage_cache=cache)
        snap = registry.snapshot()
        assert snap["flow.stage_cache.hits"]["value"] == 2.0  # pack + place
        assert first.routing.wirelength == second.routing.wirelength
        # The cached placement is the same object, not a recompute.
        assert first.placement is second.placement

    def test_seed_change_recomputes_placement(self, netlist):
        cache = StageCache()
        run_flow(netlist, ARCH, seed=1, stage_cache=cache)
        registry = MetricsRegistry()
        with use_registry(registry):
            run_flow(netlist, ARCH, seed=2, stage_cache=cache)
        snap = registry.snapshot()
        # pack hits (same netlist+params); place misses (new seed).
        assert snap["flow.stage_cache.hits"]["value"] == 1.0
        assert snap["flow.stage_cache.misses"]["value"] == 1.0

    def test_cacheless_flow_matches_cached(self, netlist):
        cached = run_flow(netlist, ARCH, seed=1, stage_cache=StageCache())
        plain = run_flow(netlist, ARCH, seed=1)
        assert cached.routing.wirelength == plain.routing.wirelength
