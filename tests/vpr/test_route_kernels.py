"""Differential harness: the routing kernels are bit-identical.

The vectorised kernels (`repro.vpr.route_kernels.NumpyKernel`,
`repro.vpr.route_numba.NumbaKernel`) promise byte-identical
`RoutingResult`s to the reference Python walk — same trees, same
parent pointers, same iteration trace, same failures.  That contract
is what lets the kernel stay *execution policy* (never part of store
cache keys or artefact digests), so it is enforced here, not assumed:

* a (directionality x width x circuit x seed) differential grid,
* a routing-*failure* case (both kernels must fail identically —
  same overused count, same convergence trace),
* defect cases (blocked nodes, blocked directed edges),
* a hypothesis property suite over generated netlists,
* the numba kernel exercised in pure-python mode (its ``@njit``
  decorator degrades to the identity when numba is absent), so the
  compiled code path is covered bit-for-bit even without numba.

Kernel *selection* (`resolve_kernel`: explicit > env > auto, with the
numba -> numpy -> python fallback ladder) is tested alongside.
"""

import dataclasses
import sys
import types

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.params import ArchParams
from repro.fabric.build import KIND_HWIRE, KIND_VWIRE
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr import route_numba
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import PathFinderRouter, build_route_nets, route_design
from repro.vpr.route_kernels import (
    ENV_VAR,
    KERNELS,
    NUMPY_MIN_NODES,
    make_kernel,
    numba_available,
    resolve_kernel,
)

from .conftest import ARCH


def fingerprint(result):
    """The full RoutingResult as plain data: any bit of divergence
    (a float in the convergence trace, one parent pointer) fails the
    comparison."""
    return dataclasses.asdict(result)


def placed_circuit(name, num_luts, seed, arch, place_seed):
    params = GeneratorParams(name, num_luts=num_luts, ff_fraction=0.25, seed=seed)
    clustered = pack(generate(params), arch)
    return place(clustered, seed=place_seed)


def route_pair(placement, arch, reference="python", other="numpy", **router_kwargs):
    """Route the same design with two kernels; return both results."""
    a, _ = route_design(placement, arch, kernel=reference, **router_kwargs)
    b, _ = route_design(placement, arch, kernel=other, **router_kwargs)
    return a, b


#: (directionality, W, num_luts, netlist seed, placement seed) — small
#: enough for the reference walk, varied enough to cover bidir/unidir
#: fabrics, tight and generous widths, several circuit topologies.
GRID = [
    ("bidir", 48, 120, 42, 7),
    ("bidir", 24, 80, 1, 3),
    ("unidir", 32, 100, 2, 5),
    ("unidir", 48, 60, 3, 1),
]


class TestDifferentialGrid:
    @pytest.mark.parametrize(
        "directionality,width,num_luts,seed,place_seed", GRID,
        ids=[f"{d}-W{w}-n{n}-s{s}" for d, w, n, s, _ in GRID])
    def test_numpy_matches_reference(
            self, directionality, width, num_luts, seed, place_seed):
        arch = ArchParams(channel_width=width, directionality=directionality)
        placement = placed_circuit(
            f"diff{seed}", num_luts, seed, arch, place_seed)
        ref, vec = route_pair(placement, arch)
        assert fingerprint(vec) == fingerprint(ref)

    def test_identical_failure(self, placement):
        """Unroutable width: kernels must agree on the *failure* too —
        same iteration count, same overused-node count, same
        convergence trace."""
        ref, vec = route_pair(
            placement, ARCH, channel_width=4, max_iterations=12)
        assert not ref.success
        assert vec.overused_nodes == ref.overused_nodes
        assert fingerprint(vec) == fingerprint(ref)

    def test_blocked_nodes(self, placement, routed):
        """Dead wires (5%): defect-avoidance must be kernel-invariant."""
        import random

        _, graph = routed
        wires = graph.nodes_of_kind(KIND_HWIRE, KIND_VWIRE).tolist()
        blocked = sorted(random.Random(5).sample(wires, len(wires) // 20))
        ref, vec = route_pair(placement, ARCH, blocked_nodes=set(blocked))
        assert ref.success
        for tree in ref.trees.values():
            assert not (set(tree.nodes) & set(blocked))
        assert fingerprint(vec) == fingerprint(ref)

    def test_blocked_edges(self, placement, routed):
        """Stuck-open relays: individual directed hops forbidden."""
        import random

        _, graph = routed
        off, tgt = graph.csr_offsets(), graph.csr_targets()
        kind = graph.kind
        edges = [
            (u, int(tgt[e]))
            for u in range(graph.num_nodes)
            for e in range(int(off[u]), int(off[u + 1]))
            if kind[u] in (KIND_HWIRE, KIND_VWIRE)
            and kind[int(tgt[e])] in (KIND_HWIRE, KIND_VWIRE)
        ]
        blocked = sorted(random.Random(9).sample(edges, len(edges) // 25))
        ref, vec = route_pair(placement, ARCH, blocked_edges=set(blocked))
        assert ref.success
        for tree in ref.trees.values():
            for node, parent in tree.parent.items():
                assert (parent, node) not in set(blocked)
        assert fingerprint(vec) == fingerprint(ref)

    def test_numba_kernel_matches_reference(self, placement):
        """The numba kernel's search — run pure-python when numba is
        absent, compiled when present — is bit-identical too."""
        ref, _ = route_design(placement, ARCH, kernel="python")
        from repro.fabric import get_fabric

        graph = get_fabric(
            ARCH, placement.grid_width, placement.grid_height)
        router = PathFinderRouter(graph, kernel="numpy")
        router._kernel = route_numba.NumbaKernel(router)
        router.kernel = "numba"
        nb = router.route(build_route_nets(placement))
        assert fingerprint(nb) == fingerprint(ref)

    def test_counters_advance(self, placement):
        from repro.fabric import get_fabric

        graph = get_fabric(ARCH, placement.grid_width, placement.grid_height)
        router = PathFinderRouter(graph, kernel="numpy")
        result = router.route(build_route_nets(placement))
        assert result.success
        assert router._kernel.heap_pops > 0
        assert router._kernel.heap_pushes >= router._kernel.heap_pops


class TestKernelProperties:
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 10_000), num_luts=st.integers(40, 110),
           width=st.sampled_from([24, 32, 48]))
    def test_generated_netlists_identical(self, seed, num_luts, width):
        """Property: over arbitrary generated circuits, numpy == python
        on the full RoutingResult — success or failure alike."""
        arch = ArchParams(channel_width=width)
        placement = placed_circuit(
            f"hyp{seed}", num_luts, seed, arch, place_seed=seed % 13)
        ref, vec = route_pair(placement, arch, max_iterations=40)
        assert fingerprint(vec) == fingerprint(ref)


class TestKernelSelection:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_kernel("python", 10**6) == "python"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_kernel(None, 10) == "numpy"

    def test_empty_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        monkeypatch.setitem(sys.modules, "numba", None)
        assert resolve_kernel(None, NUMPY_MIN_NODES) == "numpy"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown route kernel"):
            resolve_kernel("fortran", 10)

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="unknown route kernel"):
            resolve_kernel(None, 10)

    def test_auto_without_numba(self, monkeypatch):
        """numba absent: auto takes numpy on big graphs, the reference
        on small ones (below NUMPY_MIN_NODES the vector setup costs
        more than the walk it saves)."""
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not numba_available()
        assert resolve_kernel(None, NUMPY_MIN_NODES) == "numpy"
        assert resolve_kernel(None, NUMPY_MIN_NODES - 1) == "python"

    def test_auto_with_numba(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", types.ModuleType("numba"))
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_kernel(None, 10) == "numba"

    def test_explicit_numba_unavailable_raises(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)
        with pytest.raises(RuntimeError, match="numba"):
            resolve_kernel("numba", 10)

    def test_router_exposes_resolved_kernel(self, placement, monkeypatch):
        from repro.fabric import get_fabric

        graph = get_fabric(ARCH, placement.grid_width, placement.grid_height)
        assert PathFinderRouter(graph, kernel="numpy").kernel == "numpy"
        monkeypatch.setenv(ENV_VAR, "python")
        assert PathFinderRouter(graph).kernel == "python"
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(ValueError):
            PathFinderRouter(graph)

    def test_make_kernel_names(self, placement):
        from repro.fabric import get_fabric

        graph = get_fabric(ARCH, placement.grid_width, placement.grid_height)
        router = PathFinderRouter(graph, kernel="python")
        for name in KERNELS:
            # "numba" instantiates fine even without numba installed:
            # its decorator degrades to the identity (pure-python run).
            assert make_kernel(name, router).name == name
        with pytest.raises(ValueError):
            make_kernel("fortran", router)
