"""Tests for repro.vpr.place (simulated annealing)."""

import pytest

from repro.vpr.place import IO_CAPACITY, crossing_factor, place

from .conftest import ARCH


class TestCrossingFactor:
    def test_small_nets_unity(self):
        assert crossing_factor(2) == pytest.approx(1.0)
        assert crossing_factor(3) == pytest.approx(1.0)

    def test_monotone(self):
        values = [crossing_factor(t) for t in range(1, 60)]
        assert values == sorted(values)

    def test_extrapolation_beyond_table(self):
        assert crossing_factor(50) > crossing_factor(20)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            crossing_factor(0)


class TestPlacement:
    def test_every_block_placed(self, clustered, placement):
        netlist = clustered.netlist
        expected = clustered.num_clusters + len(netlist.inputs) + len(netlist.outputs)
        assert len(placement.location_of) == expected

    def test_logic_in_interior(self, clustered, placement):
        for i in range(clustered.num_clusters):
            x, y = placement.location_of[f"c{i}"]
            assert not placement.is_perimeter(x, y), f"cluster c{i} on perimeter"

    def test_ios_on_perimeter(self, clustered, placement):
        netlist = clustered.netlist
        for block in list(netlist.inputs) + list(netlist.outputs):
            x, y = placement.location_of[block.name]
            assert placement.is_perimeter(x, y), f"I/O {block.name} in interior"

    def test_one_cluster_per_tile(self, clustered, placement):
        seen = set()
        for i in range(clustered.num_clusters):
            tile = placement.location_of[f"c{i}"]
            assert tile not in seen
            seen.add(tile)

    def test_io_capacity_respected(self, placement):
        for tile, blocks in placement.blocks_at.items():
            if placement.is_perimeter(*tile):
                assert len(blocks) <= IO_CAPACITY

    def test_location_and_at_maps_consistent(self, placement):
        for name, tile in placement.location_of.items():
            assert name in placement.blocks_at[tile]

    def test_deterministic_given_seed(self, clustered):
        a = place(clustered, seed=3)
        b = place(clustered, seed=3)
        assert a.location_of == b.location_of

    def test_annealing_beats_random(self, clustered):
        """The annealed cost must be well below the initial random
        placement's cost (sanity that optimisation happens)."""
        import random

        from repro.vpr.place import PlacementBlock, _Annealer, _flat_nets

        netlist = clustered.netlist
        blocks = {}
        for c in clustered.clusters:
            blocks[f"c{c.index}"] = PlacementBlock(f"c{c.index}", "logic")
        for pi in netlist.inputs:
            blocks[pi.name] = PlacementBlock(pi.name, "pi")
        for po in netlist.outputs:
            blocks[po.name] = PlacementBlock(po.name, "po")
        placed = place(clustered, seed=11)
        annealer = _Annealer(
            blocks, _flat_nets(clustered), placed.grid_width, placed.grid_height,
            random.Random(11),
        )
        annealer.random_initial()
        random_cost = annealer.recompute_all()
        assert placed.cost < 0.8 * random_cost

    def test_grid_fits_demand(self, clustered, placement):
        interior = (placement.grid_width - 2) * (placement.grid_height - 2)
        assert interior >= clustered.num_clusters
