"""Shared P&R fixtures: one small circuit packed/placed/routed once."""

import pytest

from repro.arch.params import ArchParams
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import build_route_nets, route_design

#: Small but nontrivial circuit: fast to route, still multi-cluster.
CIRCUIT_PARAMS = GeneratorParams("unit", num_luts=120, ff_fraction=0.25, seed=42)

#: Generous channel width so the shared fixture always routes.
ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="package")
def netlist():
    return generate(CIRCUIT_PARAMS)


@pytest.fixture(scope="package")
def clustered(netlist):
    return pack(netlist, ARCH)


@pytest.fixture(scope="package")
def placement(clustered):
    return place(clustered, seed=7)


@pytest.fixture(scope="package")
def routed(placement):
    result, graph = route_design(placement, ARCH)
    assert result.success, "shared fixture must route"
    return result, graph


@pytest.fixture(scope="package")
def route_nets(placement):
    return build_route_nets(placement)
