"""Edge cases and failure injection across the VPR substrate."""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRGraph
from repro.netlist.core import Netlist
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.flow import run_flow
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import PathFinderRouter, RouteNet, build_route_nets, route_design


def single_lut_netlist():
    n = Netlist("single")
    n.add_input("a")
    n.add_input("b")
    n.add_lut("l", ["a", "b"])
    n.add_output("o", "l")
    return n


class TestDegenerateCircuits:
    def test_single_lut_flows_end_to_end(self):
        flow = run_flow(single_lut_netlist(), ArchParams(channel_width=12))
        assert flow.success
        assert flow.clustered.num_clusters == 1

    def test_pure_combinational_pipeline(self):
        n = Netlist("pipe")
        n.add_input("a")
        prev = "a"
        for i in range(10):
            n.add_lut(f"l{i}", [prev])
            prev = f"l{i}"
        n.add_output("o", prev)
        flow = run_flow(n, ArchParams(channel_width=16))
        assert flow.success

    def test_all_registered_circuit(self):
        netlist = generate(GeneratorParams("allreg", num_luts=30, ff_fraction=1.0, seed=3))
        flow = run_flow(netlist, ArchParams(channel_width=32))
        assert flow.success

    def test_wide_fanout_net(self):
        # One PI driving 40 LUTs: a single high-fanout routed tree.
        n = Netlist("fan")
        n.add_input("a")
        n.add_input("b")
        for i in range(40):
            n.add_lut(f"l{i}", ["a", "b"])
            n.add_output(f"o{i}", f"l{i}")
        flow = run_flow(n, ArchParams(channel_width=32))
        assert flow.success
        tree = flow.routing.trees["a"]
        assert len(tree.sink_nodes) >= 2


class TestRouterRobustness:
    def test_no_nets_routes_trivially(self):
        graph = RRGraph(ArchParams(channel_width=8), 3, 3)
        router = PathFinderRouter(graph)
        result = router.route([])
        assert result.success
        assert result.wirelength == 0

    def test_single_net_one_hop(self):
        graph = RRGraph(ArchParams(channel_width=8), 3, 3)
        router = PathFinderRouter(graph)
        net = RouteNet(name="n", source_tile=(0, 0), sink_tiles=[(1, 0)])
        result = router.route([net])
        assert result.success
        assert result.trees["n"].sink_nodes == [graph.sink_of[(1, 0)]]

    def test_net_spanning_full_diagonal(self):
        graph = RRGraph(ArchParams(channel_width=12), 6, 6)
        router = PathFinderRouter(graph)
        net = RouteNet(name="n", source_tile=(0, 0), sink_tiles=[(5, 5)])
        result = router.route([net])
        assert result.success

    def test_impossible_demand_reports_failure(self):
        """More nets from one tile than OPINs: structurally unroutable;
        the router must terminate with a failure, not hang."""
        params = ArchParams(channel_width=8)
        graph = RRGraph(params, 3, 3)
        router = PathFinderRouter(graph, max_iterations=15)
        nets = [
            RouteNet(name=f"n{i}", source_tile=(1, 1), sink_tiles=[(0, 0)])
            for i in range(params.outputs_per_lb + 3)
        ]
        result = router.route(nets)
        assert not result.success
        assert result.overused_nodes > 0

    def test_escalation_survives_on_small_conflicts(self):
        """A tight-but-routable instance exercises the stall/escalation
        path and must still converge."""
        netlist = generate(GeneratorParams("tight", num_luts=80, seed=17))
        clustered = pack(netlist, ArchParams(channel_width=48))
        placement = place(clustered, seed=5)
        wmin_found = False
        for width in (20, 24, 28, 32, 40, 48):
            result, _ = route_design(placement, channel_width=width)
            if result.success:
                wmin_found = True
                break
        assert wmin_found


class TestPlacementEdgeCases:
    def test_tiny_grid_explicit(self):
        netlist = single_lut_netlist()
        clustered = pack(netlist, ArchParams(channel_width=8))
        placement = place(clustered, seed=1, grid_side=2)
        assert placement.grid_width == 4

    def test_grid_too_small_rejected(self):
        netlist = generate(GeneratorParams("big", num_luts=200, seed=1))
        clustered = pack(netlist, ArchParams(channel_width=16))
        with pytest.raises(ValueError):
            place(clustered, seed=1, grid_side=2)

    def test_io_heavy_circuit_gets_larger_perimeter(self):
        netlist = generate(
            GeneratorParams("io", num_luts=20, num_inputs=120, num_outputs=100, seed=2)
        )
        clustered = pack(netlist, ArchParams(channel_width=16))
        placement = place(clustered, seed=1)
        from repro.vpr.place import IO_CAPACITY

        n_io = len(netlist.inputs) + len(netlist.outputs)
        perimeter_tiles = 2 * placement.grid_width + 2 * (placement.grid_height - 2)
        # The grid must grow past the logic demand (20 LUTs = 2 LBs
        # would fit a 2x2 interior) purely to host the I/O ring.
        assert perimeter_tiles * IO_CAPACITY >= n_io
        assert placement.grid_width > 4
