"""Tests for repro.vpr.visualize."""

import pytest

from repro.vpr.visualize import (
    channel_occupancy,
    render_congestion,
    render_net,
    render_placement,
    utilization_summary,
)

from .conftest import ARCH


class TestRenderPlacement:
    def test_dimensions(self, placement):
        lines = render_placement(placement).splitlines()
        assert len(lines) == placement.grid_height
        assert all(len(line) == placement.grid_width for line in lines)

    def test_cluster_count_matches(self, clustered, placement):
        text = render_placement(placement)
        assert text.count("#") == clustered.num_clusters

    def test_interior_has_no_io_digits(self, placement):
        lines = render_placement(placement).splitlines()
        for y, line in enumerate(reversed(lines)):
            for x, ch in enumerate(line):
                if not placement.is_perimeter(x, y):
                    assert ch in "#."


class TestCongestion:
    def test_occupancy_bounded_by_width(self, routed):
        result, graph = routed
        occupancy = channel_occupancy(result, graph)
        assert occupancy
        assert max(occupancy.values()) <= graph.params.channel_width

    def test_render_dimensions(self, routed):
        result, graph = routed
        lines = render_congestion(result, graph).splitlines()
        assert len(lines) == graph.ny + 1
        assert all(len(line) == graph.nx for line in lines)

    def test_summary(self, routed):
        result, graph = routed
        summary = utilization_summary(result, graph)
        assert 0 < summary["mean"] <= summary["max"] <= 1.0
        assert summary["positions"] > 0


class TestRenderNet:
    def test_marks_source_and_sinks(self, routed, route_nets):
        result, graph = routed
        net = max(route_nets, key=lambda n: len(n.sink_tiles))
        text = render_net(result, graph, net.name)
        assert text.count("S") == 1
        assert text.count("T") == len(net.sink_tiles)

    def test_unknown_net_rejected(self, routed):
        result, graph = routed
        with pytest.raises(KeyError):
            render_net(result, graph, "not-a-net")
