"""Tests for repro.vpr.flow (Wmin derivation, end-to-end driver)."""

import pytest

from repro.arch.params import ArchParams
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.flow import (
    derive_architecture_width,
    find_min_channel_width,
    low_stress_width,
    run_flow,
)
from repro.vpr.pack import pack
from repro.vpr.place import place


@pytest.fixture(scope="module")
def small_placement():
    netlist = generate(GeneratorParams("flow", num_luts=60, seed=8))
    clustered = pack(netlist, ArchParams(channel_width=48))
    return place(clustered, seed=2)


class TestLowStress:
    def test_twenty_percent_margin(self):
        # Paper: Wmin 98 -> W = 118 (98 * 1.2 = 117.6, rounded up).
        assert low_stress_width(98) == 118

    def test_rounds_up(self):
        assert low_stress_width(10) == 12
        assert low_stress_width(11) == 14  # 13.2 -> 14

    def test_rejects_bad_wmin(self):
        with pytest.raises(ValueError):
            low_stress_width(0)


class TestWminSearch:
    def test_finds_minimal_width(self, small_placement):
        wmin, result, _graph = find_min_channel_width(small_placement, start=8)
        assert result.success
        # One below Wmin must fail (minimality), unless at the floor.
        if wmin > 2:
            from repro.vpr.route import route_design

            below, _ = route_design(
                small_placement, channel_width=wmin - 1, max_iterations=60
            )
            assert not below.success

    def test_graph_matches_width(self, small_placement):
        wmin, _result, graph = find_min_channel_width(small_placement, start=8)
        assert graph.params.channel_width == wmin


class TestRunFlow:
    def test_end_to_end(self):
        netlist = generate(GeneratorParams("e2e", num_luts=60, seed=9))
        flow = run_flow(netlist, ArchParams(channel_width=48), seed=1)
        assert flow.success
        assert flow.channel_width == 48
        assert flow.graph.params.channel_width == 48

    def test_width_override(self):
        netlist = generate(GeneratorParams("e2e2", num_luts=60, seed=9))
        flow = run_flow(netlist, ArchParams(channel_width=118), channel_width=40)
        assert flow.channel_width == 40


class TestDeriveArchitectureWidth:
    def test_suite_derivation(self):
        netlists = [
            generate(GeneratorParams(f"d{i}", num_luts=50 + 10 * i, seed=20 + i))
            for i in range(2)
        ]
        result = derive_architecture_width(netlists, ArchParams(channel_width=48))
        assert set(result["wmin_per_circuit"]) == {"d0", "d1"}
        assert result["wmin"] == max(result["wmin_per_circuit"].values())
        assert result["low_stress_width"] == low_stress_width(result["wmin"])
