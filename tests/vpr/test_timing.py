"""Tests for repro.vpr.timing (stage-walk Elmore STA)."""

import dataclasses

import pytest

from repro.core.variants import baseline_variant, optimized_nem_variant
from repro.vpr.timing import analyze_net, analyze_timing

from .conftest import ARCH


@pytest.fixture(scope="module")
def fabric():
    return baseline_variant(ARCH).fabric()


@pytest.fixture(scope="module")
def nem_fabric():
    return optimized_nem_variant(ARCH, downsize=4.0).fabric()


@pytest.fixture(scope="module")
def baseline_report(placement, routed, fabric):
    result, graph = routed
    return analyze_timing(placement, result, graph, fabric)


class TestNetAnalysis:
    def test_every_sink_gets_a_delay(self, routed, route_nets, fabric):
        result, graph = routed
        by_name = {n.name: n for n in route_nets}
        for name, tree in result.trees.items():
            nd = analyze_net(tree, graph, fabric)
            assert set(nd.delay_to_tile) == set(by_name[name].sink_tiles)

    def test_delays_positive(self, routed, fabric):
        result, graph = routed
        for tree in result.trees.values():
            nd = analyze_net(tree, graph, fabric)
            assert all(d > 0 for d in nd.delay_to_tile.values())

    def test_caps_positive_and_split(self, routed, fabric):
        result, graph = routed
        for tree in result.trees.values():
            nd = analyze_net(tree, graph, fabric)
            assert nd.cap_wire > 0
            assert nd.cap_buffer > 0  # baseline has buffers everywhere
            assert nd.cap_switch > 0
            assert nd.total_capacitance == pytest.approx(
                nd.cap_wire + nd.cap_buffer + nd.cap_switch
            )

    def test_more_stages_more_delay(self, routed, fabric):
        """Across nets, max sink delay correlates with stage count."""
        result, graph = routed
        short, long_ = None, None
        for tree in result.trees.values():
            nd = analyze_net(tree, graph, fabric)
            if nd.num_stages <= 2 and short is None:
                short = max(nd.delay_to_tile.values())
            if nd.num_stages >= 6 and long_ is None:
                long_ = max(nd.delay_to_tile.values())
        if short is not None and long_ is not None:
            assert long_ > short

    def test_nem_fabric_faster_per_net(self, routed, fabric, nem_fabric):
        result, graph = routed
        slower = faster = 0
        for tree in list(result.trees.values())[:40]:
            base = max(analyze_net(tree, graph, fabric).delay_to_tile.values())
            nem = max(analyze_net(tree, graph, nem_fabric).delay_to_tile.values())
            if nem < base:
                faster += 1
            else:
                slower += 1
        assert faster > slower


class TestSTA:
    def test_critical_path_positive(self, baseline_report):
        assert baseline_report.critical_path > 0
        assert baseline_report.critical_block is not None

    def test_arrival_monotone_along_path(self, clustered, baseline_report):
        netlist = clustered.netlist
        arr = baseline_report.arrival
        for lut in netlist.luts:
            for src in lut.inputs:
                if src in arr:
                    assert arr[lut.name] >= arr[src]

    def test_critical_path_at_least_max_lut_chain(self, clustered, baseline_report, fabric):
        depth = clustered.netlist.logic_depth()
        assert baseline_report.critical_path >= depth * fabric.t_lut

    def test_net_delays_recorded(self, baseline_report, routed):
        result, _graph = routed
        assert set(baseline_report.net_delays) == set(result.trees)

    def test_nem_critical_path_not_slower(self, placement, routed, fabric, nem_fabric):
        result, graph = routed
        base = analyze_timing(placement, result, graph, fabric).critical_path
        nem = analyze_timing(placement, result, graph, nem_fabric).critical_path
        # Paper: CMOS-NEM has no speed penalty (relays are faster
        # switches and the Vt-drop penalty disappears).
        assert nem <= base

    def test_zero_wire_buffer_fabric_still_analyzes(self, placement, routed, fabric):
        """Ablation: unbuffered wires (accumulated RC) still produce
        finite, positive delays."""
        result, graph = routed
        unbuffered = dataclasses.replace(fabric, wire_buffer=None)
        report = analyze_timing(placement, result, graph, unbuffered)
        assert report.critical_path > 0
