"""Tests for repro.vpr.route (PathFinder)."""

from collections import Counter

import pytest

from repro.arch.rrgraph import NodeKind, RRGraph
from repro.vpr.route import PathFinderRouter, build_route_nets, route_design

from .conftest import ARCH


class TestBuildRouteNets:
    def test_nets_have_sinks(self, route_nets):
        assert route_nets
        assert all(net.sink_tiles for net in route_nets)

    def test_no_self_sinks(self, route_nets):
        for net in route_nets:
            assert net.source_tile not in net.sink_tiles

    def test_sink_tiles_unique(self, route_nets):
        for net in route_nets:
            assert len(net.sink_tiles) == len(set(net.sink_tiles))

    def test_net_names_unique(self, route_nets):
        names = [n.name for n in route_nets]
        assert len(names) == len(set(names))


class TestRoutingLegality:
    def test_success(self, routed):
        result, _graph = routed
        assert result.success
        assert result.overused_nodes == 0

    def test_no_node_overused(self, routed):
        result, graph = routed
        occupancy = Counter()
        for tree in result.trees.values():
            for node in tree.nodes:
                occupancy[node] += 1
        for node_id, occ in occupancy.items():
            assert occ <= graph.node_capacity(graph.nodes[node_id])

    def test_every_net_routed(self, routed, route_nets):
        result, _graph = routed
        assert set(result.trees) == {n.name for n in route_nets}

    def test_trees_reach_all_sinks(self, routed, route_nets):
        result, graph = routed
        by_name = {n.name: n for n in route_nets}
        for name, tree in result.trees.items():
            expected = {graph.sink_of[t] for t in by_name[name].sink_tiles}
            assert set(tree.sink_nodes) == expected

    def test_trees_are_connected(self, routed, route_nets):
        """Walking parents from any sink must reach the net's SOURCE."""
        result, graph = routed
        by_name = {n.name: n for n in route_nets}
        for name, tree in result.trees.items():
            source = graph.source_of[by_name[name].source_tile]
            for sink in tree.sink_nodes:
                node = sink
                hops = 0
                while node != source:
                    node = tree.parent[node]
                    hops += 1
                    assert hops < 10_000, "parent chain loop"

    def test_single_opin_per_net(self, routed):
        """Regression: multi-sink nets must not branch at the SOURCE
        (each net owns exactly one OPIN)."""
        result, graph = routed
        for tree in result.trees.values():
            opins = [n for n in tree.nodes if graph.nodes[n].kind is NodeKind.OPIN]
            assert len(opins) == 1

    def test_path_alternates_legally(self, routed):
        """Edges used must exist in the RR graph adjacency."""
        result, graph = routed
        for tree in result.trees.values():
            for node, parent in tree.parent.items():
                if parent >= 0:
                    assert node in graph.adjacency[parent]

    def test_wirelength_positive(self, routed):
        result, _graph = routed
        assert result.wirelength > 0


class TestWidthSensitivity:
    def test_too_narrow_fails(self, placement):
        result, _graph = route_design(placement, ARCH, channel_width=4, max_iterations=12)
        assert not result.success

    def test_wider_channel_routes_faster_or_equal(self, placement):
        narrow, _ = route_design(placement, ARCH, channel_width=48)
        wide, _ = route_design(placement, ARCH, channel_width=96)
        assert wide.success
        assert wide.iterations <= narrow.iterations + 20


class TestDeterminism:
    def test_same_input_same_routing(self, placement):
        a, _ = route_design(placement, ARCH)
        b, _ = route_design(placement, ARCH)
        assert {k: sorted(t.nodes) for k, t in a.trees.items()} == {
            k: sorted(t.nodes) for k, t in b.trees.items()
        }
