"""Tests for the STA reporting extensions (paths, slack, criticality)."""

import pytest

from repro.core.variants import baseline_variant
from repro.netlist.core import BlockType
from repro.vpr.timing import analyze_timing

from .conftest import ARCH


@pytest.fixture(scope="module")
def report(placement, routed):
    result, graph = routed
    return analyze_timing(placement, result, graph, baseline_variant(ARCH).fabric())


class TestCriticalPathTrace:
    def test_path_nonempty_and_ends_at_endpoint(self, report):
        path = report.critical_path_blocks()
        assert path
        assert path[-1] == report.critical_block

    def test_path_starts_at_a_startpoint(self, clustered, report):
        path = report.critical_path_blocks()
        first = clustered.netlist.blocks[path[0]]
        assert first.type in (BlockType.INPUT, BlockType.FF)

    def test_path_follows_real_edges(self, clustered, report):
        netlist = clustered.netlist
        path = report.critical_path_blocks()
        for src, dst in zip(path, path[1:]):
            assert src in netlist.blocks[dst].inputs

    def test_path_arrival_monotone(self, report):
        path = report.critical_path_blocks()
        arrivals = [report.arrival.get(b, 0.0) for b in path[:-1]]
        assert arrivals == sorted(arrivals)

    def test_no_infinite_loop_on_sequential_circuits(self, report):
        # The guard: tracing terminates even with registered feedback.
        assert len(report.critical_path_blocks()) < 10_000


class TestSlack:
    def test_default_period_gives_nonnegative_slack(self, report):
        slacks = report.slacks()
        assert min(slacks.values()) >= -1e-12

    def test_critical_endpoint_has_zero_slack(self, report):
        slacks = report.slacks()
        endpoint_keys = [k for k in slacks if abs(slacks[k]) < 1e-15]
        assert endpoint_keys  # something bottoms out at zero

    def test_longer_period_adds_uniform_slack(self, report):
        base = report.slacks()
        relaxed = report.slacks(period=report.critical_path * 2)
        for key in base:
            assert relaxed[key] == pytest.approx(base[key] + report.critical_path)

    def test_rejects_nonpositive_period(self, report):
        with pytest.raises(ValueError):
            report.slacks(period=0.0)


class TestCriticality:
    def test_values_in_unit_interval(self, report):
        crit = report.net_criticality()
        assert crit
        assert all(0.0 <= v <= 1.0 for v in crit.values())

    def test_covers_all_routed_nets(self, report):
        assert set(report.net_criticality()) == set(report.net_delays)

    def test_some_net_is_noncritical(self, report):
        crit = report.net_criticality()
        assert min(crit.values()) < 0.5
