"""Tests for repro.arch.tile and repro.arch.area."""

import math

import pytest

from repro.arch.area import (
    AreaBreakdown,
    ComponentAreas,
    local_wire_length,
    mwta_area_m2,
    segment_wire_length,
    tile_area,
)
from repro.arch.params import ArchParams, PAPER_ARCH
from repro.arch.tile import build_inventory, grid_size_for
from repro.circuits.ptm import PTM_22NM


@pytest.fixture(scope="module")
def inventory():
    return build_inventory(PAPER_ARCH)


@pytest.fixture(scope="module")
def areas():
    return ComponentAreas(lb_input_buffer=20.0, lb_output_buffer=25.0, wire_buffer=160.0)


class TestInventory:
    def test_luts_and_ffs(self, inventory):
        assert inventory.lut_count == 10
        assert inventory.ff_count == 10

    def test_buffer_counts(self, inventory):
        assert inventory.lb_input_buffers == 22
        assert inventory.lb_output_buffers == 10
        # 2 W / L = 59 wire segments start per tile at W=118, L=4.
        assert inventory.wire_buffers == 59

    def test_cb_switches(self, inventory):
        expected = 22 * PAPER_ARCH.fc_in_abs + 10 * PAPER_ARCH.fc_out_abs
        assert inventory.cb_switches == expected

    def test_sram_bits_track_switches(self, inventory):
        assert inventory.routing_sram_bits == inventory.cb_switches + inventory.sb_switches
        assert inventory.crossbar_sram_bits == inventory.crossbar_switches

    def test_crossbar_full(self, inventory):
        assert inventory.crossbar_switches == 32 * 40

    def test_lut_sram_bits(self, inventory):
        assert inventory.lut_sram_bits == 10 * 16

    def test_routing_buffer_count_collective(self, inventory):
        # The paper's collective term "routing buffers".
        assert inventory.routing_buffer_count == 22 + 10 + 59

    def test_wider_channel_more_routing(self):
        wide = build_inventory(ArchParams(channel_width=236))
        narrow = build_inventory(ArchParams(channel_width=118))
        assert wide.wire_buffers > narrow.wire_buffers
        assert wide.cb_switches > narrow.cb_switches


class TestGridSize:
    def test_exact_square(self):
        assert grid_size_for(PAPER_ARCH, 49) == 7

    def test_rounds_up(self):
        assert grid_size_for(PAPER_ARCH, 50) == 8

    def test_utilization_reserve(self):
        assert grid_size_for(PAPER_ARCH, 49, utilization=0.5) == 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            grid_size_for(PAPER_ARCH, 0)
        with pytest.raises(ValueError):
            grid_size_for(PAPER_ARCH, 10, utilization=0.0)


class TestAreaModel:
    def test_mwta_scales_with_f_squared(self):
        assert mwta_area_m2(45) == pytest.approx(mwta_area_m2(90) / 4.0)

    def test_baseline_no_relays(self, inventory, areas):
        bd = tile_area(inventory, areas, PTM_22NM)
        assert bd.relay_count == 0
        assert bd.footprint_m2 == pytest.approx(bd.cmos_area_m2)
        assert not bd.limited_by_relays

    def test_baseline_pitch_tens_of_microns(self, inventory, areas):
        bd = tile_area(inventory, areas, PTM_22NM)
        assert 10e-6 < bd.tile_pitch_m < 60e-6

    def test_relay_variant_moves_switches_off_cmos(self, inventory, areas):
        base = tile_area(inventory, areas, PTM_22NM)
        nem = tile_area(
            inventory, areas, PTM_22NM, switches_are_relays=True, crossbar_is_relays=True
        )
        assert nem.relay_count == inventory.routing_switches + inventory.crossbar_switches
        assert nem.cmos_mwta < base.cmos_mwta
        assert "routing_srams" not in nem.cmos_by_component

    def test_buffer_removal_shrinks_cmos(self, inventory, areas):
        kept = tile_area(inventory, areas, PTM_22NM, switches_are_relays=True, crossbar_is_relays=True)
        removed = tile_area(
            inventory, areas, PTM_22NM,
            switches_are_relays=True, crossbar_is_relays=True,
            include_lb_input_buffers=False, include_lb_output_buffers=False,
        )
        assert removed.cmos_mwta < kept.cmos_mwta

    def test_stacked_footprint_is_max(self, inventory, areas):
        nem = tile_area(
            inventory, areas, PTM_22NM, switches_are_relays=True, crossbar_is_relays=True,
            include_lb_input_buffers=False, include_lb_output_buffers=False,
        )
        assert nem.footprint_m2 == pytest.approx(max(nem.cmos_area_m2, nem.relay_area_m2))

    def test_paper_area_reduction_about_2x(self, inventory, areas):
        """The stacking claim: CMOS-NEM footprint ~ half the baseline."""
        base = tile_area(inventory, areas, PTM_22NM)
        nem = tile_area(
            inventory, areas, PTM_22NM, switches_are_relays=True, crossbar_is_relays=True,
            include_lb_input_buffers=False, include_lb_output_buffers=False,
        )
        ratio = base.footprint_m2 / nem.footprint_m2
        assert 1.6 < ratio < 3.0

    def test_pitch_is_sqrt_area(self, inventory, areas):
        bd = tile_area(inventory, areas, PTM_22NM)
        assert bd.tile_pitch_m == pytest.approx(math.sqrt(bd.footprint_m2))


class TestWireLengths:
    def test_segment_spans_l_tiles(self):
        assert segment_wire_length(PAPER_ARCH, 30e-6) == pytest.approx(120e-6)

    def test_local_wire_half_pitch(self):
        assert local_wire_length(PAPER_ARCH, 30e-6) == pytest.approx(15e-6)

    def test_rejects_nonpositive_pitch(self):
        with pytest.raises(ValueError):
            segment_wire_length(PAPER_ARCH, 0.0)
        with pytest.raises(ValueError):
            local_wire_length(PAPER_ARCH, -1.0)
