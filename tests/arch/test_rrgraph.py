"""Tests for repro.arch.rrgraph."""

from collections import Counter

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import NodeKind, RRGraph


@pytest.fixture(scope="module")
def graph():
    return RRGraph(ArchParams(channel_width=16), nx=4, ny=4)


class TestStructure:
    def test_every_tile_has_source_sink(self, graph):
        assert len(graph.source_of) == 16
        assert len(graph.sink_of) == 16

    def test_pin_counts(self, graph):
        counts = Counter(node.kind for node in graph.nodes)
        p = graph.params
        assert counts[NodeKind.OPIN] == 16 * p.outputs_per_lb
        assert counts[NodeKind.IPIN] == 16 * p.inputs_per_lb

    def test_wire_counts_cover_channels(self, graph):
        counts = graph.describe()
        # 5 horizontal channels x 16 tracks (segmented) and same vertical.
        assert counts["hwire"] >= 5 * 16
        assert counts["vwire"] >= 5 * 16

    def test_segment_spans_bounded_by_l(self, graph):
        for node in graph.wire_nodes():
            assert 1 <= node.span <= graph.params.segment_length

    def test_segments_tile_channel_exactly(self, graph):
        """Per (channel, track) the segments partition the extent."""
        spans = Counter()
        for node in graph.nodes:
            if node.kind is NodeKind.HWIRE:
                spans[(node.y, node.track)] += node.span
        for total in spans.values():
            assert total == graph.nx

    def test_stagger_varies_with_track(self, graph):
        starts = {}
        for node in graph.nodes:
            if node.kind is NodeKind.HWIRE and node.y == 2:
                starts.setdefault(node.track, []).append(node.x)
        # Tracks with different (track % L) start their joints at
        # different offsets.
        assert starts[0] != starts[1]


class TestConnectivity:
    def test_source_reaches_opins_only(self, graph):
        for tile, source in graph.source_of.items():
            for dst in graph.adjacency[source]:
                assert graph.nodes[dst].kind is NodeKind.OPIN
                assert (graph.nodes[dst].x, graph.nodes[dst].y) == tile

    def test_ipins_reach_sink(self, graph):
        for node in graph.nodes:
            if node.kind is NodeKind.IPIN:
                sink = graph.sink_of[(node.x, node.y)]
                assert sink in graph.adjacency[node.id]

    def test_opins_drive_wires(self, graph):
        for node in graph.nodes:
            if node.kind is NodeKind.OPIN:
                assert graph.adjacency[node.id], "OPIN with no wire taps"
                for dst in graph.adjacency[node.id]:
                    assert graph.nodes[dst].kind in (NodeKind.HWIRE, NodeKind.VWIRE)

    def test_wire_wire_edges_bidirectional(self, graph):
        for node in graph.wire_nodes():
            for dst in graph.adjacency[node.id]:
                if graph.nodes[dst].kind in (NodeKind.HWIRE, NodeKind.VWIRE):
                    assert node.id in graph.adjacency[dst]

    def test_all_sinks_reachable_from_any_source(self, graph):
        """BFS over the whole graph: routability precondition."""
        from collections import deque

        source = graph.source_of[(0, 0)]
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in graph.adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        for tile, sink in graph.sink_of.items():
            if tile != (0, 0):
                assert sink in seen, f"sink of {tile} unreachable"

    def test_every_track_reachable_from_some_pin(self, graph):
        """Regression for the stride-aligned Fc pattern bug: every
        track of an interior channel must be tappable by some IPIN."""
        tapped = set()
        for node in graph.nodes:
            if node.kind in (NodeKind.HWIRE, NodeKind.VWIRE):
                for dst in graph.adjacency[node.id]:
                    if graph.nodes[dst].kind is NodeKind.IPIN:
                        tapped.add((node.kind, node.track))
        for track in range(graph.params.channel_width):
            assert (NodeKind.HWIRE, track) in tapped


class TestCostsAndCaps:
    def test_wire_base_cost_scales_with_span(self, graph):
        for node in graph.wire_nodes():
            assert graph.base_cost(node) == pytest.approx(float(node.span))

    def test_source_sink_unbounded(self, graph):
        for node in graph.nodes:
            if node.kind in (NodeKind.SOURCE, NodeKind.SINK):
                assert graph.node_capacity(node) > 1e6
            else:
                assert graph.node_capacity(node) == 1

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            RRGraph(ArchParams(channel_width=8), 0, 3)
