"""Tests for the unidirectional (single-driver) routing option."""

from collections import deque

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import NodeKind, RRGraph

UNIDIR = ArchParams(channel_width=24, directionality="unidir")


@pytest.fixture(scope="module")
def graph():
    return RRGraph(UNIDIR, 5, 5)


class TestParams:
    def test_directionality_validated(self):
        with pytest.raises(ValueError):
            ArchParams(directionality="diagonal")

    def test_default_is_bidir(self):
        assert ArchParams().directionality == "bidir"


class TestStructure:
    def test_every_wire_directed(self, graph):
        for node in graph.wire_nodes():
            assert node.direction in (1, -1)

    def test_directions_alternate_by_track(self, graph):
        for node in graph.wire_nodes():
            expected = 1 if node.track % 2 == 0 else -1
            assert node.direction == expected

    def test_bidir_wires_undirected(self):
        bidir = RRGraph(ArchParams(channel_width=16), 3, 3)
        assert all(n.direction == 0 for n in bidir.wire_nodes())

    def test_wire_edges_enter_targets_at_their_start(self, graph):
        """Every wire-wire edge lands on the target's driven end."""
        for node in graph.wire_nodes():
            for dst in graph.adjacency[node.id]:
                target = graph.nodes[dst]
                if target.kind not in (NodeKind.HWIRE, NodeKind.VWIRE):
                    continue
                vertical = target.kind is NodeKind.VWIRE
                start = target.y if vertical else target.x
                entry = start if target.direction > 0 else start + target.span
                src_chan = node.x if node.kind is NodeKind.VWIRE else node.y
                src_start = node.y if node.kind is NodeKind.VWIRE else node.x
                exit_corner = src_start + node.span if node.direction > 0 else src_start
                if target.kind == node.kind:
                    assert entry == exit_corner  # collinear continuation
                # (crossing edges verified by the corner bookkeeping)

    def test_no_reverse_wire_edges(self, graph):
        """Unidirectional edges are not symmetric (unlike bidir)."""
        asymmetric = 0
        for node in graph.wire_nodes():
            for dst in graph.adjacency[node.id]:
                if graph.nodes[dst].kind in (NodeKind.HWIRE, NodeKind.VWIRE):
                    if node.id not in graph.adjacency[dst]:
                        asymmetric += 1
        assert asymmetric > 0


class TestConnectivity:
    def test_all_pairs_reachable(self, graph):
        """The regression for the diagonal-flow decomposition bugs:
        every source must reach every sink (all four turn combinations
        exist)."""
        for tile, src in graph.source_of.items():
            seen = {src}
            queue = deque([src])
            while queue:
                u = queue.popleft()
                for v in graph.adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        queue.append(v)
            for sink_tile, sink in graph.sink_of.items():
                if sink_tile != tile:
                    assert sink in seen, f"{tile} cannot reach {sink_tile}"

    def test_opins_have_taps(self, graph):
        for node in graph.nodes:
            if node.kind is NodeKind.OPIN:
                assert graph.adjacency[node.id], f"OPIN {node.id} tapless"


class TestRouting:
    def test_circuit_routes_on_unidir_fabric(self):
        from repro.netlist.generate import GeneratorParams, generate
        from repro.vpr.flow import run_flow

        netlist = generate(GeneratorParams("uni", num_luts=80, seed=3))
        params = ArchParams(channel_width=80, directionality="unidir")
        flow = run_flow(netlist, params)
        assert flow.success

    def test_unidir_needs_more_tracks_than_bidir(self):
        """Directional wires halve each track's usefulness: Wmin is
        roughly doubled relative to the bidirectional fabric (the
        classic single-driver trade-off)."""
        from repro.netlist.generate import GeneratorParams, generate
        from repro.vpr.flow import find_min_channel_width
        from repro.vpr.pack import pack
        from repro.vpr.place import place

        netlist = generate(GeneratorParams("cmp", num_luts=60, seed=5))
        wmins = {}
        for mode in ("bidir", "unidir"):
            params = ArchParams(channel_width=48, directionality=mode)
            clustered = pack(netlist, params)
            placement = place(clustered, seed=1)
            wmin, _res, _g = find_min_channel_width(placement, params, start=8)
            wmins[mode] = wmin
        assert wmins["unidir"] > wmins["bidir"]
        assert wmins["unidir"] < 4 * wmins["bidir"]
