"""Tests for repro.arch.params (Table 1)."""

import pytest

from repro.arch.params import ArchParams, PAPER_ARCH


class TestTable1:
    """The exact parameter values of paper Table 1."""

    def test_n_is_10(self):
        assert PAPER_ARCH.n == 10

    def test_k_is_4(self):
        assert PAPER_ARCH.k == 4

    def test_segment_length_is_4(self):
        assert PAPER_ARCH.segment_length == 4

    def test_fcin_is_0p2(self):
        assert PAPER_ARCH.fc_in == pytest.approx(0.2)

    def test_fcout_is_0p1(self):
        assert PAPER_ARCH.fc_out == pytest.approx(0.1)

    def test_fs_is_3(self):
        assert PAPER_ARCH.fs == 3

    def test_paper_channel_width_118(self):
        # Sec. 3.3: W = 118 after the +20% low-stress margin.
        assert PAPER_ARCH.channel_width == 118


class TestDerived:
    def test_cluster_input_rule(self):
        # I = K/2 (N+1) = 22 for K=4, N=10 [Betz 99].
        assert PAPER_ARCH.inputs_per_lb == 22

    def test_outputs_equal_n(self):
        assert PAPER_ARCH.outputs_per_lb == 10

    def test_fc_abs_values(self):
        assert PAPER_ARCH.fc_in_abs == round(0.2 * 118)
        assert PAPER_ARCH.fc_out_abs == round(0.1 * 118)

    def test_fc_abs_at_least_one(self):
        tiny = ArchParams(fc_out=0.01, channel_width=10)
        assert tiny.fc_out_abs == 1

    def test_crossbar_shape(self):
        # Full crossbar: (I + N) inputs x (N K) outputs (Fig. 7b).
        assert PAPER_ARCH.crossbar_inputs == 32
        assert PAPER_ARCH.crossbar_outputs == 40

    def test_lb_inputs_override(self):
        p = ArchParams(lb_inputs=18)
        assert p.inputs_per_lb == 18

    def test_with_channel_width(self):
        p = PAPER_ARCH.with_channel_width(60)
        assert p.channel_width == 60
        assert p.n == PAPER_ARCH.n


class TestValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            ArchParams(n=0)

    def test_rejects_bad_fc(self):
        with pytest.raises(ValueError):
            ArchParams(fc_in=0.0)
        with pytest.raises(ValueError):
            ArchParams(fc_out=1.5)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ArchParams(channel_width=1)

    def test_rejects_bad_fs(self):
        with pytest.raises(ValueError):
            ArchParams(fs=0)
