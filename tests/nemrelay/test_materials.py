"""Tests for repro.nemrelay.materials."""

import pytest

from repro.nemrelay.materials import (
    AIR,
    AMBIENTS,
    Ambient,
    EPSILON_0,
    MATERIALS,
    Material,
    OIL,
    POLYSILICON,
    POLY_PLATINUM,
    VACUUM,
)


class TestMaterial:
    def test_polysilicon_modulus(self):
        assert POLYSILICON.youngs_modulus == pytest.approx(160e9)

    def test_composite_is_softer_than_polysilicon(self):
        # The calibrated composite beam must be softer, or the measured
        # 6.2 V pull-in could not be reproduced at the paper geometry.
        assert POLY_PLATINUM.youngs_modulus < POLYSILICON.youngs_modulus

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            Material(name="bad", youngs_modulus=0.0, density=1000.0)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ValueError):
            Material(name="bad", youngs_modulus=1e9, density=-1.0)

    def test_registry_contains_all_materials(self):
        assert "polysilicon" in MATERIALS
        assert MATERIALS["poly-platinum"] is POLY_PLATINUM


class TestAmbient:
    def test_vacuum_permittivity_is_epsilon0(self):
        assert VACUUM.permittivity == pytest.approx(EPSILON_0)

    def test_oil_raises_permittivity(self):
        # [Lee 09]: oil's higher permittivity lowers switching voltages.
        assert OIL.permittivity > AIR.permittivity

    def test_oil_is_heavily_damped(self):
        assert OIL.damping_quality_factor < 1.0

    def test_rejects_subunity_permittivity(self):
        with pytest.raises(ValueError):
            Ambient(name="bad", relative_permittivity=0.5, damping_quality_factor=1.0)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(ValueError):
            Ambient(name="bad", relative_permittivity=1.0, damping_quality_factor=0.0)

    def test_registry(self):
        assert set(AMBIENTS) == {"vacuum", "air", "oil", "nitrogen"}
