"""Tests for repro.nemrelay.reliability."""

import math

import pytest

from repro.nemrelay.reliability import (
    ArrayReliability,
    StictionModel,
    WeibullEndurance,
    paper_scale_report,
)


class TestWeibull:
    def test_survival_at_eta_is_e_inverse(self):
        model = WeibullEndurance(eta=1e9, beta=2.0)
        assert model.survival(1e9) == pytest.approx(math.exp(-1))

    def test_survival_monotone_decreasing(self):
        model = WeibullEndurance()
        values = [model.survival(n) for n in (0, 1e6, 1e8, 1e9, 1e10)]
        assert values[0] == 1.0
        assert values == sorted(values, reverse=True)

    def test_cycles_at_survival_inverts(self):
        model = WeibullEndurance(eta=1e9, beta=1.6)
        n = model.cycles_at_survival(0.999)
        assert model.survival(n) == pytest.approx(0.999, rel=1e-9)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WeibullEndurance(eta=0.0)
        with pytest.raises(ValueError):
            WeibullEndurance().survival(-1.0)
        with pytest.raises(ValueError):
            WeibullEndurance().cycles_at_survival(1.5)


class TestStiction:
    def test_zero_probability_never_fails(self):
        assert StictionModel(p_stick=0.0).survival(1e12) == 1.0

    def test_survival_compounds(self):
        model = StictionModel(p_stick=1e-6)
        assert model.survival(1e6) == pytest.approx(math.exp(-1), rel=0.01)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            StictionModel(p_stick=1.0)


class TestArray:
    def test_fabric_survival_below_device(self):
        array = ArrayReliability(num_relays=1000)
        cycles = 1e7
        assert array.fabric_survival(cycles) < array.device_survival(cycles)

    def test_spares_improve_survival(self):
        # At 2e7 cycles the mean failure count (~2.2k of 100k) sits
        # inside a 5% spare budget: bare fabric dead, spared fine.
        bare = ArrayReliability(num_relays=100_000)
        spared = ArrayReliability(num_relays=100_000, spare_fraction=0.05)
        cycles = 2e7
        assert bare.fabric_survival(cycles) < 0.01
        assert spared.fabric_survival(cycles) > 0.95

    def test_more_relays_worse_survival(self):
        small = ArrayReliability(num_relays=1000)
        large = ArrayReliability(num_relays=1_000_000)
        cycles = 1e7
        assert large.fabric_survival(cycles) < small.fabric_survival(cycles)

    def test_reconfig_budget_at_paper_scale_needs_spares(self):
        # Bare 7.6M-relay fabric at 1e-9 stiction: stiction-limited,
        # essentially no reconfiguration budget at 99% yield...
        bare = ArrayReliability(num_relays=7_600_000)
        assert bare.reconfigurations_at_survival(0.99) < 500
        # ...but a 0.01% spare budget restores far more than the ~500
        # lifetime reconfigurations FPGAs see [Kuon 07].
        spared = ArrayReliability(num_relays=7_600_000, spare_fraction=1e-4)
        assert spared.reconfigurations_at_survival(0.99) > 500

    def test_budget_inverts_survival(self):
        array = ArrayReliability(num_relays=10_000)
        budget = array.reconfigurations_at_survival(0.99)
        assert array.fabric_survival(2 * budget) >= 0.99
        assert array.fabric_survival(2 * (budget + 1)) < 0.99

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ArrayReliability(num_relays=0)
        with pytest.raises(ValueError):
            ArrayReliability(num_relays=10, spare_fraction=1.0)


class TestPaperScaleReport:
    def test_quantified_sec1_argument(self):
        report = paper_scale_report()
        assert report["cycles_per_relay"] == 1000.0
        # Per-device endurance is overwhelming at FPGA actuation counts.
        assert report["device_survival"] > 1.0 - 2e-6
        # But a bare million-relay fabric is stiction-limited...
        assert report["bare_fabric_survival"] < 0.5
        # ...and a 0.01% spare budget (or ~1e-12 stiction) fixes it —
        # the paper's future-work call for consistent contacts, in
        # numbers.
        assert report["spared_fabric_survival"] > 0.99
        assert report["spared_max_reconfigs_99pct"] > 500
        assert report["required_p_stick_bare_99pct"] < 1e-11

    def test_required_stiction_inverts(self):
        from repro.nemrelay.reliability import StictionModel, required_stiction

        p = required_stiction(10_000, 1000, target=0.99)
        fabric = ArrayReliability(
            num_relays=10_000,
            stiction=StictionModel(p_stick=p * 0.999),
            endurance=WeibullEndurance(eta=1e18),  # isolate stiction
        )
        assert fabric.fabric_survival(1000) >= 0.99
