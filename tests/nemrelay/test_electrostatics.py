"""Tests for repro.nemrelay.electrostatics (incl. paper anchors)."""

import math

import pytest

from repro.nemrelay.electrostatics import (
    ActuationModel,
    actuation_area,
    effective_spring_constant,
    electrostatic_force,
    hysteresis_window,
    pull_in_voltage,
    pull_out_voltage,
)
from repro.nemrelay.geometry import BeamGeometry, FABRICATED_DEVICE, SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, OIL, POLYSILICON, POLY_PLATINUM


class TestPaperAnchors:
    """The two device design points the paper reports."""

    def test_fabricated_vpi_matches_measured_6p2_volts(self):
        vpi = pull_in_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        assert vpi == pytest.approx(6.2, abs=0.05)

    def test_fabricated_vpo_above_measured_band(self):
        # The paper: analytic Vpo overestimates the measured 2-3.4 V
        # because surface forces are neglected.
        vpo = pull_out_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        assert 3.4 < vpo < 6.2

    def test_scaled_device_is_cmos_compatible(self):
        # Paper Sec. 2.1: ~1 V operation through scaling (Fig. 11 dims).
        vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        assert 0.8 < vpi < 1.3

    def test_scaled_device_hysteresis_exists(self):
        vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        vpo = pull_out_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        assert 0 < vpo < vpi


class TestClosedForms:
    def test_vpi_scaling_exponents(self):
        """Vpi = sqrt(16 E h^3 g0^3 / (81 eps L^4)) term by term."""
        base = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        g = SCALED_22NM_DEVICE
        # Doubling h multiplies Vpi by 2^1.5.
        g_h = BeamGeometry(g.length, 2 * g.thickness, g.gap, g.contact_gap, width=g.width)
        assert pull_in_voltage(POLYSILICON, g_h, AIR) == pytest.approx(base * 2**1.5, rel=1e-9)
        # Doubling L divides Vpi by 4.
        g_l = BeamGeometry(2 * g.length, g.thickness, g.gap, g.contact_gap, width=g.width)
        assert pull_in_voltage(POLYSILICON, g_l, AIR) == pytest.approx(base / 4.0, rel=1e-9)
        # Doubling g0 (and gmin to keep validity) multiplies by 2^1.5.
        g_g = BeamGeometry(g.length, g.thickness, 2 * g.gap, 2 * g.contact_gap, width=g.width)
        assert pull_in_voltage(POLYSILICON, g_g, AIR) == pytest.approx(base * 2**1.5, rel=1e-9)

    def test_vpi_from_lumped_model_consistency(self):
        """The closed form equals sqrt(8 k g0^3 / (27 eps A)) with the
        module's k_eff and plate area — one lumped model throughout."""
        k = effective_spring_constant(POLYSILICON, SCALED_22NM_DEVICE)
        area = actuation_area(SCALED_22NM_DEVICE)
        g0 = SCALED_22NM_DEVICE.gap
        lumped = math.sqrt(8.0 * k * g0**3 / (27.0 * AIR.permittivity * area))
        closed = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        assert closed == pytest.approx(lumped, rel=1e-9)

    def test_oil_lowers_vpi(self):
        # [Lee 09]: larger permittivity reduces switching voltages.
        v_air = pull_in_voltage(POLY_PLATINUM, FABRICATED_DEVICE, AIR)
        v_oil = pull_in_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        assert v_oil < v_air
        assert v_oil == pytest.approx(v_air / math.sqrt(OIL.relative_permittivity), rel=1e-3)

    def test_adhesion_reduces_vpo(self):
        clean = pull_out_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        sticky = pull_out_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL, adhesion_force=2e-8)
        assert sticky < clean

    def test_stiction_failure_returns_zero(self):
        # Adhesion beyond the spring restoring force: permanently stuck.
        huge = pull_out_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL, adhesion_force=1.0)
        assert huge == 0.0

    def test_negative_adhesion_rejected(self):
        with pytest.raises(ValueError):
            pull_out_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL, adhesion_force=-1e-9)

    def test_hysteresis_window_positive(self):
        assert hysteresis_window(POLYSILICON, SCALED_22NM_DEVICE, AIR) > 0

    def test_electrostatic_force_quadratic_in_voltage(self):
        f1 = electrostatic_force(1.0, 1e-7, 1e-12, 8.85e-12)
        f2 = electrostatic_force(2.0, 1e-7, 1e-12, 8.85e-12)
        assert f2 == pytest.approx(4 * f1)

    def test_electrostatic_force_rejects_closed_gap(self):
        with pytest.raises(ValueError):
            electrostatic_force(1.0, 0.0, 1e-12, 8.85e-12)


class TestActuationModel:
    @pytest.fixture
    def model(self):
        return ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)

    def test_equilibrium_zero_voltage(self, model):
        assert model.equilibrium_gap(0.0) == pytest.approx(0.0)

    def test_equilibrium_below_pull_in_is_stable_and_small(self, model):
        x = model.equilibrium_gap(0.8 * model.pull_in)
        assert x is not None
        assert 0 < x <= SCALED_22NM_DEVICE.gap / 3.0 + 1e-12

    def test_equilibrium_above_pull_in_is_none(self, model):
        assert model.equilibrium_gap(1.1 * model.pull_in) is None

    def test_equilibrium_monotone_in_voltage(self, model):
        xs = [model.equilibrium_gap(f * model.pull_in) for f in (0.2, 0.5, 0.8, 0.95)]
        assert all(x is not None for x in xs)
        assert xs == sorted(xs)

    def test_equilibrium_force_balance(self, model):
        v = 0.7 * model.pull_in
        x = model.equilibrium_gap(v)
        assert abs(model.net_force(x, v)) < 1e-12

    def test_is_held_tracks_pull_out(self, model):
        assert model.is_held(1.01 * model.pull_out)
        assert not model.is_held(0.99 * model.pull_out)

    def test_net_force_rejects_out_of_range_displacement(self, model):
        with pytest.raises(ValueError):
            model.net_force(SCALED_22NM_DEVICE.gap, 1.0)

    def test_polarity_symmetry(self, model):
        # Electrostatic force is attractive for either gate polarity.
        assert model.equilibrium_gap(-0.5 * model.pull_in) == pytest.approx(
            model.equilibrium_gap(0.5 * model.pull_in)
        )
