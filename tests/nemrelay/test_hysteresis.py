"""Tests for repro.nemrelay.hysteresis (Fig. 2b I-V sweeps)."""

import pytest

from repro.nemrelay.hysteresis import (
    COMPLIANCE_A,
    NOISE_FLOOR_A,
    repeated_sweeps,
    sweep_iv,
    triangle_sweep,
)
from repro.nemrelay.device import fabricated_relay, scaled_relay


class TestTriangleSweep:
    def test_shape(self):
        values = triangle_sweep(4.0, steps=5)
        assert values == [0.0, 1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0, 0.0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            triangle_sweep(0.0, 10)
        with pytest.raises(ValueError):
            triangle_sweep(1.0, 1)


class TestSweepIV:
    @pytest.fixture
    def curve(self):
        return sweep_iv(fabricated_relay())

    def test_observes_pull_in_near_6p2(self, curve):
        assert curve.pull_in_observed == pytest.approx(6.2, abs=0.1)

    def test_observes_pull_out_below_pull_in(self, curve):
        assert curve.pull_out_observed is not None
        assert curve.pull_out_observed < curve.pull_in_observed

    def test_hysteresis_window_positive(self, curve):
        assert curve.hysteresis_window > 0

    def test_off_current_pinned_at_noise_floor(self, curve):
        # Fig. 2b: zero leakage = below the 10 pA noise floor.
        off_points = [p for p in curve.points if not p.state.value == "pulled-in"]
        assert off_points
        assert all(p.ids == pytest.approx(NOISE_FLOOR_A) for p in off_points)

    def test_on_current_hits_compliance(self, curve):
        # Ron = 100k, Vds = 0.1 V -> 1 uA, clipped at 100 nA compliance.
        on_points = [p for p in curve.points if p.state.value == "pulled-in"]
        assert on_points
        assert max(p.ids for p in on_points) == pytest.approx(COMPLIANCE_A)

    def test_up_down_branches_partition_points(self, curve):
        assert len(curve.up_branch()) + len(curve.down_branch()) == len(curve.points)

    def test_branch_asymmetry_is_the_hysteresis(self, curve):
        """At a voltage inside the window, the up branch reads off and
        the down branch reads on — the defining loop of Fig. 2b."""
        mid = 0.5 * (curve.pull_in_observed + curve.pull_out_observed)
        up_state = [p for p in curve.up_branch() if abs(p.vgs - mid) < 0.2]
        down_state = [p for p in curve.down_branch() if abs(p.vgs - mid) < 0.2]
        assert any(p.ids == pytest.approx(NOISE_FLOOR_A) for p in up_state)
        assert any(p.ids > 10 * NOISE_FLOOR_A for p in down_state)

    def test_custom_sweep_without_pull_in(self):
        relay = scaled_relay()
        curve = sweep_iv(relay, vgs_values=[0.0, 0.2, 0.4, 0.2, 0.0])
        assert curve.pull_in_observed is None
        assert curve.hysteresis_window is None


class TestRepeatedSweeps:
    def test_multiple_cycles_consistent(self):
        # Fig. 2b overlays multiple pull-in/pull-out cycles.
        relay = fabricated_relay()
        curves = repeated_sweeps(relay, cycles=3)
        assert len(curves) == 3
        vpis = [c.pull_in_observed for c in curves]
        assert all(v == pytest.approx(vpis[0]) for v in vpis)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            repeated_sweeps(fabricated_relay(), cycles=0)
