"""Tests for repro.nemrelay.scaling (Fig. 11 / ~1 V scaling claim)."""

import pytest

from repro.nemrelay.geometry import FABRICATED_DEVICE, SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, OIL, POLYSILICON, POLY_PLATINUM
from repro.nemrelay.electrostatics import pull_in_voltage
from repro.nemrelay.scaling import (
    isomorphic_vpi_scaling_exponent,
    node_device,
    scale_to_pull_in,
    scaling_table,
)


class TestScaleToPullIn:
    def test_hits_target_exactly(self):
        geom = scale_to_pull_in(FABRICATED_DEVICE, POLY_PLATINUM, OIL, target_vpi=1.0)
        assert pull_in_voltage(POLY_PLATINUM, geom, OIL) == pytest.approx(1.0, rel=1e-9)

    def test_scaling_down_shrinks_dimensions(self):
        geom = scale_to_pull_in(FABRICATED_DEVICE, POLY_PLATINUM, OIL, target_vpi=1.0)
        assert geom.length < FABRICATED_DEVICE.length

    def test_exponent_is_linear(self):
        assert isomorphic_vpi_scaling_exponent() == pytest.approx(1.0)
        base = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        doubled = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE.scaled(2.0), AIR)
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            scale_to_pull_in(FABRICATED_DEVICE, POLY_PLATINUM, OIL, target_vpi=0.0)


class TestNodeDevices:
    def test_22nm_is_paper_fig11_device(self):
        dev = node_device(22)
        assert dev.geometry == SCALED_22NM_DEVICE
        assert 0.8 < dev.vpi < 1.3

    def test_coarser_nodes_need_higher_voltage(self):
        vpis = [node_device(n).vpi for n in (45, 32, 22, 16)]
        assert vpis == sorted(vpis, reverse=True)

    def test_all_nodes_hysteretic(self):
        for n in (45, 32, 22, 16, 14):
            dev = node_device(n)
            assert 0 < dev.vpo < dev.vpi

    def test_unsupported_node_rejected(self):
        with pytest.raises(ValueError):
            node_device(7)

    def test_scaling_table_complete(self):
        table = scaling_table()
        assert set(table) == {45, 32, 22, 16, 14}
        for row in table.values():
            assert row["vpo_v"] < row["vpi_v"]
            assert row["length_nm"] > row["thickness_nm"]

    def test_table_22nm_dimensions(self):
        row = scaling_table()[22]
        assert row["length_nm"] == pytest.approx(275.0)
        assert row["thickness_nm"] == pytest.approx(11.0)
        assert row["gap_nm"] == pytest.approx(11.0)
        assert row["contact_gap_nm"] == pytest.approx(3.6)
