"""Tests for repro.nemrelay.thermal."""

import pytest

from repro.crossbar.halfselect import solve_voltages
from repro.nemrelay.electrostatics import pull_in_voltage, pull_out_voltage
from repro.nemrelay.geometry import SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, POLYSILICON
from repro.nemrelay.thermal import (
    ROOM_TEMPERATURE_K,
    ThermalModel,
    max_hold_temperature,
    vpi_at,
    vpo_at,
)


class TestThermalScaling:
    def test_reference_temperature_is_identity(self):
        vpi = vpi_at(POLYSILICON, SCALED_22NM_DEVICE, AIR, ROOM_TEMPERATURE_K)
        assert vpi == pytest.approx(
            pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR), rel=1e-12
        )

    def test_vpi_falls_with_temperature(self):
        temps = (300.0, 400.0, 600.0, 800.0)
        vpis = [vpi_at(POLYSILICON, SCALED_22NM_DEVICE, AIR, t) for t in temps]
        assert vpis == sorted(vpis, reverse=True)

    def test_window_narrows_with_temperature(self):
        def window(t):
            return vpi_at(POLYSILICON, SCALED_22NM_DEVICE, AIR, t) - vpo_at(
                POLYSILICON, SCALED_22NM_DEVICE, AIR, t
            )

        assert window(600.0) < window(300.0)

    def test_hysteresis_survives_500c(self):
        # [Wang 11]: NEMS reconfigurable computing above 500 C; the
        # device keeps a positive window there.
        t = 273.15 + 500.0
        assert 0 < vpo_at(POLYSILICON, SCALED_22NM_DEVICE, AIR, t) < vpi_at(
            POLYSILICON, SCALED_22NM_DEVICE, AIR, t
        )

    def test_beyond_linear_model_rejected(self):
        model = ThermalModel()
        with pytest.raises(ValueError):
            model.modulus_scale(300.0 + 1.0 / model.softening_per_k + 10.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel(softening_per_k=-1e-6)


class TestHoldTemperature:
    @pytest.fixture(scope="class")
    def room_point(self):
        vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        vpo = pull_out_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        return solve_voltages([vpi], [vpo])

    def test_room_point_valid_at_reference(self, room_point):
        t_max = max_hold_temperature(
            POLYSILICON, SCALED_22NM_DEVICE, AIR,
            room_point.v_hold, room_point.v_select,
        )
        assert t_max > ROOM_TEMPERATURE_K

    def test_tight_point_fails_sooner(self, room_point):
        """A programming point with slimmer margins loses validity at a
        lower temperature."""
        vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        comfortable = max_hold_temperature(
            POLYSILICON, SCALED_22NM_DEVICE, AIR,
            room_point.v_hold, room_point.v_select,
        )
        # Half-select pushed right under Vpi at room temperature: any
        # softening flips it to a disturb.
        tight_select = vpi - room_point.v_hold - 0.001
        tight = max_hold_temperature(
            POLYSILICON, SCALED_22NM_DEVICE, AIR,
            room_point.v_hold, tight_select,
        )
        assert tight < comfortable

    def test_invalid_room_point_rejected(self):
        with pytest.raises(ValueError):
            max_hold_temperature(
                POLYSILICON, SCALED_22NM_DEVICE, AIR, v_hold=0.1, v_select=0.01
            )
