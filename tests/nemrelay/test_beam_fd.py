"""Tests for repro.nemrelay.beam_fd (distributed-model validation)."""

import pytest

from repro.nemrelay.beam_fd import (
    pull_in_voltage_fd,
    solve_deflection,
    tip_compliance_fd,
)
from repro.nemrelay.electrostatics import pull_in_voltage
from repro.nemrelay.geometry import FABRICATED_DEVICE, SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, OIL, POLYSILICON, POLY_PLATINUM


class TestOperator:
    def test_uniform_load_compliance_matches_analytic(self):
        """Tip = q L^4 / (8 E I) for a uniformly loaded cantilever."""
        g = SCALED_22NM_DEVICE
        rigidity = POLYSILICON.youngs_modulus * g.width * g.thickness**3 / 12.0
        analytic = g.length**4 / (8.0 * rigidity)
        fd = tip_compliance_fd(POLYSILICON, g)
        assert fd == pytest.approx(analytic, rel=0.05)

    def test_finer_grid_converges_to_analytic(self):
        g = SCALED_22NM_DEVICE
        rigidity = POLYSILICON.youngs_modulus * g.width * g.thickness**3 / 12.0
        analytic = g.length**4 / (8.0 * rigidity)
        coarse = abs(tip_compliance_fd(POLYSILICON, g, nodes=20) - analytic)
        fine = abs(tip_compliance_fd(POLYSILICON, g, nodes=120) - analytic)
        assert fine < coarse

    def test_node_minimum(self):
        with pytest.raises(ValueError):
            solve_deflection(POLYSILICON, SCALED_22NM_DEVICE, AIR, 0.1, nodes=4)


class TestDeflectionProfiles:
    def test_below_pull_in_converges(self):
        v = 0.7 * pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        sol = solve_deflection(POLYSILICON, SCALED_22NM_DEVICE, AIR, v)
        assert sol.converged
        assert sol.tip_deflection > 0

    def test_profile_monotone_toward_tip(self):
        v = 0.6 * pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        sol = solve_deflection(POLYSILICON, SCALED_22NM_DEVICE, AIR, v)
        pairs = zip(sol.deflections, sol.deflections[1:])
        assert all(b >= a - 1e-18 for a, b in pairs)

    def test_deflection_grows_with_voltage(self):
        vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        tips = [
            solve_deflection(POLYSILICON, SCALED_22NM_DEVICE, AIR, f * vpi).tip_deflection
            for f in (0.3, 0.5, 0.7)
        ]
        assert tips == sorted(tips)

    def test_far_above_pull_in_diverges(self):
        v = 2.5 * pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        sol = solve_deflection(POLYSILICON, SCALED_22NM_DEVICE, AIR, v)
        assert not sol.converged


class TestPullInValidation:
    """The distributed solution bounds the lumped closed form."""

    def test_scaled_device_ratio(self):
        fd = pull_in_voltage_fd(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        lumped = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
        assert 1.0 < fd / lumped < 1.35

    def test_fabricated_device_ratio(self):
        fd = pull_in_voltage_fd(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        lumped = pull_in_voltage(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        assert 1.0 < fd / lumped < 1.35

    def test_ratio_geometry_independent(self):
        """The lumped/distributed discrepancy is a model constant, so
        calibrations transfer across geometries."""
        r1 = pull_in_voltage_fd(POLYSILICON, SCALED_22NM_DEVICE, AIR) / pull_in_voltage(
            POLYSILICON, SCALED_22NM_DEVICE, AIR
        )
        r2 = pull_in_voltage_fd(POLY_PLATINUM, FABRICATED_DEVICE, OIL) / pull_in_voltage(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL
        )
        assert r1 == pytest.approx(r2, rel=0.05)
