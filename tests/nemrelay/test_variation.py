"""Tests for repro.nemrelay.variation (Fig. 6 Monte-Carlo)."""

import numpy as np
import pytest

from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM
from repro.nemrelay.variation import (
    FIG6_VARIATION_SPEC,
    VariationSpec,
    sample_population,
)


@pytest.fixture(scope="module")
def fig6_population():
    return sample_population(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=FIG6_VARIATION_SPEC
    )


class TestSampling:
    def test_population_size_matches_paper(self, fig6_population):
        assert fig6_population.count == 100

    def test_deterministic_given_seed(self):
        a = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=20, seed=9)
        b = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=20, seed=9)
        assert np.allclose(a.vpi, b.vpi)
        assert np.allclose(a.vpo, b.vpo)

    def test_different_seeds_differ(self):
        a = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=20, seed=9)
        b = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=20, seed=10)
        assert not np.allclose(a.vpi, b.vpi)

    def test_zero_variation_collapses_distribution(self):
        spec = VariationSpec(
            sigma_length=0.0, sigma_thickness=0.0, sigma_gap=0.0, sigma_contact_gap=0.0
        )
        pop = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=10, spec=spec)
        assert pop.vpi_spread == pytest.approx(0.0, abs=1e-9)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariationSpec(sigma_length=-0.01)


class TestFig6Calibration:
    def test_vpi_band_matches_figure(self, fig6_population):
        # Fig. 6: Vpi roughly between 5.7 and 7.0 V.
        assert 5.4 < fig6_population.vpi_min < 6.0
        assert 6.6 < fig6_population.vpi_max < 7.3

    def test_vpo_band_matches_figure(self, fig6_population):
        # Fig. 6: Vpo roughly between 2 and 3.4 V (we allow a wider
        # spread from the adhesion Monte-Carlo).
        assert 1.0 < fig6_population.vpo_min < 2.6
        assert 2.8 < fig6_population.vpo_max < 4.0

    def test_every_relay_hysteretic(self, fig6_population):
        assert fig6_population.min_hysteresis_window > 0

    def test_half_select_feasibility_condition(self, fig6_population):
        # Paper Sec. 2.3: min{Vpi-Vpo} > Vpi_max - Vpi_min held for the
        # measured population.
        assert fig6_population.half_select_feasible()

    def test_larger_variation_breaks_feasibility(self):
        wild = VariationSpec(
            sigma_length=0.06,
            sigma_thickness=0.06,
            sigma_gap=0.06,
            sigma_contact_gap=0.08,
            mean_adhesion=FIG6_VARIATION_SPEC.mean_adhesion,
            sigma_adhesion=FIG6_VARIATION_SPEC.sigma_adhesion,
        )
        pop = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=wild)
        assert not pop.half_select_feasible()


class TestHistogram:
    def test_histogram_counts_sum_to_population(self, fig6_population):
        edges, vpi_counts, vpo_counts = fig6_population.histogram(bins=28)
        assert len(edges) == 29
        assert vpi_counts.sum() == 100
        assert vpo_counts.sum() == 100

    def test_distributions_are_separated(self, fig6_population):
        # Vpi and Vpo clusters do not overlap in Fig. 6.
        assert fig6_population.vpo_max < fig6_population.vpi_min
