"""Tests for repro.nemrelay.device (relay state machine, Fig. 11)."""

import pytest

from repro.nemrelay.device import (
    CROSSBAR_MEASURED_CIRCUIT,
    EquivalentCircuit,
    NEMRelay,
    RelayState,
    SCALED_22NM_CIRCUIT,
    fabricated_relay,
    scaled_relay,
)


class TestEquivalentCircuit:
    def test_paper_fig11_values(self):
        assert SCALED_22NM_CIRCUIT.r_on == pytest.approx(2e3)
        assert SCALED_22NM_CIRCUIT.c_on == pytest.approx(20e-18)
        assert SCALED_22NM_CIRCUIT.c_off == pytest.approx(6.7e-18)

    def test_crossbar_relays_measured_100k(self):
        # Paper Sec. 2.3: crossbar relays showed ~100 kOhm contacts.
        assert CROSSBAR_MEASURED_CIRCUIT.r_on == pytest.approx(100e3)

    def test_rejects_nonpositive_ron(self):
        with pytest.raises(ValueError):
            EquivalentCircuit(r_on=0.0, c_on=1e-18, c_off=1e-18)

    def test_rejects_negative_capacitance(self):
        with pytest.raises(ValueError):
            EquivalentCircuit(r_on=1e3, c_on=-1e-18, c_off=1e-18)


class TestRelayStateMachine:
    @pytest.fixture
    def relay(self):
        return scaled_relay()

    def test_initially_off(self, relay):
        assert relay.state is RelayState.OFF
        assert not relay.is_on

    def test_pull_in_at_vpi(self, relay):
        relay.apply_gate_voltage(relay.pull_in_voltage * 1.01)
        assert relay.is_on

    def test_stays_off_below_vpi(self, relay):
        relay.apply_gate_voltage(relay.pull_in_voltage * 0.99)
        assert not relay.is_on

    def test_hysteresis_holds_state(self, relay):
        """Inside (Vpo, Vpi) both states are stable — the property the
        half-select scheme relies on (paper Sec. 2.2)."""
        mid = 0.5 * (relay.pull_in_voltage + relay.pull_out_voltage)
        relay.apply_gate_voltage(mid)
        assert not relay.is_on  # was off, stays off
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.is_on
        relay.apply_gate_voltage(mid)
        assert relay.is_on  # was on, stays on

    def test_pull_out_at_vpo(self, relay):
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        relay.apply_gate_voltage(relay.pull_out_voltage * 0.99)
        assert not relay.is_on

    def test_negative_gate_voltage_actuates(self, relay):
        # Electrostatics is polarity-blind; -Vselect biasing depends on it.
        relay.apply_gate_voltage(-1.1 * relay.pull_in_voltage)
        assert relay.is_on

    def test_switch_count_increments_per_transition(self, relay):
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        relay.apply_gate_voltage(0.0)
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.switch_count == 3

    def test_reset(self, relay):
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        relay.reset()
        assert not relay.is_on
        assert relay.gate_voltage == 0.0


class TestRelayElectrical:
    def test_off_state_current_exactly_zero(self):
        relay = scaled_relay()
        assert relay.drain_current(0.5) == 0.0

    def test_on_state_ohmic(self):
        relay = scaled_relay()
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.drain_current(0.1) == pytest.approx(0.1 / 2e3)

    def test_compliance_clips_current(self):
        relay = scaled_relay()
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.drain_current(10.0, compliance=100e-9) == pytest.approx(100e-9)

    def test_compliance_clips_negative_current(self):
        relay = scaled_relay()
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.drain_current(-10.0, compliance=100e-9) == pytest.approx(-100e-9)

    def test_resistance_by_state(self):
        relay = scaled_relay()
        assert relay.resistance() == float("inf")
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.resistance() == pytest.approx(2e3)

    def test_capacitance_by_state(self):
        relay = scaled_relay()
        assert relay.capacitance() == pytest.approx(6.7e-18)
        relay.apply_gate_voltage(1.1 * relay.pull_in_voltage)
        assert relay.capacitance() == pytest.approx(20e-18)


class TestFactories:
    def test_fabricated_relay_operates_at_measured_voltages(self):
        relay = fabricated_relay()
        assert relay.pull_in_voltage == pytest.approx(6.2, abs=0.05)
        assert relay.circuit.r_on == pytest.approx(100e3)

    def test_scaled_relay_near_one_volt(self):
        relay = scaled_relay()
        assert 0.8 < relay.pull_in_voltage < 1.3

    def test_repr_mentions_state(self):
        assert "pulled-out" in repr(scaled_relay())
