"""Tests for repro.nemrelay.dynamics (switching delay > 1 ns claim)."""

import pytest

from repro.nemrelay.dynamics import (
    damping_coefficient,
    effective_mass,
    natural_frequency,
    pull_in_transient,
    release_time_constant,
    resonant_frequencies,
    switching_delay,
)
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import FABRICATED_DEVICE, SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, OIL, POLYSILICON, POLY_PLATINUM


@pytest.fixture
def scaled_model():
    return ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)


@pytest.fixture
def fabricated_model():
    return ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


class TestModalQuantities:
    def test_effective_mass_positive_and_tiny(self, scaled_model):
        m = effective_mass(scaled_model)
        assert 0 < m < 1e-15  # scaled beam: well below a femtogram

    def test_natural_frequency_consistency(self, scaled_model):
        f0, omega0 = resonant_frequencies(scaled_model)
        assert omega0 == pytest.approx(natural_frequency(scaled_model))
        assert f0 == pytest.approx(omega0 / (2 * 3.141592653589793))

    def test_damping_scales_inverse_q(self, scaled_model):
        b_air = damping_coefficient(scaled_model)
        oily = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, OIL)
        assert damping_coefficient(oily) > b_air


class TestPullInTransient:
    def test_above_vpi_makes_contact(self, scaled_model):
        t = pull_in_transient(scaled_model, 1.2 * scaled_model.pull_in)
        assert t.switched
        assert t.displacements[-1] == pytest.approx(SCALED_22NM_DEVICE.travel)

    def test_below_vpi_never_contacts(self, scaled_model):
        t = pull_in_transient(scaled_model, 0.8 * scaled_model.pull_in)
        assert not t.switched
        # Settles near the static equilibrium, never past g0/3.
        assert max(t.displacements) < SCALED_22NM_DEVICE.gap / 2.0

    def test_displacement_stays_nonnegative(self, scaled_model):
        t = pull_in_transient(scaled_model, 1.5 * scaled_model.pull_in)
        assert min(t.displacements) >= 0.0

    def test_higher_overdrive_switches_faster(self, scaled_model):
        slow = pull_in_transient(scaled_model, 1.1 * scaled_model.pull_in)
        fast = pull_in_transient(scaled_model, 2.0 * scaled_model.pull_in)
        assert fast.switching_time < slow.switching_time

    def test_rejects_too_few_steps(self, scaled_model):
        with pytest.raises(ValueError):
            pull_in_transient(scaled_model, 1.0, steps=5)


class TestSwitchingDelay:
    def test_scaled_delay_exceeds_one_nanosecond(self, scaled_model):
        """The paper's motivating fact: mechanical delays > 1 ns, which
        is why relays suit static routing, not logic."""
        delay = switching_delay(scaled_model)
        assert delay is not None
        assert delay > 1e-9

    def test_scaled_delay_below_a_microsecond(self, scaled_model):
        assert switching_delay(scaled_model) < 1e-6

    def test_fabricated_relay_much_slower(self, fabricated_model, scaled_model):
        # The large oil-damped device switches orders of magnitude slower.
        assert switching_delay(fabricated_model) > 10 * switching_delay(scaled_model)

    def test_rejects_subunity_overdrive(self, scaled_model):
        with pytest.raises(ValueError):
            switching_delay(scaled_model, overdrive=0.9)


class TestReleaseTime:
    def test_underdamped_release_is_one_period(self, scaled_model):
        period = 2 * 3.141592653589793 / natural_frequency(scaled_model)
        assert release_time_constant(scaled_model) == pytest.approx(period)

    def test_overdamped_release_is_stretched(self, fabricated_model):
        period = 2 * 3.141592653589793 / natural_frequency(fabricated_model)
        assert release_time_constant(fabricated_model) > period
