"""Tests for repro.nemrelay.geometry."""

import pytest

from repro.nemrelay.geometry import BeamGeometry, FABRICATED_DEVICE, SCALED_22NM_DEVICE


class TestBeamGeometry:
    def test_paper_fabricated_dimensions(self):
        # Paper Fig. 2b: L ~ 23 um, h ~ 500 nm, g0 ~ 600 nm.
        assert FABRICATED_DEVICE.length == pytest.approx(23e-6)
        assert FABRICATED_DEVICE.thickness == pytest.approx(500e-9)
        assert FABRICATED_DEVICE.gap == pytest.approx(600e-9)

    def test_paper_scaled_dimensions(self):
        # Paper Fig. 11: L=275nm, h=11nm, g0=11nm, gmin=3.6nm.
        assert SCALED_22NM_DEVICE.length == pytest.approx(275e-9)
        assert SCALED_22NM_DEVICE.thickness == pytest.approx(11e-9)
        assert SCALED_22NM_DEVICE.gap == pytest.approx(11e-9)
        assert SCALED_22NM_DEVICE.contact_gap == pytest.approx(3.6e-9)

    def test_travel_is_gap_minus_contact_gap(self):
        g = SCALED_22NM_DEVICE
        assert g.travel == pytest.approx(g.gap - g.contact_gap)

    def test_width_defaults_to_thickness(self):
        g = BeamGeometry(length=1e-6, thickness=100e-9, gap=100e-9, contact_gap=30e-9)
        assert g.width == pytest.approx(g.thickness)

    def test_explicit_width_preserved(self):
        g = BeamGeometry(
            length=1e-6, thickness=100e-9, gap=100e-9, contact_gap=30e-9, width=250e-9
        )
        assert g.width == pytest.approx(250e-9)

    def test_aspect_ratio(self):
        assert FABRICATED_DEVICE.aspect_ratio == pytest.approx(46.0)

    @pytest.mark.parametrize("field", ["length", "thickness", "gap", "contact_gap"])
    def test_rejects_nonpositive_dimensions(self, field):
        kwargs = dict(length=1e-6, thickness=1e-7, gap=1e-7, contact_gap=3e-8)
        kwargs[field] = 0.0
        with pytest.raises(ValueError):
            BeamGeometry(**kwargs)

    def test_rejects_contact_gap_exceeding_gap(self):
        with pytest.raises(ValueError):
            BeamGeometry(length=1e-6, thickness=1e-7, gap=1e-7, contact_gap=2e-7)

    def test_scaled_multiplies_all_dimensions(self):
        g = SCALED_22NM_DEVICE.scaled(2.0)
        assert g.length == pytest.approx(2 * SCALED_22NM_DEVICE.length)
        assert g.thickness == pytest.approx(2 * SCALED_22NM_DEVICE.thickness)
        assert g.gap == pytest.approx(2 * SCALED_22NM_DEVICE.gap)
        assert g.contact_gap == pytest.approx(2 * SCALED_22NM_DEVICE.contact_gap)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            SCALED_22NM_DEVICE.scaled(0.0)

    def test_gmin_ratio_matches_scaled_device(self):
        # The fabricated device reuses the Fig. 11 gmin/g0 ratio.
        ratio_scaled = SCALED_22NM_DEVICE.contact_gap / SCALED_22NM_DEVICE.gap
        ratio_fab = FABRICATED_DEVICE.contact_gap / FABRICATED_DEVICE.gap
        assert ratio_fab == pytest.approx(ratio_scaled, rel=0.01)
