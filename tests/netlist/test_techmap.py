"""Tests for repro.netlist.techmap and simulate (mapper correctness)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.gates import GateNetlist, GateOp, random_gate_circuit
from repro.netlist.simulate import check_equivalence, evaluate_netlist
from repro.netlist.techmap import enumerate_cuts, map_to_luts, mapping_stats


def adder_bit():
    n = GateNetlist("fa")
    for pi in ("a", "b", "cin"):
        n.add_input(pi)
    n.add_gate("axb", GateOp.XOR, ["a", "b"])
    n.add_gate("sum", GateOp.XOR, ["axb", "cin"])
    n.add_gate("ab", GateOp.AND, ["a", "b"])
    n.add_gate("cx", GateOp.AND, ["axb", "cin"])
    n.add_gate("cout", GateOp.OR, ["ab", "cx"])
    n.add_output("s", "sum")
    n.add_output("c", "cout")
    return n


class TestCutEnumeration:
    def test_leaves_have_depth_zero(self):
        n = adder_bit()
        _cuts, arrival = enumerate_cuts(n, k=4)
        for pi in n.inputs:
            assert arrival[pi] == 0

    def test_adder_maps_in_one_level_at_k4(self):
        # Both adder outputs are 3-input functions: depth 1 at K=4.
        n = adder_bit()
        _cuts, arrival = enumerate_cuts(n, k=4)
        assert arrival["sum"] == 1
        assert arrival["cout"] == 1

    def test_cut_sizes_bounded(self):
        n = random_gate_circuit("c", 80, seed=2)
        cuts, _ = enumerate_cuts(n, k=4)
        for cutset in cuts.values():
            assert all(len(c) <= 4 for c in cutset)

    def test_no_dominated_cuts(self):
        n = random_gate_circuit("c", 60, seed=3)
        cuts, _ = enumerate_cuts(n, k=4)
        for cutset in cuts.values():
            for a in cutset:
                for b in cutset:
                    if a is not b:
                        assert not (a < b)


class TestMapping:
    def test_full_adder_maps_to_two_luts(self):
        mapped = map_to_luts(adder_bit(), k=4)
        assert mapped.num_luts == 2
        assert mapped.logic_depth() == 1

    def test_full_adder_truth_tables_exact(self):
        mapped = map_to_luts(adder_bit(), k=4)
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values = evaluate_netlist(mapped, {"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert values["s"] == total & 1
                    assert values["c"] == total >> 1

    def test_fanin_bound_respected(self):
        mapped = map_to_luts(random_gate_circuit("m", 150, seed=4), k=4)
        assert all(len(lut.inputs) <= 4 for lut in mapped.luts)

    def test_larger_k_fewer_luts(self):
        gates = random_gate_circuit("m", 200, seed=5)
        luts4 = map_to_luts(gates, k=4).num_luts
        luts6 = map_to_luts(gates, k=6).num_luts
        assert luts6 <= luts4

    def test_mapped_netlist_feeds_the_flow(self):
        from repro.arch.params import ArchParams
        from repro.vpr.flow import run_flow

        gates = random_gate_circuit("m", 250, num_inputs=16, num_outputs=8, seed=6)
        mapped = map_to_luts(gates, k=4)
        flow = run_flow(mapped, ArchParams(channel_width=48))
        assert flow.success

    def test_stats(self):
        gates = random_gate_circuit("m", 100, seed=7)
        mapped = map_to_luts(gates, k=4)
        stats = mapping_stats(gates, mapped)
        assert stats["gates_per_lut"] > 1.5  # real absorption happened

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            map_to_luts(adder_bit(), k=1)


class TestEquivalence:
    def test_combinational_equivalence(self):
        gates = random_gate_circuit("eq", 200, num_inputs=10, seed=8)
        mapped = map_to_luts(gates, k=4)
        assert check_equivalence(gates, mapped, vectors=200, seed=8)

    def test_sequential_equivalence(self):
        gates = random_gate_circuit("eq", 150, ff_fraction=0.3, seed=9)
        mapped = map_to_luts(gates, k=4)
        assert check_equivalence(gates, mapped, vectors=150, seed=9)

    def test_detects_broken_truth_table(self):
        gates = random_gate_circuit("eq", 60, num_inputs=6, num_outputs=3, seed=10)
        mapped = map_to_luts(gates, k=4)
        # Corrupt the LUT driving the first output.
        import dataclasses

        out_src = gates.outputs["po0"]
        block = mapped.blocks[out_src]
        flipped = tuple(1 - bit for bit in block.truth)
        mapped.blocks[out_src] = dataclasses.replace(block, truth=flipped)
        assert not check_equivalence(gates, mapped, vectors=64, seed=10)

    @given(
        num_gates=st.integers(10, 120),
        seed=st.integers(0, 500),
        k=st.integers(3, 5),
        ff_fraction=st.floats(0.0, 0.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_mapping_always_equivalent(self, num_gates, seed, k, ff_fraction):
        """Property: every mapped circuit is functionally identical to
        its source (the mapper's defining invariant)."""
        gates = random_gate_circuit(
            "prop", num_gates, num_inputs=6, num_outputs=4,
            ff_fraction=ff_fraction, seed=seed,
        )
        mapped = map_to_luts(gates, k=k)
        assert check_equivalence(gates, mapped, vectors=48, seed=seed)
        assert all(len(lut.inputs) <= k for lut in mapped.luts)
