"""Tests for repro.netlist.generate and suites."""

import pytest

from repro.netlist.generate import GeneratorParams, generate
from repro.netlist.suites import (
    ALTERA4_PARAMS,
    MCNC20_PARAMS,
    load_circuit,
    load_suite,
    suite,
)


class TestGenerator:
    def test_exact_lut_count(self):
        n = generate(GeneratorParams("g", num_luts=150, seed=2))
        assert n.num_luts == 150

    def test_deterministic(self):
        a = generate(GeneratorParams("g", num_luts=80, seed=5))
        b = generate(GeneratorParams("g", num_luts=80, seed=5))
        assert {k: v.inputs for k, v in a.blocks.items()} == {
            k: v.inputs for k, v in b.blocks.items()
        }

    def test_seed_changes_structure(self):
        a = generate(GeneratorParams("g", num_luts=80, seed=5))
        b = generate(GeneratorParams("g", num_luts=80, seed=6))
        assert {k: tuple(v.inputs) for k, v in a.blocks.items()} != {
            k: tuple(v.inputs) for k, v in b.blocks.items()
        }

    def test_validates(self):
        generate(GeneratorParams("g", num_luts=200, seed=1)).validate()

    def test_ff_fraction(self):
        n = generate(GeneratorParams("g", num_luts=200, ff_fraction=0.5, seed=1))
        assert len(n.ffs) == 100

    def test_zero_ff_fraction(self):
        n = generate(GeneratorParams("g", num_luts=100, ff_fraction=0.0, seed=1))
        assert not n.ffs

    def test_fanin_bounded_by_k(self):
        n = generate(GeneratorParams("g", num_luts=120, k=4, seed=3))
        assert all(1 <= len(lut.inputs) <= 4 for lut in n.luts)

    def test_no_dangling_drivers(self):
        n = generate(GeneratorParams("g", num_luts=120, seed=3))
        fanouts = n.fanout()
        for lut in n.luts:
            assert lut.name in fanouts, f"{lut.name} drives nothing"

    def test_depth_tracks_parameter(self):
        shallow = generate(GeneratorParams("g", num_luts=200, depth=5, seed=4))
        deep = generate(GeneratorParams("g", num_luts=200, depth=20, seed=4))
        assert shallow.logic_depth() <= 5
        assert deep.logic_depth() > shallow.logic_depth()

    def test_explicit_pads(self):
        n = generate(GeneratorParams("g", num_luts=100, num_inputs=17, num_outputs=9, seed=1))
        assert len(n.inputs) == 17
        assert len(n.outputs) >= 9  # extras keep dangling logic alive

    def test_scaled_params(self):
        p = GeneratorParams("g", num_luts=1000, seed=1)
        s = p.scaled(0.1)
        assert s.num_luts == 100
        assert s.depth == p.resolved_depth  # depth preserved

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GeneratorParams("g", num_luts=0)
        with pytest.raises(ValueError):
            GeneratorParams("g", num_luts=10, ff_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorParams("g", num_luts=10, locality=0.0)


class TestSuites:
    def test_mcnc20_has_20_circuits(self):
        assert len(MCNC20_PARAMS) == 20

    def test_altera4_lut_counts_match_fig12_legend(self):
        counts = {p.name: p.num_luts for p in ALTERA4_PARAMS}
        assert counts == {
            "ava": 12254,
            "oc_des_des3perf": 11742,
            "sudoku_check": 17188,
            "ucsb_152_tap_fir": 10199,
        }

    def test_all_altera_circuits_above_10k(self):
        # Paper: "four large benchmark circuits (with > 10K ... LUTs)".
        assert all(p.num_luts > 10_000 for p in ALTERA4_PARAMS)

    def test_clma_is_largest_mcnc(self):
        largest = max(MCNC20_PARAMS, key=lambda p: p.num_luts)
        assert largest.name == "clma"

    def test_suite_scaling(self):
        scaled = suite("mcnc20", scale=0.05)
        full = suite("mcnc20")
        for s, f in zip(scaled, full):
            assert s.num_luts == pytest.approx(f.num_luts * 0.05, abs=1)

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            suite("nope")

    def test_load_circuit_scaled(self):
        n = load_circuit("tseng", scale=0.1)
        assert n.name == "tseng"
        assert n.num_luts == pytest.approx(105, abs=2)

    def test_load_circuit_unknown(self):
        with pytest.raises(KeyError):
            load_circuit("missing")

    def test_load_suite_generates_all(self):
        circuits = load_suite("altera4", scale=0.01)
        assert len(circuits) == 4
        for netlist in circuits:
            netlist.validate()
