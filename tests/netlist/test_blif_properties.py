"""Hypothesis property test: BLIF round-trip over random mapped circuits.

``parse(write(n)) == n`` structurally, for any circuit the gate
generator + tech mapper can produce.  `derandomize=True` pins the
example stream to the test id, so the suite is reproducible run to
run (no hidden RNG state — a CI failure replays locally).
"""

import io

from hypothesis import given, settings, strategies as st

from repro.netlist.blif import read_blif, roundtrip_equal, write_blif
from repro.netlist.gates import random_gate_circuit
from repro.netlist.techmap import map_to_luts


@st.composite
def mapped_circuits(draw):
    """A K-LUT netlist from a seeded random gate DAG."""
    num_gates = draw(st.integers(min_value=1, max_value=80))
    num_inputs = draw(st.integers(min_value=1, max_value=10))
    num_outputs = draw(st.integers(min_value=1, max_value=6))
    ff_fraction = draw(st.sampled_from([0.0, 0.1, 0.25]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    k = draw(st.sampled_from([2, 4, 6]))
    gates = random_gate_circuit(
        "prop", num_gates, num_inputs=num_inputs, num_outputs=num_outputs,
        ff_fraction=ff_fraction, seed=seed,
    )
    return map_to_luts(gates, k=k)


def _roundtrip(netlist):
    buf = io.StringIO()
    write_blif(netlist, buf)
    buf.seek(0)
    return read_blif(buf, k=netlist.k)


class TestBlifRoundTripProperties:
    @given(netlist=mapped_circuits())
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_parse_write_is_identity(self, netlist):
        parsed = _roundtrip(netlist)
        assert roundtrip_equal(netlist, parsed)

    @given(netlist=mapped_circuits())
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_truth_tables_survive(self, netlist):
        parsed = _roundtrip(netlist)
        for lut in netlist.luts:
            assert parsed.blocks[lut.name].truth == lut.truth, lut.name

    @given(netlist=mapped_circuits())
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_roundtrip_is_a_fixpoint(self, netlist):
        """A second round trip changes nothing more."""
        once = _roundtrip(netlist)
        twice = _roundtrip(once)
        assert roundtrip_equal(once, twice)
        buf_a, buf_b = io.StringIO(), io.StringIO()
        write_blif(once, buf_a)
        write_blif(twice, buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()
