"""Tests for repro.netlist.blif."""

import io

import pytest

from repro.netlist.blif import read_blif, write_blif
from repro.netlist.core import Netlist
from repro.netlist.generate import GeneratorParams, generate

SAMPLE = """\
# a tiny mapped circuit
.model sample
.inputs a b c
.outputs y
.names a b n1
11 1
.names n1 c n2
11 1
.latch n2 q re clk 0
.names q n1 y
11 1
.end
"""


class TestReadBlif:
    def test_reads_sample(self):
        n = read_blif(io.StringIO(SAMPLE))
        assert n.name == "sample"
        assert n.num_luts == 3
        assert len(n.ffs) == 1
        assert len(n.inputs) == 3
        assert len(n.outputs) == 1

    def test_connectivity(self):
        n = read_blif(io.StringIO(SAMPLE))
        assert n.blocks["n2"].inputs == ["n1", "c"]
        assert n.blocks["q"].inputs == ["n2"]

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        n = read_blif(io.StringIO(text))
        assert len(n.inputs) == 2

    def test_comments_ignored(self):
        text = ".model m # name\n.inputs a\n.outputs y\n.names a y # lut\n1 1\n.end\n"
        n = read_blif(io.StringIO(text))
        assert n.num_luts == 1

    def test_double_driver_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n1 1\n.end\n"
        with pytest.raises(ValueError, match="driven twice"):
            read_blif(io.StringIO(text))

    def test_unknown_construct_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            read_blif(io.StringIO(".model m\n.gate nand2 a=1 b=2\n.end\n"))

    def test_dangling_output_rejected(self):
        text = ".model m\n.inputs a\n.outputs ghost\n.names a y\n1 1\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))


class TestRoundTrip:
    def test_synthetic_circuit_roundtrips(self):
        original = generate(GeneratorParams("rt", num_luts=60, seed=11))
        buf = io.StringIO()
        write_blif(original, buf)
        buf.seek(0)
        parsed = read_blif(buf)
        assert parsed.num_luts == original.num_luts
        assert len(parsed.ffs) == len(original.ffs)
        assert len(parsed.inputs) == len(original.inputs)
        assert len(parsed.outputs) == len(original.outputs)
        # Structural: every LUT keeps its pin list.
        for lut in original.luts:
            assert parsed.blocks[lut.name].inputs == lut.inputs

    def test_truth_tables_roundtrip(self):
        """Mapped circuits keep their function through BLIF I/O."""
        from repro.netlist.gates import random_gate_circuit
        from repro.netlist.simulate import check_equivalence
        from repro.netlist.techmap import map_to_luts

        gates = random_gate_circuit("rt2", 120, num_inputs=8, num_outputs=4, seed=21)
        mapped = map_to_luts(gates, k=4)
        buf = io.StringIO()
        write_blif(mapped, buf)
        buf.seek(0)
        parsed = read_blif(buf)
        for lut in mapped.luts:
            assert parsed.blocks[lut.name].truth == lut.truth
        assert check_equivalence(gates, parsed, vectors=64, seed=21)

    def test_dont_care_cover_expands(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n.end\n"
        n = read_blif(io.StringIO(text))
        # y = a regardless of b: minterms where bit0 (a) is 1.
        assert n.blocks["y"].truth == (0, 1, 0, 1)

    def test_off_set_cover_falls_back_to_topology(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n"
        n = read_blif(io.StringIO(text))
        assert n.blocks["y"].truth is None

    def test_constant_zero_cover(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n.end\n"
        n = read_blif(io.StringIO(text))
        assert n.blocks["y"].truth == (0, 0)

    def test_write_emits_model_sections(self):
        n = Netlist("w")
        n.add_input("a")
        n.add_lut("y", ["a"])
        n.add_output("o", "y")
        buf = io.StringIO()
        write_blif(n, buf)
        text = buf.getvalue()
        assert ".model w" in text
        assert ".inputs a" in text
        assert ".outputs y" in text
        assert ".names a y" in text
