"""Tests for repro.netlist.core."""

import pytest

from repro.netlist.core import Block, BlockType, Netlist


def tiny_netlist():
    """a, b -> and1 -> ff1 -> out; and1 also feeds lut2 -> out2."""
    n = Netlist("tiny", k=4)
    n.add_input("a")
    n.add_input("b")
    n.add_lut("and1", ["a", "b"])
    n.add_ff("ff1", "and1")
    n.add_lut("lut2", ["and1", "ff1"])
    n.add_output("out", "ff1")
    n.add_output("out2", "lut2")
    n.validate()
    return n


class TestConstruction:
    def test_counts(self):
        n = tiny_netlist()
        assert n.num_luts == 2
        assert len(n.ffs) == 1
        assert len(n.inputs) == 2
        assert len(n.outputs) == 2

    def test_duplicate_name_rejected(self):
        n = Netlist("x")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_input("a")

    def test_lut_fanin_bound(self):
        n = Netlist("x", k=2)
        n.add_input("a")
        n.add_input("b")
        n.add_input("c")
        with pytest.raises(ValueError):
            n.add_lut("l", ["a", "b", "c"])

    def test_lut_duplicate_inputs_rejected(self):
        n = Netlist("x")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_lut("l", ["a", "a"])

    def test_ff_single_input(self):
        with pytest.raises(ValueError):
            Block(name="f", type=BlockType.FF, inputs=[])

    def test_k_minimum(self):
        with pytest.raises(ValueError):
            Netlist("x", k=1)


class TestValidation:
    def test_dangling_reference_caught(self):
        n = Netlist("x")
        n.add_input("a")
        n.add_lut("l", ["a", "ghost"])
        with pytest.raises(ValueError, match="ghost"):
            n.validate()

    def test_combinational_loop_caught(self):
        n = Netlist("x")
        n.add_input("a")
        n.add_lut("l1", ["a", "l2"])
        n.add_lut("l2", ["l1"])
        with pytest.raises(ValueError, match="loop"):
            n.validate()

    def test_sequential_loop_allowed(self):
        # Loops through FFs are legal (state machines).
        n = Netlist("x")
        n.add_input("a")
        n.add_lut("l1", ["a", "f1"])
        n.add_ff("f1", "l1")
        n.add_output("o", "f1")
        n.validate()

    def test_output_as_source_rejected(self):
        n = Netlist("x")
        n.add_input("a")
        n.add_output("o", "a")
        n.add_lut("l", ["o"])
        with pytest.raises(ValueError):
            n.validate()


class TestQueries:
    def test_fanout(self):
        n = tiny_netlist()
        fo = n.fanout()
        assert ("ff1", 0) in fo["and1"]
        assert ("lut2", 0) in fo["and1"]
        assert len(fo["and1"]) == 2

    def test_nets(self):
        n = tiny_netlist()
        nets = n.nets()
        assert set(nets["ff1"]) == {"lut2", "out"}

    def test_depth(self):
        n = tiny_netlist()
        assert n.logic_depth() == 2  # and1 -> lut2

    def test_stats_keys(self):
        stats = tiny_netlist().stats()
        for key in ("luts", "ffs", "inputs", "outputs", "nets", "depth", "avg_fanout"):
            assert key in stats

    def test_topological_order_respects_edges(self):
        n = tiny_netlist()
        order = n.topological_luts()
        assert order.index("and1") < order.index("lut2")
