"""Tests for repro.netlist.gates."""

import pytest

from repro.netlist.gates import Gate, GateNetlist, GateOp, random_gate_circuit


def adder_bit():
    """1-bit full adder: sum and carry from a, b, cin."""
    n = GateNetlist("fa")
    for pi in ("a", "b", "cin"):
        n.add_input(pi)
    n.add_gate("axb", GateOp.XOR, ["a", "b"])
    n.add_gate("sum", GateOp.XOR, ["axb", "cin"])
    n.add_gate("ab", GateOp.AND, ["a", "b"])
    n.add_gate("cx", GateOp.AND, ["axb", "cin"])
    n.add_gate("cout", GateOp.OR, ["ab", "cx"])
    n.add_output("s", "sum")
    n.add_output("c", "cout")
    n.validate()
    return n


class TestGateOps:
    @pytest.mark.parametrize("op,table", [
        (GateOp.AND, [0, 0, 0, 1]),
        (GateOp.OR, [0, 1, 1, 1]),
        (GateOp.XOR, [0, 1, 1, 0]),
        (GateOp.NAND, [1, 1, 1, 0]),
        (GateOp.NOR, [1, 0, 0, 0]),
        (GateOp.XNOR, [1, 0, 0, 1]),
    ])
    def test_two_input_truth(self, op, table):
        got = [op.evaluate(m & 1, m >> 1) for m in range(4)]
        assert got == table

    def test_unary_ops(self):
        assert [GateOp.NOT.evaluate(v) for v in (0, 1)] == [1, 0]
        assert [GateOp.BUF.evaluate(v) for v in (0, 1)] == [0, 1]

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate("g", GateOp.AND, ["a"])
        with pytest.raises(ValueError):
            Gate("g", GateOp.NOT, ["a", "b"])


class TestGateNetlist:
    def test_full_adder_evaluates(self):
        n = adder_bit()
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values = n.evaluate({"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert values["s"] == total & 1
                    assert values["c"] == total >> 1

    def test_missing_input_rejected(self):
        with pytest.raises(ValueError, match="missing value"):
            adder_bit().evaluate({"a": 0, "b": 1})

    def test_duplicate_signal_rejected(self):
        n = GateNetlist("d")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_gate("a", GateOp.NOT, ["a"])

    def test_loop_detected(self):
        n = GateNetlist("loop")
        n.add_input("a")
        n.add_gate("g1", GateOp.AND, ["a", "g2"])
        n.add_gate("g2", GateOp.NOT, ["g1"])
        with pytest.raises(ValueError, match="loop"):
            n.validate()

    def test_sequential_state(self):
        n = GateNetlist("seq")
        n.add_input("a")
        n.add_gate("g", GateOp.XOR, ["a", "q"])
        n.add_ff("q", "g")
        n.add_output("o", "q")
        n.validate()
        v0 = n.evaluate({"a": 1}, state={"q": 0})
        assert v0["g"] == 1  # next state
        v1 = n.evaluate({"a": 1}, state={"q": 1})
        assert v1["g"] == 0

    def test_dangling_reference_rejected(self):
        n = GateNetlist("d")
        n.add_input("a")
        n.add_gate("g", GateOp.NOT, ["ghost"])
        with pytest.raises(ValueError, match="ghost"):
            n.validate()


class TestRandomCircuit:
    def test_deterministic(self):
        a = random_gate_circuit("r", 50, seed=7)
        b = random_gate_circuit("r", 50, seed=7)
        assert {g.name: (g.op, tuple(g.inputs)) for g in a.gates.values()} == {
            g.name: (g.op, tuple(g.inputs)) for g in b.gates.values()
        }

    def test_counts(self):
        n = random_gate_circuit("r", 120, num_inputs=10, num_outputs=5, ff_fraction=0.25, seed=3)
        assert n.num_gates == 120
        assert len(n.inputs) == 10
        assert len(n.outputs) == 5
        assert len(n.ffs) == 30

    def test_validates_and_evaluates(self):
        n = random_gate_circuit("r", 80, seed=5)
        values = n.evaluate({pi: 1 for pi in n.inputs})
        assert all(v in (0, 1) for v in values.values())

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_gate_circuit("r", 0)
        with pytest.raises(ValueError):
            random_gate_circuit("r", 10, ff_fraction=2.0)
