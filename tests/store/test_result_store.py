"""Tests for repro.store.result_store: keying, integrity, GC.

No real jobs here — `JobResult`s are hand-built so every test runs in
milliseconds.  The corruption trio (flipped blob byte, truncated index
row, digest mismatch) is the satellite contract: each must degrade to
a transparent miss + quarantine, never a crash or a wrong answer.
"""

import json
import os

import pytest

from repro.runner.spec import JobResult, JobSpec, digest_of
from repro.store import ResultStore, StoreStats

TINY = dict(circuit="tseng", scale=0.01, width=40)


def _spec(seed=1, **kw):
    return JobSpec(seed=seed, **TINY, **kw)


def _result(spec, wirelength=49, status="ok"):
    qor = {"wirelength": wirelength, "channel_width": spec.width}
    return JobResult(key=spec.key, status=status, qor=qor,
                     digests={"qor": digest_of(qor)}, wall_s=0.25)


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"), code="codeA")


def _entry_path(store, spec):
    return store._entry_path(store.entry_id(spec))


def _blob_path_of(store, spec):
    with open(_entry_path(store, spec), "rb") as handle:
        doc = json.loads(handle.read())
    return store._blob_path(doc["blob"])


class TestRoundTrip:
    def test_put_get_round_trips_identity(self, store):
        spec = _spec()
        assert store.put(spec, _result(spec)) is True
        hit = store.get(spec)
        assert hit is not None
        assert hit.identity() == _result(spec).identity()
        assert store.stats.hits == 1 and store.stats.published == 1

    def test_absent_entry_is_a_plain_miss(self, store):
        assert store.get(_spec()) is None
        assert store.stats.misses == 1
        assert store.quarantined() == []

    def test_different_seed_is_a_different_key(self, store):
        store.put(_spec(seed=1), _result(_spec(seed=1)))
        assert store.get(_spec(seed=2)) is None

    def test_code_digest_is_a_key_axis(self, store, tmp_path):
        spec = _spec()
        store.put(spec, _result(spec))
        other = ResultStore(store.root, code="codeB")
        # Same job under different code must not serve the stale result.
        assert other.get(spec) is None

    def test_identical_results_share_one_blob(self, store):
        # Content addressing: same bytes from different specs dedupe.
        a, b = _spec(seed=1), _spec(seed=2)
        ra = JobResult(key=a.key, status="ok", qor={}, digests={})
        rb = JobResult(key=b.key, status="ok", qor={}, digests={})
        store.put(a, ra)
        store.put(b, rb)
        assert store.size()["entries"] == 2
        # Keys differ so blobs differ here; force identical bytes via
        # same key (legal: re-publish is idempotent).
        before = store.size()["blobs"]
        store.put(a, ra)
        assert store.size()["blobs"] == before

    def test_wall_s_round_trips_but_identity_ignores_it(self, store):
        spec = _spec()
        store.put(spec, _result(spec))
        hit = store.get(spec)
        assert hit.wall_s == pytest.approx(0.25)
        assert "wall_s" not in hit.identity()


class TestCacheability:
    def test_fault_specs_are_never_cached(self, store):
        spec = _spec(fault="crash")
        result = JobResult(key=spec.key, status="ok")
        assert store.put(spec, result) is False
        assert store.get(spec) is None
        # Fault lookups do not even count as misses.
        assert store.stats.misses == 0

    @pytest.mark.parametrize("status", ["error", "timeout", "crashed",
                                        "stalled"])
    def test_environmental_failures_are_not_cached(self, store, status):
        spec = _spec()
        assert store.put(spec, _result(spec, status=status)) is False

    @pytest.mark.parametrize("status", ["ok", "unroutable", "unrepairable"])
    def test_deterministic_statuses_are_cached(self, store, status):
        spec = _spec()
        assert store.put(spec, _result(spec, status=status)) is True
        assert store.get(spec).status == status

    def test_key_mismatch_raises(self, store):
        spec = _spec(seed=1)
        with pytest.raises(ValueError):
            store.put(spec, _result(_spec(seed=2)))


class TestCorruption:
    """The trio: flipped byte, truncated row, digest mismatch."""

    def _published(self, store):
        spec = _spec()
        store.put(spec, _result(spec))
        return spec

    def test_flipped_blob_byte_quarantines_and_misses(self, store):
        spec = self._published(store)
        blob_path = _blob_path_of(store, spec)
        with open(blob_path, "rb") as handle:
            data = bytearray(handle.read())
        data[len(data) // 2] ^= 0xFF
        with open(blob_path, "wb") as handle:
            handle.write(bytes(data))
        assert store.get(spec) is None
        assert store.stats.quarantined >= 2  # blob and its entry
        assert store.quarantined()
        # Transparent recompute: a fresh publish serves again.
        assert store.put(spec, _result(spec)) is True
        assert store.get(spec) is not None

    def test_truncated_index_row_quarantines_and_misses(self, store):
        spec = self._published(store)
        entry_path = _entry_path(store, spec)
        with open(entry_path, "rb") as handle:
            data = handle.read()
        with open(entry_path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get(spec) is None
        assert any(name.endswith(".json") for name in store.quarantined())
        assert store.put(spec, _result(spec)) is True
        assert store.get(spec) is not None

    def test_qor_digest_mismatch_is_not_served(self, store):
        spec = self._published(store)
        blob_path = _blob_path_of(store, spec)
        with open(blob_path, "rb") as handle:
            doc = json.loads(handle.read())
        doc["qor"]["wirelength"] += 1  # silent QoR tamper
        data = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        # Re-address the blob so the content hash passes and only the
        # result's own qor digest can catch the tamper.
        import hashlib
        new_blob = hashlib.sha256(data).hexdigest()
        new_path = store._blob_path(new_blob)
        os.makedirs(os.path.dirname(new_path), exist_ok=True)
        with open(new_path, "wb") as handle:
            handle.write(data)
        entry_path = _entry_path(store, spec)
        with open(entry_path, "rb") as handle:
            entry_doc = json.loads(handle.read())
        entry_doc["blob"] = new_blob
        with open(entry_path, "wb") as handle:
            handle.write(json.dumps(entry_doc).encode("utf-8"))
        assert store.get(spec) is None
        assert store.quarantined()

    def test_missing_blob_quarantines_entry(self, store):
        spec = self._published(store)
        os.remove(_blob_path_of(store, spec))
        assert store.get(spec) is None
        assert store.put(spec, _result(spec)) is True
        assert store.get(spec) is not None

    def test_wrong_schema_version_reads_as_miss(self, store):
        spec = self._published(store)
        entry_path = _entry_path(store, spec)
        with open(entry_path, "rb") as handle:
            doc = json.loads(handle.read())
        doc["schema"] = 999
        with open(entry_path, "wb") as handle:
            handle.write(json.dumps(doc).encode("utf-8"))
        assert store.get(spec) is None


class TestGC:
    def _fill(self, store, n):
        specs = [_spec(seed=i) for i in range(1, n + 1)]
        for i, spec in enumerate(specs):
            store.put(spec, _result(spec, wirelength=40 + i))
            entry = _entry_path(store, spec)
            os.utime(entry, (1_000_000 + i, 1_000_000 + i))
        return specs

    def test_max_entries_keeps_most_recent(self, store):
        specs = self._fill(store, 6)
        out = store.gc(max_entries=2)
        assert out.kept_entries == 2 and out.evicted_entries == 4
        assert store.size()["entries"] == 2
        # The two newest mtimes survive.
        assert store.get(specs[-1]) is not None
        assert store.get(specs[0]) is None

    def test_hit_refreshes_lru_recency(self, store):
        specs = self._fill(store, 3)
        hit = store.get(specs[0])  # bumps mtime of the oldest entry
        assert hit is not None
        store.gc(max_entries=1)
        assert store.get(specs[0]) is not None

    def test_max_bytes_bound_enforced(self, store):
        self._fill(store, 5)
        before = store.size()["bytes"]
        out = store.gc(max_bytes=before // 2)
        assert out.bytes_after <= before // 2
        assert out.evicted_entries >= 1

    def test_unreferenced_blobs_swept(self, store):
        spec = self._fill(store, 1)[0]
        os.remove(_entry_path(store, spec))
        out = store.gc()
        assert out.dropped_blobs == 1
        assert store.size()["blobs"] == 0

    def test_gc_counts_land_in_stats(self, store):
        self._fill(store, 4)
        store.gc(max_entries=1)
        assert store.stats.evicted == 3


class TestProcessHandle:
    def test_to_doc_from_doc_round_trip(self, store):
        doc = store.to_doc()
        clone = ResultStore.from_doc(json.loads(json.dumps(doc)))
        assert clone.root == store.root and clone.code == store.code
        spec = _spec()
        store.put(spec, _result(spec))
        assert clone.get(spec) is not None

    def test_stats_start_zeroed(self, store):
        assert store.stats == StoreStats()
