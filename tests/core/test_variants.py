"""Tests for repro.core.variants (design-point elaboration)."""

import pytest

from repro.arch.params import ArchParams
from repro.core.variants import (
    FpgaVariant,
    VariantConfig,
    VariantKind,
    baseline_variant,
    naive_nem_variant,
    optimized_nem_variant,
)

ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="module")
def base():
    return baseline_variant(ARCH)


@pytest.fixture(scope="module")
def naive():
    return naive_nem_variant(ARCH)


@pytest.fixture(scope="module")
def opt():
    return optimized_nem_variant(ARCH, downsize=8.0)


class TestConfig:
    def test_only_opt_downsizes(self):
        with pytest.raises(ValueError):
            VariantConfig(VariantKind.CMOS_ONLY, wire_buffer_downsize=4.0)
        with pytest.raises(ValueError):
            VariantConfig(VariantKind.CMOS_NEM_NAIVE, wire_buffer_downsize=4.0)

    def test_downsize_range(self):
        with pytest.raises(ValueError):
            VariantConfig(VariantKind.CMOS_NEM_OPT, wire_buffer_downsize=0.5)

    def test_kinds_relay_flag(self):
        assert not VariantKind.CMOS_ONLY.uses_relays
        assert VariantKind.CMOS_NEM_NAIVE.uses_relays
        assert VariantKind.CMOS_NEM_OPT.uses_relays


class TestElaboration:
    def test_geometry_fixed_point_converges(self, base):
        pitch_before = base.tile_pitch_m
        base.solve()
        assert base.tile_pitch_m == pytest.approx(pitch_before, rel=1e-6)

    def test_baseline_has_all_buffers_with_restorers(self, base):
        assert base.wire_buffer is not None and base.wire_buffer.level_restorer
        assert base.lb_input_buffer is not None
        assert base.lb_output_buffer is not None

    def test_naive_keeps_buffers_without_restorers(self, naive):
        assert naive.wire_buffer is not None and not naive.wire_buffer.level_restorer
        assert naive.lb_input_buffer is not None

    def test_opt_removes_lb_buffers(self, opt):
        assert opt.lb_input_buffer is None
        assert opt.lb_output_buffer is None
        assert opt.wire_buffer is not None  # wire buffers only downsized

    def test_opt_wire_buffer_smaller_than_naive(self, naive, opt):
        assert opt.wire_buffer.area_min_widths < naive.wire_buffer.area_min_widths

    def test_pitch_ordering(self, base, naive, opt):
        # Stacking shrinks the tile; the paper's 2x footprint claim.
        assert opt.tile_pitch_m < base.tile_pitch_m
        assert naive.tile_pitch_m < base.tile_pitch_m

    def test_area_reduction_about_2x(self, base, opt):
        ratio = base.area.footprint_m2 / opt.area.footprint_m2
        assert 1.6 < ratio < 3.0

    def test_naive_reduction_not_more_than_opt(self, base, naive, opt):
        naive_ratio = base.area.footprint_m2 / naive.area.footprint_m2
        opt_ratio = base.area.footprint_m2 / opt.area.footprint_m2
        assert naive_ratio <= opt_ratio + 1e-9


class TestFabricViews:
    def test_baseline_fabric_degraded(self, base):
        fabric = base.fabric()
        assert fabric.degraded_inputs
        assert fabric.switch_r > 2e3  # pass transistor slower than relay

    def test_nem_fabric_full_swing_and_2k(self, opt):
        fabric = opt.fabric()
        assert not fabric.degraded_inputs
        assert fabric.switch_r == pytest.approx(2e3, rel=0.2)  # + via hops

    def test_nem_off_loading_tiny(self, base, opt):
        # Relay Coff = 6.7 aF vs NMOS diffusion: the wire off-load
        # collapses, a key CMOS-NEM speed/power advantage.
        assert opt.fabric().wire_off_load < base.fabric().wire_off_load / 10.0

    def test_local_delays_positive(self, base, opt):
        for variant in (base, opt):
            fabric = variant.fabric()
            assert fabric.t_local_in > 0
            assert fabric.t_local_out > 0
            assert fabric.t_local_feedback > 0
            assert fabric.t_lut > 0

    def test_opt_local_in_much_faster(self, base, opt):
        # No input buffer + low-Ron relay crossbar entry.
        assert opt.fabric().t_local_in < base.fabric().t_local_in / 5.0

    def test_leakage_specs(self, base, opt):
        assert base.leakage_spec().switch_leak > 0
        assert opt.leakage_spec().switch_leak == 0.0
        assert opt.leakage_spec().sram_leak == 0.0

    def test_dynamic_specs(self, base, opt):
        assert opt.dynamic_spec().local_hop_cap < base.dynamic_spec().local_hop_cap
        assert base.dynamic_spec().clock_cap_per_tile > 0

    def test_repr(self, opt):
        assert "cmos-nem-opt" in repr(opt)
