"""Tests for repro.core.robustness (seed-stability of the claims)."""

import pytest

from repro.arch.params import ArchParams
from repro.core.robustness import RatioStats, format_study, seed_sweep
from repro.netlist.generate import GeneratorParams, generate

ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="module")
def study():
    netlist = generate(GeneratorParams("seeds", num_luts=80, ff_fraction=0.25, seed=55))
    return seed_sweep(netlist, ARCH, seeds=(1, 2, 3), downsize=8.0)


class TestSeedSweep:
    def test_all_seeds_route(self, study):
        assert not study.failed_seeds
        assert len(study.comparisons) == 3

    def test_ratios_stable_across_seeds(self, study):
        """The headline ratios are architecture properties: seed noise
        must be small relative to the effect size."""
        stats = study.stats()
        assert stats["leakage_reduction"].relative_spread < 0.25
        assert stats["dynamic_reduction"].relative_spread < 0.25
        # Area is placement-independent entirely.
        assert stats["area_reduction"].relative_spread == pytest.approx(0.0, abs=1e-12)

    def test_effect_present_for_every_seed(self, study):
        for cmp in study.comparisons:
            assert cmp.leakage_reduction > 4.0
            assert cmp.dynamic_reduction > 1.3

    def test_format(self, study):
        text = format_study(study)
        assert "geomean" in text
        assert "leakage_reduction" in text

    def test_rejects_empty_seeds(self):
        netlist = generate(GeneratorParams("s", num_luts=20, seed=1))
        with pytest.raises(ValueError):
            seed_sweep(netlist, ARCH, seeds=())


class TestRatioStats:
    def test_geomean(self):
        stats = RatioStats([2.0, 8.0])
        assert stats.geomean == pytest.approx(4.0)

    def test_spread(self):
        stats = RatioStats([2.0, 8.0])
        assert stats.relative_spread == pytest.approx(6.0 / 4.0)
