"""Tests for repro.core.exploration (future-work architecture sweeps)."""

import pytest

from repro.arch.params import ArchParams
from repro.core.exploration import (
    format_sweep,
    sweep_connection_flexibility,
    sweep_segment_length,
)
from repro.netlist.generate import GeneratorParams, generate

BASE = ArchParams(channel_width=48)


@pytest.fixture(scope="module")
def circuit():
    return generate(GeneratorParams("explore", num_luts=60, ff_fraction=0.2, seed=33))


@pytest.fixture(scope="module")
def seg_points(circuit):
    return sweep_segment_length(circuit, BASE, lengths=(1, 4), seed=2)


class TestSegmentLengthSweep:
    def test_one_point_per_length(self, seg_points):
        assert [p.params.segment_length for p in seg_points] == [1, 4]

    def test_points_complete(self, seg_points):
        for p in seg_points:
            assert p.wmin > 0
            assert p.wirelength > 0
            assert p.baseline_critical_path > 0
            assert p.nem_critical_path > 0
            assert p.nem_leakage_reduction > 1.0
            assert p.relay_count_per_tile > 0

    def test_width_is_low_stress_of_wmin(self, seg_points):
        from repro.vpr.flow import low_stress_width

        for p in seg_points:
            assert p.params.channel_width >= low_stress_width(p.wmin)

    def test_rejects_empty_sweep(self, circuit):
        with pytest.raises(ValueError):
            sweep_segment_length(circuit, BASE, lengths=())


class TestConnectionFlexibilitySweep:
    def test_richer_fc_never_needs_wider_channel(self, circuit):
        points = sweep_connection_flexibility(circuit, BASE, fc_in_values=(0.1, 0.4), seed=2)
        # More CB taps per pin -> the router has at least as much
        # freedom; Wmin must not grow.
        assert points[1].wmin <= points[0].wmin + 2  # small noise tolerance

    def test_richer_fc_costs_more_relays(self, circuit):
        points = sweep_connection_flexibility(circuit, BASE, fc_in_values=(0.1, 0.4), seed=2)
        assert points[1].relay_count_per_tile > points[0].relay_count_per_tile


class TestFormatting:
    def test_format_sweep_table(self, seg_points):
        text = format_sweep(seg_points, "segment_length")
        assert "Wmin" in text
        assert len(text.splitlines()) == len(seg_points) + 1

    def test_unknown_knob(self, seg_points):
        with pytest.raises(KeyError):
            format_sweep(seg_points, "bogus")
