"""Tests for the repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["device"],
            ["device", "--fabricated"],
            ["crossbar", "--rows", "3", "--cols", "2"],
            ["flow", "--circuit", "tseng", "--scale", "0.03"],
            ["sweep", "--circuit", "alu4"],
            ["headline", "--suite", "mcnc20"],
            ["explore", "--knob", "fc_in"],
            ["rrgraph", "--stats"],
            ["rrgraph", "--stats", "--nx", "4", "--ny", "5", "--json"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_bad_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["headline", "--suite", "nope"])


class TestExecution:
    def test_device_runs(self, capsys):
        assert main(["device"]) == 0
        out = capsys.readouterr().out
        assert "Vpi" in out and "switching delay" in out

    def test_device_fabricated(self, capsys):
        assert main(["device", "--fabricated"]) == 0
        assert "fabricated" in capsys.readouterr().out

    def test_crossbar_runs(self, capsys):
        assert main(["crossbar", "--targets", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "programmed exactly the targets: True" in out

    def test_flow_runs_small(self, capsys):
        code = main([
            "flow", "--circuit", "tseng", "--scale", "0.03",
            "--width", "56", "--show-maps",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "floorplan" in out
        assert "leak.red" in out

    def test_sweep_runs_small(self, capsys):
        code = main(["sweep", "--circuit", "tseng", "--scale", "0.03", "--width", "56"])
        assert code == 0
        out = capsys.readouterr().out
        assert "downsize" in out
        assert "preferred corner" in out

    def test_map_runs(self, capsys, tmp_path):
        blif = tmp_path / "m.blif"
        code = main(["map", "--gates", "120", "--blif", str(blif)])
        assert code == 0
        assert "equivalence" in capsys.readouterr().out
        assert blif.exists()

    def test_explore_runs_small(self, capsys):
        code = main([
            "explore", "--knob", "segment_length", "--circuit", "tseng",
            "--scale", "0.02", "--width", "40",
        ])
        assert code == 0
        assert "Wmin" in capsys.readouterr().out

    def test_rrgraph_stats(self, capsys):
        code = main(["rrgraph", "--stats", "--nx", "4", "--ny", "4",
                     "--width", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RR graph 4x4, W = 8" in out
        assert "nodes:" in out and "edges:" in out
        assert "memory:" in out and "build:" in out

    def test_rrgraph_stats_json(self, capsys):
        import json

        code = main(["rrgraph", "--stats", "--nx", "4", "--ny", "4",
                     "--width", "8", "--json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["grid"] == [4, 4]
        assert stats["num_nodes"] == sum(stats["nodes_by_kind"].values())
        assert stats["num_edges"] == sum(stats["edges_by_switch"].values())
        assert stats["memory_bytes"] > 0

    def test_rrgraph_metrics_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "rr.jsonl"
        code = main(["rrgraph", "--stats", "--nx", "4", "--ny", "4",
                     "--width", "8", "--json", "--metrics-out", str(path)])
        assert code == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "manifest"
        assert records[0]["arch"]["channel_width"] == 8
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "fabric.cache_lookup" in names
