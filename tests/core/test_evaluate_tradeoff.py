"""Tests for repro.core.evaluate / tradeoff / report (Fig. 12)."""

import pytest

from repro.arch.params import ArchParams
from repro.core.evaluate import Comparison, evaluate_design
from repro.core.report import (
    PAPER_HEADLINE,
    PAPER_NAIVE,
    format_fig12_table,
    format_headline,
    headline_summary,
)
from repro.core.tradeoff import fig12_series, geomean_curve, sweep_circuit
from repro.core.variants import baseline_variant, optimized_nem_variant
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.flow import run_flow

ARCH = ArchParams(channel_width=48)
SWEEP = (1.0, 4.0, 8.0, 16.0)


@pytest.fixture(scope="module")
def flow():
    netlist = generate(GeneratorParams("core", num_luts=90, ff_fraction=0.25, seed=13))
    result = run_flow(netlist, ARCH)
    assert result.success
    return result


@pytest.fixture(scope="module")
def curve(flow):
    return sweep_circuit(flow, ARCH, downsizes=SWEEP)


class TestEvaluateDesign:
    def test_baseline_point(self, flow):
        point = evaluate_design(flow, baseline_variant(ARCH))
        assert point.critical_path > 0
        assert point.total_dynamic > 0
        assert point.total_leakage > 0
        assert point.frequency == pytest.approx(1.0 / point.critical_path)

    def test_frequency_override(self, flow):
        point = evaluate_design(flow, baseline_variant(ARCH), frequency=5e8)
        assert point.frequency == 5e8

    def test_comparison_ratios(self, flow):
        base = evaluate_design(flow, baseline_variant(ARCH))
        nem = evaluate_design(
            flow, optimized_nem_variant(ARCH, 8.0), frequency=base.frequency
        )
        cmp = Comparison.of(base, nem)
        assert cmp.leakage_reduction > 1.0
        assert cmp.dynamic_reduction > 1.0
        assert cmp.area_reduction > 1.0


class TestSweep:
    def test_point_per_downsize(self, curve):
        assert [p.downsize for p in curve.points] == list(SWEEP)

    def test_speedup_decreases_with_downsize(self, curve):
        speedups = [p.speedup for p in curve.points]
        assert speedups == sorted(speedups, reverse=True)

    def test_leakage_reduction_increases_with_downsize(self, curve):
        leaks = [p.leakage_reduction for p in curve.points]
        assert leaks == sorted(leaks)

    def test_naive_point_present(self, curve):
        assert curve.naive is not None
        assert curve.naive.leakage_reduction > 1.0

    def test_preferred_corner_no_speed_penalty(self, curve):
        corner = curve.preferred_corner()
        assert corner.speedup >= 1.0

    def test_fig12_series_shapes(self, curve):
        series = fig12_series(curve)
        assert len(series["speedup"]) == len(SWEEP)
        assert set(series) == {"speedup", "dynamic_reduction", "leakage_reduction", "downsize"}


class TestHeadline:
    def test_paper_shape_reproduced(self, curve):
        """The headline claim: large leakage and dynamic reductions at
        ~2x area with no speed penalty."""
        corner = curve.preferred_corner()
        assert corner.leakage_reduction > 5.0      # paper: 10x
        assert corner.dynamic_reduction > 1.5      # paper: 2x
        assert 1.5 < corner.area_reduction < 3.0   # paper: 2x
        assert corner.speedup >= 1.0               # no speed penalty

    def test_naive_much_weaker_than_technique(self, curve):
        """The technique's whole point (paper Sec. 3.4 comparison)."""
        corner = curve.preferred_corner()
        naive = curve.naive
        assert corner.leakage_reduction > 2.0 * naive.leakage_reduction
        assert corner.dynamic_reduction > naive.dynamic_reduction

    def test_naive_matches_paper_band(self, curve):
        naive = curve.naive
        assert 1.4 < naive.leakage_reduction < 3.0   # paper: 2x
        assert 1.1 < naive.dynamic_reduction < 1.6   # paper: 1.3x

    def test_summary_and_formatting(self, curve):
        summary = headline_summary([curve])
        text = format_headline(summary)
        assert "leakage reduction" in text
        assert "naive" in text.lower() or "Without" in text
        table = format_fig12_table([curve])
        assert curve.circuit in table

    def test_geomean_of_single_curve_identity(self, curve):
        agg = geomean_curve([curve])
        for a, b in zip(agg.points, curve.points):
            assert a.speedup == pytest.approx(b.speedup)

    def test_paper_reference_constants(self):
        assert PAPER_HEADLINE["leakage_reduction"] == 10.0
        assert PAPER_NAIVE["area_reduction"] == 1.8
