"""Tests for repro.core.report and tradeoff aggregation helpers."""

import pytest

from repro.core.evaluate import Comparison
from repro.core.report import (
    PAPER_HEADLINE,
    PAPER_NAIVE,
    format_fig12_table,
    format_headline,
    headline_summary,
)
from repro.core.tradeoff import TradeoffCurve, TradeoffPoint, geomean_curve


def make_curve(name, scale=1.0, naive=True):
    points = [
        TradeoffPoint(downsize=d, speedup=s * scale, dynamic_reduction=dy,
                      leakage_reduction=lk, area_reduction=2.0)
        for d, s, dy, lk in [(1.0, 1.6, 1.3, 2.2), (8.0, 1.1, 1.8, 8.0), (16.0, 0.9, 1.9, 9.0)]
    ]
    naive_cmp = None
    if naive:
        naive_cmp = Comparison(
            circuit=name, speedup=1.5, dynamic_reduction=1.3,
            leakage_reduction=1.9, area_reduction=2.0,
        )
    return TradeoffCurve(circuit=name, points=points, naive=naive_cmp)


class TestPreferredCorner:
    def test_picks_best_leakage_with_no_penalty(self):
        corner = make_curve("c").preferred_corner()
        assert corner.downsize == 8.0  # last point dips below 1.0x

    def test_falls_back_to_fastest_when_all_slow(self):
        curve = make_curve("c", scale=0.5)
        corner = curve.preferred_corner()
        assert corner.speedup == max(p.speedup for p in curve.points)


class TestGeomean:
    def test_combines_two_curves(self):
        agg = geomean_curve([make_curve("a"), make_curve("b", scale=1.2)])
        assert agg.circuit == "geomean"
        expected = (1.6 * 1.6 * 1.2) ** 0.5
        assert agg.points[0].speedup == pytest.approx(expected)

    def test_mismatched_sweeps_rejected(self):
        a = make_curve("a")
        b = make_curve("b")
        b.points = b.points[:2]
        with pytest.raises(ValueError):
            geomean_curve([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean_curve([])

    def test_naive_aggregated(self):
        agg = geomean_curve([make_curve("a"), make_curve("b")])
        assert agg.naive is not None
        assert agg.naive.leakage_reduction == pytest.approx(1.9)

    def test_handles_missing_naive(self):
        agg = geomean_curve([make_curve("a", naive=False), make_curve("b", naive=False)])
        assert agg.naive is None


class TestHeadlineSummary:
    def test_single_curve(self):
        summary = headline_summary([make_curve("only")])
        assert summary.corner.downsize == 8.0
        assert "only" in summary.per_circuit

    def test_multi_curve_uses_geomean(self):
        summary = headline_summary([make_curve("a"), make_curve("b")])
        assert set(summary.per_circuit) == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            headline_summary([])


class TestFormatting:
    def test_format_headline_mentions_both_tables(self):
        text = format_headline(headline_summary([make_curve("x")]))
        assert "preferred corner" in text
        assert "Without selective buffer removal" in text
        assert f"{PAPER_HEADLINE['leakage_reduction']:.1f}" in text

    def test_format_headline_without_naive(self):
        text = format_headline(headline_summary([make_curve("x", naive=False)]))
        assert "Without" not in text

    def test_fig12_table_has_row_per_point(self):
        curves = [make_curve("a"), make_curve("b")]
        table = format_fig12_table(curves)
        assert len(table.splitlines()) == 1 + sum(len(c.points) for c in curves)

    def test_paper_constants(self):
        assert PAPER_NAIVE["dynamic_reduction"] == pytest.approx(1.3)
