"""Hypothesis property tests: routing-fabric invariants.

The RR-graph construction has subtle degeneracies (stride-aligned Fc
patterns, direction-parity decompositions) that only show up at
particular (W, L, grid) combinations; these properties sweep that
space.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.arch.params import ArchParams
from repro.arch.rrgraph import NodeKind, RRGraph


def _all_pairs_reachable(graph: RRGraph) -> bool:
    for tile, src in graph.source_of.items():
        seen = {src}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in graph.adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        for sink_tile, sink in graph.sink_of.items():
            if sink_tile != tile and sink not in seen:
                return False
    return True


class TestFabricReachability:
    @given(
        width=st.integers(8, 40),
        seg_len=st.integers(1, 6),
        side=st.integers(2, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_bidir_full_reachability(self, width, seg_len, side):
        params = ArchParams(channel_width=width, segment_length=seg_len)
        graph = RRGraph(params, side, side)
        assert _all_pairs_reachable(graph)

    @given(
        width=st.integers(8, 40),
        seg_len=st.integers(1, 6),
        side=st.integers(2, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_unidir_full_reachability(self, width, seg_len, side):
        """Regression space for the diagonal-flow decompositions: the
        single-driver fabric must stay strongly connected at every
        (W, L, grid) combination."""
        params = ArchParams(
            channel_width=width, segment_length=seg_len, directionality="unidir"
        )
        graph = RRGraph(params, side, side)
        assert _all_pairs_reachable(graph)

    @given(width=st.integers(8, 32), seg_len=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_unidir_wires_single_entry(self, width, seg_len):
        """No unidirectional wire is ever entered mid-span: every edge
        into a wire lands on its driven end."""
        params = ArchParams(
            channel_width=width, segment_length=seg_len, directionality="unidir"
        )
        graph = RRGraph(params, 3, 3)
        entry_of = {}
        for node in graph.wire_nodes():
            vertical = node.kind is NodeKind.VWIRE
            start = node.y if vertical else node.x
            entry_of[node.id] = start if node.direction > 0 else start + node.span
        for node in graph.nodes:
            if node.kind is NodeKind.SINK:
                continue
            for dst in graph.adjacency[node.id]:
                target = graph.nodes[dst]
                if target.kind not in (NodeKind.HWIRE, NodeKind.VWIRE):
                    continue
                if node.kind in (NodeKind.HWIRE, NodeKind.VWIRE):
                    src_vertical = node.kind is NodeKind.VWIRE
                    src_start = node.y if src_vertical else node.x
                    src_exit = (
                        src_start + node.span if node.direction > 0 else src_start
                    )
                    if node.kind == target.kind:
                        # Collinear continuation: exit feeds entry.
                        assert entry_of[dst] == src_exit

    @given(width=st.integers(8, 32), side=st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_every_pin_connected(self, width, side):
        for mode in ("bidir", "unidir"):
            params = ArchParams(channel_width=width, directionality=mode)
            graph = RRGraph(params, side, side)
            for node in graph.nodes:
                if node.kind is NodeKind.OPIN:
                    assert graph.adjacency[node.id], (mode, "OPIN", node.id)
            # Every IPIN must be fed by at least one wire.
            fed = set()
            for node in graph.wire_nodes():
                for dst in graph.adjacency[node.id]:
                    if graph.nodes[dst].kind is NodeKind.IPIN:
                        fed.add(dst)
            for node in graph.nodes:
                if node.kind is NodeKind.IPIN:
                    assert node.id in fed, (mode, "IPIN", node.id)
