"""Hypothesis property tests: CAD substrate invariants."""

from hypothesis import given, settings, strategies as st

from repro.arch.params import ArchParams
from repro.circuits.logical_effort import geometric_chain, optimal_chain
from repro.circuits.ptm import PTM_22NM
from repro.circuits.rc import RCTree
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.pack import form_bles, pack

TECH = PTM_22NM.transistor


class TestChainProperties:
    @given(c_load=st.floats(min_value=1e-16, max_value=1e-12))
    @settings(max_examples=80)
    def test_optimal_chain_beats_all_stage_counts(self, c_load):
        best = optimal_chain(TECH, c_load)
        d_best = best.delay(c_load)
        for n in range(1, 10):
            assert geometric_chain(TECH, c_load, n).delay(c_load) >= d_best - 1e-20

    @given(
        c_load=st.floats(min_value=1e-16, max_value=1e-12),
        f1=st.floats(min_value=1.0, max_value=8.0),
        f2=st.floats(min_value=1.0, max_value=8.0),
    )
    @settings(max_examples=60)
    def test_downsizing_monotone_tradeoff(self, c_load, f1, f2):
        """More downsizing never increases leakage, never decreases
        delay (weak monotonicity over the pretend-load factor)."""
        from repro.circuits.logical_effort import downsized_chain

        lo, hi = sorted((f1, f2))
        small = downsized_chain(TECH, c_load, hi)
        large = downsized_chain(TECH, c_load, lo)
        assert small.leakage_power() <= large.leakage_power() + 1e-15
        assert small.delay(c_load) >= large.delay(c_load) - 1e-18


class TestRCTreeProperties:
    @given(
        resistances=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=8),
        capacitances=st.lists(st.floats(1e-17, 1e-13), min_size=1, max_size=8),
    )
    @settings(max_examples=80)
    def test_chain_delay_equals_hand_elmore(self, resistances, capacitances):
        n = min(len(resistances), len(capacitances))
        resistances, capacitances = resistances[:n], capacitances[:n]
        tree = RCTree("root", driver_resistance=100.0)
        parent = "root"
        for i, (r, c) in enumerate(zip(resistances, capacitances)):
            tree.add(f"n{i}", parent=parent, resistance=r, capacitance=c)
            parent = f"n{i}"
        # Hand Elmore: sum over nodes of C_i * R(source..i).
        expected = 0.0
        upstream = 100.0
        for r, c in zip(resistances, capacitances):
            upstream += r
            expected += c * upstream
        assert abs(tree.elmore_delay(f"n{n-1}") - 0.69 * expected) < 1e-9 * max(expected, 1e-30)

    @given(extra=st.floats(1e-17, 1e-13))
    @settings(max_examples=40)
    def test_added_cap_never_speeds_up(self, extra):
        tree = RCTree("root", driver_resistance=1e3)
        tree.add("a", parent="root", resistance=100.0, capacitance=1e-15)
        tree.add("b", parent="a", resistance=100.0, capacitance=1e-15)
        before = tree.elmore_delay("b")
        tree.add_capacitance("a", extra)
        assert tree.elmore_delay("b") >= before


class TestGeneratorProperties:
    @given(
        num_luts=st.integers(5, 120),
        k=st.integers(3, 6),
        ff_fraction=st.floats(0.0, 0.6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_netlists_always_valid(self, num_luts, k, ff_fraction, seed):
        params = GeneratorParams(
            "prop", num_luts=num_luts, k=k, ff_fraction=ff_fraction, seed=seed
        )
        netlist = generate(params)
        netlist.validate()  # acyclic, no dangling refs
        assert netlist.num_luts == num_luts
        assert all(len(lut.inputs) <= k for lut in netlist.luts)
        assert len(netlist.ffs) == int(round(ff_fraction * num_luts))
        # Every driver has at least one sink.
        fanouts = netlist.fanout()
        for lut in netlist.luts:
            assert lut.name in fanouts


class TestPackingProperties:
    @given(
        num_luts=st.integers(10, 80),
        ff_fraction=st.floats(0.0, 0.5),
        seed=st.integers(0, 1000),
        n=st.integers(4, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_packing_constraints_hold(self, num_luts, ff_fraction, seed, n):
        netlist = generate(
            GeneratorParams("pk", num_luts=num_luts, ff_fraction=ff_fraction, seed=seed)
        )
        params = ArchParams(n=n, channel_width=32)
        clustered = pack(netlist, params)
        packed = [b.name for c in clustered.clusters for b in c.bles]
        assert sorted(packed) == sorted(b.name for b in form_bles(netlist))
        for cluster in clustered.clusters:
            assert len(cluster.bles) <= n
            assert len(cluster.input_nets) <= params.inputs_per_lb
