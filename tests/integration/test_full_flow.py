"""End-to-end integration tests: netlist -> P&R -> variants -> claims.

These tie every substrate together on one small circuit and assert the
paper's qualitative results hold through the full pipeline.
"""

import pytest

from repro.arch.params import ArchParams
from repro.core.evaluate import Comparison, evaluate_design
from repro.core.tradeoff import geomean_curve, sweep_circuit
from repro.core.variants import baseline_variant, naive_nem_variant, optimized_nem_variant
from repro.netlist.generate import GeneratorParams, generate
from repro.power.breakdown import fold_dynamic, fold_leakage, percentages
from repro.vpr.flow import find_min_channel_width, low_stress_width, run_flow
from repro.vpr.pack import pack
from repro.vpr.place import place

ARCH = ArchParams(channel_width=56)


@pytest.fixture(scope="module")
def flows():
    """Two routed circuits, reused by every test in this module."""
    results = []
    for i, luts in enumerate((100, 140)):
        netlist = generate(
            GeneratorParams(f"int{i}", num_luts=luts, ff_fraction=0.3, seed=60 + i)
        )
        flow = run_flow(netlist, ARCH)
        assert flow.success
        results.append(flow)
    return results


@pytest.fixture(scope="module")
def curves(flows):
    return [sweep_circuit(f, ARCH, downsizes=(1.0, 4.0, 8.0, 16.0)) for f in flows]


class TestPaperMethodology:
    def test_wmin_plus_margin_routes(self):
        """The paper's W derivation: Wmin + 20% must route easily."""
        netlist = generate(GeneratorParams("wm", num_luts=80, seed=77))
        clustered = pack(netlist, ARCH)
        placement = place(clustered, seed=3)
        wmin, _res, _g = find_min_channel_width(placement, ARCH, start=8)
        from repro.vpr.route import route_design

        result, _ = route_design(placement, ARCH, channel_width=low_stress_width(wmin))
        assert result.success

    def test_routing_shared_across_variants(self, flows):
        """Variants only re-evaluate electricals: same P&R result
        object is consumed by all three variants without error."""
        flow = flows[0]
        for variant in (
            baseline_variant(ARCH),
            naive_nem_variant(ARCH),
            optimized_nem_variant(ARCH, 8.0),
        ):
            point = evaluate_design(flow, variant)
            assert point.critical_path > 0


class TestFig9Baseline:
    def test_dynamic_breakdown_matches_paper_shape(self, flows):
        base = evaluate_design(flows[0], baseline_variant(ARCH))
        pct = percentages(fold_dynamic(base.dynamic))
        # Paper: wires 40, buffers 30, LUTs 20, clock 10 (%).
        assert 25 < pct["wire_interconnect"] < 55
        assert 20 < pct["routing_buffers"] < 45
        assert 5 < pct["luts"] < 35
        assert 4 < pct["clocking"] < 22

    def test_leakage_breakdown_matches_paper_shape(self, flows):
        base = evaluate_design(flows[0], baseline_variant(ARCH))
        pct = percentages(fold_leakage(base.leakage))
        # Paper: buffers 70, SRAM 12, pass 10, LUTs 8 (%).
        assert 55 < pct["routing_buffers"] < 85
        assert 5 < pct["routing_srams"] < 22
        assert 4 < pct["routing_pass_transistors"] < 20
        assert 3 < pct["luts"] < 16


class TestHeadlineClaims:
    def test_geomean_preferred_corner(self, curves):
        agg = geomean_curve(curves)
        corner = agg.preferred_corner()
        # Paper: 10x leakage / 2x dynamic / 2x area at speedup >= 1.
        assert corner.speedup >= 1.0
        assert corner.leakage_reduction > 5.0
        assert corner.dynamic_reduction > 1.5
        assert 1.5 < corner.area_reduction < 3.0

    def test_naive_band(self, curves):
        agg = geomean_curve(curves)
        assert 1.4 < agg.naive.leakage_reduction < 3.0
        assert 1.1 < agg.naive.dynamic_reduction < 1.6

    def test_nem_not_slower_at_full_buffers(self, flows):
        """Paper: relays impose no speed penalty before downsizing."""
        base = evaluate_design(flows[0], baseline_variant(ARCH))
        opt1 = evaluate_design(flows[0], optimized_nem_variant(ARCH, 1.0))
        assert opt1.critical_path <= base.critical_path

    def test_reductions_consistent_across_circuits(self, curves):
        """Every circuit individually shows the effect (not an artifact
        of one workload)."""
        for curve in curves:
            corner = curve.preferred_corner()
            assert corner.leakage_reduction > 4.0
            assert corner.dynamic_reduction > 1.4
