"""Hypothesis property tests: device physics and crossbar invariants."""

from hypothesis import given, settings, strategies as st

from repro.crossbar.array import uniform_crossbar
from repro.crossbar.halfselect import HalfSelectProgrammer, solve_voltages
from repro.nemrelay.device import NEMRelay
from repro.nemrelay.electrostatics import (
    ActuationModel,
    pull_in_voltage,
    pull_out_voltage,
)
from repro.nemrelay.geometry import BeamGeometry
from repro.nemrelay.materials import AIR, OIL, POLYSILICON, POLY_PLATINUM

# Strategy: physically sensible beam geometries (slender cantilevers
# with the contact gap strictly inside the actuation gap).
lengths = st.floats(min_value=200e-9, max_value=50e-6)
thickness_ratio = st.floats(min_value=0.01, max_value=0.05)   # h = ratio * L
gap_ratio = st.floats(min_value=0.01, max_value=0.08)         # g0 = ratio * L
# gmin/g0: the closed forms give Vpo -> Vpi as gmin -> (2/3) g0 (the
# hysteresis window closes exactly there), so useful relays keep the
# contact gap well below it; the paper's device uses 3.6/11 ~ 0.33.
contact_ratio = st.floats(min_value=0.1, max_value=0.55)


@st.composite
def geometries(draw):
    length = draw(lengths)
    thickness = length * draw(thickness_ratio)
    gap = length * draw(gap_ratio)
    contact = gap * draw(contact_ratio)
    return BeamGeometry(length=length, thickness=thickness, gap=gap, contact_gap=contact)


materials = st.sampled_from([POLYSILICON, POLY_PLATINUM])
ambients = st.sampled_from([AIR, OIL])


class TestPullInPullOutProperties:
    @given(geom=geometries(), mat=materials, amb=ambients)
    @settings(max_examples=150)
    def test_hysteresis_always_exists(self, geom, mat, amb):
        """Vpo < Vpi for every physical geometry — hysteresis is
        structural (pull-in at g0/3, hold at gmin < g0)."""
        vpi = pull_in_voltage(mat, geom, amb)
        vpo = pull_out_voltage(mat, geom, amb)
        assert 0 < vpo < vpi

    @given(geom=geometries(), mat=materials, amb=ambients, factor=st.floats(1.1, 5.0))
    @settings(max_examples=60)
    def test_vpi_linear_in_isomorphic_scale(self, geom, mat, amb, factor):
        base = pull_in_voltage(mat, geom, amb)
        scaled = pull_in_voltage(mat, geom.scaled(factor), amb)
        assert abs(scaled - base * factor) < 1e-6 * max(scaled, 1.0)

    @given(geom=geometries(), mat=materials, amb=ambients,
           adhesion_frac=st.floats(0.0, 0.9))
    @settings(max_examples=60)
    def test_adhesion_monotonically_lowers_vpo(self, geom, mat, amb, adhesion_frac):
        from repro.nemrelay.electrostatics import effective_spring_constant

        spring = effective_spring_constant(mat, geom) * geom.travel
        clean = pull_out_voltage(mat, geom, amb)
        sticky = pull_out_voltage(mat, geom, amb, adhesion_force=adhesion_frac * spring)
        assert sticky <= clean + 1e-12


class TestRelayStateMachineProperties:
    @given(
        geom=geometries(), mat=materials, amb=ambients,
        voltages=st.lists(st.floats(-2.0, 2.0), min_size=1, max_size=30),
    )
    @settings(max_examples=60)
    def test_state_consistent_with_thresholds(self, geom, mat, amb, voltages):
        """After any voltage sequence (expressed as fractions of Vpi):
        above Vpi always on, at-or-below Vpo always off."""
        model = ActuationModel(mat, geom, amb)
        relay = NEMRelay(model)
        for fraction in voltages:
            v = fraction * model.pull_in
            state = relay.apply_gate_voltage(v)
            if abs(v) >= model.pull_in:
                assert relay.is_on
            elif abs(v) <= model.pull_out:
                assert not relay.is_on

    @given(geom=geometries(), mat=materials, amb=ambients,
           mid_fraction=st.floats(0.05, 0.95))
    @settings(max_examples=60)
    def test_window_voltages_never_flip_state(self, geom, mat, amb, mid_fraction):
        model = ActuationModel(mat, geom, amb)
        v_window = model.pull_out + mid_fraction * (model.pull_in - model.pull_out)
        v_window = min(max(v_window, model.pull_out * 1.001), model.pull_in * 0.999)
        for initial_on in (False, True):
            relay = NEMRelay(model)
            if initial_on:
                relay.apply_gate_voltage(1.5 * model.pull_in)
            before = relay.is_on
            relay.apply_gate_voltage(v_window)
            assert relay.is_on == before


class TestHalfSelectProperties:
    @given(
        vpis=st.lists(st.floats(5.5, 6.5), min_size=2, max_size=40),
        vpos=st.lists(st.floats(2.0, 3.5), min_size=2, max_size=40),
    )
    @settings(max_examples=80)
    def test_solved_voltages_valid_for_whole_population(self, vpis, vpos):
        solved = solve_voltages(vpis, vpos)
        if solved is not None:
            # Valid for every (Vpi, Vpo) combination in the population,
            # which the corner pairs bound.
            assert all(
                solved.is_valid(vpi, vpo)
                for vpi in (min(vpis), max(vpis))
                for vpo in (min(vpos), max(vpos))
            )

    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_programming_reaches_exactly_the_targets(self, rows, cols, data):
        """For any target set on any small crossbar, half-select
        programming closes exactly the targets."""
        from repro.crossbar.halfselect import PAPER_2X2_VOLTAGES
        from repro.nemrelay.geometry import FABRICATED_DEVICE

        coords = [(r, c) for r in range(rows) for c in range(cols)]
        targets = set(data.draw(st.lists(st.sampled_from(coords), max_size=len(coords))))
        model = ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        xbar = uniform_crossbar(rows, cols, model)
        programmer = HalfSelectProgrammer(xbar, PAPER_2X2_VOLTAGES)
        assert programmer.program(targets) == targets
        programmer.erase()
        assert xbar.configuration() == set()
