"""Integration tests: routed design -> relay bitstream -> programming.

The executable bridge between the paper's Sec. 2 (half-select
programming) and Sec. 3 (routed CMOS-NEM FPGAs).
"""

import pytest

from repro.arch.params import ArchParams
from repro.arch.rrgraph import NodeKind
from repro.config import (
    extract_bitstream,
    plan_tile_arrays,
    program_fabric,
    verify_bitstream_connectivity,
)
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.flow import run_flow

ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="module")
def flow():
    netlist = generate(GeneratorParams("bits", num_luts=80, ff_fraction=0.25, seed=44))
    result = run_flow(netlist, ARCH)
    assert result.success
    return result


@pytest.fixture(scope="module")
def bitstream(flow):
    return extract_bitstream(flow.routing, flow.graph)


class TestExtraction:
    def test_nonempty(self, bitstream):
        assert bitstream.total_switches > 0
        assert bitstream.tiles

    def test_every_edge_is_programmable_kind(self, flow, bitstream):
        graph = flow.graph
        wire_kinds = {NodeKind.HWIRE, NodeKind.VWIRE}
        for edges in bitstream.switches_by_tile.values():
            for u, v in edges:
                ku, kv = graph.nodes[u].kind, graph.nodes[v].kind
                assert (
                    ku is NodeKind.OPIN and kv in wire_kinds
                    or ku in wire_kinds and kv is NodeKind.IPIN
                    or (ku in wire_kinds and kv in wire_kinds)
                )

    def test_edges_unique_across_tiles(self, bitstream):
        seen = set()
        for edges in bitstream.switches_by_tile.values():
            for edge in edges:
                assert edge not in seen
                seen.add(edge)

    def test_edge_count_matches_tree_switch_hops(self, flow, bitstream):
        graph = flow.graph
        wire_kinds = {NodeKind.HWIRE, NodeKind.VWIRE}
        expected = set()
        for tree in flow.routing.trees.values():
            for node, parent in tree.parent.items():
                if parent < 0:
                    continue
                ku, kv = graph.nodes[parent].kind, graph.nodes[node].kind
                if ku is NodeKind.SOURCE or kv is NodeKind.SINK:
                    continue
                if ku in wire_kinds or kv in wire_kinds:
                    expected.add((parent, node))
        assert bitstream.total_switches == len(expected)

    def test_net_attribution(self, flow, bitstream):
        assert set(bitstream.net_of_edge.values()) <= set(flow.routing.trees)

    def test_utilization_fraction(self, bitstream):
        from repro.arch.tile import build_inventory

        inventory = build_inventory(ARCH)
        u = bitstream.utilization(inventory.routing_switches)
        assert 0 < u < 1.0


class TestArrayPlanning:
    def test_every_switch_gets_a_crosspoint(self, bitstream):
        plans = plan_tile_arrays(bitstream)
        planned = sum(len(p.targets) for p in plans)
        assert planned == bitstream.total_switches

    def test_targets_fit_arrays(self, bitstream):
        for plan in plan_tile_arrays(bitstream):
            for r, c in plan.targets:
                assert 0 <= r < plan.rows
                assert 0 <= c < plan.cols

    def test_row_bound_respected(self, bitstream):
        for plan in plan_tile_arrays(bitstream, max_rows=8):
            assert plan.rows <= 8

    def test_rejects_bad_max_rows(self, bitstream):
        with pytest.raises(ValueError):
            plan_tile_arrays(bitstream, max_rows=0)


class TestProgramming:
    def test_fabric_programs_without_failures(self, bitstream):
        report = program_fabric(bitstream)
        assert report.success
        assert report.failures == []
        assert report.relays_closed == bitstream.total_switches
        assert report.arrays_programmed == len(bitstream.tiles)
        assert report.row_steps >= report.arrays_programmed

    def test_connectivity_verified(self, flow, bitstream):
        assert verify_bitstream_connectivity(bitstream, flow.routing, flow.graph)

    def test_missing_switch_breaks_connectivity(self, flow, bitstream):
        import copy

        broken = copy.deepcopy(bitstream)
        tile = broken.tiles[0]
        removed = broken.switches_by_tile[tile].pop()
        # Removing a conducting switch must be detected unless that
        # edge was... it is always on some net's sink path or a branch.
        ok = verify_bitstream_connectivity(broken, flow.routing, flow.graph)
        # The removed edge belongs to a routed tree; if it lies on a
        # path to any sink the check fails.  Branch-only nodes are on
        # the path to at least one sink by construction, so:
        assert not ok
