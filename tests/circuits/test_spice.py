"""Tests for repro.circuits.spice — and Elmore-vs-MNA validation."""

import math

import numpy as np
import pytest

from repro.circuits.rc import RCTree
from repro.circuits.spice import Circuit, simulate_rc_ladder, step


class TestCircuitConstruction:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_resistor("r1", "a", "0", 100.0)
        with pytest.raises(ValueError):
            c.add_capacitor("r1", "a", "0", 1e-12)

    def test_nonpositive_values_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("r", "a", "0", 0.0)
        with pytest.raises(ValueError):
            c.add_capacitor("c", "a", "0", -1e-12)

    def test_bad_transient_args(self):
        c = Circuit()
        c.add_vsource("v", "a", "0", step(1.0))
        c.add_resistor("r", "a", "b", 1.0)
        c.add_capacitor("cb", "b", "0", 1e-12)
        with pytest.raises(ValueError):
            c.transient(t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError):
            c.transient(t_stop=1e-9, dt=1e-8)


class TestAnalyticAnswers:
    def test_single_rc_step_response(self):
        """v(t) = V (1 - exp(-t/RC)): check at t = RC and 3 RC."""
        r, cap, v = 1e3, 1e-12, 1.0
        circuit = Circuit()
        circuit.add_vsource("v", "in", "0", step(v))
        circuit.add_resistor("r", "in", "out", r)
        circuit.add_capacitor("c", "out", "0", cap)
        tau = r * cap
        result = circuit.transient(t_stop=5 * tau, dt=tau / 400)
        idx = np.searchsorted(result.times, tau)
        assert result.voltage("out")[idx] == pytest.approx(v * (1 - math.exp(-1)), rel=0.01)
        idx3 = np.searchsorted(result.times, 3 * tau)
        assert result.voltage("out")[idx3] == pytest.approx(v * (1 - math.exp(-3)), rel=0.01)

    def test_rc_50_delay_is_069_tau(self):
        r, cap = 2e3, 3e-13
        circuit = Circuit()
        circuit.add_vsource("v", "in", "0", step(1.0))
        circuit.add_resistor("r", "in", "out", r)
        circuit.add_capacitor("c", "out", "0", cap)
        result = circuit.transient(t_stop=8 * r * cap, dt=r * cap / 500)
        d50 = result.delay_50("out", v_final=1.0)
        assert d50 == pytest.approx(math.log(2) * r * cap, rel=0.02)

    def test_resistive_divider_dc(self):
        circuit = Circuit()
        circuit.add_vsource("v", "in", "0", step(2.0))
        circuit.add_resistor("r1", "in", "mid", 1e3)
        circuit.add_resistor("r2", "mid", "0", 1e3)
        circuit.add_capacitor("c", "mid", "0", 1e-15)
        result = circuit.transient(t_stop=5e-11, dt=1e-13)
        assert result.voltage("mid")[-1] == pytest.approx(1.0, rel=0.01)

    def test_floating_capacitor_couples(self):
        # Cap from in to out with load R to ground: out starts following
        # the step then decays (high-pass).
        circuit = Circuit()
        circuit.add_vsource("v", "in", "0", step(1.0, t_rise=1e-12))
        circuit.add_capacitor("cc", "in", "out", 1e-13)
        circuit.add_resistor("rl", "out", "0", 1e4)
        result = circuit.transient(t_stop=2e-8, dt=1e-12)
        v = result.voltage("out")
        assert max(v) > 0.3          # coupled edge visible
        assert abs(v[-1]) < 0.02     # decays to zero


class TestElmoreValidation:
    """Bound the flow's Elmore model against the MNA waveforms."""

    @pytest.mark.parametrize("segments", [1, 3, 8])
    def test_ladder_elmore_within_tolerance(self, segments):
        r_drv = 5e3
        rs = [200.0] * segments
        cs = [2e-15] * segments
        result, far = simulate_rc_ladder(r_drv, rs, cs)
        d50 = result.delay_50(far, v_final=1.0)
        # The flow's Elmore estimate for the same ladder:
        tree = RCTree("src", driver_resistance=r_drv)
        prev = "src"
        for i, (r, c) in enumerate(zip(rs, cs)):
            tree.add(f"n{i}", parent=prev, resistance=r, capacitance=c)
            prev = f"n{i}"
        elmore = tree.elmore_delay(prev)
        # Elmore (with the ln2 factor) tracks the 50% delay within
        # ~25% for driver-dominated RC ladders.
        assert d50 == pytest.approx(elmore, rel=0.25)

    def test_branched_tree_elmore_within_tolerance(self):
        circuit = Circuit()
        circuit.add_vsource("v", "in", "0", step(1.0))
        circuit.add_resistor("rd", "in", "mid", 3e3)
        circuit.add_capacitor("cm", "mid", "0", 1e-15)
        circuit.add_resistor("ra", "mid", "a", 1e3)
        circuit.add_capacitor("ca", "a", "0", 4e-15)
        circuit.add_resistor("rb", "mid", "b", 2e3)
        circuit.add_capacitor("cb", "b", "0", 2e-15)
        result = circuit.transient(t_stop=5e-10, dt=2.5e-13)

        tree = RCTree("src", driver_resistance=3e3)
        tree.add("mid", parent="src", resistance=0.0, capacitance=1e-15)
        tree.add("a", parent="mid", resistance=1e3, capacitance=4e-15)
        tree.add("b", parent="mid", resistance=2e3, capacitance=2e-15)
        for sink in ("a", "b"):
            d50 = result.delay_50(sink, v_final=1.0)
            assert d50 == pytest.approx(tree.elmore_delay(sink), rel=0.30)

    def test_elmore_is_conservative_for_far_sink(self):
        """For ladders, Elmore*ln2/0.69 >= true 50% delay (classic
        bound): our 0.69-factored value should not underestimate by
        more than a few percent."""
        result, far = simulate_rc_ladder(1e3, [500.0] * 5, [1e-15] * 5)
        d50 = result.delay_50(far, v_final=1.0)
        tree = RCTree("src", driver_resistance=1e3)
        prev = "src"
        for i in range(5):
            tree.add(f"n{i}", parent=prev, resistance=500.0, capacitance=1e-15)
            prev = f"n{i}"
        assert tree.elmore_delay(prev) >= 0.92 * d50
