"""Tests for repro.circuits.ptm."""

import pytest

from repro.circuits.ptm import (
    InterconnectModel,
    PTM_22NM,
    PTM_90NM,
    Technology,
    TransistorModel,
)


class TestTransistorModel:
    def test_default_is_22nm(self):
        t = PTM_22NM.transistor
        assert t.node_nm == 22
        assert t.vdd == pytest.approx(0.8)

    def test_vt_below_vdd(self):
        assert 0 < PTM_22NM.transistor.vt < PTM_22NM.transistor.vdd

    def test_fo4_delay_in_expected_band(self):
        # 22nm FO4 should land in single-digit to low-tens of ps.
        fo4 = PTM_22NM.transistor.fo4_delay()
        assert 3e-12 < fo4 < 30e-12

    def test_90nm_slower_than_22nm(self):
        assert PTM_90NM.transistor.fo4_delay() > PTM_22NM.transistor.fo4_delay()

    def test_inverter_cap_includes_pmos(self):
        t = PTM_22NM.transistor
        assert t.inverter_input_cap == pytest.approx(t.c_gate_min * (1 + t.pmos_beta))

    def test_rejects_vt_above_vdd(self):
        with pytest.raises(ValueError):
            TransistorModel(vdd=0.8, vt=0.9)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            TransistorModel(r_min_nmos=0.0)

    def test_tau_positive(self):
        assert PTM_22NM.transistor.tau > 0


class TestInterconnect:
    def test_wire_scaling_linear(self):
        ic = PTM_22NM.interconnect
        assert ic.wire_resistance(2e-6) == pytest.approx(2 * ic.wire_resistance(1e-6))
        assert ic.wire_capacitance(2e-6) == pytest.approx(2 * ic.wire_capacitance(1e-6))

    def test_typical_values_100um(self):
        ic = PTM_22NM.interconnect
        # ~0.2 fF/um and a few ohm/um: standard intermediate-layer PTM.
        assert ic.wire_capacitance(100e-6) == pytest.approx(20e-15, rel=0.3)
        assert 50 < ic.wire_resistance(100e-6) < 2000

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            PTM_22NM.interconnect.wire_resistance(-1.0)

    def test_rejects_nonpositive_parasitics(self):
        with pytest.raises(ValueError):
            InterconnectModel(r_per_m=0.0)


class TestTechnology:
    def test_bundle_properties(self):
        t = Technology()
        assert t.node_nm == 22
        assert t.vdd == pytest.approx(0.8)
