"""Tests for repro.circuits.logical_effort (Sec. 3.4 buffer design)."""

import pytest

from repro.circuits.logical_effort import (
    InverterChain,
    downsized_chain,
    geometric_chain,
    optimal_chain,
    optimal_num_stages,
)
from repro.circuits.ptm import PTM_22NM

TECH = PTM_22NM.transistor


class TestOptimalNumStages:
    def test_unity_effort_single_stage(self):
        assert optimal_num_stages(1.0) == 1
        assert optimal_num_stages(0.5) == 1

    def test_effort_4_one_stage(self):
        assert optimal_num_stages(4.0) == 1

    def test_effort_256_four_stages(self):
        assert optimal_num_stages(256.0) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            optimal_num_stages(0.0)


class TestGeometricChain:
    def test_first_stage_minimum_sized(self):
        # Paper Sec. 3.4: "with minimum-sized inverter as its first stage".
        chain = geometric_chain(TECH, 100e-15, 4)
        assert chain.stage_sizes[0] == pytest.approx(1.0)

    def test_sizes_geometric(self):
        chain = geometric_chain(TECH, 100e-15, 4)
        ratios = [b / a for a, b in zip(chain.stage_sizes, chain.stage_sizes[1:])]
        assert all(r == pytest.approx(ratios[0], rel=1e-6) for r in ratios)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            geometric_chain(TECH, 100e-15, 0)
        with pytest.raises(ValueError):
            geometric_chain(TECH, 0.0, 3)


class TestOptimalChain:
    def test_sweep_finds_local_optimum(self):
        """The chosen stage count beats its neighbours — the paper's
        'swept the fanout of each stage' optimisation."""
        c_load = 30e-15
        best = optimal_chain(TECH, c_load)
        d_best = best.delay(c_load)
        for n in (best.num_stages - 1, best.num_stages + 1):
            if n >= 1:
                other = geometric_chain(TECH, c_load, n)
                assert other.delay(c_load) >= d_best - 1e-18

    def test_bigger_load_needs_more_stages(self):
        small = optimal_chain(TECH, 1e-15)
        large = optimal_chain(TECH, 300e-15)
        assert large.num_stages > small.num_stages

    def test_delay_monotone_in_load(self):
        chain = optimal_chain(TECH, 30e-15)
        assert chain.delay(60e-15) > chain.delay(30e-15)


class TestDownsizedChain:
    def test_factor_one_is_optimal(self):
        c = 30e-15
        assert downsized_chain(TECH, c, 1.0).stage_sizes == optimal_chain(TECH, c).stage_sizes

    def test_downsizing_trades_delay_for_power(self):
        """The core Sec. 3.4 trade-off: smaller chain = slower but less
        energy and much less leakage."""
        c = 30e-15
        full = optimal_chain(TECH, c)
        small = downsized_chain(TECH, c, 8.0)
        assert small.delay(c) > full.delay(c)
        assert small.switching_energy(c) < full.switching_energy(c)
        assert small.leakage_power() < full.leakage_power()

    def test_leakage_scales_with_width(self):
        c = 30e-15
        full = optimal_chain(TECH, c)
        small = downsized_chain(TECH, c, 8.0)
        assert small.leakage_power() / full.leakage_power() == pytest.approx(
            small.total_width / full.total_width
        )

    def test_monotone_over_factor(self):
        c = 30e-15
        delays, leaks = [], []
        for f in (1.0, 2.0, 4.0, 8.0):
            chain = downsized_chain(TECH, c, f)
            delays.append(chain.delay(c))
            leaks.append(chain.leakage_power())
        assert delays == sorted(delays)
        assert leaks == sorted(leaks, reverse=True)

    def test_rejects_subunity_factor(self):
        with pytest.raises(ValueError):
            downsized_chain(TECH, 30e-15, 0.5)


class TestChainQuantities:
    def test_input_cap_scales_with_first_stage(self):
        chain = InverterChain(stage_sizes=[2.0, 8.0], tech=TECH)
        assert chain.input_capacitance == pytest.approx(2.0 * TECH.inverter_input_cap)

    def test_output_resistance_scales_inverse_last_stage(self):
        chain = InverterChain(stage_sizes=[1.0, 10.0], tech=TECH)
        assert chain.output_resistance == pytest.approx(TECH.inverter_drive_resistance / 10.0)

    def test_first_stage_delay_below_total(self):
        chain = optimal_chain(TECH, 50e-15)
        assert 0 < chain.first_stage_delay(50e-15) < chain.delay(50e-15)

    def test_internal_cap_excludes_external_load(self):
        chain = InverterChain(stage_sizes=[1.0], tech=TECH)
        assert chain.internal_switching_capacitance() == pytest.approx(
            TECH.inverter_output_cap
        )

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            InverterChain(stage_sizes=[], tech=TECH)

    def test_rejects_subminimum_stage(self):
        with pytest.raises(ValueError):
            InverterChain(stage_sizes=[0.5], tech=TECH)

    def test_rejects_negative_load(self):
        chain = InverterChain(stage_sizes=[1.0], tech=TECH)
        with pytest.raises(ValueError):
            chain.delay(-1e-15)
