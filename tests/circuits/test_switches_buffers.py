"""Tests for repro.circuits.passgate / switches / buffers (Fig. 8)."""

import pytest

from repro.circuits.buffers import RoutingBuffer, restorer_delay_factor, sized_buffer
from repro.circuits.logical_effort import optimal_chain
from repro.circuits.passgate import PassTransistor
from repro.circuits.ptm import PTM_22NM
from repro.circuits.switches import (
    CmosRoutingSwitch,
    NemRoutingSwitch,
    SRAMCell,
    default_cmos_switch,
    default_nem_switch,
)

TECH = PTM_22NM.transistor


class TestPassTransistor:
    def test_vt_drop_output_high(self):
        # Fig. 8a: the NMOS passes only Vdd - Vt.
        pt = PassTransistor(TECH)
        assert pt.output_high == pytest.approx(TECH.vdd - TECH.vt)

    def test_rising_resistance_worse_than_falling(self):
        pt = PassTransistor(TECH)
        assert pt.resistance_high > pt.resistance_low
        assert pt.resistance == pt.resistance_high

    def test_width_lowers_resistance_raises_cap(self):
        narrow, wide = PassTransistor(TECH, width=2.0), PassTransistor(TECH, width=8.0)
        assert wide.resistance < narrow.resistance
        assert wide.parasitic_capacitance > narrow.parasitic_capacitance

    def test_rejects_subminimum_width(self):
        with pytest.raises(ValueError):
            PassTransistor(TECH, width=0.5)


class TestSwitchComparison:
    """The CMOS vs NEM table the paper's argument rests on."""

    def test_nem_resistance_lower(self):
        assert default_nem_switch().resistance < default_cmos_switch(TECH).resistance

    def test_nem_zero_leakage(self):
        nem = default_nem_switch()
        assert nem.leakage_power == 0.0
        assert nem.config_leakage_power == 0.0

    def test_cmos_leaks(self):
        cmos = default_cmos_switch(TECH)
        assert cmos.leakage_power > 0
        assert cmos.config_leakage_power > 0

    def test_nem_zero_cmos_footprint(self):
        assert default_nem_switch().cmos_area_min_widths == 0.0
        assert default_cmos_switch(TECH).cmos_area_min_widths > 6.0  # at least the SRAM

    def test_full_swing(self):
        assert default_nem_switch().full_swing
        assert not default_cmos_switch(TECH).full_swing

    def test_nem_parasitic_cap_much_smaller(self):
        # 20 aF relay vs hundreds of aF of NMOS diffusion.
        ratio = default_cmos_switch(TECH).parasitic_capacitance / default_nem_switch().parasitic_capacitance
        assert ratio > 5

    def test_sram_cell_area_is_6t(self):
        assert SRAMCell(TECH).area_min_widths == pytest.approx(6.0)


class TestRoutingBuffer:
    @pytest.fixture
    def load(self):
        return 25e-15

    def test_restorer_adds_leakage(self, load):
        with_r = sized_buffer(TECH, load, level_restorer=True)
        without = sized_buffer(TECH, load, level_restorer=False)
        assert with_r.leakage_power() > without.leakage_power()

    def test_restorer_adds_input_cap(self, load):
        with_r = sized_buffer(TECH, load, level_restorer=True)
        without = sized_buffer(TECH, load, level_restorer=False)
        assert with_r.input_capacitance > without.input_capacitance

    def test_restorer_adds_delay(self, load):
        with_r = sized_buffer(TECH, load, level_restorer=True)
        without = sized_buffer(TECH, load, level_restorer=False)
        assert with_r.delay(load) > without.delay(load)

    def test_restorer_factor_above_one(self):
        assert restorer_delay_factor(TECH) > 1.0

    def test_input_degraded_override(self, load):
        buf = sized_buffer(TECH, load, level_restorer=True)
        assert buf.delay(load, input_degraded=False) < buf.delay(load, input_degraded=True)

    def test_downsized_buffer_smaller_and_slower(self, load):
        full = sized_buffer(TECH, load, level_restorer=False)
        down = sized_buffer(TECH, load, level_restorer=False, downsize_factor=8.0)
        assert down.area_min_widths < full.area_min_widths
        assert down.delay(load) > full.delay(load)
        assert down.design_load == pytest.approx(load)

    def test_area_accounts_for_pmos(self, load):
        buf = RoutingBuffer(
            chain=optimal_chain(TECH, load), level_restorer=False, tech=TECH, design_load=load
        )
        assert buf.area_min_widths == pytest.approx(
            buf.chain.total_width * (1 + TECH.pmos_beta)
        )

    def test_switching_energy_includes_load(self, load):
        buf = sized_buffer(TECH, load, level_restorer=False)
        assert buf.switching_energy(load) > buf.switching_energy(0.0)
