"""Tests for repro.circuits.corners."""

import pytest

from repro.circuits.corners import CORNERS, all_corners, corner_technology, corner_transistor
from repro.circuits.ptm import PTM_22NM


class TestCornerTransistor:
    def test_tt_is_identity(self):
        tt = corner_transistor(PTM_22NM.transistor, "tt")
        assert tt.r_min_nmos == PTM_22NM.transistor.r_min_nmos
        assert tt.i_leak_min == PTM_22NM.transistor.i_leak_min

    def test_ff_faster_and_leakier(self):
        ff = corner_transistor(PTM_22NM.transistor, "ff")
        assert ff.r_min_nmos < PTM_22NM.transistor.r_min_nmos
        assert ff.i_leak_min > PTM_22NM.transistor.i_leak_min
        assert ff.fo4_delay() < PTM_22NM.transistor.fo4_delay()

    def test_ss_slower_and_less_leaky(self):
        ss = corner_transistor(PTM_22NM.transistor, "ss")
        assert ss.r_min_nmos > PTM_22NM.transistor.r_min_nmos
        assert ss.i_leak_min < PTM_22NM.transistor.i_leak_min
        assert ss.fo4_delay() > PTM_22NM.transistor.fo4_delay()

    def test_vt_stays_physical(self):
        for name in CORNERS:
            t = corner_transistor(PTM_22NM.transistor, name)
            assert 0 < t.vt < t.vdd

    def test_unknown_corner_rejected(self):
        with pytest.raises(KeyError):
            corner_transistor(PTM_22NM.transistor, "xx")


class TestCornerTechnology:
    def test_interconnect_unchanged(self):
        ff = corner_technology(PTM_22NM, "ff")
        assert ff.interconnect is PTM_22NM.interconnect

    def test_all_corners_complete(self):
        corners = all_corners(PTM_22NM)
        assert set(corners) == set(CORNERS)
        # Ordering sanity across the speed axis.
        assert (
            corners["ff"].transistor.fo4_delay()
            < corners["tt"].transistor.fo4_delay()
            < corners["ss"].transistor.fo4_delay()
        )
