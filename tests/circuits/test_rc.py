"""Tests for repro.circuits.rc (Elmore delay)."""

import pytest

from repro.circuits.rc import (
    ELMORE_STEP_FACTOR,
    RCTree,
    distributed_wire_delay,
    lumped_delay,
)


class TestLumpedHelpers:
    def test_lumped_delay_value(self):
        assert lumped_delay(1e3, 1e-15) == pytest.approx(0.69e-12)

    def test_distributed_is_half_of_lumped(self):
        assert distributed_wire_delay(1e3, 1e-15) == pytest.approx(lumped_delay(1e3, 1e-15) / 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lumped_delay(-1.0, 1e-15)


class TestRCTree:
    def test_single_rc_matches_lumped(self):
        tree = RCTree("s", driver_resistance=1e3)
        tree.add("a", parent="s", resistance=0.0, capacitance=1e-15)
        assert tree.elmore_delay("a") == pytest.approx(ELMORE_STEP_FACTOR * 1e3 * 1e-15)

    def test_chain_elmore_hand_computed(self):
        # R1=1k into C1=1f, then R2=2k into C2=3f:
        # t = R1*(C1+C2) + R2*C2 = 1k*4f + 2k*3f = 10 ps (x0.69).
        tree = RCTree("s", driver_resistance=1e3)
        tree.add("a", parent="s", resistance=0.0, capacitance=1e-15)
        tree.add("b", parent="a", resistance=2e3, capacitance=3e-15)
        assert tree.elmore_delay("b") == pytest.approx(ELMORE_STEP_FACTOR * 10e-12)

    def test_side_branch_loads_shared_path(self):
        # A branch hanging off the shared node adds C * shared R.
        tree = RCTree("s", driver_resistance=1e3)
        tree.add("mid", parent="s", resistance=0.0, capacitance=0.0)
        tree.add("sink", parent="mid", resistance=1e3, capacitance=1e-15)
        base = tree.elmore_delay("sink")
        tree.add("branch", parent="mid", resistance=5e3, capacitance=2e-15)
        loaded = tree.elmore_delay("sink")
        assert loaded == pytest.approx(base + ELMORE_STEP_FACTOR * 1e3 * 2e-15)

    def test_branch_resistance_does_not_affect_other_sink(self):
        tree = RCTree("s", driver_resistance=1e3)
        tree.add("mid", parent="s", resistance=0.0, capacitance=0.0)
        tree.add("sink", parent="mid", resistance=1e3, capacitance=1e-15)
        tree.add("b1", parent="mid", resistance=1e3, capacitance=1e-15)
        d1 = tree.elmore_delay("sink")
        # Increasing the branch's series R (beyond the shared node)
        # must not change the other sink's delay.
        tree2 = RCTree("s", driver_resistance=1e3)
        tree2.add("mid", parent="s", resistance=0.0, capacitance=0.0)
        tree2.add("sink", parent="mid", resistance=1e3, capacitance=1e-15)
        tree2.add("b1", parent="mid", resistance=9e3, capacitance=1e-15)
        assert tree2.elmore_delay("sink") == pytest.approx(d1)

    def test_total_capacitance(self):
        tree = RCTree("s", driver_resistance=1e3, root_capacitance=1e-15)
        tree.add("a", parent="s", resistance=10.0, capacitance=2e-15)
        tree.add_capacitance("a", 3e-15)
        assert tree.total_capacitance() == pytest.approx(6e-15)

    def test_max_sink_delay_over_leaves(self):
        tree = RCTree("s", driver_resistance=1e3)
        tree.add("near", parent="s", resistance=0.0, capacitance=1e-15)
        tree.add("far", parent="near", resistance=10e3, capacitance=1e-15)
        assert tree.max_sink_delay() == pytest.approx(tree.elmore_delay("far"))

    def test_duplicate_node_rejected(self):
        tree = RCTree("s")
        tree.add("a", parent="s", resistance=1.0, capacitance=0.0)
        with pytest.raises(ValueError):
            tree.add("a", parent="s", resistance=1.0, capacitance=0.0)

    def test_unknown_parent_rejected(self):
        tree = RCTree("s")
        with pytest.raises(KeyError):
            tree.add("a", parent="nope", resistance=1.0, capacitance=0.0)

    def test_unknown_sink_rejected(self):
        tree = RCTree("s")
        with pytest.raises(KeyError):
            tree.elmore_delay("nope")

    def test_monotone_in_driver_resistance(self):
        delays = []
        for r in (1e2, 1e3, 1e4):
            tree = RCTree("s", driver_resistance=r)
            tree.add("a", parent="s", resistance=100.0, capacitance=1e-15)
            delays.append(tree.elmore_delay("a"))
        assert delays == sorted(delays)
