"""Atomic publication satellite: JSONL/JSON writers land via tmp +
os.replace, never leave a torn or temporary file behind."""

import os

import pytest

from repro.obs import read_jsonl, write_jsonl
from repro.obs.export import write_json


def _no_tmp_left(directory):
    return [name for name in os.listdir(directory) if ".tmp" in name] == []


class TestWriteJsonl:
    def test_round_trip_and_no_tmp_residue(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        rows = [{"a": 1}, {"b": 2}]
        write_jsonl(str(path), rows)
        assert read_jsonl(str(path)) == rows
        assert _no_tmp_left(tmp_path)

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(str(path), [{"gen": 1}])
        write_jsonl(str(path), [{"gen": 2}, {"gen": 2}])
        assert [r["gen"] for r in read_jsonl(str(path))] == [2, 2]
        assert _no_tmp_left(tmp_path)

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(str(path), [{"gen": 1}])

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            write_jsonl(str(path), [{"bad": Unserialisable()}])
        # The original content survives; no tmp residue either.
        assert read_jsonl(str(path)) == [{"gen": 1}]
        assert _no_tmp_left(tmp_path)


class TestWriteJson:
    def test_round_trip_and_no_tmp_residue(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json(str(path), {"x": [1, 2]})
        import json
        assert json.loads(path.read_text()) == {"x": [1, 2]}
        assert _no_tmp_left(tmp_path)
