"""Telemetry warehouse: ingest idempotence, selectors, queries."""

import json
import os

import pytest

from repro.obs.store import (
    STORE_SCHEMA,
    connect,
    ingest_file,
    ingest_records,
    list_runs,
    load_parsed_run,
    profile_stacks,
    resolve_run,
    run_digest,
    top_spans,
    trend,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


def fixture_records():
    with open(FIXTURE, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


def synthetic_records(sha="aaa111", created=1000.0, route_s=1.0, extra=None):
    records = [
        {"type": "manifest", "schema": 1, "git_sha": sha,
         "created_unix": created, "circuit": "tseng", "seed": 1},
        {"type": "span", "name": "flow.run", "duration_s": route_s + 0.5,
         "attrs": {"circuit": "tseng"},
         "children": [
             {"name": "flow.place", "duration_s": 0.5},
             {"name": "flow.route", "duration_s": route_s,
              "attrs": {"wirelength": 100}},
         ]},
    ]
    if extra:
        records.extend(extra)
    return records


@pytest.fixture
def con(tmp_path):
    connection = connect(str(tmp_path / "t.sqlite"))
    yield connection
    connection.close()


def table_counts(con):
    return {table: con.execute(f"SELECT COUNT(*) AS n FROM {table}")
            .fetchone()["n"]
            for table in ("runs", "spans", "measurements", "profiles")}


class TestIngest:
    def test_double_ingest_is_idempotent(self, con):
        first = ingest_file(con, FIXTURE)
        counts = table_counts(con)
        second = ingest_file(con, FIXTURE)
        assert first.inserted and not second.inserted
        assert first.run_id == second.run_id
        assert first.digest == second.digest
        assert table_counts(con) == counts

    def test_digest_is_content_not_path(self, con, tmp_path):
        copy = tmp_path / "copy.jsonl"
        copy.write_text(open(FIXTURE).read(), encoding="utf-8")
        assert ingest_file(con, FIXTURE).inserted
        assert not ingest_file(con, str(copy)).inserted

    def test_digest_matches_written_bytes(self):
        records = fixture_records()
        by_records = run_digest(records)
        # The digest is over the canonical sorted-key JSON lines —
        # exactly what write_jsonl emits — so changing any record
        # changes it and reformatting does not.
        assert by_records == run_digest(json.loads(json.dumps(r))
                                        for r in records)
        assert by_records != run_digest(records[:-1])

    def test_run_row_carries_provenance(self, con):
        result = ingest_records(con, synthetic_records(sha="feedface"),
                                label="nightly")
        row = con.execute("SELECT * FROM runs WHERE run_id = ?",
                          (result.run_id,)).fetchone()
        assert row["git_sha"] == "feedface"
        assert row["circuit"] == "tseng"
        assert row["seed"] == 1
        assert row["label"] == "nightly"
        assert row["total_wall_s"] == pytest.approx(1.5)
        assert row["span_count"] == 3

    def test_span_rows_flattened_with_raw_self(self, con):
        result = ingest_records(con, synthetic_records(route_s=1.0))
        rows = {row["path"]: row for row in con.execute(
            "SELECT * FROM spans WHERE run_id = ?", (result.run_id,))}
        assert rows["flow.run"]["depth"] == 0
        assert rows["flow.run/flow.route"]["parent_path"] == "flow.run"
        assert rows["flow.run"]["raw_self_s"] == pytest.approx(0.0)
        assert rows["flow.run/flow.route"]["self_s"] == pytest.approx(1.0)

    def test_measurements_populated(self, con):
        result = ingest_records(con, synthetic_records())
        keys = {row["key"] for row in con.execute(
            "SELECT key FROM measurements WHERE run_id = ?",
            (result.run_id,))}
        assert "route.wall_s" in keys
        assert "total.wall_s" in keys
        assert "route.wirelength" in keys

    def test_profile_stacks_extracted(self, con):
        extra = [{"type": "span", "name": "job", "duration_s": 1.0,
                  "attrs": {"profile": {
                      "stacks": {"a.py:f;b.py:g": 7, "a.py:f": 3}}}}]
        result = ingest_records(con, synthetic_records(extra=extra))
        assert profile_stacks(con, result.run_id) == {
            "a.py:f;b.py:g": 7, "a.py:f": 3}

    def test_newer_store_schema_refused(self, tmp_path):
        path = str(tmp_path / "t.sqlite")
        con = connect(path)
        con.execute("UPDATE meta SET value = ? WHERE key = 'schema'",
                    (str(STORE_SCHEMA + 1),))
        con.commit()
        con.close()
        with pytest.raises(ValueError, match="newer than supported"):
            connect(path)


class TestResolve:
    def test_selectors(self, con):
        old = ingest_records(con, synthetic_records(sha="aaa", created=100.0))
        new = ingest_records(con, synthetic_records(sha="bbb", created=200.0))
        assert resolve_run(con, str(old.run_id)) == old.run_id
        assert resolve_run(con, f"#{new.run_id}") == new.run_id
        assert resolve_run(con, "latest") == new.run_id
        assert resolve_run(con, "latest~1") == old.run_id
        assert resolve_run(con, old.digest[:8]) == old.run_id

    def test_bad_selectors(self, con):
        ingest_records(con, synthetic_records())
        for selector in ("99", "latest~5", "deadbeef99", "nonsense"):
            with pytest.raises(ValueError):
                resolve_run(con, selector)

    def test_list_runs_newest_first(self, con):
        ingest_records(con, synthetic_records(sha="old", created=100.0))
        ingest_records(con, synthetic_records(sha="new", created=200.0))
        assert [r["git_sha"] for r in list_runs(con)] == ["new", "old"]


class TestRoundTrip:
    def test_loaded_run_matches_fresh_parse(self, con):
        from repro.obs.analyze import load_run
        from repro.obs.analyze.diff import run_measurements

        result = ingest_file(con, FIXTURE)
        restored = run_measurements(load_parsed_run(con, result.run_id))
        fresh = run_measurements(load_run(FIXTURE))
        assert restored == fresh

    def test_job_identity_survives_round_trip(self, con):
        records = [
            {"type": "manifest", "schema": 1, "created_unix": 1.0},
            {"type": "span", "name": "batch.job", "span_id": "j3.s0",
             "duration_s": 1.0, "start_time": 0.0},
        ]
        result = ingest_records(con, records)
        run = load_parsed_run(con, result.run_id)
        from repro.obs.analyze.attribution import _job_of

        assert _job_of(run.spans[0]) == 3

    def test_unknown_run_raises(self, con):
        with pytest.raises(ValueError, match="no run with id"):
            load_parsed_run(con, 42)


class TestQueries:
    def test_top_spans_by_self(self, con):
        ingest_records(con, synthetic_records(sha="a", created=1.0,
                                              route_s=1.0))
        ingest_records(con, synthetic_records(sha="b", created=2.0,
                                              route_s=3.0))
        rows = top_spans(con, k=2, by="self")
        assert rows[0]["path"] == "flow.run/flow.route"
        assert rows[0]["agg_s"] == pytest.approx(4.0)
        assert rows[0]["runs"] == 2

    def test_top_spans_restricted_to_runs(self, con):
        a = ingest_records(con, synthetic_records(sha="a", created=1.0))
        ingest_records(con, synthetic_records(sha="b", created=2.0))
        rows = top_spans(con, runs=[a.run_id])
        assert all(row["runs"] == 1 for row in rows)
        assert top_spans(con, runs=[]) == []

    def test_top_spans_min_count_filters(self, con):
        ingest_records(con, synthetic_records(sha="a", created=1.0))
        extra = [{"type": "span", "name": "once", "duration_s": 9.0}]
        ingest_records(con, synthetic_records(sha="b", created=2.0,
                                              extra=extra))
        paths = {row["path"] for row in top_spans(con, min_count=2)}
        assert "once" not in paths
        assert "flow.run" in paths

    def test_top_spans_bad_by(self, con):
        with pytest.raises(ValueError):
            top_spans(con, by="walltime")

    def test_trend_oldest_first_with_since(self, con):
        for index, sha in enumerate(["aaa", "bbb", "ccc"]):
            ingest_records(con, synthetic_records(
                sha=sha, created=float(index), route_s=1.0 + index))
        rows = trend(con, "route.wall_s")
        assert [row["git_sha"] for row in rows] == ["aaa", "bbb", "ccc"]
        assert [row["value"] for row in rows] == [1.0, 2.0, 3.0]
        assert [row["git_sha"]
                for row in trend(con, "route.wall_s", since_sha="bbb")] \
            == ["bbb", "ccc"]

    def test_trend_unknown_sha_raises(self, con):
        ingest_records(con, synthetic_records())
        with pytest.raises(ValueError, match="no ingested run"):
            trend(con, "route.wall_s", since_sha="nothere")

    def test_trend_unknown_key_empty(self, con):
        ingest_records(con, synthetic_records())
        assert trend(con, "no.such.measure") == []
