"""Integration: flow instrumentation end-to-end.

Routes a small circuit and checks the PathFinder convergence series,
the placement anneal trajectory, and the span tree `run_flow` emits.
"""

import pytest

from repro.arch import ArchParams
from repro.netlist.generate import GeneratorParams, generate
from repro.obs import Tracer, use_tracer
from repro.vpr import run_flow
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import route_design

#: Small circuit whose router converges cleanly at this width.
CIRCUIT = GeneratorParams("obs_unit", num_luts=60, ff_fraction=0.25, seed=42)
ARCH = ArchParams(channel_width=32)
SEED = 7


@pytest.fixture(scope="module")
def placement():
    return place(pack(generate(CIRCUIT), ARCH), seed=SEED)


@pytest.fixture(scope="module")
def routed(placement):
    result, graph = route_design(placement, ARCH)
    assert result.success
    return result


class TestRouterConvergence:
    def test_series_present_without_tracer(self, routed):
        assert routed.convergence, "convergence must be recorded by default"

    def test_iterations_sequential(self, routed):
        assert [it.iteration for it in routed.convergence] == list(
            range(1, routed.iterations + 1)
        )

    def test_overuse_monotone_nonincreasing_to_zero(self, routed):
        series = [it.overused_nodes for it in routed.convergence]
        assert all(a >= b for a, b in zip(series, series[1:])), series
        assert series[-1] == 0

    def test_pres_fac_schedule_grows(self, routed):
        pres = [it.pres_fac for it in routed.convergence]
        assert all(a <= b for a, b in zip(pres, pres[1:]))
        assert pres[0] == pytest.approx(0.5)

    def test_first_iteration_routes_every_net(self, placement, routed):
        from repro.vpr.route import build_route_nets

        assert routed.convergence[0].rerouted_nets == len(build_route_nets(placement))

    def test_later_iterations_reroute_subsets(self, routed):
        total = routed.convergence[0].rerouted_nets
        assert all(it.rerouted_nets <= total for it in routed.convergence[1:])

    def test_wirelength_positive_and_final_matches(self, routed):
        assert all(it.wirelength > 0 for it in routed.convergence)
        assert routed.convergence[-1].wirelength == routed.wirelength


class TestAnnealTrajectory:
    def test_trajectory_recorded(self, placement):
        assert placement.trajectory

    def test_acceptance_rates_valid(self, placement):
        assert all(0.0 <= s.acceptance_rate <= 1.0 for s in placement.trajectory)

    def test_temperature_cools(self, placement):
        temps = [s.temperature for s in placement.trajectory]
        assert all(a > b for a, b in zip(temps, temps[1:]))

    def test_final_cost_matches_placement(self, placement):
        assert placement.trajectory[-1].cost == pytest.approx(placement.cost)


class TestFlowSpans:
    def test_run_flow_emits_stage_spans(self):
        tracer = Tracer()
        with use_tracer(tracer):
            flow = run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        assert flow.success
        (root,) = [s for s in tracer.roots if s.name == "flow.run"]
        stages = [c.name for c in root.children]
        assert stages == ["flow.pack", "flow.place", "flow.route"]
        assert root.attrs["circuit"] == CIRCUIT.name
        assert root.attrs["success"] is True

    def test_stage_spans_carry_timing_and_rss(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        for span in tracer.iter_spans():
            assert span.duration_s is not None and span.duration_s >= 0
            assert span.peak_rss_kb is not None

    def test_route_span_carries_convergence(self):
        tracer = Tracer()
        with use_tracer(tracer):
            flow = run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        (router_span,) = tracer.find("route.pathfinder")
        series = router_span.attrs["convergence"]
        assert len(series) == len(flow.routing.convergence)
        assert series[-1]["overused_nodes"] == 0

    def test_place_span_carries_trajectory(self):
        tracer = Tracer()
        with use_tracer(tracer):
            flow = run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        (anneal_span,) = tracer.find("place.anneal")
        assert len(anneal_span.attrs["trajectory"]) == len(flow.placement.trajectory)

    def test_untraced_flow_identical_result(self):
        tracer = Tracer()
        with use_tracer(tracer):
            traced = run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        plain = run_flow(generate(CIRCUIT), ARCH, seed=SEED)
        assert traced.routing.wirelength == plain.routing.wirelength
        assert traced.routing.iterations == plain.routing.iterations
        assert traced.placement.cost == pytest.approx(plain.placement.cost)


class TestWminSearchSpans:
    def test_probe_spans_recorded(self, placement):
        from repro.vpr import find_min_channel_width

        tracer = Tracer()
        with use_tracer(tracer):
            wmin, result, _graph = find_min_channel_width(placement, ARCH, start=4)
        assert result.success
        (search,) = tracer.find("flow.wmin_search")
        assert search.attrs["wmin"] == wmin
        probes = tracer.find("flow.route_probe")
        assert len(probes) == search.attrs["probes"] >= 2
        assert any(p.attrs["success"] for p in probes)
