"""Unit tests for the telemetry export layer (manifest, JSONL)."""

import dataclasses
import json

from repro.arch import ArchParams
from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    export_run,
    git_sha,
    read_jsonl,
    run_manifest,
    span_to_dict,
    telemetry_records,
    write_json,
    write_jsonl,
)


class TestManifest:
    def test_required_fields(self):
        m = run_manifest(seed=3, arch=ArchParams(channel_width=32))
        assert m["type"] == "manifest"
        assert m["schema"] == SCHEMA_VERSION
        assert m["seed"] == 3
        assert m["arch"]["channel_width"] == 32
        assert m["python"]
        assert m["platform"]

    def test_git_sha_present_in_repo(self):
        # The test suite runs from a git checkout.
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_memoized_per_process(self, monkeypatch):
        import subprocess

        from repro.obs import export

        first = git_sha()
        calls = []

        def boom(*args, **kwargs):
            calls.append(args)
            raise AssertionError("memoized git_sha must not re-run git")

        monkeypatch.setattr(subprocess, "run", boom)
        assert git_sha() == first
        assert calls == []

    def test_git_sha_tolerates_missing_git(self, monkeypatch, tmp_path):
        import subprocess

        from repro.obs import export

        monkeypatch.setattr(
            subprocess, "run",
            lambda *a, **k: (_ for _ in ()).throw(FileNotFoundError("git")))
        # Fresh cwd key -> the subprocess path actually runs (and fails).
        assert git_sha(cwd=str(tmp_path)) is None
        # The failure is cached too: a second call stays None without
        # re-running the (still broken) subprocess.
        assert git_sha(cwd=str(tmp_path)) is None

    def test_argv_and_extra(self):
        m = run_manifest(argv=["flow", "--json"], extra={"circuit": "ava"})
        assert m["argv"] == ["flow", "--json"]
        assert m["circuit"] == "ava"

    def test_manifest_is_json_serialisable(self):
        m = run_manifest(seed=1, arch=ArchParams(), extra={"tuple": (1, 2)})
        json.dumps(m)


class TestSpanSerialisation:
    def test_nested_children(self):
        tracer = Tracer()
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                pass
        d = span_to_dict(tracer.roots[0])
        assert d["name"] == "outer"
        assert d["attrs"] == {"a": 1}
        assert d["children"][0]["name"] == "inner"
        assert d["children"][0]["parent_id"] == d["span_id"]
        json.dumps(d)

    def test_dataclass_attrs_become_dicts(self):
        @dataclasses.dataclass
        class Point:
            x: int

        tracer = Tracer()
        with tracer.span("s", point=Point(3), items=[Point(1)]):
            pass
        d = span_to_dict(tracer.roots[0])
        assert d["attrs"]["point"] == {"x": 3}
        assert d["attrs"]["items"] == [{"x": 1}]

    def test_unserialisable_attr_degrades_to_repr(self):
        tracer = Tracer()
        with tracer.span("s", obj=object()):
            pass
        d = span_to_dict(tracer.roots[0])
        assert isinstance(d["attrs"]["obj"], str)
        json.dumps(d)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [{"type": "a", "n": 1}, {"type": "b", "n": 2}]
        assert write_jsonl(str(path), records) == 2
        assert read_jsonl(str(path)) == records

    def test_export_run_layout(self, tmp_path):
        tracer = Tracer()
        with tracer.span("flow.run"):
            with tracer.span("flow.route"):
                pass
        registry = MetricsRegistry()
        registry.counter("events").inc(5)
        path = tmp_path / "run.jsonl"
        n = export_run(
            str(path), run_manifest(seed=1), tracer, registry
        )
        records = read_jsonl(str(path))
        assert n == len(records) == 3
        assert [r["type"] for r in records] == ["manifest", "span", "metrics"]
        assert records[1]["name"] == "flow.run"
        assert records[1]["children"][0]["name"] == "flow.route"
        assert records[2]["metrics"]["events"]["value"] == 5

    def test_empty_registry_omitted(self):
        records = telemetry_records(run_manifest(), Tracer(), MetricsRegistry())
        assert [r["type"] for r in records] == ["manifest"]

    def test_write_json(self, tmp_path):
        path = tmp_path / "o.json"
        write_json(str(path), {"telemetry": {"a": 1}})
        assert json.loads(path.read_text()) == {"telemetry": {"a": 1}}
