"""CLI observability: --json, --metrics-out, -v, stdout/stderr split,
and the analysis commands (report / diff / bench-history)."""

import json
import os

import pytest

from repro.cli import build_parser, main

FLOW_ARGS = ["flow", "--circuit", "tseng", "--scale", "0.03", "--width", "56"]

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


class TestParser:
    def test_obs_flags_parse_on_flow_commands(self):
        parser = build_parser()
        for argv in (
            FLOW_ARGS + ["--metrics-out", "m.jsonl", "-v", "--json"],
            ["sweep", "--circuit", "alu4", "--metrics-out", "m.jsonl"],
            ["headline", "--json", "-vv"],
            ["explore", "--metrics-out", "m.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_verbose_counts(self):
        args = build_parser().parse_args(FLOW_ARGS + ["-vv"])
        assert args.verbose == 2


class TestFlowJson:
    def test_json_output_is_machine_readable(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["success"] is True
        assert payload["circuit"] == "tseng"
        assert payload["wirelength"] > 0
        assert payload["baseline"]["leakage_w"] > 0
        assert len(payload["variants"]) == 2
        assert all("speedup" in v for v in payload["variants"])

    def test_json_includes_convergence_series(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        series = payload["convergence"]
        assert series[-1]["overused_nodes"] == 0
        assert series[0]["iteration"] == 1

    def test_diagnostics_on_stderr_not_stdout(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        captured = capsys.readouterr()
        assert "circuit:" in captured.err
        assert "circuit:" not in captured.out

    def test_routing_failure_diagnostic_to_stderr(self, capsys):
        # Width 2 is hopeless for this circuit: the failure path must
        # keep stdout machine-readable under --json.
        code = main(["flow", "--circuit", "tseng", "--scale", "0.03",
                     "--width", "2", "--json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        payload = json.loads(captured.out)
        assert payload["success"] is False


class TestMetricsOut:
    def test_flow_writes_manifest_and_spans(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        manifest = records[0]
        assert manifest["type"] == "manifest"
        assert manifest["seed"] == 1
        assert manifest["arch"]["channel_width"] == 56
        assert manifest["circuit"] == "tseng"
        span_records = [r for r in records if r["type"] == "span"]
        flow_span = next(s for s in span_records if s["name"] == "flow.run")
        stages = {c["name"] for c in flow_span["children"]}
        assert stages == {"flow.pack", "flow.place", "flow.route"}
        route = next(c for c in flow_span["children"] if c["name"] == "flow.route")
        pathfinder = next(
            c for c in route["children"] if c["name"] == "route.pathfinder"
        )
        assert pathfinder["attrs"]["convergence"][-1]["overused_nodes"] == 0

    def test_spans_have_wall_time_and_rss(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        for record in records:
            if record["type"] != "span":
                continue
            assert record["duration_s"] >= 0
            assert record["peak_rss_kb"] > 0

    def test_evaluate_spans_present(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        evaluates = [r for r in records if r.get("name") == "evaluate"]
        assert len(evaluates) == 3  # baseline + naive + optimised
        kinds = {e["attrs"]["variant"] for e in evaluates}
        assert "CMOS_ONLY" in kinds


class TestCrossbarJson:
    def test_json_on_stdout_diagnostics_on_stderr(self, capsys):
        assert main(["crossbar", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["success"] is True
        assert payload["rows"] == 2
        assert payload["margin_worst_v"] > 0
        assert sorted(map(tuple, payload["configured"])) == \
            sorted(map(tuple, payload["targets"]))
        assert "crossbar" in captured.err
        assert "crossbar" not in captured.out

    def test_plain_output_unchanged(self, capsys):
        assert main(["crossbar"]) == 0
        captured = capsys.readouterr()
        assert "Vhold" in captured.out

    def test_metrics_out_records_program_spans(self, capsys, tmp_path):
        path = tmp_path / "xb.jsonl"
        assert main(["crossbar", "--metrics-out", str(path)]) == 0
        records = [json.loads(l) for l in path.read_text().splitlines()]
        spans = [r for r in records if r.get("type") == "span"]
        assert any(s["name"] == "crossbar.program" for s in spans)


class TestSweepJson:
    def test_json_payload(self, capsys):
        assert main(["sweep", "--circuit", "tseng", "--scale", "0.03",
                     "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["circuit"] == "tseng"
        assert payload["success"] is True
        assert payload["corner"]["leakage_reduction"] > 1
        assert len(payload["series"]["downsize"]) == \
            len(payload["series"]["speedup"])
        assert "sweep" not in captured.out


class TestReportCommand:
    def test_report_renders_fixture(self, capsys):
        assert main(["report", FIXTURE]) == 0
        out = capsys.readouterr().out
        for stage in ("flow.pack", "flow.place", "flow.route",
                      "timing.sta", "crossbar.program_fabric"):
            assert stage in out, stage
        assert "span timeline" in out

    def test_html_output(self, capsys, tmp_path):
        page = tmp_path / "report.html"
        assert main(["report", FIXTURE, "--html", str(page)]) == 0
        assert page.read_text().startswith("<!doctype html>")

    def test_missing_file_exits_2(self, capsys):
        assert main(["report", "/nonexistent/run.jsonl"]) == 2
        assert "error" in capsys.readouterr().err


class TestDiffCommand:
    def test_identical_runs_pass_gate(self, capsys):
        code = main(["diff", FIXTURE, FIXTURE,
                     "--fail-on", "route.wall_s>+50%",
                     "--fail-on", "route.wirelength>+0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "route.wall_s" in captured.out
        assert "OK: 2 regression gate(s) passed" in captured.err

    def test_violated_gate_exits_1(self, capsys):
        code = main(["diff", FIXTURE, FIXTURE,
                     "--fail-on", "route.wirelength>=-1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err

    def test_missing_metric_fails_gate(self, capsys):
        code = main(["diff", FIXTURE, FIXTURE,
                     "--fail-on", "no.such.metric>+5%"])
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_json_verdict(self, capsys):
        code = main(["diff", FIXTURE, FIXTURE, "--json",
                     "--fail-on", "route.wall_s>+50%"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["metrics"]["route.wirelength"]["delta"] == 0.0

    def test_bad_threshold_exits_2(self, capsys):
        assert main(["diff", FIXTURE, FIXTURE, "--fail-on", "not a gate"]) == 2
        assert "bad threshold" in capsys.readouterr().err


class TestBenchHistoryCommand:
    def bench_file(self, tmp_path, sha="abc", wirelength=161):
        doc = {
            "circuit": "tseng",
            "manifest": {"git_sha": sha, "created_unix": 1000.0},
            "telemetry": {
                "flows": [{"name": "flow.run", "children": [
                    {"name": "flow.route",
                     "attrs": {"wirelength": wirelength, "iterations": 9}}]}],
                "stages": {"flow.pack": 0.01, "flow.place": 0.1,
                           "flow.route": 0.2},
            },
        }
        path = tmp_path / f"BENCH_tseng_{sha}.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_append_then_check_passes(self, capsys, tmp_path):
        hist = str(tmp_path / "hist.jsonl")
        for sha in ("a", "b", "c"):
            assert main(["bench-history", "append", "--history", hist,
                         self.bench_file(tmp_path, sha)]) == 0
        code = main(["bench-history", "check", "--history", hist,
                     self.bench_file(tmp_path, "new")])
        captured = capsys.readouterr()
        assert code == 0
        assert "qor.wirelength" in captured.out

    def test_check_flags_regression(self, capsys, tmp_path):
        hist = str(tmp_path / "hist.jsonl")
        for sha in ("a", "b", "c"):
            main(["bench-history", "append", "--history", hist,
                  self.bench_file(tmp_path, sha, wirelength=100)])
        code = main(["bench-history", "check", "--history", hist, "--json",
                     self.bench_file(tmp_path, "new", wirelength=200)])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert any("qor.wirelength" in v for v in payload["violations"])


class TestVerbose:
    def test_verbose_logs_to_stderr(self, capsys):
        from repro.obs import setup_logging

        try:
            assert main(FLOW_ARGS + ["-v"]) == 0
            captured = capsys.readouterr()
            assert "flow done" in captured.err
            assert "flow done" not in captured.out
        finally:
            # Remove the handler so later tests aren't polluted with a
            # captured (soon-to-be-invalid) stderr stream.
            setup_logging(0)
