"""CLI observability: --json, --metrics-out, -v, stdout/stderr split."""

import json

import pytest

from repro.cli import build_parser, main

FLOW_ARGS = ["flow", "--circuit", "tseng", "--scale", "0.03", "--width", "56"]


class TestParser:
    def test_obs_flags_parse_on_flow_commands(self):
        parser = build_parser()
        for argv in (
            FLOW_ARGS + ["--metrics-out", "m.jsonl", "-v", "--json"],
            ["sweep", "--circuit", "alu4", "--metrics-out", "m.jsonl"],
            ["headline", "--json", "-vv"],
            ["explore", "--metrics-out", "m.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_verbose_counts(self):
        args = build_parser().parse_args(FLOW_ARGS + ["-vv"])
        assert args.verbose == 2


class TestFlowJson:
    def test_json_output_is_machine_readable(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["success"] is True
        assert payload["circuit"] == "tseng"
        assert payload["wirelength"] > 0
        assert payload["baseline"]["leakage_w"] > 0
        assert len(payload["variants"]) == 2
        assert all("speedup" in v for v in payload["variants"])

    def test_json_includes_convergence_series(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        series = payload["convergence"]
        assert series[-1]["overused_nodes"] == 0
        assert series[0]["iteration"] == 1

    def test_diagnostics_on_stderr_not_stdout(self, capsys):
        assert main(FLOW_ARGS + ["--json"]) == 0
        captured = capsys.readouterr()
        assert "circuit:" in captured.err
        assert "circuit:" not in captured.out

    def test_routing_failure_diagnostic_to_stderr(self, capsys):
        # Width 2 is hopeless for this circuit: the failure path must
        # keep stdout machine-readable under --json.
        code = main(["flow", "--circuit", "tseng", "--scale", "0.03",
                     "--width", "2", "--json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        payload = json.loads(captured.out)
        assert payload["success"] is False


class TestMetricsOut:
    def test_flow_writes_manifest_and_spans(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        manifest = records[0]
        assert manifest["type"] == "manifest"
        assert manifest["seed"] == 1
        assert manifest["arch"]["channel_width"] == 56
        assert manifest["circuit"] == "tseng"
        span_records = [r for r in records if r["type"] == "span"]
        flow_span = next(s for s in span_records if s["name"] == "flow.run")
        stages = {c["name"] for c in flow_span["children"]}
        assert stages == {"flow.pack", "flow.place", "flow.route"}
        route = next(c for c in flow_span["children"] if c["name"] == "flow.route")
        pathfinder = route["children"][0]
        assert pathfinder["attrs"]["convergence"][-1]["overused_nodes"] == 0

    def test_spans_have_wall_time_and_rss(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        for record in records:
            if record["type"] != "span":
                continue
            assert record["duration_s"] >= 0
            assert record["peak_rss_kb"] > 0

    def test_evaluate_spans_present(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(FLOW_ARGS + ["--metrics-out", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        evaluates = [r for r in records if r.get("name") == "evaluate"]
        assert len(evaluates) == 3  # baseline + naive + optimised
        kinds = {e["attrs"]["variant"] for e in evaluates}
        assert "CMOS_ONLY" in kinds


class TestVerbose:
    def test_verbose_logs_to_stderr(self, capsys):
        from repro.obs import setup_logging

        try:
            assert main(FLOW_ARGS + ["-v"]) == 0
            captured = capsys.readouterr()
            assert "flow done" in captured.err
            assert "flow done" not in captured.out
        finally:
            # Remove the handler so later tests aren't polluted with a
            # captured (soon-to-be-invalid) stderr stream.
            setup_logging(0)
