"""Report rendering: timeline, flamegraph, convergence, HTML."""

import os

from repro.obs.analyze import load_run, parse_run, render_html, render_report

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


class TestTextReport:
    def test_all_sections_render(self):
        report = render_report(load_run(FIXTURE))
        for section in ("span timeline", "flamegraph", "pathfinder convergence",
                        "anneal trajectory", "metrics"):
            assert section in report, section

    def test_timeline_shows_every_flow_stage(self):
        report = render_report(load_run(FIXTURE))
        for stage in ("flow.pack", "flow.place", "flow.route", "flow.configure",
                      "pack.vpack", "place.anneal", "route.pathfinder",
                      "crossbar.program_fabric", "timing.sta"):
            assert stage in report, stage

    def test_timeline_has_total_self_rss_columns(self):
        report = render_report(load_run(FIXTURE))
        header = next(l for l in report.splitlines() if "span" in l and "total" in l)
        assert "self" in header
        assert "peakRSS" in header

    def test_convergence_summary_from_route_attrs(self):
        report = render_report(load_run(FIXTURE))
        line = next(l for l in report.splitlines() if "iterations, overuse" in l)
        assert "route.pathfinder" in line
        assert "wirelength" in line

    def test_anneal_summary(self):
        report = render_report(load_run(FIXTURE))
        line = next(l for l in report.splitlines() if "temperature steps" in l)
        assert "place.anneal" in line
        assert "cost" in line

    def test_metrics_section_lists_registry_names(self):
        report = render_report(load_run(FIXTURE))
        assert "pack.clusters" in report
        assert "crossbar.row_pulses" in report
        assert "timing.slack_s" in report

    def test_flame_disabled(self):
        report = render_report(load_run(FIXTURE), flame=False)
        assert "flamegraph" not in report
        assert "span timeline" in report

    def test_max_depth_truncates_tree(self):
        run = load_run(FIXTURE)
        shallow = render_report(run, max_depth=0)
        assert "flow.run" in shallow
        assert "pack.vpack" not in shallow

    def test_warnings_surface_in_report(self):
        run = parse_run([{"type": "mystery"}])
        report = render_report(run)
        assert "warnings (1)" in report
        assert "unknown record type" in report

    def test_empty_run_renders(self):
        report = render_report(parse_run([]))
        assert "(no span records)" in report


class TestHtmlReport:
    def test_standalone_page(self):
        page = render_html(load_run(FIXTURE))
        assert page.startswith("<!doctype html>")
        assert "<style>" in page
        assert "flow.run" in page
        assert "route.pathfinder" in page

    def test_attrs_escaped(self):
        run = parse_run([{"type": "span", "name": "x<script>",
                          "duration_s": 1.0, "attrs": {"k": "<b>"}}])
        page = render_html(run)
        assert "<script>" not in page
        assert "x&lt;script&gt;" in page

    def test_bulky_series_attrs_omitted(self):
        page = render_html(load_run(FIXTURE))
        # Raw convergence/trajectory lists stay in the JSONL, not the page.
        assert "overused_nodes&#x27;:" not in page
        assert "'temperature':" not in page
