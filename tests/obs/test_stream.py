"""Tests for repro.obs.stream: publisher, collector, streaming tracer.

Everything here runs in-process against a plain queue.Queue sink —
the cross-process path is exercised by tests/runner/test_live_batch.py.
"""

import json
import queue

from repro.obs import run_manifest
from repro.obs.shards import assemble_run
from repro.obs.stream import (
    EVENT_SCHEMA_VERSION,
    EventPublisher,
    NULL_PUBLISHER,
    StreamingTracer,
    TelemetryCollector,
    TraceContext,
    get_publisher,
    use_publisher,
)
from repro.obs.trace import Tracer


def _drain(sink):
    events = []
    while True:
        try:
            events.append(sink.get_nowait())
        except queue.Empty:
            return events


class TestEventPublisher:
    def test_envelope_and_monotonic_seq(self):
        sink = queue.Queue()
        pub = EventPublisher(sink, job="j", index=2)
        pub.hello(attempt=1)
        pub.progress("route.iteration", iteration=3)
        pub.bye(status="ok")
        events = _drain(sink)
        assert [e["ev"] for e in events] == ["hello", "progress", "bye"]
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert all(e["job"] == "j" and "t" in e for e in events)
        assert events[0]["v"] == EVENT_SCHEMA_VERSION
        assert events[0]["index"] == 2

    def test_broken_sink_drops_never_raises(self):
        class Broken:
            def put_nowait(self, event):
                raise RuntimeError("queue torn down")

        pub = EventPublisher(Broken(), job="j")
        pub.hello()
        pub.heartbeat()
        assert pub.dropped == 2

    def test_bye_reports_dropped_count(self):
        sink = queue.Queue(maxsize=1)
        pub = EventPublisher(sink, job="j")
        pub.hello()
        pub.heartbeat()  # full queue -> dropped
        sink.get_nowait()
        pub.bye()
        (bye,) = _drain(sink)
        assert bye["ev"] == "bye" and bye["dropped"] == 1

    def test_silence_stops_all_emission(self):
        sink = queue.Queue()
        pub = EventPublisher(sink, job="j")
        pub.silence()
        pub.hello()
        pub.heartbeat()
        assert _drain(sink) == [] and pub.dropped == 0

    def test_contextvar_default_is_null(self):
        assert get_publisher() is NULL_PUBLISHER
        assert not NULL_PUBLISHER.enabled
        sink = queue.Queue()
        pub = EventPublisher(sink, job="j")
        with use_publisher(pub):
            assert get_publisher() is pub
        assert get_publisher() is NULL_PUBLISHER


class TestTraceContext:
    def test_roundtrip(self):
        ctx = TraceContext(trace_id="t", parent_span_id="s9", span_prefix="j3.")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_make_tracer_streams_only_when_publishing(self):
        ctx = TraceContext(trace_id="t", parent_span_id="s9", span_prefix="j0.")
        assert isinstance(ctx.make_tracer(None), Tracer)
        assert not isinstance(ctx.make_tracer(None), StreamingTracer)
        pub = EventPublisher(queue.Queue(), job="j")
        assert isinstance(ctx.make_tracer(pub), StreamingTracer)

    def test_span_ids_identical_with_and_without_streaming(self):
        ctx = TraceContext(trace_id="t", parent_span_id="s9", span_prefix="j0.")

        def spans_of(tracer):
            with tracer.span("batch.job"):
                with tracer.span("flow.route"):
                    pass
            return [(s.span_id, s.parent_id) for s in tracer.iter_spans()]

        plain = spans_of(ctx.make_tracer(None))
        streamed = spans_of(ctx.make_tracer(EventPublisher(queue.Queue(), "j")))
        assert plain == streamed
        assert plain[0] == ("j0.s1", "s9")


class TestStreamingTracer:
    def test_root_close_carries_shard_record(self):
        sink = queue.Queue()
        pub = EventPublisher(sink, job="j")
        tracer = StreamingTracer(pub, trace_id="t", span_prefix="j0.")
        with tracer.span("batch.job") as root:
            with tracer.span("flow.route"):
                pass
        events = _drain(sink)
        assert [e["ev"] for e in events] == [
            "span_open", "span_open", "span_close", "span_close"]
        inner_close, root_close = events[2], events[3]
        assert "record" not in inner_close
        record = root_close["record"]
        assert record["span_id"] == root.span_id == "j0.s1"
        assert record["children"][0]["name"] == "flow.route"


class TestTelemetryCollector:
    def _publish_job(self, collector, key="job-a", status="ok",
                     metrics=None, record=None):
        sink = queue.Queue()
        pub = EventPublisher(sink, job=key, index=0)
        pub.hello()
        if record is not None:
            pub.emit("span_close", span_id="j0.s1", name="batch.job",
                     status="ok", duration_s=0.1, record=record)
        pub.bye(status=status, metrics=metrics)
        collector.pump(sink)
        return pub

    def test_seq_gap_counts_dropped(self):
        collector = TelemetryCollector()
        collector.handle({"ev": "hello", "job": "j", "seq": 1,
                          "v": EVENT_SCHEMA_VERSION})
        collector.handle({"ev": "heartbeat", "job": "j", "seq": 5})
        assert collector.jobs["j"].dropped == 3
        assert collector.dropped_events() == 3

    def test_malformed_events_counted_not_raised(self):
        collector = TelemetryCollector()
        collector.handle("not a dict")
        collector.handle({"ev": "hello"})  # no job key
        collector.handle({"ev": "???", "job": "j", "seq": 1})
        assert collector.malformed == 3

    def test_hello_resets_retried_attempt(self):
        collector = TelemetryCollector()
        collector.handle({"ev": "hello", "job": "j", "seq": 1, "attempt": 1,
                          "v": EVENT_SCHEMA_VERSION})
        collector.handle({"ev": "span_close", "job": "j", "seq": 2,
                          "name": "batch.job", "record": {"span_id": "x"}})
        collector.handle({"ev": "hello", "job": "j", "seq": 1, "attempt": 2,
                          "v": EVENT_SCHEMA_VERSION})
        state = collector.jobs["j"]
        assert state.attempt == 2 and state.records == [] and state.last_seq == 1

    def test_schema_version_mismatch_warns(self):
        collector = TelemetryCollector()
        collector.handle({"ev": "hello", "job": "j", "seq": 1, "v": 99})
        assert any("schema" in w for w in collector.warnings)

    def test_records_withheld_until_bye(self):
        collector = TelemetryCollector()
        collector.handle({"ev": "hello", "job": "j", "seq": 1,
                          "v": EVENT_SCHEMA_VERSION})
        collector.handle({"ev": "span_close", "job": "j", "seq": 2,
                          "name": "batch.job",
                          "record": {"span_id": "j0.s1", "name": "batch.job"}})
        # A crashed attempt never writes its shard; its streamed partial
        # must equally stay out of the run model.
        assert collector.job_records("j") == []
        collector.handle({"ev": "bye", "job": "j", "seq": 3, "status": "ok",
                          "metrics": {"m": {"kind": "counter", "value": 1.0}}})
        records = collector.job_records("j")
        assert [r["type"] for r in records] == ["span", "metrics"]

    def test_mark_done_does_not_override_bye(self):
        collector = TelemetryCollector()
        self._publish_job(collector, status="ok")
        collector.mark_done("job-a", "error")
        assert collector.jobs["job-a"].status == "ok"
        collector.mark_done("job-b", "crashed")
        assert collector.jobs["job-b"].status == "crashed"

    def test_stalled_measures_receive_silence(self):
        collector = TelemetryCollector()
        state = collector.expect("j", index=0)
        assert collector.stalled(10.0, now=state.last_seen + 5.0) == []
        assert [s.key for s in
                collector.stalled(10.0, now=state.last_seen + 11.0)] == ["j"]
        collector.handle({"ev": "bye", "job": "j", "seq": 1, "status": "ok"})
        assert collector.stalled(10.0, now=state.last_seen + 999.0) == []

    def test_run_records_match_assemble_run(self):
        collector = TelemetryCollector()
        record = {"span_id": "j0.s1", "name": "batch.job", "start_s": 0.0,
                  "end_s": 1.0, "status": "ok", "attrs": {}, "children": []}
        metrics = {"route.iters": {"kind": "counter", "value": 4.0}}
        self._publish_job(collector, record=record, metrics=metrics)
        manifest = run_manifest()
        live = collector.run_records(manifest, ["job-a"])
        direct = assemble_run(
            manifest,
            [[{"type": "span", **record}, {"type": "metrics", "metrics": metrics}]])
        assert ([json.dumps(r, sort_keys=True) for r in live]
                == [json.dumps(r, sort_keys=True) for r in direct])
