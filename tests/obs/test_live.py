"""Tests for repro.obs.live: pure rendering + display refresh policy."""

import io

from repro.obs.live import (
    LiveDisplay,
    format_age,
    format_rss,
    progress_summary,
    render_rows,
)
from repro.obs.stream import EVENT_SCHEMA_VERSION, TelemetryCollector


def _collector_with(*events):
    collector = TelemetryCollector()
    for event in events:
        collector.handle(event)
    return collector


def _hello(job, seq=1, **extra):
    return {"ev": "hello", "job": job, "seq": seq,
            "v": EVENT_SCHEMA_VERSION, **extra}


class TestFormatters:
    def test_format_age(self):
        assert format_age(0.31) == "0.3s"
        assert format_age(42.0) == "42s"
        assert format_age(600.0) == "10m"

    def test_format_rss(self):
        assert format_rss(None) == "-"
        assert format_rss(0) == "-"
        assert format_rss(51200) == "50M"

    def test_progress_summary_priority(self):
        collector = _collector_with(
            _hello("j"),
            {"ev": "progress", "job": "j", "seq": 2, "kind": "route.iteration",
             "iteration": 7, "overused": 12},
        )
        state = collector.jobs["j"]
        assert progress_summary(state) == "iter 7 overuse 12"
        # A repair rung outranks routing progress once it appears.
        collector.handle({"ev": "progress", "job": "j", "seq": 3,
                          "kind": "repair.stage", "stage": "incremental",
                          "nets_ripped": 4})
        assert progress_summary(state) == "repair:incremental ripped=4"


class TestRenderRows:
    def test_rows_in_spec_order_with_footer(self):
        collector = TelemetryCollector()
        collector.expect("b-job", index=1)
        collector.expect("a-job", index=0)
        lines = render_rows(collector, now=0.0)
        assert lines[0].startswith("job")
        assert lines[1].startswith("a-job") and lines[2].startswith("b-job")
        assert lines[-1] == "[0/2 done, 0 events dropped]"

    def test_stalled_flag_and_done_suppression(self):
        collector = _collector_with(_hello("slow"), _hello("fast", seq=1),
                                    {"ev": "bye", "job": "fast", "seq": 2,
                                     "status": "ok"})
        now = collector.jobs["slow"].last_seen + 30.0
        lines = render_rows(collector, stall_after_s=5.0, now=now)
        slow_line = next(l for l in lines if l.startswith("slow"))
        fast_line = next(l for l in lines if l.startswith("fast"))
        assert "STALLED?" in slow_line
        # Finished jobs never stall, whatever their age.
        assert "STALLED?" not in fast_line and "ok" in fast_line

    def test_dropped_events_surface_in_footer(self):
        collector = _collector_with(
            _hello("j"), {"ev": "heartbeat", "job": "j", "seq": 9})
        assert "7 events dropped" in render_rows(collector, now=0.0)[-1]


class TestLiveDisplay:
    def test_non_tty_interval_floored_and_rate_limited(self):
        stream = io.StringIO()
        display = LiveDisplay(stream=stream, interval_s=0.25)
        assert display.interval_s == LiveDisplay.NON_TTY_MIN_INTERVAL_S
        collector = _collector_with(_hello("j"))
        assert display.tick(collector)
        assert not display.tick(collector)  # within the interval
        assert display.tick(collector, force=True)
        frames = stream.getvalue()
        assert frames.count("[0/1 done") == 2
        assert "\x1b[" not in frames  # plain text off-TTY

    def test_close_always_draws_final_frame(self):
        stream = io.StringIO()
        display = LiveDisplay(stream=stream)
        collector = _collector_with(
            _hello("j"), {"ev": "bye", "job": "j", "seq": 2, "status": "ok"})
        display.tick(collector, force=True)
        display.close(collector)
        assert stream.getvalue().count("[1/1 done") == 2
