"""Unit tests for metric primitives and the registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("nets")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(4)
        assert c.snapshot() == {"kind": "counter", "value": 4.0}


class TestGauge:
    def test_set_and_move(self):
        g = Gauge("pres_fac")
        assert g.value is None
        g.set(1.5)
        g.inc(0.5)
        g.dec(1.0)
        assert g.value == pytest.approx(1.0)

    def test_snapshot(self):
        g = Gauge("x")
        g.set(7)
        assert g.snapshot() == {"kind": "gauge", "value": 7}


class TestHistogram:
    def test_aggregates(self):
        h = Histogram("delays")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0

    def test_percentiles_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(95) == 95
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1
        assert h.snapshot()["p95"] == 95

    def test_percentile_bounds_checked(self):
        h = Histogram("x")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram_snapshots_none(self):
        snap = Histogram("x").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None and snap["p50"] is None

    def test_time_context_manager(self):
        h = Histogram("t")
        with h.time():
            pass
        assert h.count == 1
        assert h.max >= 0.0

    def test_snapshot_keys(self):
        h = Histogram("x")
        h.observe(3.0)
        snap = h.snapshot()
        assert snap["kind"] == "histogram"
        assert set(snap) == {
            "kind", "count", "sum", "min", "max", "mean", "p50", "p90", "p95",
            "p99", "buckets",
        }

    def test_snapshot_buckets_cover_observations(self):
        h = Histogram("x")
        for v in (0.3, 0.6, 3.0, 3.5, 1e12):
            h.observe(v)
        snap = h.snapshot()
        # Sparse [upper_bound, count] pairs; counts add up to count and
        # every observation falls at or below its bucket's bound (None
        # is the overflow bucket).
        assert sum(c for _, c in snap["buckets"]) == 5
        bounds = [b for b, _ in snap["buckets"]]
        assert bounds == sorted(bounds, key=lambda b: float("inf") if b is None else b)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_covers_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["c"]["value"] == 2
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1

    def test_contains_len_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert "a" in reg and "z" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().get("nope")

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()
