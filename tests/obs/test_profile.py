"""Tests for repro.obs.profile: the dependency-free sampling profiler."""

import sys
import time

from repro.obs.profile import (
    MAX_DEPTH,
    Profiler,
    collapse_frame,
    merge_profiles,
    profiled,
)
from repro.obs.trace import Tracer


def _leaf_frame():
    return sys._getframe()


def _mid_frame():
    return _leaf_frame()


class TestCollapseFrame:
    def test_root_first_semicolon_joined(self):
        stack = collapse_frame(_mid_frame())
        frames = stack.split(";")
        # Leaf-most entries come last, rooted at the interpreter entry.
        assert frames[-1] == "test_profile.py:_leaf_frame"
        assert frames[-2] == "test_profile.py:_mid_frame"

    def test_deep_stack_truncates_keeping_leaf(self):
        def recurse(n):
            if n == 0:
                return collapse_frame(sys._getframe())
            return recurse(n - 1)

        stack = recurse(MAX_DEPTH * 2)
        frames = stack.split(";")
        assert len(frames) <= MAX_DEPTH + 1
        assert frames[-1] == "test_profile.py:recurse"


def _burn(deadline_s=0.3):
    end = time.perf_counter() + deadline_s
    x = 0
    while time.perf_counter() < end:
        x += sum(i * i for i in range(200))
    return x


class TestProfiler:
    def test_thread_backend_samples_busy_main_thread(self):
        profiler = Profiler(interval_s=0.005, backend="thread")
        profiler.start()
        try:
            _burn()
        finally:
            profiler.stop()
        attr = profiler.as_attr()
        assert attr["backend"] == "thread"
        assert attr["samples"] > 0
        assert any("_burn" in stack for stack in attr["stacks"])

    def test_sigprof_backend_samples_cpu_time(self):
        profiler = Profiler(interval_s=0.005, backend="sigprof")
        profiler.start()
        try:
            _burn()
        finally:
            profiler.stop()
        attr = profiler.as_attr()
        assert attr["backend"] == "sigprof"
        assert attr["samples"] > 0
        assert sum(attr["stacks"].values()) == attr["samples"]

    def test_profiled_attaches_attr_to_span(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            with profiled(span, interval_s=0.005):
                _burn()
        profile = span.attrs["profile"]
        assert profile["samples"] > 0 and profile["stacks"]

    def test_profiled_disabled_is_inert(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            with profiled(span, enabled=False) as profiler:
                pass
        assert profiler is None
        assert "profile" not in span.attrs


class TestMergeProfiles:
    def test_merge_sums_samples_and_stacks(self):
        a = {"interval_s": 0.005, "backend": "sigprof", "samples": 3,
             "stacks": {"m:f;m:g": 2, "m:f;m:h": 1}}
        b = {"interval_s": 0.005, "backend": "sigprof", "samples": 2,
             "stacks": {"m:f;m:g": 2}}
        merged = merge_profiles([a, b])
        assert merged["samples"] == 5
        assert merged["stacks"] == {"m:f;m:g": 4, "m:f;m:h": 1}
