"""Tests for the collector's subscriber fan-out and synthetic-record
injection (`inject_records`) — the paths `repro serve` and warm-store
batches lean on.
"""

import queue

from repro.obs.stream import EventPublisher, TelemetryCollector


def _events_for(collector, key="j", index=0):
    sink = queue.Queue()
    pub = EventPublisher(sink, job=key, index=index)
    collector.expect(key, index)
    pub.hello(attempt=1)
    pub.progress("route.iteration", iteration=1)
    pub.bye(status="ok")
    while True:
        try:
            collector.handle(sink.get_nowait())
        except queue.Empty:
            return


class TestFanOut:
    def test_subscribers_see_every_wellformed_event(self):
        collector = TelemetryCollector()
        seen = []
        collector.add_subscriber(seen.append)
        _events_for(collector)
        assert [e["ev"] for e in seen] == ["hello", "progress", "bye"]

    def test_malformed_events_are_not_fanned_out(self):
        collector = TelemetryCollector()
        seen = []
        collector.add_subscriber(seen.append)
        collector.handle({"no": "envelope"})
        assert collector.malformed == 1
        assert seen == []

    def test_raising_subscriber_is_dropped_not_fatal(self):
        collector = TelemetryCollector()
        healthy = []

        def broken(_event):
            raise RuntimeError("slow consumer fell over")

        collector.add_subscriber(broken)
        collector.add_subscriber(healthy.append)
        _events_for(collector)
        assert len(healthy) == 3  # the healthy one kept receiving

    def test_remove_subscriber(self):
        collector = TelemetryCollector()
        seen = []
        collector.add_subscriber(seen.append)
        collector.remove_subscriber(seen.append)
        _events_for(collector)
        assert seen == []


class TestInjectRecords:
    RECORDS = [
        {"type": "span", "name": "batch.job", "trace_id": "t", "span_id": "s",
         "attrs": {"cached": True}},
        {"type": "metrics", "metrics": {"store.hits": {"value": 1.0}}},
    ]

    def test_injected_job_reads_as_done(self):
        collector = TelemetryCollector()
        collector.inject_records("j", self.RECORDS, status="ok", index=3)
        state = collector.jobs["j"]
        assert state.done and state.status == "ok"
        assert [r["name"] for r in state.records] == ["batch.job"]
        assert state.metrics == {"store.hits": {"value": 1.0}}

    def test_injection_fans_out_a_cached_event(self):
        collector = TelemetryCollector()
        seen = []
        collector.add_subscriber(seen.append)
        collector.inject_records("j", self.RECORDS)
        assert len(seen) == 1
        assert seen[0]["ev"] == "cached" and seen[0]["job"] == "j"
