"""Benchmark history: summarize, append dedupe, median-of-N gating."""

import json

import pytest

from repro.obs.analyze import (
    HISTORY_SCHEMA,
    append_history,
    check_history,
    load_history,
    prune_history,
    summarize_bench,
)


def bench_doc(circuit="tseng", sha="aaa", created=1000.0, wirelength=161,
              route_s=0.09):
    return {
        "circuit": circuit,
        "manifest": {"git_sha": sha, "created_unix": created,
                     "bench_scale": 0.02},
        "telemetry": {
            "flows": [{
                "name": "flow.run",
                "children": [{
                    "name": "flow.route",
                    "attrs": {"wirelength": wirelength, "iterations": 9,
                              "channel_width": 56, "overused_nodes": 0},
                }],
            }],
            "stages": {"flow.pack": 0.001, "flow.place": 0.12,
                       "flow.route": route_s},
        },
    }


def row(circuit="tseng", sha="aaa", created=1000.0, wirelength=161,
        route_s=0.09):
    return summarize_bench(bench_doc(circuit, sha, created, wirelength, route_s))


class TestSummarize:
    def test_row_shape(self):
        r = row()
        assert r["type"] == "bench"
        assert r["schema"] == HISTORY_SCHEMA
        assert r["circuit"] == "tseng"
        assert r["git_sha"] == "aaa"
        assert r["stages"] == {"pack": 0.001, "place": 0.12, "route": 0.09}
        assert r["qor"]["wirelength"] == 161.0
        assert r["qor"]["channel_width"] == 56.0

    def test_stage_names_normalised(self):
        # Bare names and "flow."-prefixed names land in the same place.
        doc = bench_doc()
        doc["telemetry"]["stages"] = {"route": 0.5}
        assert summarize_bench(doc)["stages"] == {"route": 0.5}

    def test_non_bench_doc_raises(self):
        with pytest.raises(ValueError, match="missing 'circuit'"):
            summarize_bench({"not": "a bench"})


class TestAppend:
    def test_append_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        assert append_history(path, [row(sha="a"), row(sha="b", created=2000)]) == 2
        rows, warnings = load_history(path)
        assert warnings == []
        assert [r["git_sha"] for r in rows] == ["a", "b"]

    def test_same_key_replaces_not_duplicates(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, [row(sha="a", wirelength=100)])
        append_history(path, [row(sha="a", wirelength=200)])
        rows, _ = load_history(path)
        assert len(rows) == 1
        assert rows[0]["qor"]["wirelength"] == 200.0

    def test_different_circuits_share_a_sha(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, [row(circuit="tseng"), row(circuit="alu4")])
        rows, _ = load_history(path)
        assert {r["circuit"] for r in rows} == {"tseng", "alu4"}

    def test_rows_are_deterministic_json(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, [row()])
        first = open(path).read()
        append_history(path, [row()])
        assert open(path).read() == first

    def test_unkeyed_rows_dedupe_by_content(self, tmp_path):
        # A tarball checkout has no git SHA; re-appending the identical
        # row must still be idempotent instead of growing the file.
        path = str(tmp_path / "hist.jsonl")
        unkeyed = row(sha="x")
        unkeyed["git_sha"] = None
        append_history(path, [unkeyed])
        append_history(path, [dict(unkeyed)])
        rows, _ = load_history(path)
        assert len(rows) == 1

    def test_distinct_unkeyed_rows_both_kept(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        a, b = row(sha="x", wirelength=100), row(sha="x", wirelength=200)
        a["git_sha"] = b["git_sha"] = None
        append_history(path, [a])
        append_history(path, [b])
        rows, _ = load_history(path)
        assert len(rows) == 2

    def test_prune_collapses_pre_dedup_duplicates(self, tmp_path):
        # A store grown by pre-dedup appends: the same key three times.
        path = tmp_path / "hist.jsonl"
        path.write_text("".join(
            json.dumps(row(sha="a", wirelength=wl), sort_keys=True) + "\n"
            for wl in (100, 150, 200)))
        kept, dropped = prune_history(str(path))
        assert (kept, dropped) == (1, 2)
        rows, _ = load_history(str(path))
        assert rows[0]["qor"]["wirelength"] == 200.0

    def test_prune_keep_trims_per_circuit(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, [row(sha=f"s{i}", created=1000.0 + i)
                              for i in range(6)]
                       + [row(circuit="alu4", sha="z", created=1.0)])
        kept, dropped = prune_history(path, keep=2)
        assert (kept, dropped) == (3, 4)
        rows, _ = load_history(path)
        tseng = [r for r in rows if r["circuit"] == "tseng"]
        # The newest two rows by created_unix survive.
        assert sorted(r["git_sha"] for r in tseng) == ["s4", "s5"]
        assert sum(r["circuit"] == "alu4" for r in rows) == 1

    def test_prune_missing_file_is_empty(self, tmp_path):
        assert prune_history(str(tmp_path / "nope.jsonl")) == (0, 0)

    def test_prune_bad_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            prune_history(str(tmp_path / "hist.jsonl"), keep=0)

    def test_prune_is_idempotent(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, [row(sha="a"), row(sha="b", created=2000)])
        prune_history(path)
        before = open(path).read()
        assert prune_history(path) == (2, 0)
        assert open(path).read() == before

    def test_load_skips_foreign_rows(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            json.dumps(row()) + "\n"
            + "not json\n"
            + json.dumps({"type": "other"}) + "\n"
            + json.dumps(dict(row(sha="b"), schema=HISTORY_SCHEMA + 1)) + "\n"
        )
        rows, warnings = load_history(str(path))
        assert len(rows) == 1
        assert len(warnings) == 3
        assert any("newer than supported" in w for w in warnings)


class TestCheck:
    def history(self, n=5, wirelength=161, route_s=0.09):
        return [row(sha=f"sha{i}", created=1000.0 + i, wirelength=wirelength,
                    route_s=route_s) for i in range(n)]

    def test_stable_measures_pass(self):
        check = check_history(self.history(), [row(sha="new", created=2000)])
        assert check.ok
        assert not check.violations
        measures = {c["measure"] for c in check.compared}
        assert "qor.wirelength" in measures
        assert "route.wall_s" in measures

    def test_regression_beyond_band_fails(self):
        check = check_history(self.history(wirelength=100),
                              [row(sha="new", created=2000, wirelength=161)])
        assert not check.ok
        assert any("qor.wirelength" in v for v in check.violations)

    def test_median_absorbs_one_outlier(self):
        hist = self.history(n=4, route_s=0.09)
        hist.append(row(sha="spike", created=1999, route_s=9.0))
        check = check_history(hist, [row(sha="new", created=2000, route_s=0.09)])
        assert check.ok

    def test_window_limits_lookback(self):
        # Old slow rows outside the window must not mask a regression
        # against the recent fast median.
        old = [row(sha=f"old{i}", created=100.0 + i, route_s=10.0)
               for i in range(5)]
        recent = [row(sha=f"new{i}", created=1000.0 + i, route_s=0.1)
                  for i in range(5)]
        check = check_history(old + recent,
                              [row(sha="now", created=2000, route_s=5.0)],
                              window=5)
        assert not check.ok

    def test_qor_only_skips_wall_times(self):
        check = check_history(self.history(route_s=0.01),
                              [row(sha="new", created=2000, route_s=9.0)],
                              wall_times=False)
        assert check.ok
        assert all(not c["measure"].endswith(".wall_s") for c in check.compared)

    def test_self_row_excluded_from_baseline(self):
        current = row(sha="same", created=2000)
        check = check_history([current], [current])
        assert check.compared == []
        assert any("no prior history" in w for w in check.warnings)

    def test_improvements_never_fail(self):
        check = check_history(self.history(wirelength=161),
                              [row(sha="new", created=2000, wirelength=80)])
        assert check.ok

    def test_determinism(self):
        hist = self.history()
        current = [row(sha="new", created=2000)]
        a = check_history(hist, current).to_dict()
        b = check_history(hist, current).to_dict()
        assert a == b

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            check_history([], [], window=0)
        with pytest.raises(ValueError):
            check_history([], [], band_pct=-1)
