"""Run diffing: span alignment, thresholds, verdicts."""

import math
import os

import pytest

from repro.obs.analyze import (
    DiffEntry,
    Threshold,
    diff_runs,
    diff_to_dict,
    evaluate_thresholds,
    format_diff,
    load_run,
    parse_run,
    parse_threshold,
    run_measurements,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


def span(name, duration, attrs=None, children=()):
    return {"type": "span", "name": name, "duration_s": duration,
            "attrs": attrs or {}, "children": list(children)}


def flow_run(route_s=1.0, wirelength=100, with_place=True):
    children = [span("flow.pack", 0.1, {"clusters": 4})]
    if with_place:
        children.append(span("flow.place", 0.5))
    children.append(
        span("flow.route", route_s, {"wirelength": wirelength, "success": True})
    )
    return parse_run(
        [span("flow.run", route_s + 0.6, {"circuit": "tseng"}, children)],
        source="synthetic",
    )


class TestMeasurements:
    def test_stage_aliases_from_fixture(self):
        m = run_measurements(load_run(FIXTURE))
        for key in ("total.wall_s", "flow.wall_s", "pack.wall_s",
                    "place.wall_s", "route.wall_s", "timing.wall_s",
                    "crossbar.wall_s", "route.wirelength", "route.iterations",
                    "pack.clusters", "timing.critical_path_s"):
            assert key in m, key

    def test_circuit_and_variant_namespaces(self):
        m = run_measurements(load_run(FIXTURE))
        assert m["circuit.tseng.route.wirelength"] == m["route.wirelength"]
        assert m["variant.CMOS_ONLY.leakage_w"] > m["variant.CMOS_NEM_OPT.leakage_w"]

    def test_span_paths_and_registry_metrics(self):
        m = run_measurements(load_run(FIXTURE))
        assert "span.flow.run/flow.route.wall_s" in m
        assert m["metric.pack.clusters"] == m["pack.clusters"]
        assert "metric.timing.slack_s.p90" in m

    def test_outer_span_wins_wall_time(self):
        # flow.route contains route.pathfinder; the alias must count the
        # outer span once, not sum both.
        inner = span("route.pathfinder", 0.9, {"iterations": 5})
        run = parse_run([span("flow.route", 1.0, {}, [inner])])
        m = run_measurements(run)
        assert m["route.wall_s"] == pytest.approx(1.0)
        assert m["route.iterations"] == 5

    def test_bool_attrs_become_numbers(self):
        m = run_measurements(flow_run())
        assert m["route.success"] == 1.0


class TestAlignment:
    def test_identical_runs_diff_to_zero(self):
        diff = diff_runs(flow_run(), flow_run())
        assert diff.changed() == []
        assert diff.get("route.wirelength").delta == 0.0

    def test_changed_metric_signed_delta(self):
        diff = diff_runs(flow_run(wirelength=100), flow_run(wirelength=90))
        entry = diff.get("route.wirelength")
        assert entry.delta == -10.0
        assert entry.pct == pytest.approx(-10.0)

    def test_missing_stage_in_one_run(self):
        diff = diff_runs(flow_run(with_place=True), flow_run(with_place=False))
        entry = diff.get("place.wall_s")
        assert entry.a is not None
        assert entry.b is None
        assert entry.delta is None

    def test_extra_stage_in_candidate(self):
        diff = diff_runs(flow_run(with_place=False), flow_run(with_place=True))
        entry = diff.get("place.wall_s")
        assert entry.a is None
        assert entry.b is not None

    def test_growth_from_zero_is_inf_pct(self):
        entry = DiffEntry(key="x", a=0.0, b=2.0)
        assert math.isinf(entry.pct)
        assert entry.pct > 0

    def test_shrink_to_below_zero_is_negative_inf_pct(self):
        entry = DiffEntry(key="x", a=0.0, b=-2.0)
        assert math.isinf(entry.pct)
        assert entry.pct < 0

    def test_zero_to_zero_pct_is_zero(self):
        entry = DiffEntry(key="x", a=0.0, b=0.0)
        assert entry.pct == 0.0

    def test_missing_baseline_pct_is_none(self):
        assert DiffEntry(key="x", a=None, b=2.0).pct is None
        assert DiffEntry(key="x", a=2.0, b=None).pct is None
        assert DiffEntry(key="x", a=None, b=None).pct is None

    def test_repeated_spans_align_by_path_suffix(self):
        records = [span("evaluate", 0.1, {"variant": "X"}),
                   span("evaluate", 0.2, {"variant": "Y"})]
        m = run_measurements(parse_run(records))
        assert m["span.evaluate.wall_s"] == pytest.approx(0.1)
        assert m["span.evaluate#2.wall_s"] == pytest.approx(0.2)


class TestThresholds:
    @pytest.mark.parametrize("spec, key, op, bound, relative", [
        ("route.wall_s>+10%", "route.wall_s", ">", 10.0, True),
        ("route.wirelength>+0", "route.wirelength", ">", 0.0, False),
        ("timing.critical_path_s<-50%", "timing.critical_path_s", "<", -50.0, True),
        ("metric.pack.clusters>=2", "metric.pack.clusters", ">=", 2.0, False),
        (" pack.wall_s <= -1.5e-2 ", "pack.wall_s", "<=", -0.015, False),
    ])
    def test_grammar(self, spec, key, op, bound, relative):
        t = parse_threshold(spec)
        assert (t.key, t.op, t.bound, t.relative) == (key, op, bound, relative)

    @pytest.mark.parametrize("spec", [
        "", "route.wall_s", ">10%", "route.wall_s=10", "route.wall_s>ten",
        "route.wall_s>10%%", "a b>1",
    ])
    def test_bad_grammar_raises(self, spec):
        with pytest.raises(ValueError):
            parse_threshold(spec)

    def test_gate_passes_within_bound(self):
        t = parse_threshold("route.wall_s>+50%")
        assert t.violation(DiffEntry(key="route.wall_s", a=1.0, b=1.2)) is None

    def test_gate_fails_beyond_bound(self):
        t = parse_threshold("route.wall_s>+50%")
        message = t.violation(DiffEntry(key="route.wall_s", a=1.0, b=1.6))
        assert message is not None
        assert "route.wall_s" in message

    def test_absolute_bound(self):
        t = parse_threshold("route.wirelength>+0")
        assert t.violation(DiffEntry(key="route.wirelength", a=100, b=100)) is None
        assert t.violation(DiffEntry(key="route.wirelength", a=100, b=101))

    def test_missing_metric_is_a_violation(self):
        t = parse_threshold("nonexistent>+5%")
        message = t.violation(DiffEntry(key="nonexistent", a=None, b=None))
        assert "missing from run A and B" in message

    def test_verdict_over_diff(self):
        diff = diff_runs(flow_run(wirelength=100), flow_run(wirelength=120))
        verdict = evaluate_thresholds(diff, [
            parse_threshold("route.wirelength>+10%"),
            parse_threshold("pack.clusters>+0"),
        ])
        assert not verdict.ok
        assert len(verdict.violations) == 1
        assert "route.wirelength" in verdict.violations[0]


class TestFormatting:
    def test_table_hides_span_keys_by_default(self):
        text = format_diff(diff_runs(flow_run(), flow_run()))
        assert "route.wall_s" in text
        assert "span." not in text

    def test_only_changed_filter(self):
        diff = diff_runs(flow_run(route_s=1.0), flow_run(route_s=2.0))
        text = format_diff(diff, only_changed=True)
        assert "wall_s" in text
        assert "route.wirelength" not in text

    def test_json_payload_with_verdict(self):
        diff = diff_runs(flow_run(), flow_run(wirelength=200))
        verdict = evaluate_thresholds(diff, [parse_threshold("route.wirelength>+0")])
        payload = diff_to_dict(diff, verdict)
        assert payload["ok"] is False
        assert payload["thresholds"] == ["route.wirelength>+0"]
        assert payload["metrics"]["route.wirelength"]["delta"] == 100.0

    def test_json_payload_inf_pct_nulled(self):
        diff = diff_runs(parse_run([span("flow.route", 1.0, {"wirelength": 0})]),
                         parse_run([span("flow.route", 1.0, {"wirelength": 5})]))
        payload = diff_to_dict(diff)
        assert payload["metrics"]["route.wirelength"]["pct"] is None

    def test_fmt_pct_edge_values(self):
        from repro.obs.analyze.diff import _fmt_pct

        assert _fmt_pct(None) == "-"
        assert _fmt_pct(math.inf) == "+inf%"
        assert _fmt_pct(-math.inf) == "-inf%"
        assert _fmt_pct(0.0) == "+0.0%"
        assert _fmt_pct(-12.34) == "-12.3%"

    def test_zero_baseline_rows_format_without_crashing(self):
        # A measure growing from exactly 0 must render as +inf%, not
        # raise, in both the table and JSON paths.
        diff = diff_runs(parse_run([span("flow.route", 1.0, {"wirelength": 0})]),
                         parse_run([span("flow.route", 1.0, {"wirelength": 5})]))
        text = format_diff(diff)
        assert "+inf%" in text
