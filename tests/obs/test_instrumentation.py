"""Instrumentation coverage: pack, timing, crossbar programming and the
variation Monte-Carlo all emit spans and registry metrics."""

import pytest

from repro.arch.params import ArchParams
from repro.config.bitstream import Bitstream, program_fabric
from repro.core.variants import baseline_variant
from repro.crossbar.array import uniform_crossbar
from repro.crossbar.halfselect import HalfSelectProgrammer, PAPER_2X2_VOLTAGES
from repro.netlist.generate import GeneratorParams, generate
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM
from repro.nemrelay.variation import sample_population
from repro.obs import Tracer, get_registry, use_tracer
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import route_design
from repro.vpr.timing import analyze_timing

ARCH = ArchParams(channel_width=48)
PARAMS = GeneratorParams("obsunit", num_luts=40, ff_fraction=0.25, seed=3)


@pytest.fixture
def tracer():
    get_registry().reset()
    t = Tracer()
    with use_tracer(t):
        yield t
    get_registry().reset()


def roots_named(tracer, name):
    return [s for s in tracer.roots if s.name == name]


class TestPack:
    def test_span_and_metrics(self, tracer):
        clustered = pack(generate(PARAMS), ARCH)
        (span,) = roots_named(tracer, "pack.vpack")
        assert span.attrs["circuit"] == "obsunit"
        assert span.attrs["clusters"] == len(clustered.clusters)
        assert span.attrs["bles"] > 0
        snap = get_registry().snapshot()
        assert snap["pack.runs"]["value"] == 1
        assert snap["pack.clusters"]["value"] == len(clustered.clusters)
        assert snap["pack.cluster_size"]["count"] == len(clustered.clusters)


class TestTiming:
    def test_span_and_metrics(self, tracer):
        clustered = pack(generate(PARAMS), ARCH)
        placement = place(clustered, seed=7)
        result, graph = route_design(placement, ARCH)
        assert result.success
        report = analyze_timing(placement, result, graph,
                                baseline_variant(ARCH).fabric())
        (span,) = roots_named(tracer, "timing.sta")
        assert span.attrs["critical_path_s"] == pytest.approx(report.critical_path)
        assert span.attrs["endpoints"] > 0
        assert span.attrs["near_critical_endpoints"] >= 1
        snap = get_registry().snapshot()
        assert snap["timing.sta_runs"]["value"] == 1
        assert snap["timing.critical_path_s"]["value"] > 0
        assert snap["timing.slack_s"]["count"] == len(report.slacks())


class TestCrossbarProgram:
    def test_program_span_counts_pulses(self, tracer):
        model = ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)
        programmer = HalfSelectProgrammer(
            uniform_crossbar(2, 2, model), PAPER_2X2_VOLTAGES)
        targets = {(0, 0), (1, 1)}
        configured = programmer.program(targets)
        assert configured == targets
        (span,) = roots_named(tracer, "crossbar.program")
        assert span.attrs["row_pulses"] == 2  # one pulse per target row
        assert span.attrs["relays_closed"] == 2
        assert span.attrs["verified"] is True
        assert span.attrs["margins_ok"] is True
        snap = get_registry().snapshot()
        assert snap["crossbar.programs"]["value"] == 1
        assert snap["crossbar.row_pulses"]["value"] == 2
        assert snap["crossbar.margin_worst_v"]["value"] == pytest.approx(
            span.attrs["margin_worst_v"])
        assert "crossbar.verify_failures" not in snap

    def test_program_fabric_span(self, tracer):
        bitstream = Bitstream(
            switches_by_tile={(0, 0): [(1, 2), (3, 4), (5, 6)],
                              (1, 0): [(7, 8)]},
            net_of_edge={},
        )
        report = program_fabric(bitstream)
        assert report.success
        (span,) = roots_named(tracer, "crossbar.program_fabric")
        assert span.attrs["tiles"] == 2
        assert span.attrs["switches"] == 4
        assert span.attrs["relays_closed"] == 4
        assert span.attrs["success"] is True
        assert span.attrs["margin_worst_v"] > 0
        # Per-tile programming spans nest under the fabric span.
        assert [c.name for c in span.children] == ["crossbar.program"] * 2
        snap = get_registry().snapshot()
        assert snap["crossbar.fabric_programs"]["value"] == 1
        assert snap["crossbar.fabric_row_steps"]["value"] == report.row_steps


class TestVariationMC:
    def test_span_and_metrics(self, tracer):
        pop = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL,
                                count=25, seed=9)
        (span,) = roots_named(tracer, "nemrelay.variation_mc")
        assert span.attrs["count"] == 25
        assert span.attrs["vpi_min"] == pytest.approx(pop.vpi_min)
        assert span.attrs["vpi_spread"] == pytest.approx(pop.vpi_spread)
        assert span.attrs["half_select_feasible"] == pop.half_select_feasible()
        snap = get_registry().snapshot()
        assert snap["nemrelay.mc_runs"]["value"] == 1
        assert snap["nemrelay.mc_samples"]["value"] == 25
        assert snap["nemrelay.vpi_v"]["count"] == 25
        assert snap["nemrelay.vpo_v"]["count"] == 25

    def test_null_tracer_costs_nothing(self):
        # Without an installed tracer the instrumented code still runs.
        pop = sample_population(POLY_PLATINUM, FABRICATED_DEVICE, OIL,
                                count=5, seed=1)
        assert pop.count == 5
