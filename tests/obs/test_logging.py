"""Unit tests for structured logging setup."""

import io
import logging

from repro.obs import get_logger, kv, setup_logging
from repro.obs.logging import ROOT_LOGGER


def _reset():
    """Remove any handler setup_logging installed (test isolation)."""
    setup_logging(0)


class TestKv:
    def test_basic_fields(self):
        assert kv(a=1, b="x") == "a=1 b=x"

    def test_float_shortening(self):
        assert kv(v=0.123456789) == "v=0.123457"

    def test_strings_with_spaces_quoted(self):
        assert kv(msg="two words") == "msg='two words'"
        assert kv(msg="") == "msg=''"

    def test_bool_and_none(self):
        assert kv(ok=True, missing=None) == "ok=True missing=None"


class TestGetLogger:
    def test_prefixes_repro_namespace(self):
        assert get_logger("vpr.route").name == f"{ROOT_LOGGER}.vpr.route"

    def test_keeps_existing_prefix(self):
        assert get_logger(f"{ROOT_LOGGER}.x").name == f"{ROOT_LOGGER}.x"


class TestSetupLogging:
    def test_writes_structured_lines(self):
        stream = io.StringIO()
        try:
            setup_logging(1, stream=stream)
            get_logger("vpr.test").info("route iter %s", kv(iteration=3))
            line = stream.getvalue()
            assert "INFO" in line
            assert f"{ROOT_LOGGER}.vpr.test" in line
            assert "iteration=3" in line
        finally:
            _reset()

    def test_verbosity_levels(self):
        stream = io.StringIO()
        try:
            setup_logging(1, stream=stream)
            get_logger("x").debug("hidden")
            assert stream.getvalue() == ""
            setup_logging(2, stream=stream)
            get_logger("x").debug("shown")
            assert "shown" in stream.getvalue()
        finally:
            _reset()

    def test_idempotent_no_duplicate_handlers(self):
        stream = io.StringIO()
        try:
            setup_logging(1, stream=stream)
            setup_logging(1, stream=stream)
            get_logger("x").info("once")
            assert stream.getvalue().count("once") == 1
        finally:
            _reset()

    def test_zero_verbosity_silences(self):
        stream = io.StringIO()
        try:
            setup_logging(1, stream=stream)
            setup_logging(0)
            get_logger("x").info("quiet")
            assert stream.getvalue() == ""
        finally:
            _reset()

    def test_library_silent_by_default(self):
        # Without setup_logging the library logger has only a
        # NullHandler: emitting must not raise or print warnings.
        logger = logging.getLogger(ROOT_LOGGER)
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)
        get_logger("x").info("no handler configured")
