"""Regression attribution: exact decomposition, critical paths, gates."""

import math
import os

import pytest

from repro.obs.analyze import (
    attribute_runs,
    critical_path,
    format_attribution,
    load_run,
    parse_run,
    parse_threshold,
    render_attribution_html,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


def span(name, duration, children=(), start=None, span_id=None, attrs=None):
    record = {"type": "span", "name": name, "duration_s": duration,
              "attrs": attrs or {}, "children": list(children)}
    if start is not None:
        record["start_time"] = start
    if span_id is not None:
        record["span_id"] = span_id
    return record


def flow_run(place_s=0.5, route_s=1.0, source="synthetic"):
    return parse_run([
        span("flow.run", place_s + route_s + 0.1, [
            span("flow.place", place_s),
            span("flow.route", route_s),
        ]),
    ], source=source)


class TestExactDecomposition:
    def test_delta_equals_sum_of_contributions(self):
        attr = attribute_runs(flow_run(route_s=1.0), flow_run(route_s=1.7))
        assert attr.total_delta == pytest.approx(0.7)
        assert attr.attributed_delta == pytest.approx(attr.total_delta)
        assert abs(attr.residual) < 1e-12

    def test_overlapping_children_stay_exact(self):
        # Children oversumming the parent (negative raw self) must not
        # leak into the decomposition: the telescoping sum still
        # reproduces the end-to-end delta exactly.
        run_a = parse_run([span("p", 1.0, [span("a", 0.6), span("b", 0.7)])])
        run_b = parse_run([span("p", 2.0, [span("a", 0.6), span("b", 0.9)])])
        attr = attribute_runs(run_a, run_b)
        assert attr.total_delta == pytest.approx(1.0)
        assert attr.attributed_delta == pytest.approx(1.0)
        parent = next(d for d in attr.deltas if d.path == "p")
        assert parent.self_a == pytest.approx(-0.3)

    def test_missing_spans_contribute_their_full_self(self):
        run_a = flow_run()
        run_b = parse_run([
            span("flow.run", 2.1, [
                span("flow.place", 0.5),
                span("flow.route", 1.0),
                span("flow.repair", 0.5),
            ]),
        ])
        attr = attribute_runs(run_a, run_b)
        repair = next(d for d in attr.deltas
                      if d.path == "flow.run/flow.repair")
        assert repair.total_a is None
        assert repair.delta_self == pytest.approx(0.5)
        assert attr.attributed_delta == pytest.approx(attr.total_delta)

    def test_fixture_against_itself_is_all_zero(self):
        run = load_run(FIXTURE)
        attr = attribute_runs(run, run)
        assert attr.total_delta == 0.0
        assert all(d.delta_self == 0.0 for d in attr.deltas)
        assert attr.residual == 0.0

    def test_deltas_sorted_by_magnitude(self):
        attr = attribute_runs(flow_run(), flow_run(place_s=0.9, route_s=1.2))
        magnitudes = [abs(d.delta_self) for d in attr.deltas]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_share_of_total(self):
        attr = attribute_runs(flow_run(route_s=1.0), flow_run(route_s=2.0))
        route = next(d for d in attr.deltas
                     if d.path == "flow.run/flow.route")
        assert route.share_of(attr.total_delta) == pytest.approx(1.0)
        assert route.share_of(0.0) is None


class TestStages:
    def test_stage_roll_up(self):
        attr = attribute_runs(flow_run(route_s=1.0), flow_run(route_s=1.5))
        assert attr.stages["route"].delta == pytest.approx(0.5)
        assert attr.stages["route"].pct == pytest.approx(50.0)
        assert attr.stages["place"].delta == pytest.approx(0.0)

    def test_stage_missing_from_one_run(self):
        run_b = parse_run([span("flow.run", 1.0, [span("flow.route", 1.0)])])
        attr = attribute_runs(flow_run(), run_b)
        assert attr.stages["place"].wall_b is None
        assert attr.stages["place"].delta is None

    def test_zero_baseline_stage_pct_is_inf(self):
        run_a = parse_run([span("flow.route", 0.0)])
        run_b = parse_run([span("flow.route", 1.0)])
        attr = attribute_runs(run_a, run_b)
        assert math.isinf(attr.stages["route"].pct)


class TestGates:
    def test_stage_gate_passes_and_fails(self):
        attr = attribute_runs(flow_run(route_s=1.0), flow_run(route_s=1.3))
        assert attr.check([parse_threshold("route>+50%")]) == []
        violations = attr.check([parse_threshold("route>+10%")])
        assert len(violations) == 1
        assert "route" in violations[0]

    def test_total_and_span_path_keys(self):
        attr = attribute_runs(flow_run(route_s=1.0), flow_run(route_s=2.0))
        assert attr.check([parse_threshold("total>+5.0")]) == []
        violations = attr.check(
            [parse_threshold("span.flow.run/flow.route>+0.5")])
        assert len(violations) == 1

    def test_missing_stage_is_a_violation(self):
        attr = attribute_runs(flow_run(), flow_run())
        violations = attr.check([parse_threshold("anneal>+10%")])
        assert len(violations) == 1
        assert "missing" in violations[0]

    def test_unknown_key_is_a_violation(self):
        attr = attribute_runs(flow_run(), flow_run())
        violations = attr.check([parse_threshold("nonsense>+10%")])
        assert len(violations) == 1


class TestCriticalPath:
    def batch_run(self, schedule):
        """Roots from (job, start, duration) triples."""
        return parse_run([
            span("batch.job", duration, start=start, span_id=f"j{job}.s0")
            for job, start, duration in schedule
        ])

    def test_parallel_jobs_pick_longest_chain(self):
        # j0 [0, 4] alone; j1 [0, 1.5] then j2 [2, 5] chain to 4.5.
        run = self.batch_run([(0, 0.0, 4.0), (1, 0.0, 1.5), (2, 2.0, 3.0)])
        chain = critical_path(run)
        assert [e.job for e in chain] == [1, 2]
        assert sum(e.duration_s for e in chain) == pytest.approx(4.5)

    def test_overlapping_jobs_never_chain(self):
        run = self.batch_run([(0, 0.0, 2.0), (1, 1.0, 2.0)])
        chain = critical_path(run)
        # j1 starts before j0 ends: no precedence, the longest single
        # job wins (ties break deterministically).
        assert len(chain) == 1

    def test_serial_run_degrades_to_all_roots(self):
        run = parse_run([span("a", 1.0), span("b", 2.0)])
        assert [e.path for e in critical_path(run)] == ["a", "b"]

    def test_dominant_child_descent_names_the_stage(self):
        run = parse_run([
            span("batch.job", 10.0, [span("flow.route", 8.0)],
                 start=0.0, span_id="j0.s0"),
        ])
        chain = critical_path(run)
        assert [e.path for e in chain] == ["batch.job",
                                           "batch.job/flow.route"]
        assert all(e.job == 0 for e in chain)

    def test_non_dominant_children_not_descended(self):
        run = parse_run([
            span("batch.job", 10.0,
                 [span("flow.route", 3.0), span("flow.place", 3.0)],
                 start=0.0, span_id="j0.s0"),
        ])
        assert [e.path for e in critical_path(run)] == ["batch.job"]

    def test_empty_run(self):
        assert critical_path(parse_run([])) == []


class TestProfileDelta:
    def profiled_run(self, counts):
        return parse_run([
            span("flow.run", 1.0,
                 attrs={"profile": {"stacks": dict(counts)}}),
        ])

    def test_stack_deltas(self):
        attr = attribute_runs(
            self.profiled_run({"a;b": 10, "a;c": 5}),
            self.profiled_run({"a;b": 4, "a;d": 3}))
        assert attr.profile_delta == {"a;b": -6, "a;c": -5, "a;d": 3}

    def test_no_profiles_is_empty(self):
        attr = attribute_runs(flow_run(), flow_run())
        assert attr.profile_delta == {}


class TestRendering:
    def test_text_report_sections(self):
        attr = attribute_runs(flow_run(route_s=1.0),
                              flow_run(route_s=2.0, source="candidate"))
        text = format_attribution(attr)
        assert "end-to-end:" in text
        assert "per-span contributions" in text
        assert "per-stage roll-up" in text
        assert "critical path A" in text
        assert "flow.run/flow.route" in text

    def test_html_report_has_flamegraphs(self):
        run_a = self.with_profile(flow_run(route_s=1.0))
        run_b = self.with_profile(flow_run(route_s=2.0))
        html = render_attribution_html(attribute_runs(run_a, run_b))
        assert "differential flamegraph" in html
        assert "differential profile flamegraph" in html
        assert "flabel" in html

    @staticmethod
    def with_profile(run):
        run.spans[0].attrs["profile"] = {"stacks": {"a;b": 5}}
        return run

    def test_to_dict_round_trips_as_json(self):
        import json

        attr = attribute_runs(flow_run(), flow_run(route_s=2.0))
        doc = json.loads(json.dumps(attr.to_dict(), sort_keys=True))
        assert doc["total_delta_s"] == pytest.approx(1.0)
        assert doc["attributed_delta_s"] == pytest.approx(1.0)
        assert any(s["path"] == "flow.run/flow.route" for s in doc["spans"])

    def test_format_handles_zero_baseline_total(self):
        attr = attribute_runs(parse_run([span("x", 0.0)]),
                              parse_run([span("x", 1.0)]))
        text = format_attribution(attr)
        assert "end-to-end: 0.0000s -> 1.0000s" in text
