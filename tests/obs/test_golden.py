"""Golden-file regression tests: report text and shard-merge output.

These freeze the exact bytes of two user-facing artefacts:

* the `repro report` text rendering of the schema-v1 fixture run,
* the merged run file `merge_shards` produces from hand-written
  worker shards (with a pinned manifest, so the output is stable).

Regenerating after an intentional format change::

    PYTHONPATH=src python tests/obs/test_golden.py regen
"""

import os
import sys

from repro.obs import (
    merge_metric_snapshots,
    merge_shards,
    read_jsonl,
    use_registry,
)
from repro.obs.analyze import parse_run, render_report
from repro.obs.registry import MetricsRegistry, get_registry

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
RUN_FIXTURE = os.path.join(FIXTURES, "run_v1.jsonl")
REPORT_GOLDEN = os.path.join(FIXTURES, "report_golden.txt")
SHARD_A = os.path.join(FIXTURES, "shard_a.jsonl")
SHARD_B = os.path.join(FIXTURES, "shard_b.jsonl")
MERGED_GOLDEN = os.path.join(FIXTURES, "merged_golden.jsonl")

#: Pinned manifest: merge output must not depend on the environment.
FIXED_MANIFEST = {
    "type": "manifest",
    "schema": 1,
    "created": "2026-08-06T00:00:00+0000",
    "created_unix": 1754438400.0,
    "python": "3.11.7",
    "platform": "test-fixture",
    "git_sha": None,
    "seed": None,
    "arch": None,
    "batch": {
        "jobs": 2,
        "workers": 2,
        "spec_digest": "fixture-digest",
        "job_keys": ["tseng@0.02/baseline/s1/w56",
                     "tseng@0.02/baseline/s2/w56"],
    },
}


def _render_fixture_report() -> str:
    # Pin the source label: the report header prints it, and the path
    # the test happens to use must not leak into the golden bytes.
    run = parse_run(read_jsonl(RUN_FIXTURE), source="run_v1.jsonl")
    return render_report(run)


def _merge_fixture_shards(out_path: str) -> None:
    missing = os.path.join(FIXTURES, "shard_missing.jsonl")
    merge_shards([SHARD_A, SHARD_B, missing], dict(FIXED_MANIFEST), out_path)


class TestReportGolden:
    def test_report_text_matches_golden(self):
        with open(REPORT_GOLDEN, "r", encoding="utf-8") as fh:
            golden = fh.read()
        assert _render_fixture_report() == golden

    def test_report_is_deterministic(self):
        assert _render_fixture_report() == _render_fixture_report()


class TestShardMergeGolden:
    def test_merged_file_matches_golden(self, tmp_path):
        out = tmp_path / "merged.jsonl"
        _merge_fixture_shards(str(out))
        with open(MERGED_GOLDEN, "r", encoding="utf-8") as fh:
            golden = fh.read()
        assert out.read_text(encoding="utf-8") == golden

    def test_merged_golden_parses_without_warnings(self):
        run = parse_run(read_jsonl(MERGED_GOLDEN), source="merged")
        assert run.warnings == []
        assert run.manifest["batch"]["jobs"] == 2
        # Stray shard-level manifest and unknown-type records dropped.
        assert len(run.spans) == 2
        assert [s.attrs["seed"] for s in run.spans] == [1, 2]

    def test_merged_metrics_shapes(self):
        run = parse_run(read_jsonl(MERGED_GOLDEN), source="merged")
        assert run.metrics["fabric.cache_hits"]["value"] == 8.0  # 3 + 5
        assert run.metrics["runner.active_jobs"]["value"] == 0  # last shard
        hist = run.metrics["route.iterations"]
        assert hist["count"] == 3.0 and hist["sum"] == 31.0
        assert hist["min"] == 9.0 and hist["max"] == 12.0
        assert hist["p50"] is None  # percentiles cannot merge

    def test_merged_golden_renders_via_report(self):
        run = parse_run(read_jsonl(MERGED_GOLDEN), source="merged")
        report = render_report(run)
        assert "batch.job" in report
        assert "route.iterations" in report
        assert "warnings" not in report


class TestMergeMetricSnapshots:
    def test_counter_gauge_histogram_rules(self):
        merged = merge_metric_snapshots([
            {"c": {"kind": "counter", "value": 2},
             "g": {"kind": "gauge", "value": 7},
             "h": {"kind": "histogram", "count": 1, "sum": 4.0,
                   "min": 4.0, "max": 4.0, "mean": 4.0,
                   "p50": 4.0, "p90": 4.0, "p99": 4.0}},
            {"c": {"kind": "counter", "value": 5},
             "g": {"kind": "gauge", "value": None},
             "h": {"kind": "histogram", "count": 3, "sum": 6.0,
                   "min": 1.0, "max": 3.0, "mean": 2.0,
                   "p50": 2.0, "p90": 3.0, "p99": 3.0}},
        ])
        assert merged["c"]["value"] == 7
        assert merged["g"]["value"] == 7  # None never overwrites
        assert merged["h"]["count"] == 4 and merged["h"]["sum"] == 10.0
        assert merged["h"]["mean"] == 2.5
        assert merged["h"]["min"] == 1.0 and merged["h"]["max"] == 4.0
        assert merged["h"]["p90"] is None

    def test_disjoint_names_union(self):
        merged = merge_metric_snapshots([
            {"a": {"kind": "counter", "value": 1}},
            {"b": {"kind": "counter", "value": 2}},
        ])
        assert set(merged) == {"a", "b"}

    def test_kind_conflict_keeps_first(self):
        merged = merge_metric_snapshots([
            {"x": {"kind": "counter", "value": 1}},
            {"x": {"kind": "gauge", "value": 9}},
        ])
        assert merged["x"] == {"kind": "counter", "value": 1}


class TestRegistryScoping:
    def test_use_registry_scopes_worker_metrics(self):
        outer = get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped):
            assert get_registry() is scoped
            get_registry().counter("golden.scoped").inc()
        assert get_registry() is outer
        assert "golden.scoped" in scoped.snapshot()
        assert "golden.scoped" not in outer.snapshot()


def _regen() -> None:
    with open(REPORT_GOLDEN, "w", encoding="utf-8") as fh:
        fh.write(_render_fixture_report())
    _merge_fixture_shards(MERGED_GOLDEN)
    print(f"regenerated {REPORT_GOLDEN} and {MERGED_GOLDEN}")


if __name__ == "__main__" and "regen" in sys.argv[1:]:
    _regen()
