"""Unit tests for span tracing: nesting, timing, scoping, null path."""

import time

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    peak_rss_kb,
    set_tracer,
    reset_tracer,
    use_tracer,
)


class TestSpanNesting:
    def test_single_root(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            assert tracer.current() is span
        assert [s.name for s in tracer.roots] == ["root"]
        assert tracer.current() is None

    def test_children_nest_under_parent(self):
        tracer = Tracer()
        with tracer.span("flow"):
            with tracer.span("pack"):
                pass
            with tracer.span("route"):
                with tracer.span("inner"):
                    pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["pack", "route"]
        assert [c.name for c in root.children[1].children] == ["inner"]

    def test_parent_ids_link(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                assert b.parent_id == a.span_id
        assert a.parent_id is None

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.iter_spans()]
        assert len(ids) == len(set(ids)) == 5

    def test_iter_spans_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("flow"):
            with tracer.span("probe", width=8):
                pass
            with tracer.span("probe", width=16):
                pass
        widths = [s.attrs["width"] for s in tracer.find("probe")]
        assert widths == [8, 16]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]


class TestSpanTiming:
    def test_duration_measures_wall_time(self):
        tracer = Tracer()
        with tracer.span("sleep"):
            time.sleep(0.02)
        (span,) = tracer.roots
        assert span.duration_s >= 0.015

    def test_duration_none_while_open(self):
        tracer = Tracer()
        with tracer.span("open") as span:
            assert span.duration_s is None
        assert span.duration_s is not None

    def test_nested_durations_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.duration_s >= inner.duration_s

    def test_peak_rss_recorded(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        (span,) = tracer.roots
        # resource is available on the platforms CI runs on.
        assert span.peak_rss_kb is not None and span.peak_rss_kb > 0
        assert peak_rss_kb() >= span.peak_rss_kb


class TestSpanAttrs:
    def test_init_and_set(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set("b", 2)
            span.set_many(c=3, a=9)
        assert span.attrs == {"a": 9, "b": 2, "c": 3}

    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.roots
        assert span.status == "error"
        assert span.duration_s is not None
        assert tracer.current() is None


class TestCurrentTracer:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("x")
        assert get_tracer() is NULL_TRACER

    def test_set_reset_token(self):
        tracer = Tracer()
        token = set_tracer(tracer)
        assert get_tracer() is tracer
        reset_tracer(token)
        assert get_tracer() is NULL_TRACER

    def test_nested_use_tracer(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer


class TestNullPath:
    def test_null_span_is_inert(self):
        with NULL_TRACER.span("anything", a=1) as span:
            span.set("k", "v")
            span.set_many(x=2)
        assert span is NULL_SPAN
        assert span.attrs == {}
        assert span.span_id is None

    def test_null_tracer_collects_nothing(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass
        assert list(NULL_TRACER.iter_spans()) == []
        assert NULL_TRACER.find("a") == []
        assert NULL_TRACER.current() is None

    def test_null_tracer_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True
