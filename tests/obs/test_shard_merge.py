"""Tests for shard-merge robustness and bucket-percentile accuracy.

Covers the two failure modes the post-hoc merge must survive: lossy
percentile estimates when histograms cross worker boundaries (bounded
by one power-of-two bucket width) and debris from killed workers
(truncated / binary-garbage shard lines dropped and counted, never
raised).
"""

import json
import math

import pytest

from repro.obs import run_manifest
from repro.obs.metrics import BUCKET_BOUNDS, Histogram
from repro.obs.shards import merge_metric_snapshots, merge_shards


def _snapshot(name, values):
    h = Histogram(name)
    for v in values:
        h.observe(v)
    return {name: h.snapshot()}


def _exact_percentile(values, pct):
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _bucket_width_at(value):
    for i, bound in enumerate(BUCKET_BOUNDS):
        if value <= bound:
            lower = BUCKET_BOUNDS[i - 1] if i else 0.0
            return bound - lower
    return float("inf")


class TestBucketPercentileMerge:
    def test_two_worker_merge_within_one_bucket(self):
        # Two workers observe disjoint latency populations; the merged
        # percentiles must land within one bucket width above the exact
        # nearest-rank value (and never below it).
        worker_a = [0.13 * i + 0.02 for i in range(40)]
        worker_b = [5.0 + 0.9 * i for i in range(25)]
        merged = merge_metric_snapshots(
            [_snapshot("route.wall_s", worker_a),
             _snapshot("route.wall_s", worker_b)])["route.wall_s"]
        combined = worker_a + worker_b
        assert merged["count"] == len(combined)
        assert merged["min"] == min(combined)
        assert merged["max"] == max(combined)
        for key, pct in (("p50", 50), ("p90", 90), ("p95", 95), ("p99", 99)):
            exact = _exact_percentile(combined, pct)
            estimate = merged[key]
            assert estimate is not None
            assert exact <= estimate <= exact + _bucket_width_at(exact)
        # The merged mean is exact (count-weighted), not bucketed.
        assert merged["mean"] == pytest.approx(
            sum(combined) / len(combined))

    def test_merge_is_order_independent(self):
        a, b = _snapshot("h", [0.1, 2.0, 7.0]), _snapshot("h", [0.4, 30.0])
        ab = merge_metric_snapshots([dict(a), dict(b)])
        ba = merge_metric_snapshots([dict(b), dict(a)])
        assert json.dumps(ab, sort_keys=True) == json.dumps(ba, sort_keys=True)

    def test_bucketless_legacy_snapshots_keep_percentiles_none(self):
        legacy = {"h": {"kind": "histogram", "count": 3, "sum": 6.0,
                        "min": 1.0, "max": 3.0, "mean": 2.0,
                        "p50": 2.0, "p90": 3.0, "p99": 3.0}}
        merged = merge_metric_snapshots([dict(legacy), _snapshot("h", [5.0])])
        assert merged["h"]["count"] == 4
        assert merged["h"]["p50"] is None and "buckets" not in merged["h"]
        assert merged["h"]["mean"] == pytest.approx(11.0 / 4)

    def test_sumless_legacy_snapshot_merges_mean_by_count_weight(self):
        # Pre-sum snapshots carry only mean+count; the merged mean must
        # weight by count (3 obs averaging 2.0 + 1 obs of 6.0 -> 3.0),
        # not average the means.
        legacy = {"h": {"kind": "histogram", "count": 3,
                        "min": 1.0, "max": 3.0, "mean": 2.0,
                        "p50": 2.0, "p90": 3.0, "p99": 3.0}}
        merged = merge_metric_snapshots([dict(legacy), _snapshot("h", [6.0])])
        assert merged["h"]["count"] == 4
        assert merged["h"]["mean"] == pytest.approx(3.0)


class TestTruncatedShards:
    def _merge(self, tmp_path, shard_texts, binary=None):
        paths = []
        for i, text in enumerate(shard_texts):
            path = tmp_path / f"shard-{i}.jsonl"
            if binary and i in binary:
                path.write_bytes(text)
            else:
                path.write_text(text, encoding="utf-8")
            paths.append(str(path))
        out = tmp_path / "run.jsonl"
        merge_shards(paths, run_manifest(), str(out))
        records = [json.loads(line)
                   for line in out.read_text(encoding="utf-8").splitlines()]
        return records

    def _span_line(self, span_id="j0.s1"):
        return json.dumps({"type": "span", "span_id": span_id,
                           "parent_id": None, "name": "batch.job",
                           "start_s": 0.0, "end_s": 1.0, "status": "ok",
                           "attrs": {}, "children": []}) + "\n"

    def _dropped_counter(self, records):
        for record in records:
            if record.get("type") == "metrics":
                counter = record["metrics"].get("telemetry.dropped_events")
                if counter:
                    return counter["value"]
        return 0

    def test_truncated_final_line_dropped_and_counted(self, tmp_path):
        good = self._span_line()
        truncated = self._span_line("j1.s1")[:-20]  # half-flushed write
        records = self._merge(tmp_path, [good, truncated])
        spans = [r for r in records if r.get("type") == "span"]
        assert [s["span_id"] for s in spans] == ["j0.s1"]
        assert self._dropped_counter(records) == 1

    def test_binary_garbage_line_does_not_raise(self, tmp_path):
        good = self._span_line()
        garbage = self._span_line("j1.s1").encode()[:30] + b"\xff\xfe\x00"
        records = self._merge(tmp_path, [good, garbage], binary={1})
        assert self._dropped_counter(records) == 1

    def test_missing_shard_file_skipped(self, tmp_path):
        path = tmp_path / "only.jsonl"
        path.write_text(self._span_line(), encoding="utf-8")
        out = tmp_path / "run.jsonl"
        merge_shards([str(path), str(tmp_path / "never-written.jsonl")],
                     run_manifest(), str(out))
        records = [json.loads(line)
                   for line in out.read_text(encoding="utf-8").splitlines()]
        assert sum(1 for r in records if r.get("type") == "span") == 1

    def test_clean_run_has_no_dropped_counter(self, tmp_path):
        records = self._merge(tmp_path, [self._span_line()])
        assert self._dropped_counter(records) == 0
