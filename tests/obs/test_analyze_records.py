"""Typed run parsing: schema-v1 round trip and forward compatibility."""

import json
import os

import pytest

from repro.obs import SCHEMA_VERSION
from repro.obs.analyze import ParsedRun, load_run, parse_run

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "run_v1.jsonl")


def fixture_records():
    with open(FIXTURE, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestV1Fixture:
    """The committed fixture is a real `repro flow --metrics-out` run."""

    def test_round_trip_parses_clean(self):
        run = load_run(FIXTURE)
        assert run.warnings == []
        assert run.manifest is not None
        assert run.manifest["schema"] == SCHEMA_VERSION == 1
        assert run.manifest["circuit"] == "tseng"

    def test_span_forest_matches_flow_shape(self):
        run = load_run(FIXTURE)
        names = {node.name for node, _d in run.walk()}
        for expected in ("flow.run", "flow.pack", "pack.vpack", "flow.place",
                         "place.anneal", "flow.route", "route.pathfinder",
                         "flow.configure", "crossbar.program_fabric",
                         "crossbar.program", "evaluate", "timing.sta"):
            assert expected in names, expected

    def test_paths_are_unique_and_disambiguated(self):
        run = load_run(FIXTURE)
        paths = [node.path for node, _d in run.walk()]
        assert len(paths) == len(set(paths))
        # Three evaluate roots -> evaluate, evaluate#2, evaluate#3.
        assert "evaluate" in paths
        assert "evaluate#2" in paths
        assert "evaluate#3" in paths

    def test_metrics_snapshot_parsed(self):
        run = load_run(FIXTURE)
        assert run.metrics["pack.clusters"]["value"] > 0
        assert run.metrics["timing.slack_s"]["kind"] == "histogram"

    def test_self_time_never_exceeds_total(self):
        run = load_run(FIXTURE)
        for node, _depth in run.walk():
            assert 0.0 <= node.self_s <= node.total_s + 1e-12

    def test_total_wall_time_positive(self):
        run = load_run(FIXTURE)
        assert run.total_wall_s > 0


class TestForwardCompat:
    """Unknown types and future schemas skip with a warning, never crash."""

    def test_future_manifest_schema_skipped(self):
        records = fixture_records()
        records[0] = dict(records[0], schema=SCHEMA_VERSION + 1)
        run = parse_run(records, source="v2")
        assert run.manifest is None
        assert any("newer than supported" in w for w in run.warnings)
        # Spans still parse: the reader degrades, it does not refuse.
        assert run.find("flow.run")

    def test_unknown_record_type_skipped(self):
        records = fixture_records() + [{"type": "trace_v2", "payload": []}]
        run = parse_run(records)
        assert any("unknown record type 'trace_v2'" in w for w in run.warnings)
        assert len(run.spans) == len(parse_run(fixture_records()).spans)

    def test_non_dict_record_skipped(self):
        run = parse_run(["not a record", 42, None])
        assert len(run.warnings) == 3
        assert run.spans == []

    def test_duplicate_manifest_skipped(self):
        records = fixture_records()
        records.append(dict(records[0]))
        run = parse_run(records)
        assert any("duplicate manifest" in w for w in run.warnings)

    def test_malformed_jsonl_line_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = open(FIXTURE).read().splitlines()
        lines.insert(1, "{this is not json")
        path.write_text("\n".join(lines) + "\n")
        run = load_run(str(path))
        assert any("not valid JSON" in w for w in run.warnings)
        assert run.find("flow.run")

    def test_metrics_without_dict_skipped(self):
        run = parse_run([{"type": "metrics", "metrics": [1, 2]}])
        assert run.metrics == {}
        assert any("metrics record" in w for w in run.warnings)


class TestSpanTree:
    def test_find_and_by_path_agree(self):
        run = load_run(FIXTURE)
        by_path = run.by_path()
        for node in run.find("route.pathfinder"):
            assert by_path[node.path] is node

    def test_unnamed_span_tolerated(self):
        run = parse_run([{"type": "span", "duration_s": 0.5}])
        assert run.spans[0].name == "<unnamed>"
        assert run.spans[0].total_s == 0.5

    def test_empty_run(self):
        run = parse_run([])
        assert isinstance(run, ParsedRun)
        assert run.total_wall_s == 0.0
        assert run.by_path() == {}

    def test_self_time_clamped_when_children_oversum(self):
        # Clock-resolution overlap can make recorded child durations
        # sum past the parent; displayed self-time must clamp at 0
        # while raw_self_s keeps the exact (negative) value so the
        # attribution telescoping sum stays lossless.
        run = parse_run([{
            "type": "span", "name": "parent", "duration_s": 1.0,
            "children": [
                {"name": "a", "duration_s": 0.6},
                {"name": "b", "duration_s": 0.7},
            ],
        }])
        parent = run.spans[0]
        assert parent.raw_self_s == pytest.approx(-0.3)
        assert parent.self_s == 0.0

    def test_raw_self_matches_self_when_positive(self):
        run = load_run(FIXTURE)
        for node, _depth in run.walk():
            if node.raw_self_s >= 0:
                assert node.self_s == node.raw_self_s

    def test_raw_self_times_telescope_to_root_total(self):
        run = load_run(FIXTURE)
        for root in run.spans:
            subtree = []

            def collect(node):
                subtree.append(node)
                for child in node.children:
                    collect(child)

            collect(root)
            assert sum(n.raw_self_s for n in subtree) == pytest.approx(
                root.total_s)
