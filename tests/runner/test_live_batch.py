"""Integration tests for the live telemetry plane (`run_batch(live=True)`).

The contract under test: streaming is an *observation*, never a
perturbation — the live-assembled run model is byte-identical to the
post-hoc shard merge, span ids are identical with streaming on or off,
and a heartbeat-silent worker is caught before the hard timeout.
"""

import io
import json

import pytest

from repro.obs import LiveDisplay, Tracer, read_jsonl, use_tracer
from repro.runner import BatchSpec, JobSpec, run_batch

TINY = dict(circuit="tseng", scale=0.01, width=40)


def _spec(*jobs, **policy):
    return BatchSpec(jobs=tuple(jobs), **policy)


def _quiet_display():
    return LiveDisplay(stream=io.StringIO(), interval_s=0.25)


class TestStreamReplayIdentity:
    def test_two_worker_live_model_is_byte_identical(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY), JobSpec(seed=2, **TINY),
                     workers=2, timeout_s=120)
        out = str(tmp_path / "run.jsonl")
        batch = run_batch(spec, shard_dir=str(tmp_path / "shards"),
                          metrics_out=out, live=True,
                          display=_quiet_display())
        assert batch.ok
        assert batch.stream_identical is True
        assert batch.collector.dropped_events() == 0

    def test_serial_live_model_is_byte_identical(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY), workers=1)
        out = str(tmp_path / "run.jsonl")
        batch = run_batch(spec, shard_dir=str(tmp_path / "shards"),
                          metrics_out=out, live=True,
                          display=_quiet_display())
        assert batch.ok and batch.stream_identical is True


class TestTraceTreeConsistency:
    def test_four_worker_span_ids_form_one_tree(self, tmp_path):
        spec = _spec(*(JobSpec(seed=s, **TINY) for s in (1, 2, 3, 4)),
                     workers=4, timeout_s=240)
        out = str(tmp_path / "run.jsonl")
        tracer = Tracer()
        with use_tracer(tracer):
            batch = run_batch(spec, shard_dir=str(tmp_path / "shards"),
                              metrics_out=out, live=True,
                              display=_quiet_display())
        assert batch.ok
        (batch_span,) = tracer.find("batch.run")
        records = read_jsonl(out)
        roots = [r for r in records if r.get("type") == "span"]
        assert len(roots) == 4
        # Every job's root hangs under the supervisor's batch.run span
        # and carries its own "j<i>." id namespace.
        assert {r["parent_id"] for r in roots} == {batch_span.span_id}
        assert sorted(r["span_id"] for r in roots) == [
            f"j{i}.s1" for i in range(4)]

        seen = set()

        def walk(node, prefix):
            assert node["span_id"].startswith(prefix)
            assert node["span_id"] not in seen
            seen.add(node["span_id"])
            for child in node.get("children", []):
                assert child["parent_id"] == node["span_id"]
                walk(child, prefix)

        for root in sorted(roots, key=lambda r: r["span_id"]):
            prefix = root["span_id"].split("s")[0]
            walk(root, prefix)

    def test_span_ids_unchanged_by_streaming(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY), JobSpec(seed=2, **TINY),
                     workers=2, timeout_s=120)

        def span_ids(live, sub):
            out = str(tmp_path / sub / "run.jsonl")
            run_batch(spec, shard_dir=str(tmp_path / sub),
                      metrics_out=out, live=live,
                      display=_quiet_display() if live else None)
            return [(r["span_id"], r["parent_id"])
                    for r in read_jsonl(out) if r.get("type") == "span"]

        assert span_ids(True, "live") == span_ids(False, "dark")


class TestStallDetection:
    def test_stalled_worker_soft_killed_before_hard_timeout(self, tmp_path):
        hard_timeout = 120.0
        spec = _spec(JobSpec(seed=1, **TINY),
                     JobSpec(seed=2, fault="stall", **TINY),
                     workers=2, timeout_s=hard_timeout, retries=0)
        batch = run_batch(spec, shard_dir=str(tmp_path),
                          live=True, display=_quiet_display(),
                          stall_after_s=1.5, stall_kill=True)
        healthy, stalled = batch.results
        assert healthy.status == "ok"
        assert stalled.status == "stalled"
        assert "heartbeat" in stalled.error
        assert batch.wall_s < hard_timeout / 2

    def test_stall_flagged_but_not_killed_without_opt_in(self, tmp_path):
        spec = _spec(JobSpec(seed=1, fault="stall", **TINY),
                     JobSpec(seed=2, **TINY),
                     workers=2, timeout_s=8.0, retries=0)
        batch = run_batch(spec, shard_dir=str(tmp_path),
                          live=True, display=_quiet_display(),
                          stall_after_s=1.0, stall_kill=False)
        # Without stall_kill the hard timeout still owns the verdict.
        assert batch.results[0].status == "timeout"


class TestLiveProfile:
    def test_profile_lands_collapsed_stacks_on_job_roots(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY), workers=1)
        out = str(tmp_path / "run.jsonl")
        batch = run_batch(spec, shard_dir=str(tmp_path / "shards"),
                          metrics_out=out, live=True,
                          display=_quiet_display(), profile=True)
        assert batch.ok and batch.stream_identical is True
        (root,) = [r for r in read_jsonl(out) if r.get("type") == "span"]
        profile = root["attrs"]["profile"]
        assert profile["samples"] > 0
        assert profile["stacks"] and all(
            isinstance(c, int) and c > 0 for c in profile["stacks"].values())


class TestCollectorState:
    def test_collector_reports_final_statuses(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY),
                     JobSpec(seed=2, fault="fail", **TINY),
                     workers=2, timeout_s=120, retries=0)
        batch = run_batch(spec, shard_dir=str(tmp_path),
                          live=True, display=_quiet_display())
        statuses = {s.key: s.status for s in batch.collector.jobs.values()}
        assert statuses == {r.key: r.status for r in batch.results}
        assert all(s.done for s in batch.collector.jobs.values())
