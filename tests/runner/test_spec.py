"""Tests for repro.runner.spec (job model, keys, spec files)."""

import json

import pytest

from repro.runner import BatchSpec, JobResult, JobSpec, parse_variant
from repro.runner.spec import digest_of


class TestJobSpec:
    def test_key_is_stable_and_unique_over_matrix_axes(self):
        a = JobSpec(circuit="tseng", variant="baseline", seed=1, width=56)
        b = JobSpec(circuit="tseng", variant="baseline", seed=1, width=56)
        assert a.key == b.key == "tseng@0.02/baseline/s1/w56"
        assert JobSpec(circuit="tseng", seed=2, width=56).key != a.key
        assert JobSpec(circuit="tseng", variant="nem-opt", seed=1, width=56).key != a.key
        assert JobSpec(circuit="alu4", seed=1, width=56).key != a.key

    def test_wmin_jobs_key_as_wmin(self):
        assert JobSpec(circuit="tseng").key.endswith("/wmin")

    def test_arch_overrides_enter_the_key(self):
        job = JobSpec(circuit="tseng", width=56,
                      arch=(("segment_length", 2),))
        assert "segment_length=2" in job.key

    def test_roundtrip_through_dict(self):
        job = JobSpec(circuit="tseng", variant="nem-opt:4", seed=3,
                      width=48, scale=0.05, arch=(("segment_length", 2),))
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", variant="cmos-extra")
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", variant="baseline:4")

    def test_invalid_numbers_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", seed=-1)
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", width=1)
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", scale=0.0)


class TestDefectAxis:
    def test_defect_fields_enter_the_key(self):
        job = JobSpec(circuit="tseng", width=56, defect_rate=0.01,
                      defect_seed=3, defect_mode="aging")
        assert job.key == "tseng@0.02/baseline/s1/w56/d0.01.aging.s3"

    def test_no_defects_keeps_legacy_key_and_dict(self):
        job = JobSpec(circuit="tseng", width=56)
        assert "d0" not in job.key
        doc = job.to_dict()
        assert "defect_rate" not in doc
        assert "defect_seed" not in doc

    def test_roundtrip_through_dict(self):
        job = JobSpec(circuit="tseng", width=56, defect_rate=0.02,
                      defect_seed=7, defect_mode="variation")
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_invalid_defect_fields_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", defect_rate=1.5)
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", defect_rate=0.01, defect_seed=-1)
        with pytest.raises(ValueError):
            JobSpec(circuit="tseng", defect_rate=0.01, defect_mode="chaos")

    def test_matrix_defect_axis_is_innermost(self):
        spec = BatchSpec.from_matrix(
            circuits=["a_c"], variants=["baseline"], seeds=[1],
            widths=[56], defect_rates=[None, 0.01], defect_seed=2,
        )
        keys = [job.key for job in spec.jobs]
        assert keys == [
            "a_c@0.02/baseline/s1/w56",
            "a_c@0.02/baseline/s1/w56/d0.01.uniform.s2",
        ]
        # The fault-free job stays byte-identical to a legacy spec.
        assert spec.jobs[0] == JobSpec(circuit="a_c", width=56)

    def test_matrix_form_accepts_defect_fields(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "matrix": {"circuits": ["tseng"], "width": 56,
                       "defect_rates": [0.01, 0.02], "defect_seed": 5,
                       "defect_mode": "uniform"},
        }))
        spec = BatchSpec.from_file(str(path))
        assert [j.defect_rate for j in spec.jobs] == [0.01, 0.02]
        assert all(j.defect_seed == 5 for j in spec.jobs)


class TestParseVariant:
    def test_baseline_and_naive(self):
        assert parse_variant("baseline") == ("baseline", 1.0)
        assert parse_variant("nem-naive") == ("nem-naive", 1.0)

    def test_nem_opt_downsize_suffix(self):
        assert parse_variant("nem-opt") == ("nem-opt", 8.0)
        assert parse_variant("nem-opt:4") == ("nem-opt", 4.0)


class TestBatchSpec:
    def test_matrix_expansion_order_is_circuit_major(self):
        spec = BatchSpec.from_matrix(
            circuits=["a_c", "b_c"], variants=["baseline"],
            seeds=[1, 2], widths=[56],
        )
        # JobSpec validates circuits lazily (load happens in-worker),
        # so synthetic names are fine here.
        keys = [job.key for job in spec.jobs]
        assert keys == [
            "a_c@0.02/baseline/s1/w56", "a_c@0.02/baseline/s2/w56",
            "b_c@0.02/baseline/s1/w56", "b_c@0.02/baseline/s2/w56",
        ]

    def test_duplicate_jobs_rejected(self):
        job = JobSpec(circuit="tseng", width=56)
        with pytest.raises(ValueError, match="duplicate"):
            BatchSpec(jobs=(job, job))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(jobs=())

    def test_digest_covers_jobs_not_policy(self):
        jobs = (JobSpec(circuit="tseng", width=56),)
        a = BatchSpec(jobs=jobs, workers=1)
        b = BatchSpec(jobs=jobs, workers=4, timeout_s=10.0)
        assert a.digest == b.digest
        c = BatchSpec(jobs=(JobSpec(circuit="tseng", width=48),))
        assert c.digest != a.digest

    def test_from_file_jobs_form(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "jobs": [{"circuit": "tseng", "width": 56},
                     {"circuit": "alu4", "width": 56, "seed": 2}],
            "workers": 3,
            "timeout_s": 30,
        }))
        spec = BatchSpec.from_file(str(path))
        assert len(spec.jobs) == 2
        assert spec.workers == 3
        assert spec.timeout_s == 30.0

    def test_from_file_matrix_form(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "matrix": {"circuits": ["tseng"], "variants": ["baseline", "nem-opt"],
                       "seeds": [1, 2], "width": 56, "scale": 0.03},
            "workers": 2,
        }))
        spec = BatchSpec.from_file(str(path))
        assert len(spec.jobs) == 4
        assert all(job.width == 56 and job.scale == 0.03 for job in spec.jobs)

    def test_malformed_spec_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"workers": 2}))
        with pytest.raises(ValueError, match="jobs.*matrix|matrix.*jobs"):
            BatchSpec.from_file(str(path))


class TestJobResult:
    def test_identity_excludes_timing_and_attempts(self):
        a = JobResult(key="k", status="ok", qor={"wl": 3},
                      digests={"qor": "d"}, attempts=1, wall_s=1.0)
        b = JobResult(key="k", status="ok", qor={"wl": 3},
                      digests={"qor": "d"}, attempts=2, wall_s=9.9)
        assert a.identity() == b.identity()

    def test_roundtrip_through_dict(self):
        result = JobResult(key="k", status="error", error="boom",
                           attempts=2, wall_s=0.5)
        assert JobResult.from_dict(result.to_dict()).to_dict() == result.to_dict()


def test_digest_of_is_order_insensitive_for_dicts():
    assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})
    assert digest_of([1, 2]) != digest_of([2, 1])
