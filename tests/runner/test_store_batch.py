"""Warm-store batch semantics: cached == executed, bit for bit.

One module-scoped cold run publishes a 4-job tseng matrix into a
store; the tests replay it warm (serial and parallel) and check the
ISSUE contract: zero executions, identical `JobResult` identities,
synthetic cache-hit spans in the telemetry, hit/miss counters in the
manifest.
"""

import json

import pytest

from repro.obs import read_jsonl
from repro.runner import BatchSpec, results_identical, run_batch
from repro.store import ResultStore

SPEC = BatchSpec.from_matrix(
    circuits=["tseng"],
    variants=["baseline", "nem-naive"],
    seeds=[1, 2],
    widths=[40],
    scale=0.01,
)


@pytest.fixture(scope="module")
def arms(tmp_path_factory):
    """(store, cold BatchResult, warm parallel, warm serial, warm run file)."""
    base = tmp_path_factory.mktemp("store-batch")
    store = ResultStore(str(base / "store"), code="test-code")
    cold = run_batch(SPEC, workers=2, shard_dir=str(base / "cold"),
                     store=store)
    warm = run_batch(SPEC, workers=2, shard_dir=str(base / "warm"),
                     store=ResultStore(store.root, code=store.code),
                     metrics_out=str(base / "warm.jsonl"))
    warm_serial = run_batch(SPEC, workers=1, shard_dir=str(base / "warm1"),
                            store=ResultStore(store.root, code=store.code))
    return store, cold, warm, warm_serial, str(base / "warm.jsonl")


def test_cold_run_publishes_every_job(arms):
    store, cold, _, _, _ = arms
    assert cold.ok
    assert cold.store_stats == {"hits": 0, "misses": 4, "published": 4}
    assert cold.cached == []
    assert store.size()["entries"] == 4


def test_warm_run_executes_zero_jobs(arms):
    _, _, warm, _, _ = arms
    assert warm.ok
    assert warm.store_stats["hits"] == 4
    assert warm.store_stats["misses"] == 0
    assert sorted(warm.cached) == sorted(j.key for j in SPEC.jobs)


def test_warm_results_bit_identical_to_cold(arms):
    _, cold, warm, warm_serial, _ = arms
    assert results_identical(cold.results, warm.results)
    assert results_identical(cold.results, warm_serial.results)


def test_warm_matches_storeless_run(arms, tmp_path):
    _, cold, _, _, _ = arms
    plain = run_batch(SPEC, workers=1, shard_dir=str(tmp_path))
    assert results_identical(plain.results, cold.results)


def test_results_stay_in_spec_order(arms):
    _, _, warm, _, _ = arms
    assert [r.key for r in warm.results] == [j.key for j in SPEC.jobs]


def test_synthetic_spans_for_cache_hits(arms):
    _, _, _, _, run_file = arms
    records = read_jsonl(run_file)
    job_spans = [r for r in records
                 if r.get("type") == "span" and r.get("name") == "batch.job"]
    assert len(job_spans) == 4
    assert all(span["attrs"].get("cached") is True for span in job_spans)
    assert all(span["attrs"].get("attempt") == 0 for span in job_spans)


def test_hit_counter_in_merged_metrics(arms):
    _, _, _, _, run_file = arms
    metrics = [r for r in read_jsonl(run_file) if r.get("type") == "metrics"]
    assert metrics
    merged = metrics[-1]["metrics"]
    assert merged["store.hits"]["value"] == 4.0


def test_manifest_records_store_block(arms):
    _, _, _, _, run_file = arms
    manifest = read_jsonl(run_file)[0]
    block = manifest["batch"]["store"]
    assert block["hits"] == 4 and block["misses"] == 0
    assert block["code"] == "test-code"[:12]


def test_summary_is_stable_without_store(tmp_path):
    spec = BatchSpec(jobs=(SPEC.jobs[0],), workers=1)
    batch = run_batch(spec, shard_dir=str(tmp_path))
    assert batch.store_stats is None
    assert "store" not in batch.summary()
    assert "cached" not in batch.summary()


def test_code_change_invalidates_store(arms, tmp_path):
    store, _, _, _, _ = arms
    other = ResultStore(store.root, code="other-code")
    batch = run_batch(SPEC, workers=1, shard_dir=str(tmp_path), store=other)
    assert batch.store_stats["hits"] == 0
    assert batch.store_stats["misses"] == 4
