"""Tests for repro.runner.executor: pool supervision, failure policy.

Fast jobs only (tiny circuits / injected faults); the full
serial-vs-parallel identity check lives in test_determinism.py.
"""

import os

import pytest

from repro.obs import read_jsonl
from repro.runner import BatchSpec, JobSpec, run_batch

#: Smallest useful real job: a tseng shrunk to a handful of LUTs.
TINY = dict(circuit="tseng", scale=0.01, width=40)


def _spec(*jobs, **policy):
    return BatchSpec(jobs=tuple(jobs), **policy)


class TestSerialPath:
    def test_single_worker_runs_in_process(self, tmp_path):
        spec = _spec(JobSpec(**TINY), workers=1)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.ok and batch.workers == 1
        assert batch.results[0].qor["wirelength"] > 0
        assert batch.results[0].digests.keys() == {"routing_trees", "bitstream", "qor"}

    def test_results_in_spec_order(self, tmp_path):
        spec = _spec(
            JobSpec(seed=2, **TINY), JobSpec(seed=1, **TINY), workers=1,
        )
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert [r.key for r in batch.results] == [j.key for j in spec.jobs]

    def test_error_job_reported_not_raised(self, tmp_path):
        spec = _spec(JobSpec(fault="fail", **TINY), workers=1)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert not batch.ok
        assert batch.results[0].status == "error"
        assert "injected fault" in batch.results[0].error

    def test_serial_crash_exhausts_retries(self, tmp_path):
        spec = _spec(JobSpec(fault="crash", **TINY), workers=1, retries=1)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.results[0].status == "crashed"
        assert batch.results[0].attempts == 2

    def test_serial_crash_first_recovers(self, tmp_path):
        spec = _spec(JobSpec(fault="crash-first", **TINY), workers=1, retries=1)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.results[0].status == "ok"
        assert batch.results[0].attempts == 2


class TestPool:
    def test_parallel_results_in_spec_order(self, tmp_path):
        spec = _spec(
            JobSpec(seed=3, **TINY), JobSpec(seed=1, **TINY),
            JobSpec(seed=2, **TINY), workers=3, timeout_s=120,
        )
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.ok
        assert [r.key for r in batch.results] == [j.key for j in spec.jobs]

    def test_worker_crash_is_retried_then_recovered(self, tmp_path):
        spec = _spec(
            JobSpec(fault="crash-first", **TINY), JobSpec(seed=2, **TINY),
            workers=2, retries=1, timeout_s=120,
        )
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.ok
        assert batch.results[0].attempts == 2
        assert batch.results[1].attempts == 1

    def test_worker_crash_exhausts_retry_budget(self, tmp_path):
        spec = _spec(JobSpec(fault="crash", **TINY), JobSpec(seed=2, **TINY),
                     workers=2, retries=1, timeout_s=120)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert not batch.ok
        assert batch.results[0].status == "crashed"
        assert batch.results[0].attempts == 2
        assert "exited with code" in batch.results[0].error
        assert batch.results[1].ok

    def test_hung_worker_times_out(self, tmp_path):
        spec = _spec(
            JobSpec(fault="hang", **TINY), JobSpec(seed=2, **TINY),
            workers=2, timeout_s=1.0,
        )
        batch = run_batch(spec, shard_dir=str(tmp_path))
        hung, healthy = batch.results
        assert hung.status == "timeout"
        assert "timeout" in hung.error
        assert healthy.ok

    def test_workers_capped_to_job_count(self, tmp_path):
        spec = _spec(JobSpec(**TINY), workers=8)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        assert batch.workers == 1  # degraded to the serial path


class TestTelemetryMerge:
    def test_merged_run_is_single_manifest_schema_v1(self, tmp_path):
        from repro.obs.analyze import load_run

        out = tmp_path / "batch.jsonl"
        spec = _spec(JobSpec(seed=1, **TINY), JobSpec(seed=2, **TINY), workers=1)
        batch = run_batch(spec, shard_dir=str(tmp_path / "shards"),
                          metrics_out=str(out))
        assert batch.metrics_path == str(out)
        run = load_run(str(out))
        assert run.warnings == []
        assert run.manifest is not None and run.manifest["schema"] == 1
        assert run.manifest["batch"]["jobs"] == 2
        assert run.manifest["batch"]["spec_digest"] == spec.digest
        # One batch.job root per job, in spec order.
        roots = [span for span in run.spans if span.name == "batch.job"]
        assert [s.attrs["job"] for s in roots] == [j.key for j in spec.jobs]
        assert run.metrics  # merged registry snapshot present

    def test_crashed_jobs_leave_no_stale_shard(self, tmp_path):
        shard_dir = tmp_path / "shards"
        out = tmp_path / "batch.jsonl"
        spec = _spec(JobSpec(fault="crash", **TINY), workers=2, retries=0)
        batch = run_batch(spec, shard_dir=str(shard_dir), metrics_out=str(out))
        assert batch.results[0].status == "crashed"
        records = read_jsonl(str(out), strict=False)
        assert [r["type"] for r in records] == ["manifest"]

    def test_shards_written_per_job(self, tmp_path):
        spec = _spec(JobSpec(seed=1, **TINY), JobSpec(seed=2, **TINY), workers=1)
        run_batch(spec, shard_dir=str(tmp_path))
        names = sorted(os.listdir(tmp_path))
        assert "job-0000.jsonl" in names and "job-0001.jsonl" in names


class TestProgressAndSummary:
    def test_progress_callback_sees_every_job(self, tmp_path):
        seen = []
        spec = _spec(JobSpec(seed=1, **TINY), JobSpec(seed=2, **TINY), workers=1)
        run_batch(spec, shard_dir=str(tmp_path),
                  progress=lambda r, done, total: seen.append((r.key, done, total)))
        assert [s[1:] for s in seen] == [(1, 2), (2, 2)]

    def test_summary_counts_statuses(self, tmp_path):
        spec = _spec(JobSpec(fault="fail", **TINY), JobSpec(seed=2, **TINY),
                     workers=1)
        batch = run_batch(spec, shard_dir=str(tmp_path))
        summary = batch.summary()
        assert summary["jobs"] == 2
        assert summary["statuses"] == {"error": 1, "ok": 1}
        assert summary["success"] is False

    def test_invalid_workers_rejected(self, tmp_path):
        spec = _spec(JobSpec(**TINY))
        with pytest.raises(ValueError):
            run_batch(spec, workers=0, shard_dir=str(tmp_path))
