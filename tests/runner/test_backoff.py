"""Seeded retry backoff: deterministic jitter, bit-identical retries.

`retry_delay_s` must be a pure function of (job key, retry ordinal) so
a re-run of a crashing batch schedules byte-for-byte the same retry
timeline — no `random` module, no wall clock in the jitter.
"""

import pytest

from repro.runner import BatchSpec, JobSpec, results_identical, run_batch
from repro.runner.executor import DEFAULT_RETRY_BACKOFF_S, retry_delay_s

TINY = dict(circuit="tseng", scale=0.01, width=40)


class TestRetryDelay:
    def test_pure_function_of_key_and_retry(self):
        assert retry_delay_s("job-a", 1) == retry_delay_s("job-a", 1)
        assert retry_delay_s("job-a", 2) == retry_delay_s("job-a", 2)

    def test_keys_get_distinct_jitter(self):
        assert retry_delay_s("job-a", 1) != retry_delay_s("job-b", 1)

    def test_zeroth_retry_is_immediate(self):
        assert retry_delay_s("job-a", 0) == 0.0

    def test_exponential_envelope(self):
        base = DEFAULT_RETRY_BACKOFF_S
        for retry in (1, 2, 3):
            delay = retry_delay_s("job-a", retry)
            scale = base * 2 ** (retry - 1)
            # jitter multiplier lives in [0.5, 1.5)
            assert scale * 0.5 <= delay < scale * 1.5

    def test_base_scales_linearly(self):
        assert retry_delay_s("k", 1, base_s=0.2) == pytest.approx(
            4 * retry_delay_s("k", 1, base_s=0.05))


class TestRetriedBatchDeterminism:
    def test_crash_retry_results_identical_across_runs(self, tmp_path):
        spec = BatchSpec(
            jobs=(JobSpec(fault="crash-first", **TINY),
                  JobSpec(seed=2, **TINY)),
            workers=2, retries=1,
        )
        first = run_batch(spec, shard_dir=str(tmp_path / "a"),
                          retry_backoff_s=0.01)
        second = run_batch(spec, shard_dir=str(tmp_path / "b"),
                           retry_backoff_s=0.01)
        assert first.results[0].status == "ok"
        assert first.results[0].attempts == 2
        assert results_identical(first.results, second.results)

    def test_serial_retry_matches_parallel(self, tmp_path):
        spec = BatchSpec(
            jobs=(JobSpec(fault="crash-first", **TINY),), retries=1,
        )
        serial = run_batch(spec, workers=1, shard_dir=str(tmp_path / "s"),
                           retry_backoff_s=0.01)
        parallel = run_batch(spec, workers=2, shard_dir=str(tmp_path / "p"),
                             retry_backoff_s=0.01)
        assert results_identical(serial.results, parallel.results)
