"""The batch runner's headline guarantee: parallel == serial, bit for bit.

One shared module-scoped pair of batch runs (serial and 4-worker) over
a 4-job matrix; every test compares a different aspect of the two.
Scale 0.01 keeps each job to ~a second while still exercising the full
pack/place/route/bitstream/evaluate pipeline.
"""

import pytest

from repro.obs.analyze import load_run
from repro.runner import BatchSpec, results_identical, run_batch

SPEC = BatchSpec.from_matrix(
    circuits=["tseng", "alu4"],
    variants=["baseline", "nem-opt:8"],
    seeds=[1],
    widths=[40],
    scale=0.01,
)


@pytest.fixture(scope="module")
def arms(tmp_path_factory):
    """(serial BatchResult, 4-worker BatchResult, parallel run file)."""
    base = tmp_path_factory.mktemp("determinism")
    serial = run_batch(SPEC, workers=1, shard_dir=str(base / "serial"),
                       metrics_out=str(base / "serial.jsonl"))
    parallel = run_batch(SPEC, workers=4, shard_dir=str(base / "parallel"),
                         metrics_out=str(base / "parallel.jsonl"))
    return serial, parallel, str(base / "parallel.jsonl")


def test_all_jobs_succeed(arms):
    serial, parallel, _ = arms
    assert serial.ok and parallel.ok
    assert serial.workers == 1 and parallel.workers == 4


def test_results_bit_identical(arms):
    serial, parallel, _ = arms
    assert results_identical(serial.results, parallel.results)


def test_routing_trees_identical_per_job(arms):
    serial, parallel, _ = arms
    for s, p in zip(serial.results, parallel.results):
        assert s.digests["routing_trees"] == p.digests["routing_trees"], s.key


def test_channel_widths_identical_per_job(arms):
    serial, parallel, _ = arms
    for s, p in zip(serial.results, parallel.results):
        assert s.qor["channel_width"] == p.qor["channel_width"], s.key


def test_qor_metrics_identical_per_job(arms):
    serial, parallel, _ = arms
    for s, p in zip(serial.results, parallel.results):
        assert s.qor == p.qor, s.key
        assert s.digests["qor"] == p.digests["qor"], s.key


def test_bitstreams_identical_per_job(arms):
    serial, parallel, _ = arms
    for s, p in zip(serial.results, parallel.results):
        assert s.digests["bitstream"] == p.digests["bitstream"], s.key


def test_report_order_is_spec_order_in_both_arms(arms):
    serial, parallel, _ = arms
    keys = [job.key for job in SPEC.jobs]
    assert [r.key for r in serial.results] == keys
    assert [r.key for r in parallel.results] == keys


def test_merged_telemetry_parses_clean(arms):
    _, _, run_path = arms
    run = load_run(run_path)
    assert run.warnings == []
    assert run.manifest is not None
    assert run.manifest["batch"]["spec_digest"] == SPEC.digest
    roots = [span for span in run.spans if span.name == "batch.job"]
    assert [s.attrs["job"] for s in roots] == [job.key for job in SPEC.jobs]


def test_merged_telemetry_span_structure_matches_serial(arms):
    serial, _, run_path = arms
    serial_run = load_run(serial.metrics_path)
    parallel_run = load_run(run_path)
    # Same span forest shape: alignment paths match exactly (wall
    # times differ, structure must not).
    assert (sorted(serial_run.by_path()) == sorted(parallel_run.by_path()))
    # And counters merged from worker shards agree with serial's.
    for name, snap in serial_run.metrics.items():
        if snap.get("kind") == "counter":
            assert parallel_run.metrics[name]["value"] == snap["value"], name


def test_wmin_jobs_are_deterministic_too(tmp_path):
    """Min-width search (the paper's Wmin protocol) under the pool."""
    spec = BatchSpec.from_matrix(
        circuits=["tseng"], variants=["baseline"], seeds=[1, 2],
        widths=[None], scale=0.01,
    )
    serial = run_batch(spec, workers=1, shard_dir=str(tmp_path / "s"))
    parallel = run_batch(spec, workers=2, shard_dir=str(tmp_path / "p"))
    assert serial.ok and parallel.ok
    assert results_identical(serial.results, parallel.results)
    assert all(r.key.endswith("/wmin") for r in serial.results)
