"""Tests for repro.faults.mission (epoch-stepped lifetime simulation)."""

import json

import pytest

from repro.faults import (
    MISSION_POLICIES,
    MissionSpec,
    RepairPolicy,
    aggregate_degradation,
    policy_name_valid,
    resolve_policy,
    run_mission,
    simulate_mission,
)
from repro.vpr.flow import run_flow

from .conftest import ARCH

#: Heavy wear (cumulative cycles cross eta within the mission) so every
#: policy sees faults inside four epochs — the regime where the
#: policies actually differ.
WEAR = dict(epochs=4, years=40.0, campaigns=2, base_seed=0)


@pytest.fixture(scope="module")
def flow(netlist):
    result = run_flow(netlist, ARCH, seed=7)
    assert result.success
    return result


@pytest.fixture(scope="module")
def missions(flow):
    return {
        policy: simulate_mission(flow, MissionSpec(policy=policy, **WEAR))
        for policy in ("every-epoch-bist", "never", "widen-early")
    }


class TestPolicyParsing:
    def test_canonical_spellings(self):
        assert resolve_policy("never") == RepairPolicy("never")
        assert resolve_policy("on-failure").reactive is True
        assert resolve_policy("on-failure").bist_period is None
        scheduled = resolve_policy("every-epoch-bist")
        assert scheduled.bist_period == 1 and scheduled.reactive
        widen = resolve_policy("widen-early")
        assert widen.bist_period == 1 and widen.widen_threshold == 0.0

    def test_periodic_k_parses_its_cadence(self):
        assert resolve_policy("periodic-3").bist_period == 3
        assert resolve_policy("periodic-1").reactive is False

    def test_ready_policy_passes_through(self):
        policy = RepairPolicy("custom", bist_period=2)
        assert resolve_policy(policy) is policy

    @pytest.mark.parametrize("bad", ["sometimes", "periodic-0",
                                     "periodic-x", "periodic-"])
    def test_bad_spellings_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_policy(bad)
        assert not policy_name_valid(bad)

    def test_valid_names_agree_with_resolver(self):
        for name in ("never", "on-failure", "every-epoch-bist",
                     "widen-early", "periodic-2", "periodic-10"):
            assert policy_name_valid(name)
            resolve_policy(name)  # must not raise

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="bist_period"):
            RepairPolicy("x", bist_period=0)
        with pytest.raises(ValueError, match="widen_threshold"):
            RepairPolicy("x", widen_threshold=-0.1)
        with pytest.raises(ValueError, match="widen_step"):
            RepairPolicy("x", widen_step=0)


class TestSpecValidation:
    def test_defaults_are_legal(self):
        spec = MissionSpec()
        assert spec.epochs == 8 and spec.policy == "on-failure"

    @pytest.mark.parametrize("kwargs", [
        dict(epochs=0),
        dict(years=0.0),
        dict(campaigns=0),
        dict(cycles_per_year=-1.0),
        dict(eta=0.0),
        dict(policy="chaos"),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MissionSpec(**kwargs)

    def test_round_trip(self):
        spec = MissionSpec(policy="periodic-2", epochs=5, years=7.5)
        assert MissionSpec.from_dict(spec.to_dict()) == spec

    def test_policies_tuple(self):
        assert MISSION_POLICIES == ("never", "on-failure", "periodic-k",
                                    "every-epoch-bist", "widen-early")


class TestDeterminism:
    def test_same_inputs_bit_identical(self, flow):
        spec = MissionSpec(policy="every-epoch-bist", **WEAR)
        a = simulate_mission(flow, spec)
        b = simulate_mission(flow, spec)
        assert a.digest == b.digest
        assert a.degradation_curve() == b.degradation_curve()
        for ta, tb in zip(a.trajectories, b.trajectories):
            assert [r.defect_digest for r in ta.records] == \
                   [r.defect_digest for r in tb.records]

    def test_run_mission_reuses_the_flow(self, netlist, flow, missions):
        again = run_mission(
            netlist, ARCH, MissionSpec(policy="never", **WEAR), flow=flow)
        assert again.digest == missions["never"].digest

    def test_different_policy_different_digest(self, missions):
        assert missions["never"].digest != missions["every-epoch-bist"].digest


class TestDegradationCurves:
    def test_curve_shape(self, missions):
        for mission in missions.values():
            curve = mission.degradation_curve()
            assert len(curve) == WEAR["epochs"]
            years = [row["device_years"] for row in curve]
            assert years == sorted(years) and years[-1] == WEAR["years"]
            for row in curve:
                assert 0.0 <= row["yield"] <= 1.0
                assert 0 <= row["dead"] <= WEAR["campaigns"]

    def test_fault_sets_grow_monotonically(self, missions):
        """Nested epochs: the simulator's own invariant, visible in
        the per-epoch records (new faults are never un-sampled)."""
        for mission in missions.values():
            for traj in mission.trajectories:
                assert all(r.new_defects >= 0 for r in traj.records)
                assert traj.records[0].defects <= traj.records[-1].defects

    def test_wear_actually_bites(self, missions):
        """The WEAR regime must produce faults, else every policy
        degenerates to `never` and the comparisons below are vacuous."""
        assert any(r.defects > 0
                   for t in missions["never"].trajectories
                   for r in t.records)

    def test_scheduled_bist_beats_no_repair(self, missions):
        """The headline claim: every-epoch BIST + repair keeps yield at
        or above the no-repair baseline at end of life."""
        bist = missions["every-epoch-bist"].degradation_curve()
        never = missions["never"].degradation_curve()
        assert bist[-1]["yield"] >= never[-1]["yield"]

    def test_never_policy_dies_permanently(self, missions):
        mission = missions["never"]
        assert mission.time_to_first_unrepairable is not None
        for traj in mission.trajectories:
            if traj.failed_epoch is not None:
                assert traj.repairs == 0 and traj.bist_runs == 0
                assert len(traj.records) == traj.failed_epoch
                assert not traj.records[-1].alive

    def test_widen_early_moves_to_a_wider_fabric(self, missions):
        mission = missions["widen-early"]
        assert any(t.final_channel_width > ARCH.channel_width
                   for t in mission.trajectories)

    def test_to_dict_is_json_shaped(self, missions):
        doc = missions["every-epoch-bist"].to_dict()
        json.dumps(doc)
        assert doc["circuit"] == "faulty"
        assert doc["digest"] and len(doc["trajectories"]) == WEAR["campaigns"]

    def test_unroutable_flow_rejected(self, netlist):
        with pytest.raises(RuntimeError, match="unroutable"):
            run_mission(netlist, ARCH, MissionSpec(), channel_width=4,
                        max_iterations=3)


class TestAggregation:
    @staticmethod
    def _record(epoch, healthy, alive, defects=1):
        return {
            "epoch": epoch, "healthy": healthy, "alive": alive,
            "defects": defects, "channel_width": 48,
            "wirelength_overhead": 0.0, "repair_stage": None, "bist": False,
        }

    def test_dead_trajectory_clamps_to_final_record(self):
        survivor = [self._record(e, True, True) for e in (1, 2, 3)]
        casualty = [self._record(1, False, False, defects=9)]
        rows = aggregate_degradation([survivor, casualty], epochs=3,
                                     years=30.0)
        assert [row["yield"] for row in rows] == [0.5, 0.5, 0.5]
        assert [row["dead"] for row in rows] == [1, 1, 1]
        # The casualty's last known hardware state is carried forward.
        assert all(row["mean_defects"] == 5.0 for row in rows)
        assert rows[-1]["device_years"] == 30.0

    def test_empty_input(self):
        assert aggregate_degradation([], epochs=3, years=1.0) == []
