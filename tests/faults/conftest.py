"""Shared fault-subsystem fixtures: one small placed+routed design."""

import pytest

from repro.arch.params import ArchParams
from repro.fabric import get_fabric
from repro.netlist.generate import GeneratorParams, generate
from repro.vpr.pack import pack
from repro.vpr.place import place
from repro.vpr.route import route_design

#: Small but multi-cluster: fast to route, rich enough to have victims.
CIRCUIT_PARAMS = GeneratorParams("faulty", num_luts=80, ff_fraction=0.25, seed=3)

#: Generous channel width so the shared clean route always succeeds.
ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="package")
def netlist():
    return generate(CIRCUIT_PARAMS)


@pytest.fixture(scope="package")
def clustered(netlist):
    return pack(netlist, ARCH)


@pytest.fixture(scope="package")
def placement(clustered):
    return place(clustered, seed=7)


@pytest.fixture(scope="package")
def fabric(placement):
    return get_fabric(ARCH, placement.grid_width, placement.grid_height)


@pytest.fixture(scope="package")
def routed(placement):
    result, graph = route_design(placement, ARCH)
    assert result.success, "shared fixture must route"
    return result, graph
