"""Property + determinism suite for the mission's nesting contract.

Two layers:

* hypothesis properties on the sampling core — any monotonically
  growing wear (explicit actuation accumulators, or the legacy
  cycle-count path) yields monotonically *nested* fault sets for a
  fixed campaign seed, the invariant `simulate_mission` asserts every
  epoch;
* batch-runner integration — a mission job matrix run in forked
  workers is bit-identical to serial execution, and a warm result
  store replays the identical results without recomputation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.bitstream import extract_bitstream
from repro.faults import FaultCampaign, chain_is_nested, switch_sites
from repro.runner import BatchSpec, results_identical, run_batch

# ---------------------------------------------------------------------------
# hypothesis: nested fault sets under growing wear


@st.composite
def wear_levels(draw):
    """A strictly growing sequence of cumulative wear multipliers."""
    increments = draw(st.lists(
        st.floats(min_value=0.01, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=5))
    return np.cumsum(np.asarray(increments))


@given(seed=st.integers(min_value=0, max_value=2**16), levels=wear_levels())
@settings(deadline=None, max_examples=20, derandomize=True)
def test_growing_actuations_give_nested_fault_sets(fabric, seed, levels):
    """The mission's epoch contract, stated directly: one fixed-seed
    aging campaign handed ever-growing per-site accumulators samples a
    nested chain of defect maps (the draw depends only on
    (seed, fabric key); only the per-site thresholds move)."""
    sites = switch_sites(fabric)
    # A deterministic, uneven per-site wear profile straddling eta so
    # the chain actually grows instead of being all-clean or all-dead.
    profile = (np.random.default_rng(seed).random(len(sites)) + 0.1) * 1e9
    campaign = FaultCampaign(seed=seed, mode="aging", eta=1e9, beta=1.6)
    maps = [campaign.for_fabric(fabric, actuations=profile * level)
            for level in levels]
    assert chain_is_nested(maps)
    totals = [m.total for m in maps]
    assert totals == sorted(totals)


@given(seed=st.integers(min_value=0, max_value=2**16), levels=wear_levels())
@settings(deadline=None, max_examples=10, derandomize=True)
def test_growing_cycles_give_nested_fault_sets(routed, seed, levels):
    """Same property through the legacy path: growing cycle counts on
    a real routed bitstream (unequal per-site wear) nest too."""
    routing, graph = routed
    bitstream = extract_bitstream(routing, graph)
    maps = []
    for level in levels:
        campaign = FaultCampaign(
            seed=seed, mode="aging", eta=1e9, beta=1.6,
            cycles=float(level) * 1e9, reconfigurations=float(level) * 100.0)
        maps.append(campaign.for_fabric(graph, bitstream=bitstream))
    assert chain_is_nested(maps)


# ---------------------------------------------------------------------------
# batch runner: serial == parallel == store-warm replay

SPEC = BatchSpec.from_matrix(
    circuits=["tseng"],
    variants=["baseline"],
    seeds=[1],
    widths=[40],
    scale=0.01,
    mission_epochs=3,
    mission_policies=("every-epoch-bist", "never"),
    mission_seeds=(0, 1),
    mission_years=40.0,
)


@pytest.fixture(scope="module")
def arms(tmp_path_factory):
    base = tmp_path_factory.mktemp("mission-determinism")
    store = str(base / "store")
    serial = run_batch(SPEC, workers=1, shard_dir=str(base / "serial"),
                       store=store)
    parallel = run_batch(SPEC, workers=4, shard_dir=str(base / "parallel"))
    warm = run_batch(SPEC, workers=1, shard_dir=str(base / "warm"),
                     store=store)
    return serial, parallel, warm


def test_all_mission_jobs_succeed(arms):
    serial, parallel, warm = arms
    assert serial.ok and parallel.ok and warm.ok
    assert len(serial.results) == 4  # 2 policies x 2 mission seeds


def test_serial_and_parallel_bit_identical(arms):
    serial, parallel, _ = arms
    assert results_identical(serial.results, parallel.results)


def test_store_warm_replay_identical(arms):
    serial, _, warm = arms
    assert results_identical(serial.results, warm.results)
    assert len(warm.cached) == len(serial.results)


def test_mission_jobs_report_curves_and_digests(arms):
    serial, parallel, _ = arms
    for s, p in zip(serial.results, parallel.results):
        assert "/m3x40y." in s.key
        assert s.digests["mission_curve"] == p.digests["mission_curve"]
        curve = s.qor["mission.curve"]
        assert len(curve) >= 1
        assert s.qor["mission.policy"] in ("every-epoch-bist", "never")


def test_policy_ordering_survives_the_runner(arms):
    """The acceptance gate, through the batch runner: scheduled BIST
    yields at least the no-repair policy's final health on every
    campaign seed."""
    serial, _, _ = arms
    by_policy = {}
    for result in serial.results:
        curve = result.qor["mission.curve"]
        by_policy.setdefault(result.qor["mission.policy"], []).append(
            curve[-1]["healthy"] and curve[-1]["alive"])
    bist = sum(by_policy["every-epoch-bist"])
    never = sum(by_policy["never"])
    assert bist >= never
