"""Tests for repro.faults.bist (fabric-level two-pattern self-test).

The loop-closing property under test: a BIST run against a campaign's
fault set reconstructs a defect map with the *same digest* — detection
recovers injection, switch for switch.
"""

import pytest

from repro.arch.params import ArchParams
from repro.fabric import get_fabric
from repro.faults import (
    FabricDefectMap,
    FaultCampaign,
    empty_defect_map,
    fabric_key_of,
    run_fabric_bist,
    switch_sites,
)


class TestFastBist:
    def test_clean_fabric_reads_clean(self, fabric):
        located = run_fabric_bist(fabric, empty_defect_map(fabric))
        assert located.clean
        assert located.source == "bist"
        assert located.fabric_key == fabric_key_of(fabric)

    def test_recovers_campaign_exactly(self, fabric):
        truth = FaultCampaign(seed=13, stuck_open_rate=0.02,
                              stuck_closed_rate=0.01).for_fabric(fabric)
        assert truth.total > 0
        located = run_fabric_bist(fabric, truth)
        assert located.digest == truth.digest
        assert located.stuck_open_switches == truth.stuck_open_switches
        assert located.stuck_closed_switches == truth.stuck_closed_switches

    def test_locates_dead_node(self, fabric):
        # A node-level fault manifests as every incident site reading
        # open; the localiser must fold that back into a node fault.
        node = int(switch_sites(fabric)[0][0])
        truth = FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_nodes=(node,))
        located = run_fabric_bist(fabric, truth)
        assert node in located.stuck_open_nodes
        assert located.digest == truth.digest

    def test_foreign_truth_rejected(self, fabric):
        foreign = FabricDefectMap(fabric_key="elsewhere",
                                  num_nodes=fabric.num_nodes)
        with pytest.raises(ValueError, match="different fabric"):
            run_fabric_bist(fabric, foreign)


class TestElectricalBist:
    """Terminal-behaviour backend on a deliberately tiny fabric (the
    per-tile crossbar BIST is quadratic in array size)."""

    @pytest.fixture(scope="class")
    def tiny(self, placement):
        return get_fabric(ArchParams(channel_width=8),
                          placement.grid_width, placement.grid_height)

    def test_matches_truth_up_to_node_folding(self, tiny):
        """Exact up to the one BIST-fundamental ambiguity: a node whose
        *every* incident site is stuck-open is indistinguishable from a
        dead node by terminal behaviour, and is reported as one (the
        two are routing-equivalent)."""
        truth = FaultCampaign(seed=21, stuck_open_rate=0.02,
                              stuck_closed_rate=0.01).for_fabric(tiny)
        assert truth.total > 0
        located = run_fabric_bist(tiny, truth, electrical=True)
        dead = set(located.stuck_open_nodes)
        for site in truth.stuck_open_switches:
            assert (site in located.stuck_open_switches
                    or site[0] in dead or site[1] in dead)
        assert (set(located.stuck_closed_switches)
                == set(truth.stuck_closed_switches))
        # Folding only where genuinely indistinguishable: every
        # incident site of a reported dead node is stuck-open in truth.
        open_truth = set(truth.stuck_open_switches)
        all_sites = [tuple(s) for s in switch_sites(tiny).tolist()]
        for node in dead:
            incident = [s for s in all_sites if node in s]
            assert incident and all(s in open_truth for s in incident)

    def test_clean_fabric_electrical(self, tiny):
        located = run_fabric_bist(tiny, empty_defect_map(tiny),
                                  electrical=True)
        assert located.clean

    def test_agrees_with_fast_backend(self, tiny):
        truth = FaultCampaign(seed=22, stuck_open_rate=0.03).for_fabric(tiny)
        fast = run_fabric_bist(tiny, truth, electrical=False)
        slow = run_fabric_bist(tiny, truth, electrical=True)
        assert fast.digest == slow.digest
