"""Tests for repro.faults.defects (FabricDefectMap)."""

import pytest

from repro.faults import (
    FabricDefectMap,
    FaultCampaign,
    empty_defect_map,
    fabric_key_of,
    resolve_defects,
)


def small_map(**kwargs):
    defaults = dict(fabric_key="k", num_nodes=10)
    defaults.update(kwargs)
    return FabricDefectMap(**defaults)


class TestCanonicalisation:
    def test_switches_sorted_and_deduped(self):
        m = small_map(stuck_open_switches=((5, 2), (2, 5), (1, 3), (1, 3)))
        assert m.stuck_open_switches == ((1, 3), (2, 5))

    def test_nodes_sorted_and_deduped(self):
        m = small_map(stuck_open_nodes=(7, 1, 7, 4))
        assert m.stuck_open_nodes == (1, 4, 7)

    def test_total_and_clean(self):
        assert small_map().clean
        m = small_map(stuck_open_nodes=(1,), stuck_open_switches=((2, 3),),
                      stuck_closed_switches=((4, 5),))
        assert m.total == 3 and not m.clean


class TestValidation:
    def test_node_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            small_map(stuck_open_nodes=(10,))

    def test_switch_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            small_map(stuck_open_switches=((3, 99),))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            small_map(stuck_open_switches=((4, 4),))

    def test_open_and_closed_overlap_rejected(self):
        with pytest.raises(ValueError, match="both stuck-open and stuck-closed"):
            small_map(stuck_open_switches=((1, 2),),
                      stuck_closed_switches=((2, 1),))

    def test_bad_num_nodes(self):
        with pytest.raises(ValueError):
            FabricDefectMap(fabric_key="k", num_nodes=0)


class TestDigest:
    def test_stable_across_instances(self):
        a = small_map(stuck_open_switches=((1, 2), (3, 4)))
        b = small_map(stuck_open_switches=((3, 4), (2, 1)))
        assert a.digest == b.digest

    def test_source_excluded_from_digest(self):
        a = small_map(stuck_open_switches=((1, 2),), source="campaign")
        b = small_map(stuck_open_switches=((1, 2),), source="bist")
        assert a.digest == b.digest

    def test_fault_set_changes_digest(self):
        assert small_map().digest != small_map(stuck_open_nodes=(1,)).digest

    def test_fabric_key_changes_digest(self):
        a = small_map()
        b = FabricDefectMap(fabric_key="other", num_nodes=10)
        assert a.digest != b.digest


class TestBlockedSets:
    def test_blocked_nodes_are_open_nodes_plus_bridged_wires(self):
        m = small_map(stuck_open_nodes=(1,), stuck_closed_switches=((4, 7),))
        assert m.blocked_nodes() == frozenset({1, 4, 7})

    def test_blocked_edges_are_both_directions(self):
        m = small_map(stuck_open_switches=((2, 5),))
        assert m.blocked_edges() == frozenset({(2, 5), (5, 2)})

    def test_stuck_open_switch_does_not_block_nodes(self):
        m = small_map(stuck_open_switches=((2, 5),))
        assert m.blocked_nodes() == frozenset()


class TestQueries:
    def test_usable_node(self):
        m = small_map(stuck_open_nodes=(3,))
        assert not m.usable_node(3)
        assert m.usable_node(4)

    def test_usable_node_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside"):
            small_map().usable_node(10)
        with pytest.raises(ValueError, match="outside"):
            small_map().usable_node(-1)

    def test_usable_switch_direct_fault(self):
        m = small_map(stuck_open_switches=((2, 5),))
        assert not m.usable_switch(2, 5)
        assert not m.usable_switch(5, 2)  # order-insensitive
        assert m.usable_switch(2, 6)

    def test_usable_switch_blocked_endpoint(self):
        m = small_map(stuck_open_nodes=(2,))
        assert not m.usable_switch(2, 5)

    def test_usable_switch_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside"):
            small_map().usable_switch(0, 10)


class TestSerialisation:
    def test_round_trip(self):
        m = small_map(stuck_open_nodes=(1,), stuck_open_switches=((2, 3),),
                      stuck_closed_switches=((4, 5),), source="bist")
        back = FabricDefectMap.from_dict(m.to_dict())
        assert back == m
        assert back.digest == m.digest
        assert back.source == "bist"


class TestFabricBinding:
    def test_empty_defect_map_validates(self, fabric):
        m = empty_defect_map(fabric)
        assert m.clean
        m.validate_against(fabric)  # no raise
        assert m.fabric_key == fabric_key_of(fabric)

    def test_validate_against_wrong_fabric_raises(self, fabric):
        m = FabricDefectMap(fabric_key="not-this-fabric",
                            num_nodes=fabric.num_nodes)
        with pytest.raises(ValueError, match="different fabric"):
            m.validate_against(fabric)


class TestResolveDefects:
    def test_none_passes_through(self, fabric):
        assert resolve_defects(None, fabric) is None

    def test_map_validated(self, fabric):
        m = empty_defect_map(fabric)
        assert resolve_defects(m, fabric) is m

    def test_foreign_map_rejected(self, fabric):
        foreign = FabricDefectMap(fabric_key="elsewhere",
                                  num_nodes=fabric.num_nodes)
        with pytest.raises(ValueError, match="different fabric"):
            resolve_defects(foreign, fabric)

    def test_campaign_provider_sampled(self, fabric):
        campaign = FaultCampaign(seed=4, stuck_open_rate=0.01)
        m = resolve_defects(campaign, fabric)
        assert m is not None
        assert m.fabric_key == fabric_key_of(fabric)

    def test_callable_provider(self, fabric):
        m = resolve_defects(lambda ir: empty_defect_map(ir), fabric)
        assert m is not None and m.clean

    def test_bad_type_rejected(self, fabric):
        with pytest.raises(TypeError, match="defects must be"):
            resolve_defects(42, fabric)

    def test_provider_returning_wrong_type_rejected(self, fabric):
        with pytest.raises(TypeError, match="expected FabricDefectMap"):
            resolve_defects(lambda ir: "oops", fabric)
