"""Batch-runner integration of the defect axis.

The runner's headline guarantee must extend to fault jobs: a defect
campaign + self-repair executed in a forked worker is bit-identical to
the same job run serially.
"""

import pytest

from repro.runner import BatchSpec, results_identical, run_batch

SPEC = BatchSpec.from_matrix(
    circuits=["tseng"],
    variants=["baseline"],
    seeds=[1],
    widths=[40],
    scale=0.01,
    defect_rates=[None, 0.01, 0.02],
    defect_seed=0,
)


@pytest.fixture(scope="module")
def arms(tmp_path_factory):
    base = tmp_path_factory.mktemp("defect-determinism")
    serial = run_batch(SPEC, workers=1, shard_dir=str(base / "serial"))
    parallel = run_batch(SPEC, workers=4, shard_dir=str(base / "parallel"))
    return serial, parallel


def test_all_jobs_succeed(arms):
    serial, parallel = arms
    assert serial.ok and parallel.ok


def test_serial_and_parallel_bit_identical(arms):
    serial, parallel = arms
    assert results_identical(serial.results, parallel.results)


def test_defect_digests_identical_per_job(arms):
    serial, parallel = arms
    for s, p in zip(serial.results, parallel.results):
        if "defect_map" in s.digests:
            assert s.digests["defect_map"] == p.digests["defect_map"], s.key
            assert s.digests["repaired_trees"] == p.digests["repaired_trees"], s.key


def test_fault_free_job_unchanged_by_the_axis(arms):
    serial, _ = arms
    clean = serial.results[0]
    assert clean.key == "tseng@0.01/baseline/s1/w40"
    assert "defect_map" not in clean.digests
    assert "repair.stage" not in clean.qor


def test_fault_jobs_report_repair_qor(arms):
    serial, _ = arms
    for result in serial.results[1:]:
        assert result.qor["defects"] > 0
        assert result.qor["repair.success"] is True
        assert result.qor["repair.stage"] in ("clean", "incremental", "full",
                                              "widened")
        assert result.digests["clean_trees"]
        assert result.digests["repaired_trees"]


def test_fault_sets_nest_across_rates(arms):
    """Same campaign seed at a higher rate strictly grows the map."""
    serial, _ = arms
    low, high = serial.results[1], serial.results[2]
    assert low.qor["defects"] <= high.qor["defects"]
