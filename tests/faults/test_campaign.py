"""Tests for repro.faults.campaign (seeded fault sampling)."""

import numpy as np
import pytest

from repro.faults import (
    CAMPAIGN_MODES,
    FaultCampaign,
    site_actuations,
    switch_sites,
)


class TestSwitchSites:
    def test_shape_and_order(self, fabric):
        sites = switch_sites(fabric)
        assert sites.ndim == 2 and sites.shape[1] == 2
        assert len(sites) > 0
        # Canonical form: lo < hi, lexicographically sorted, unique.
        assert (sites[:, 0] < sites[:, 1]).all()
        encoded = sites[:, 0] * fabric.num_nodes + sites[:, 1]
        assert (np.diff(encoded) > 0).all()

    def test_endpoints_in_range(self, fabric):
        sites = switch_sites(fabric)
        assert sites.min() >= 0
        assert sites.max() < fabric.num_nodes

    def test_sites_are_programmable_edges(self, fabric):
        """Every site corresponds to at least one CSR edge with a
        real switch; SwitchKind.NONE edges are not fault sites."""
        sources = np.repeat(np.arange(fabric.num_nodes, dtype=np.int64),
                            np.diff(fabric.edge_offsets))
        targets = fabric.edge_targets.astype(np.int64)
        programmable = fabric.edge_switch != 0
        lo = np.minimum(sources[programmable], targets[programmable])
        hi = np.maximum(sources[programmable], targets[programmable])
        expected = set(zip(lo.tolist(), hi.tolist()))
        assert set(map(tuple, switch_sites(fabric).tolist())) == expected


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FaultCampaign(mode="chaos")

    def test_modes_tuple(self):
        assert CAMPAIGN_MODES == ("uniform", "variation", "aging")

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            FaultCampaign(stuck_open_rate=1.5)
        with pytest.raises(ValueError):
            FaultCampaign(stuck_closed_rate=-0.1)

    def test_rates_sum_above_one(self):
        with pytest.raises(ValueError, match="> 1"):
            FaultCampaign(stuck_open_rate=0.7, stuck_closed_rate=0.7)

    def test_weibull_params_positive(self):
        with pytest.raises(ValueError):
            FaultCampaign(mode="aging", eta=0.0)


class TestUniformSampling:
    def test_same_seed_bit_identical(self, fabric):
        c = FaultCampaign(seed=11, stuck_open_rate=0.02)
        a, b = c.for_fabric(fabric), c.for_fabric(fabric)
        assert a == b
        assert a.digest == b.digest

    def test_different_seed_differs(self, fabric):
        a = FaultCampaign(seed=1, stuck_open_rate=0.05).for_fabric(fabric)
        b = FaultCampaign(seed=2, stuck_open_rate=0.05).for_fabric(fabric)
        assert a.digest != b.digest

    def test_zero_rate_is_clean(self, fabric):
        m = FaultCampaign(seed=1, stuck_open_rate=0.0).for_fabric(fabric)
        assert m.clean

    def test_full_rate_kills_every_site(self, fabric):
        m = FaultCampaign(seed=1, stuck_open_rate=1.0).for_fabric(fabric)
        assert len(m.stuck_open_switches) == len(switch_sites(fabric))

    def test_fault_sets_nest_as_rate_grows(self, fabric):
        """Same seed, higher rate => superset (a single uniform draw is
        partitioned, so the yield curve degrades monotonically in
        hardware rather than sampling noise)."""
        lo = FaultCampaign(seed=5, stuck_open_rate=0.01).for_fabric(fabric)
        hi = FaultCampaign(seed=5, stuck_open_rate=0.03).for_fabric(fabric)
        assert set(lo.stuck_open_switches) <= set(hi.stuck_open_switches)
        assert len(hi.stuck_open_switches) > len(lo.stuck_open_switches)

    def test_mixed_classes_disjoint(self, fabric):
        m = FaultCampaign(seed=3, stuck_open_rate=0.02,
                          stuck_closed_rate=0.02).for_fabric(fabric)
        assert m.stuck_open_switches and m.stuck_closed_switches
        assert not set(m.stuck_open_switches) & set(m.stuck_closed_switches)

    def test_approximate_rate(self, fabric):
        sites = len(switch_sites(fabric))
        m = FaultCampaign(seed=9, stuck_open_rate=0.05).for_fabric(fabric)
        observed = len(m.stuck_open_switches) / sites
        assert 0.02 < observed < 0.09


class TestVariationMode:
    def test_deterministic(self, fabric):
        c = FaultCampaign(seed=2, mode="variation", sigma_scale=2.0)
        assert c.for_fabric(fabric).digest == c.for_fabric(fabric).digest

    def test_wide_tails_produce_faults(self, fabric):
        m = FaultCampaign(seed=2, mode="variation",
                          sigma_scale=3.0, population=100).for_fabric(fabric)
        assert m.total > 0


class TestAgingMode:
    def test_fresh_fabric_is_clean(self, fabric):
        m = FaultCampaign(seed=1, mode="aging", reconfigurations=0.0,
                          cycles=0.0).for_fabric(fabric)
        assert m.clean

    def test_worn_fabric_fails(self, fabric):
        m = FaultCampaign(seed=1, mode="aging", eta=1e3, beta=1.6,
                          reconfigurations=500.0).for_fabric(fabric)
        assert m.total > 0
        assert not m.stuck_closed_switches  # wear-out opens contacts

    def test_activity_ages_routed_sites_extra(self, fabric, routed):
        from repro.config.bitstream import extract_bitstream

        routing, graph = routed
        bitstream = extract_bitstream(routing, graph)
        base = FaultCampaign(seed=6, mode="aging", eta=1e4,
                             reconfigurations=100.0, cycles=0.0)
        aged = FaultCampaign(seed=6, mode="aging", eta=1e4,
                             reconfigurations=100.0, cycles=1e4)
        m_base = base.for_fabric(graph)
        m_aged = aged.for_fabric(graph, bitstream=bitstream)
        # Routed sites only accumulate cycles: same draw, higher
        # per-site failure probability => superset.
        assert set(m_base.stuck_open_switches) <= set(m_aged.stuck_open_switches)
        assert m_aged.total >= m_base.total


class TestExplicitActuations:
    """The mission-simulator path: caller-owned wear accumulators."""

    def test_matches_internal_accounting(self, routed):
        """Handing `for_fabric` the exact accumulator it would have
        computed itself is byte-identical to the legacy call."""
        from repro.config.bitstream import extract_bitstream

        routing, graph = routed
        bitstream = extract_bitstream(routing, graph)
        campaign = FaultCampaign(seed=6, mode="aging", eta=1e4,
                                 reconfigurations=100.0, cycles=1e4)
        legacy = campaign.for_fabric(graph, bitstream=bitstream)
        explicit = campaign.for_fabric(graph, actuations=site_actuations(
            switch_sites(graph), bitstream,
            cycles=1e4, reconfigurations=100.0))
        assert legacy == explicit
        assert legacy.digest == explicit.digest

    def test_summed_increments_nest(self, fabric):
        """Accumulating wear epoch-style gives nested maps — the
        contract the mission asserts every step."""
        sites = switch_sites(fabric)
        campaign = FaultCampaign(seed=4, mode="aging", eta=1e3, beta=1.6)
        step = site_actuations(sites, reconfigurations=400.0)
        one = campaign.for_fabric(fabric, actuations=step)
        two = campaign.for_fabric(fabric, actuations=step + step)
        assert set(one.stuck_open_switches) <= set(two.stuck_open_switches)

    def test_rejected_outside_aging_mode(self, fabric):
        campaign = FaultCampaign(seed=1, mode="uniform")
        with pytest.raises(ValueError, match="aging"):
            campaign.for_fabric(
                fabric, actuations=np.zeros(len(switch_sites(fabric))))

    def test_shape_checked(self, fabric):
        campaign = FaultCampaign(seed=1, mode="aging")
        with pytest.raises(ValueError, match="shape"):
            campaign.for_fabric(fabric, actuations=np.zeros(3))

    def test_negative_counts_rejected(self, fabric):
        campaign = FaultCampaign(seed=1, mode="aging")
        bad = np.zeros(len(switch_sites(fabric)))
        bad[0] = -1.0
        with pytest.raises(ValueError, match=">= 0"):
            campaign.for_fabric(fabric, actuations=bad)


class TestSerialisation:
    def test_round_trip(self):
        c = FaultCampaign(seed=8, mode="aging", eta=1e6, beta=2.0,
                          cycles=100.0)
        assert FaultCampaign.from_dict(c.to_dict()) == c
