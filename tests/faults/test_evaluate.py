"""Tests for repro.faults.evaluate (defect sweeps and yield curves)."""

import pytest

from repro.faults import run_defect_sweep

from .conftest import ARCH


@pytest.fixture(scope="module")
def sweep(netlist):
    return run_defect_sweep(netlist, ARCH, rates=(0.005, 0.01),
                            campaigns=2, base_seed=0, seed=7)


class TestSweepStructure:
    def test_one_outcome_per_rate_and_campaign(self, sweep):
        assert len(sweep.outcomes) == 4
        assert len(sweep.at_rate(0.005)) == 2
        assert len(sweep.at_rate(0.01)) == 2

    def test_campaign_seeds_constant_across_rates(self, sweep):
        """Campaign i keeps its seed at every rate, so its fault sets
        nest as the rate grows — yield degrades monotonically in
        hardware, not sampling noise."""
        for rate in sweep.rates:
            assert [o.campaign_seed for o in sweep.at_rate(rate)] == [0, 1]

    def test_yield_curve_rows(self, sweep):
        curve = sweep.yield_curve()
        assert [row["rate"] for row in curve] == [0.005, 0.01]
        for row in curve:
            assert row["campaigns"] == 2
            assert 0.0 <= row["yield"] <= 1.0
            assert row["incremental_yield"] <= row["yield"]
            assert sum(row["stages"].values()) == 2

    def test_generous_width_fully_repairs(self, sweep):
        assert all(row["yield"] == 1.0 for row in sweep.yield_curve())

    def test_to_dict_is_json_shaped(self, sweep):
        import json

        doc = sweep.to_dict()
        json.dumps(doc)  # no unserialisable leftovers
        assert doc["circuit"] == "faulty"
        assert len(doc["outcomes"]) == 4
        assert doc["clean_digest"]


class TestReproducibility:
    def test_sweep_is_bit_reproducible(self, netlist, sweep):
        again = run_defect_sweep(netlist, ARCH, rates=(0.005, 0.01),
                                 campaigns=2, base_seed=0, seed=7)
        assert again.clean_digest == sweep.clean_digest
        assert ([o.defect_digest for o in again.outcomes]
                == [o.defect_digest for o in sweep.outcomes])
        assert ([o.routing_digest for o in again.outcomes]
                == [o.routing_digest for o in sweep.outcomes])

    def test_fault_sets_nest_across_rates(self, sweep):
        lo, hi = sweep.at_rate(0.005)[0], sweep.at_rate(0.01)[0]
        assert lo.campaign_seed == hi.campaign_seed
        assert lo.defects <= hi.defects


class TestFaultSetChains:
    def test_one_verified_chain_per_campaign(self, sweep):
        assert [c.campaign_seed for c in sweep.chains] == [0, 1]
        for chain in sweep.chains:
            assert chain.nested is True
            assert chain.rates == (0.005, 0.01)
            assert len(chain.digests) == len(chain.rates)
            assert list(chain.defect_counts) == sorted(chain.defect_counts)

    def test_chain_digests_match_outcomes(self, sweep):
        for chain in sweep.chains:
            per_rate = [
                next(o for o in sweep.at_rate(rate)
                     if o.campaign_seed == chain.campaign_seed)
                for rate in chain.rates
            ]
            assert chain.digests == tuple(o.defect_digest for o in per_rate)

    def test_chain_for_lookup(self, sweep):
        assert sweep.chain_for(1).campaign_seed == 1
        with pytest.raises(KeyError, match="99"):
            sweep.chain_for(99)

    def test_chains_serialised(self, sweep):
        doc = sweep.to_dict()
        assert len(doc["chains"]) == 2
        assert all(entry["nested"] for entry in doc["chains"])


class TestGuards:
    def test_unroutable_clean_fabric_raises(self, netlist):
        with pytest.raises(RuntimeError, match="unroutable"):
            run_defect_sweep(netlist, ARCH, channel_width=4,
                             rates=(0.01,), campaigns=1, max_iterations=3)

    def test_bad_arguments_rejected(self, netlist):
        with pytest.raises(ValueError, match="stuck_closed_fraction"):
            run_defect_sweep(netlist, ARCH, stuck_closed_fraction=1.5)
        with pytest.raises(ValueError, match="campaigns"):
            run_defect_sweep(netlist, ARCH, campaigns=0)
