"""Tests for repro.faults.repair (incremental self-repair ladder)."""

import pytest

from repro.faults import (
    FabricDefectMap,
    FaultCampaign,
    REPAIR_STAGES,
    empty_defect_map,
    fabric_key_of,
    find_victims,
    repair_routing,
    switch_sites,
)
from repro.obs import MetricsRegistry, use_registry


def routed_switch_sites(routing, fabric):
    """(net name, (lo, hi)) for every switch site a routed tree crosses."""
    sites = set(map(tuple, switch_sites(fabric).tolist()))
    hits = []
    for name, tree in routing.trees.items():
        for node, parent in tree.parent.items():
            if parent < 0:
                continue
            site = (min(parent, node), max(parent, node))
            if site in sites:
                hits.append((name, site))
    return hits


@pytest.fixture()
def one_victim(routed):
    """A defect map breaking exactly one routed net's switch."""
    routing, fabric = routed
    name, site = routed_switch_sites(routing, fabric)[0]
    defects = FabricDefectMap(
        fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
        stuck_open_switches=(site,))
    return name, site, defects


class TestFindVictims:
    def test_clean_map_no_victims(self, routed):
        routing, fabric = routed
        assert find_victims(routing, empty_defect_map(fabric)) == []

    def test_stuck_open_switch_on_route(self, routed, one_victim):
        routing, _fabric = routed
        name, _site, defects = one_victim
        assert name in find_victims(routing, defects)

    def test_unused_switch_no_victims(self, routed):
        routing, fabric = routed
        used = {site for _n, site in routed_switch_sites(routing, fabric)}
        unused = next(s for s in map(tuple, switch_sites(fabric).tolist())
                      if s not in used)
        defects = FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_switches=(unused,))
        assert find_victims(routing, defects) == []

    def test_blocked_node_on_route(self, routed):
        routing, fabric = routed
        name, (lo, _hi) = routed_switch_sites(routing, fabric)[0]
        defects = FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_nodes=(lo,))
        assert name in find_victims(routing, defects)


class TestCleanStage:
    def test_no_victims_returns_original(self, placement, routed):
        routing, fabric = routed
        result = repair_routing(placement, routing, empty_defect_map(fabric),
                                graph=fabric)
        assert result.stage == "clean" and result.success
        assert result.routing is routing
        assert result.nets_ripped == 0
        assert [a.stage for a in result.attempts] == ["clean"]


class TestIncrementalStage:
    def test_rips_only_victims(self, placement, routed, one_victim):
        routing, fabric = routed
        name, site, defects = one_victim
        registry = MetricsRegistry()
        with use_registry(registry):
            result = repair_routing(placement, routing, defects, graph=fabric)
        assert result.stage == "incremental" and result.success
        assert result.victim_nets == [name]
        assert result.nets_ripped == 1
        # Metrics satellite: the repair run is observable.
        assert registry.counter("repair.nets_ripped").value == 1
        assert registry.counter("repair.runs").value == 1
        assert (registry.gauge("repair.stage").value
                == REPAIR_STAGES.index("incremental"))

    def test_untouched_trees_byte_identical(self, placement, routed, one_victim):
        """The acceptance criterion: healthy nets' routing trees are
        returned unchanged — same object, same bytes — so their fabric
        tiles are never reprogrammed."""
        routing, fabric = routed
        name, _site, defects = one_victim
        result = repair_routing(placement, routing, defects, graph=fabric)
        assert result.success
        for other, tree in routing.trees.items():
            if other == name:
                continue
            assert result.routing.trees[other] is tree
            assert result.routing.trees[other].parent == tree.parent

    def test_victim_avoids_fault(self, placement, routed, one_victim):
        routing, fabric = routed
        name, (lo, hi), defects = one_victim
        result = repair_routing(placement, routing, defects, graph=fabric)
        tree = result.routing.trees[name]
        for node, parent in tree.parent.items():
            if parent >= 0:
                assert (min(parent, node), max(parent, node)) != (lo, hi)

    def test_repair_is_deterministic(self, placement, routed):
        routing, fabric = routed
        campaign = FaultCampaign(seed=17, stuck_open_rate=0.01)
        defects = campaign.for_fabric(fabric)
        a = repair_routing(placement, routing, defects, graph=fabric)
        b = repair_routing(placement, routing, defects, graph=fabric)
        assert a.stage == b.stage
        assert {n: sorted(t.parent.items()) for n, t in a.routing.trees.items()} \
            == {n: sorted(t.parent.items()) for n, t in b.routing.trees.items()}

    def test_wirelength_recomputed(self, placement, routed, one_victim):
        routing, fabric = routed
        _name, _site, defects = one_victim
        result = repair_routing(placement, routing, defects, graph=fabric)
        spans = fabric.wire_spans
        expected = sum(spans[n] for tree in result.routing.trees.values()
                       for n in tree.nodes)
        assert result.routing.wirelength == expected


class TestFixedTrees:
    def test_net_both_routed_and_fixed_rejected(self, placement, routed):
        from repro.vpr.route import PathFinderRouter, build_route_nets

        routing, fabric = routed
        nets = build_route_nets(placement)
        router = PathFinderRouter(fabric)
        fixed = {nets[0].name: routing.trees[nets[0].name]}
        with pytest.raises(ValueError, match="both routed and fixed"):
            router.route(nets, fixed_trees=fixed)


class TestLadderDescent:
    def _kill_all(self, fabric):
        """Every switch site stuck-open: unroutable at any width."""
        return FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_switches=tuple(map(tuple, switch_sites(fabric).tolist())))

    def test_no_campaign_skips_widening(self, placement, routed):
        """Widening re-samples defects from the campaign; without one,
        pretending a wider fabric is fault-free would be lying."""
        routing, fabric = routed
        result = repair_routing(placement, routing, self._kill_all(fabric),
                                graph=fabric, max_iterations=3)
        assert result.stage == "failed" and not result.success
        tried = [a.stage for a in result.attempts]
        assert tried == ["incremental", "full"]
        assert result.channel_width == fabric.params.channel_width

    def test_widened_attempts_resample_from_campaign(self, placement, routed):
        routing, fabric = routed
        width = fabric.params.channel_width

        def provider(ir):
            # Unroutable at the original width, clean once widened.
            if ir.params.channel_width == width:
                return self._kill_all(ir)
            return empty_defect_map(ir)

        result = repair_routing(
            placement, routing, self._kill_all(fabric), graph=fabric,
            campaign=provider, max_widen=1)
        assert result.stage == "widened" and result.success
        assert result.channel_width == width + 2
        assert result.defects.clean
        assert [a.stage for a in result.attempts] \
            == ["incremental", "full", "widened"]

    def test_failure_counts_metric(self, placement, routed):
        routing, fabric = routed
        registry = MetricsRegistry()
        with use_registry(registry):
            result = repair_routing(placement, routing, self._kill_all(fabric),
                                    graph=fabric, max_iterations=3)
        assert not result.success
        assert registry.counter("repair.failures").value == 1
        assert (registry.gauge("repair.stage").value
                == REPAIR_STAGES.index("failed"))

    def test_foreign_defects_rejected(self, placement, routed):
        routing, fabric = routed
        foreign = FabricDefectMap(fabric_key="elsewhere",
                                  num_nodes=fabric.num_nodes)
        with pytest.raises(ValueError, match="different fabric"):
            repair_routing(placement, routing, foreign, graph=fabric)
