"""Defect plumbing through the flow layer (run_flow / Wmin / timing).

Node ids are fabric-specific: a raw blocked set sampled at one channel
width silently blocks the wrong resources at any other.  The flow
layer therefore accepts raw sets only at a *fixed* width and demands a
re-sampling provider everywhere the width can change.
"""

import pytest

from repro.faults import FabricDefectMap, FaultCampaign, fabric_key_of
from repro.obs import MetricsRegistry, use_registry
from repro.vpr.flow import find_min_channel_width, run_flow
from repro.vpr.route import PathFinderRouter, build_route_nets

from .conftest import ARCH


def crossed_sites(routing):
    return {(min(p, n), max(p, n))
            for tree in routing.trees.values()
            for n, p in tree.parent.items() if p >= 0}


class TestRunFlow:
    def test_defect_map_avoided(self, netlist, routed):
        routing, fabric = routed
        victim_site = next(iter(crossed_sites(routing)))
        defects = FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_switches=(victim_site,))
        flow = run_flow(netlist, ARCH, seed=7, defects=defects)
        assert flow.success
        assert victim_site not in crossed_sites(flow.routing)

    def test_campaign_provider_resolved(self, netlist):
        campaign = FaultCampaign(seed=3, stuck_open_rate=0.005)
        flow = run_flow(netlist, ARCH, seed=7, defects=campaign)
        assert flow.success
        truth = campaign.for_fabric(flow.graph)
        assert not crossed_sites(flow.routing) & set(truth.stuck_open_switches)

    def test_blocked_nodes_forwarded(self, netlist, routed):
        routing, _fabric = routed
        used = {n for tree in routing.trees.values() for n in tree.nodes
                if tree.parent.get(n, -1) >= 0}
        victim = next(iter(sorted(used)))
        flow = run_flow(netlist, ARCH, seed=7, blocked_nodes={victim})
        assert flow.success
        for tree in flow.routing.trees.values():
            assert victim not in tree.nodes


class TestWminSearch:
    def test_raw_blocked_nodes_rejected(self, placement):
        with pytest.raises(ValueError, match="fabric-specific"):
            find_min_channel_width(placement, ARCH, blocked_nodes={1, 2})

    def test_raw_blocked_edges_rejected(self, placement):
        with pytest.raises(ValueError, match="fabric-specific"):
            find_min_channel_width(placement, ARCH, blocked_edges={(1, 2)})

    def test_concrete_map_rejected(self, placement, fabric):
        concrete = FabricDefectMap(fabric_key=fabric_key_of(fabric),
                                   num_nodes=fabric.num_nodes)
        with pytest.raises(ValueError, match="provider"):
            find_min_channel_width(placement, ARCH, defects=concrete)

    def test_campaign_provider_resampled_per_width(self, placement):
        """A provider survives the width search: the winning width's
        routing avoids exactly *that* width's re-sampled fault set.
        (Wmin itself may wobble by a track vs the clean search —
        PathFinder is a heuristic, and perturbing costs can shift its
        convergence point either way.)"""
        campaign = FaultCampaign(seed=2, stuck_open_rate=0.05)
        wmin, result, graph = find_min_channel_width(
            placement, ARCH, defects=campaign)
        assert result.success
        assert graph.params.channel_width == wmin
        truth = campaign.for_fabric(graph)
        assert truth.total > 0
        assert not crossed_sites(result) & set(truth.stuck_open_switches)


def first_sites(fabric, count):
    from repro.faults import switch_sites

    return [tuple(s) for s in switch_sites(fabric)[:count].tolist()]


class TestRouterGauges:
    def test_blocked_gauges_emitted(self, placement, fabric):
        nets = build_route_nets(placement)
        sites = first_sites(fabric, 2)
        defects = FabricDefectMap(
            fabric_key=fabric_key_of(fabric), num_nodes=fabric.num_nodes,
            stuck_open_switches=(sites[0],),
            stuck_closed_switches=(sites[1],))
        registry = MetricsRegistry()
        with use_registry(registry):
            router = PathFinderRouter(
                fabric,
                blocked_nodes=defects.blocked_nodes(),
                blocked_edges=defects.blocked_edges())
            result = router.route(nets)
        assert result.success
        assert registry.gauge("route.blocked_nodes").value == 2
        assert registry.gauge("route.blocked_edges").value == 2
