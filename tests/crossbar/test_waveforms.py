"""Tests for repro.crossbar.waveforms (Fig. 5 sessions)."""

import pytest

from repro.crossbar.array import uniform_crossbar
from repro.crossbar.halfselect import PAPER_2X2_VOLTAGES
from repro.crossbar.waveforms import exhaustive_verification, simulate_session
from repro.crossbar.waveforms import test_pulse as square_pulse  # alias: bare name would be collected by pytest
from repro.nemrelay.device import CROSSBAR_MEASURED_CIRCUIT
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM


@pytest.fixture
def model():
    return ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


def make_xbar(model, rows=2, cols=2):
    return uniform_crossbar(rows, cols, model, circuit=CROSSBAR_MEASURED_CIRCUIT)


class TestTestPulse:
    def test_square_wave_shape(self):
        assert square_pulse(0.1, period=4.0, amplitude=0.5, phase_shifted=False) == 0.5
        assert square_pulse(2.1, period=4.0, amplitude=0.5, phase_shifted=False) == -0.5

    def test_phase_shift_inverts(self):
        a = square_pulse(1.0, 4.0, 0.5, phase_shifted=False)
        b = square_pulse(1.0, 4.0, 0.5, phase_shifted=True)
        assert a == -b


class TestSimulateSession:
    @pytest.fixture
    def session(self, model):
        return simulate_session(make_xbar(model), PAPER_2X2_VOLTAGES, {(0, 0), (1, 1)})

    def test_configuration_programmed(self, session):
        assert session.configuration == {(0, 0), (1, 1)}

    def test_reset_releases_all(self, session):
        assert session.reset_ok

    def test_phases_ordered(self, session):
        t_prog, t_test = session.phase_bounds
        assert 0 < t_prog < t_test < session.times[-1]

    def test_drains_active_exactly_on_configured_rows(self, model):
        session = simulate_session(make_xbar(model), PAPER_2X2_VOLTAGES, {(0, 1)})
        assert session.drain_amplitude(0) == pytest.approx(0.5)
        assert session.drain_amplitude(1) == 0.0

    def test_antiphase_pulses_on_beams(self, session):
        t_prog, t_test = session.phase_bounds
        idx = [i for i, t in enumerate(session.times) if t_prog <= t < t_test]
        b0 = [session.beams[0][i] for i in idx]
        b1 = [session.beams[1][i] for i in idx]
        # 180-degree shift: sample-wise negation.
        assert all(x == -y for x, y in zip(b0, b1))

    def test_drains_quiet_during_program_and_reset(self, session):
        t_prog, t_test = session.phase_bounds
        for i, t in enumerate(session.times):
            if t < t_prog or t >= t_test:
                assert session.drains[0][i] == pytest.approx(0.0)

    def test_gates_grounded_in_reset(self, session):
        _t_prog, t_test = session.phase_bounds
        for i, t in enumerate(session.times):
            if t >= t_test:
                assert session.gates[0][i] == 0.0

    def test_gates_hold_during_test(self, session):
        t_prog, t_test = session.phase_bounds
        for i, t in enumerate(session.times):
            if t_prog <= t < t_test:
                assert session.gates[0][i] == pytest.approx(5.2)

    def test_traces_equal_length(self, session):
        n = len(session.times)
        for trace in list(session.gates.values()) + list(session.beams.values()) + list(
            session.drains.values()
        ):
            assert len(trace) == n


class TestExhaustiveVerification:
    def test_all_16_configurations_of_2x2(self, model):
        """Paper Sec. 2.3: 'all configurations exhaustively verified'."""
        results = exhaustive_verification(
            lambda: make_xbar(model), PAPER_2X2_VOLTAGES, rows=2, cols=2
        )
        assert len(results) == 16
        assert all(results.values())

    def test_3x3_also_programs(self, model):
        results = exhaustive_verification(
            lambda: make_xbar(model, 3, 3), PAPER_2X2_VOLTAGES, rows=3, cols=3
        )
        assert len(results) == 512
        assert all(results.values())

    def test_invalid_voltages_fail_verification(self, model):
        """Voltages violating Fig. 4 cannot program the array."""
        from repro.crossbar.halfselect import ProgrammingVoltages

        bad = ProgrammingVoltages(v_hold=2.0, v_select=0.5)  # full select < Vpi
        results = exhaustive_verification(
            lambda: make_xbar(model), bad, rows=2, cols=2
        )
        # Only the empty configuration "passes" (nothing to program).
        passing = [targets for targets, ok in results.items() if ok]
        assert passing == [frozenset()]
