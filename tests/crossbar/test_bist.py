"""Tests for repro.crossbar.bist (defect mapping)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar.bist import (
    DefectMap,
    StuckMode,
    faulty_crossbar,
    run_bist,
    yield_with_defect_map,
)
from repro.crossbar.halfselect import solve_voltages
from repro.nemrelay.device import scaled_relay
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import SCALED_22NM_DEVICE
from repro.nemrelay.materials import AIR, POLYSILICON

MODEL = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)
VOLTAGES = solve_voltages([MODEL.pull_in], [MODEL.pull_out])


class TestFaultInjection:
    def test_stuck_open_never_conducts(self):
        xbar = faulty_crossbar(2, 2, MODEL, {(0, 0): StuckMode.STUCK_OPEN})
        xbar.relays[(0, 0)].apply_gate_voltage(2.0 * MODEL.pull_in)
        assert not xbar.relays[(0, 0)].is_on

    def test_stuck_closed_never_releases(self):
        xbar = faulty_crossbar(2, 2, MODEL, {(1, 1): StuckMode.STUCK_CLOSED})
        xbar.relays[(1, 1)].apply_gate_voltage(0.0)
        assert xbar.relays[(1, 1)].is_on

    def test_fault_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            faulty_crossbar(2, 2, MODEL, {(5, 5): StuckMode.STUCK_OPEN})


class TestBist:
    def test_clean_array_reports_clean(self):
        xbar = faulty_crossbar(4, 4, MODEL, {})
        defects = run_bist(xbar, VOLTAGES)
        assert defects.clean
        assert xbar.configuration() == set()  # left erased

    def test_locates_stuck_open(self):
        xbar = faulty_crossbar(4, 4, MODEL, {(2, 1): StuckMode.STUCK_OPEN})
        defects = run_bist(xbar, VOLTAGES)
        assert defects.stuck_open == {(2, 1)}
        assert not defects.stuck_closed

    def test_locates_stuck_closed(self):
        xbar = faulty_crossbar(4, 4, MODEL, {(0, 3): StuckMode.STUCK_CLOSED})
        defects = run_bist(xbar, VOLTAGES)
        assert defects.stuck_closed == {(0, 3)}
        assert not defects.stuck_open

    def test_mixed_faults(self):
        faults = {
            (0, 0): StuckMode.STUCK_OPEN,
            (1, 2): StuckMode.STUCK_CLOSED,
            (3, 3): StuckMode.STUCK_OPEN,
        }
        defects = run_bist(faulty_crossbar(4, 4, MODEL, faults), VOLTAGES)
        assert defects.stuck_open == {(0, 0), (3, 3)}
        assert defects.stuck_closed == {(1, 2)}
        assert defects.total == 3

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_bist_exactly_recovers_any_fault_set(self, data):
        """Property: the two-pattern BIST recovers every injected
        fault, for any fault set on a small array."""
        coords = [(r, c) for r in range(3) for c in range(3)]
        chosen = data.draw(st.lists(st.sampled_from(coords), max_size=5, unique=True))
        modes = data.draw(
            st.lists(st.sampled_from(list(StuckMode)), min_size=len(chosen),
                     max_size=len(chosen))
        )
        faults = dict(zip(chosen, modes))
        defects = run_bist(faulty_crossbar(3, 3, MODEL, faults), VOLTAGES)
        expected_open = {c for c, m in faults.items() if m is StuckMode.STUCK_OPEN}
        expected_closed = {c for c, m in faults.items() if m is StuckMode.STUCK_CLOSED}
        assert defects.stuck_open == expected_open
        assert defects.stuck_closed == expected_closed


class TestBistEdgeCases:
    def test_all_faulty_array(self):
        """Every crosspoint stuck: both patterns disagree everywhere,
        and the BIST must classify each relay, not crash."""
        faults = {
            (r, c): (StuckMode.STUCK_OPEN if (r + c) % 2 else
                     StuckMode.STUCK_CLOSED)
            for r in range(3) for c in range(3)
        }
        defects = run_bist(faulty_crossbar(3, 3, MODEL, faults), VOLTAGES)
        assert defects.total == 9
        expected_open = {c for c, m in faults.items()
                         if m is StuckMode.STUCK_OPEN}
        assert defects.stuck_open == expected_open

    def test_never_programmed_crossbar(self):
        """BIST on a factory-fresh array (no prior program/erase
        cycle): pattern A must program it from the erased state."""
        from repro.crossbar.array import RelayCrossbar
        from repro.nemrelay.device import NEMRelay

        xbar = RelayCrossbar(3, 3, lambda r, c: NEMRelay(MODEL))
        assert xbar.configuration() == set()
        defects = run_bist(xbar, VOLTAGES)
        assert defects.clean
        assert defects.rows == 3 and defects.cols == 3

    def test_single_crosspoint_array(self):
        defects = run_bist(
            faulty_crossbar(1, 1, MODEL, {(0, 0): StuckMode.STUCK_OPEN}),
            VOLTAGES)
        assert defects.stuck_open == {(0, 0)}


class TestDefectMapBounds:
    def test_run_bist_records_bounds(self):
        defects = run_bist(faulty_crossbar(4, 3, MODEL, {}), VOLTAGES)
        assert (defects.rows, defects.cols) == (4, 3)

    def test_usable_out_of_bounds_raises(self):
        defects = DefectMap(stuck_open=set(), stuck_closed=set(),
                            rows=2, cols=2)
        assert defects.usable((1, 1))
        with pytest.raises(ValueError, match="outside"):
            defects.usable((2, 0))
        with pytest.raises(ValueError, match="outside"):
            defects.usable((-1, 0))

    def test_legacy_unbounded_map_still_answers(self):
        defects = DefectMap(stuck_open={(0, 0)}, stuck_closed=set())
        assert not defects.usable((0, 0))
        assert defects.usable((99, 99))  # bounds unknown: no check

    def test_bounds_must_come_together(self):
        with pytest.raises(ValueError, match="together"):
            DefectMap(stuck_open=set(), stuck_closed=set(), rows=2)

    def test_fault_outside_bounds_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            DefectMap(stuck_open={(5, 5)}, stuck_closed=set(),
                      rows=2, cols=2)


class TestYieldWithDefects:
    def test_clean_map_accepts_everything(self):
        defects = DefectMap(stuck_open=set(), stuck_closed=set())
        assert yield_with_defect_map(defects, {(0, 0), (1, 1)})

    def test_required_stuck_open_rejects(self):
        defects = DefectMap(stuck_open={(0, 0)}, stuck_closed=set())
        assert not yield_with_defect_map(defects, {(0, 0)})

    def test_unwanted_stuck_closed_rejects(self):
        defects = DefectMap(stuck_open=set(), stuck_closed={(1, 1)})
        assert not yield_with_defect_map(defects, {(0, 0)})

    def test_wanted_stuck_closed_is_free_configuration(self):
        defects = DefectMap(stuck_open=set(), stuck_closed={(1, 1)})
        assert yield_with_defect_map(defects, {(0, 0), (1, 1)})
