"""Tests for repro.crossbar.programming_cost."""

import pytest

from repro.crossbar.halfselect import ProgrammingVoltages
from repro.crossbar.programming_cost import (
    DEMONSTRATED_RELIABLE_CYCLES,
    TYPICAL_LIFETIME_RECONFIGURATIONS,
    configuration_cost,
    endurance_margin,
)

VOLTAGES = ProgrammingVoltages(v_hold=0.85, v_select=0.15)


class TestConfigurationCost:
    def test_row_steps_cover_all_relays(self):
        cost = configuration_cost(
            num_relays=1000, rows_per_array=10, switching_time=2e-9, voltages=VOLTAGES
        )
        assert cost.row_steps == 100

    def test_time_scales_with_rows(self):
        slow = configuration_cost(2000, 10, 2e-9, VOLTAGES)
        fast = configuration_cost(1000, 10, 2e-9, VOLTAGES)
        assert slow.total_time == pytest.approx(2 * fast.total_time)

    def test_parallel_arrays_cut_time_not_energy(self):
        serial = configuration_cost(1000, 10, 2e-9, VOLTAGES, arrays_in_parallel=1)
        parallel = configuration_cost(1000, 10, 2e-9, VOLTAGES, arrays_in_parallel=10)
        assert parallel.total_time == pytest.approx(serial.total_time / 10)
        assert parallel.total_energy == pytest.approx(serial.total_energy)

    def test_holding_costs_no_dc_power(self):
        cost = configuration_cost(1000, 10, 2e-9, VOLTAGES)
        assert cost.hold_power == 0.0

    def test_million_switch_fpga_configures_in_microseconds(self):
        """Sanity at the paper's fabric scale: millions of switches
        with per-tile parallel programming configure quickly."""
        cost = configuration_cost(
            num_relays=2_000_000, rows_per_array=32, switching_time=2e-9,
            voltages=VOLTAGES, arrays_in_parallel=1000,
        )
        assert cost.total_time < 1e-3  # under a millisecond
        assert cost.total_energy < 1e-6  # under a microjoule

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            configuration_cost(0, 10, 1e-9, VOLTAGES)
        with pytest.raises(ValueError):
            configuration_cost(10, 10, 0.0, VOLTAGES)


class TestEndurance:
    def test_paper_margin_is_about_a_million(self):
        report = endurance_margin()
        assert report.actuations_per_relay == 2 * TYPICAL_LIFETIME_RECONFIGURATIONS
        assert report.margin == pytest.approx(
            DEMONSTRATED_RELIABLE_CYCLES / 1000.0
        )
        assert report.sufficient
        assert report.margin > 1e5

    def test_insufficient_when_overused(self):
        # Using relays as logic (toggling every cycle) burns endurance
        # in seconds — the paper's reason NOT to build relay LUTs.
        report = endurance_margin(reconfigurations=10**10, actuations_per_reconfig=1)
        assert not report.sufficient

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            endurance_margin(reconfigurations=-1)
        with pytest.raises(ValueError):
            endurance_margin(reliable_cycles=0.0)
