"""Tests for repro.crossbar.halfselect (paper Sec. 2.2, Fig. 4)."""

import pytest

from repro.crossbar.array import uniform_crossbar
from repro.crossbar.halfselect import (
    HalfSelectProgrammer,
    PAPER_2X2_VOLTAGES,
    ProgrammingVoltages,
    solve_voltages,
)
from repro.nemrelay.device import CROSSBAR_MEASURED_CIRCUIT
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM
from repro.nemrelay.variation import FIG6_VARIATION_SPEC, sample_population


@pytest.fixture
def model():
    return ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


@pytest.fixture
def programmer(model):
    xbar = uniform_crossbar(2, 2, model, circuit=CROSSBAR_MEASURED_CIRCUIT)
    return HalfSelectProgrammer(xbar, PAPER_2X2_VOLTAGES)


class TestProgrammingVoltages:
    def test_paper_point_values(self):
        # Paper Sec. 2.3: Vhold = 5.2 V, Vselect = 0.8 V.
        assert PAPER_2X2_VOLTAGES.v_hold == pytest.approx(5.2)
        assert PAPER_2X2_VOLTAGES.v_select == pytest.approx(0.8)

    def test_derived_levels(self):
        assert PAPER_2X2_VOLTAGES.half_select == pytest.approx(6.0)
        assert PAPER_2X2_VOLTAGES.full_select == pytest.approx(6.8)

    def test_valid_for_paper_device(self, model):
        assert PAPER_2X2_VOLTAGES.is_valid(model.pull_in, model.pull_out)

    def test_fig4_constraints_encoded(self):
        v = ProgrammingVoltages(v_hold=5.0, v_select=1.0)
        # Vpo < Vhold < Vpi; Vpo < Vhold+Vs < Vpi; Vhold+2Vs > Vpi.
        assert v.is_valid(vpi=6.5, vpo=3.0)
        assert not v.is_valid(vpi=5.5, vpo=3.0)  # half-select pulls in
        assert not v.is_valid(vpi=6.5, vpo=5.5)  # hold releases
        assert not v.is_valid(vpi=7.5, vpo=3.0)  # full select too weak

    def test_rejects_nonpositive_levels(self):
        with pytest.raises(ValueError):
            ProgrammingVoltages(v_hold=0.0, v_select=1.0)

    def test_margins(self):
        v = ProgrammingVoltages(v_hold=5.0, v_select=1.0)
        m = v.margins(vpi_min=6.5, vpi_max=6.8, vpo_max=3.0)
        assert m.hold_above_vpo == pytest.approx(2.0)
        assert m.half_select_below_vpi == pytest.approx(0.5)
        assert m.full_select_above_vpi == pytest.approx(0.2)
        assert m.worst == pytest.approx(0.2)
        assert m.all_positive


class TestSolveVoltages:
    def test_single_device(self, model):
        solved = solve_voltages([model.pull_in], [model.pull_out])
        assert solved is not None
        assert solved.is_valid(model.pull_in, model.pull_out)

    def test_balanced_margins(self):
        solved = solve_voltages([6.0, 6.4], [3.0])
        m = solved.margins(6.0, 6.4, 3.0)
        # The solver equalises the three margins.
        assert m.hold_above_vpo == pytest.approx(m.half_select_below_vpi, rel=1e-9)
        assert m.half_select_below_vpi == pytest.approx(m.full_select_above_vpi, rel=1e-9)

    def test_fig6_population_solvable(self):
        pop = sample_population(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=FIG6_VARIATION_SPEC
        )
        solved = solve_voltages(list(pop.vpi), list(pop.vpo))
        assert solved is not None
        assert all(solved.is_valid(vpi, vpo) for vpi, vpo in zip(pop.vpi, pop.vpo))

    def test_infeasible_population_returns_none(self):
        # Vpi spread exceeds the smallest window: no valid point.
        assert solve_voltages([5.0, 7.0], [4.8]) is None

    def test_guard_tightens(self):
        loose = solve_voltages([6.0, 6.4], [3.0])
        assert loose is not None
        assert solve_voltages([6.0, 6.4], [3.0], guard=10.0) is None

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            solve_voltages([], [3.0])


class TestHalfSelectProgrammer:
    def test_programs_single_target(self, programmer):
        assert programmer.program({(0, 1)}) == {(0, 1)}
        assert programmer.verify({(0, 1)})

    def test_programs_diagonal(self, programmer):
        # Fig. 5b/5c exercise both diagonal configurations.
        assert programmer.program({(0, 0), (1, 1)}) == {(0, 0), (1, 1)}

    def test_programs_full_array(self, programmer):
        targets = {(r, c) for r in range(2) for c in range(2)}
        assert programmer.program(targets) == targets

    def test_reprogramming_after_erase(self, programmer):
        programmer.program({(0, 0)})
        assert programmer.program({(1, 0)}) == {(1, 0)}

    def test_half_selected_relays_hold_state(self, programmer):
        """Programming row 1 must not disturb row 0 (the half-select
        guarantee)."""
        programmer.program({(0, 0)})
        programmer.program({(1, 1)}, erase_first=False)
        assert programmer.crossbar.configuration() == {(0, 0), (1, 1)}

    def test_erase_opens_everything(self, programmer):
        programmer.program({(0, 0), (1, 1)})
        programmer.erase()
        assert programmer.crossbar.configuration() == set()

    def test_out_of_range_target_rejected(self, programmer):
        with pytest.raises(ValueError):
            programmer.program({(5, 0)})

    def test_history_records_steps(self, programmer):
        programmer.program({(0, 0)})
        assert len(programmer.history) >= 3  # erase, hold, select, hold

    def test_ends_in_hold_state(self, programmer):
        programmer.program({(0, 0)})
        assert programmer.crossbar.row_voltages == [5.2, 5.2]
        assert programmer.crossbar.col_voltages == [0.0, 0.0]
