"""Tests for repro.crossbar.margins (Fig. 6 yield analysis)."""

import pytest

from repro.crossbar.margins import (
    analyze_population,
    array_yield,
    margin_histogram_summary,
    required_sigma_for_yield,
    yield_vs_array_size,
)
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM
from repro.nemrelay.variation import FIG6_VARIATION_SPEC, VariationSpec, sample_population


@pytest.fixture(scope="module")
def fig6_pop():
    return sample_population(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=FIG6_VARIATION_SPEC
    )


class TestAnalyzePopulation:
    def test_fig6_population_feasible(self, fig6_pop):
        analysis = analyze_population(fig6_pop)
        assert analysis.feasible
        assert analysis.margins.all_positive

    def test_margins_are_small(self, fig6_pop):
        # Paper: "the noise margins ... are very small".
        analysis = analyze_population(fig6_pop)
        assert analysis.margins.worst < 1.0  # volts

    def test_guard_can_make_infeasible(self, fig6_pop):
        analysis = analyze_population(fig6_pop, guard=5.0)
        assert not analysis.feasible


class TestArrayYield:
    def test_small_arrays_yield_high(self):
        y = array_yield(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL, array_size=4,
            spec=FIG6_VARIATION_SPEC, trials=40,
        )
        assert y > 0.9

    def test_yield_decreases_with_array_size(self):
        curve = yield_vs_array_size(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL,
            sizes=[4, 64, 1024],
            spec=FIG6_VARIATION_SPEC,
            trials=25,
        )
        assert curve[0] >= curve[-1]

    def test_fixed_voltages_yield(self, fig6_pop):
        analysis = analyze_population(fig6_pop)
        y = array_yield(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL, array_size=16,
            spec=FIG6_VARIATION_SPEC, trials=25, voltages=analysis.voltages,
        )
        assert 0.0 <= y <= 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            array_yield(POLY_PLATINUM, FABRICATED_DEVICE, OIL, 0, FIG6_VARIATION_SPEC)
        with pytest.raises(ValueError):
            array_yield(
                POLY_PLATINUM, FABRICATED_DEVICE, OIL, 4, FIG6_VARIATION_SPEC, trials=0
            )


class TestRequiredSigma:
    def test_returns_scale_in_unit_interval(self):
        scale = required_sigma_for_yield(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL,
            array_size=256, target_yield=0.9,
            spec=FIG6_VARIATION_SPEC, trials=15,
        )
        assert 0.0 <= scale <= 1.0

    def test_tiny_array_supports_full_spec(self):
        scale = required_sigma_for_yield(
            POLY_PLATINUM, FABRICATED_DEVICE, OIL,
            array_size=2, target_yield=0.8,
            spec=FIG6_VARIATION_SPEC, trials=15,
        )
        assert scale == pytest.approx(1.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            required_sigma_for_yield(
                POLY_PLATINUM, FABRICATED_DEVICE, OIL, 4, target_yield=1.5
            )


class TestSummary:
    def test_summary_fields(self, fig6_pop):
        s = margin_histogram_summary(fig6_pop)
        assert s["count"] == 100
        assert s["feasible"]
        assert s["vpo_max"] < s["v_hold"] < s["vpi_min"]
        assert s["v_hold"] + 2 * s["v_select"] > s["vpi_max"]
