"""Tests for repro.crossbar.array."""

import pytest

from repro.crossbar.array import RelayCrossbar, uniform_crossbar
from repro.nemrelay.device import CROSSBAR_MEASURED_CIRCUIT, NEMRelay
from repro.nemrelay.electrostatics import ActuationModel
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM


@pytest.fixture
def model():
    return ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


@pytest.fixture
def xbar(model):
    return uniform_crossbar(2, 2, model, circuit=CROSSBAR_MEASURED_CIRCUIT)


class TestConstruction:
    def test_builds_all_relays(self, xbar):
        assert len(xbar.relays) == 4
        assert (1, 1) in xbar.relays

    def test_rejects_empty(self, model):
        with pytest.raises(ValueError):
            RelayCrossbar(0, 2, lambda r, c: NEMRelay(model))

    def test_per_device_factory_variation(self, model):
        calls = []
        def factory(r, c):
            calls.append((r, c))
            return NEMRelay(model)
        RelayCrossbar(2, 3, factory)
        assert sorted(calls) == [(r, c) for r in range(2) for c in range(3)]


class TestLineVoltages:
    def test_vgs_is_row_minus_column(self, xbar, model):
        vpi = model.pull_in
        # Only relay (0, 0) sees Vgs above Vpi.
        xbar.apply_line_voltages([0.7 * vpi, 0.0], [-0.5 * vpi, 0.0])
        assert xbar.state(0, 0).value == "pulled-in"
        assert xbar.configuration() == {(0, 0)}

    def test_wrong_vector_lengths_rejected(self, xbar):
        with pytest.raises(ValueError):
            xbar.apply_line_voltages([0.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            xbar.apply_line_voltages([0.0, 0.0], [0.0])

    def test_reset_all(self, xbar, model):
        xbar.apply_line_voltages([1.2 * model.pull_in] * 2, [0.0, 0.0])
        assert len(xbar.configuration()) == 4
        xbar.reset_all()
        assert xbar.configuration() == set()

    def test_configuration_matrix(self, xbar, model):
        xbar.apply_line_voltages([1.2 * model.pull_in, 0.0], [0.0, 0.0])
        matrix = xbar.configuration_matrix()
        assert matrix == [[True, True], [False, False]]


class TestRouting:
    def test_closed_relay_routes_signal(self, xbar, model):
        xbar.apply_line_voltages([1.2 * model.pull_in, 0.0], [0.0, 0.0])
        xbar.relays[(0, 1)].apply_gate_voltage(0.0)  # open one back up
        out = xbar.route_signals([0.5, -0.5])
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(0.0)  # no closed relay on row 1

    def test_two_closed_relays_mix_resistively(self, xbar, model):
        for coord in ((0, 0), (0, 1)):
            xbar.relays[coord].apply_gate_voltage(1.2 * model.pull_in)
        out = xbar.route_signals([0.6, 0.0])
        assert out[0] == pytest.approx(0.3)  # equal Ron average

    def test_signal_count_checked(self, xbar):
        with pytest.raises(ValueError):
            xbar.route_signals([0.5])

    def test_path_resistance(self, xbar, model):
        assert xbar.path_resistance(0, 0) == float("inf")
        xbar.relays[(0, 0)].apply_gate_voltage(1.2 * model.pull_in)
        assert xbar.path_resistance(0, 0) == pytest.approx(100e3)
