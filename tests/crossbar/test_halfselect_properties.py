"""Hypothesis property test: half-select margins under device variation.

For any sampled relay population whose (Vpi, Vpo) spread admits an
operating point at all, the point `solve_voltages` returns must keep
the paper Fig. 4 band intact for *every* relay in the population:

    Vpo_max < Vhold < Vhold + Vselect < Vpi_min      (hold window)
    Vhold + 2 Vselect > Vpi_max                      (selected pulls in)

Populations are drawn by varying the Monte-Carlo seed and the process
sigmas around the Fig. 6 calibration; `derandomize=True` keeps the
example stream reproducible.
"""

from hypothesis import given, settings, strategies as st

from repro.crossbar.halfselect import solve_voltages
from repro.nemrelay.geometry import FABRICATED_DEVICE
from repro.nemrelay.materials import OIL, POLY_PLATINUM
from repro.nemrelay.variation import (
    FIG6_VARIATION_SPEC,
    VariationSpec,
    sample_population,
)


@st.composite
def populations(draw):
    """A sampled relay population around the Fig. 6 process corner."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    count = draw(st.integers(min_value=2, max_value=40))
    # Scale the calibrated sigmas from near-ideal (tight, easily
    # programmable) to 2x the measured spread (often infeasible) so
    # both solver outcomes are exercised.
    sigma_scale = draw(st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]))
    spec = VariationSpec(
        sigma_length=FIG6_VARIATION_SPEC.sigma_length * sigma_scale,
        sigma_thickness=FIG6_VARIATION_SPEC.sigma_thickness * sigma_scale,
        sigma_gap=FIG6_VARIATION_SPEC.sigma_gap * sigma_scale,
        sigma_contact_gap=FIG6_VARIATION_SPEC.sigma_contact_gap * sigma_scale,
        mean_adhesion=FIG6_VARIATION_SPEC.mean_adhesion,
        sigma_adhesion=FIG6_VARIATION_SPEC.sigma_adhesion * sigma_scale,
    )
    return sample_population(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=count, spec=spec,
        seed=seed,
    )


class TestHalfSelectMarginProperties:
    @given(pop=populations())
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_solved_point_preserves_band_for_every_relay(self, pop):
        solved = solve_voltages(list(pop.vpi), list(pop.vpo))
        if solved is None:
            return  # infeasible population: nothing to validate
        # The band, stated against the population extremes — implies
        # validity for every individual relay.
        assert pop.vpo_max < solved.v_hold
        assert solved.v_hold < solved.half_select
        assert solved.half_select < pop.vpi_min
        assert solved.full_select > pop.vpi_max

    @given(pop=populations())
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_solved_point_valid_per_relay_and_margins_positive(self, pop):
        solved = solve_voltages(list(pop.vpi), list(pop.vpo))
        if solved is None:
            return
        for vpi, vpo in zip(pop.vpi, pop.vpo):
            assert solved.is_valid(float(vpi), float(vpo))
        margins = solved.margins(pop.vpi_min, pop.vpi_max, pop.vpo_max)
        assert margins.all_positive

    @given(pop=populations(), guard=st.sampled_from([0.0, 0.05, 0.2]))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_guard_only_shrinks_feasibility(self, pop, guard):
        """A guarded solve never succeeds where the unguarded one
        failed, and a guarded success still clears the guard."""
        free = solve_voltages(list(pop.vpi), list(pop.vpo))
        guarded = solve_voltages(list(pop.vpi), list(pop.vpo), guard=guard)
        if guarded is not None:
            assert free is not None
            margins = guarded.margins(pop.vpi_min, pop.vpi_max, pop.vpo_max)
            assert margins.worst > guard

    @given(pop=populations())
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_infeasible_population_never_solves(self, pop):
        """The paper's feasibility rule is honoured: when some relay's
        hysteresis window is narrower than the Vpi spread, no valid
        (Vhold, Vselect) exists and the solver must say so."""
        if not pop.half_select_feasible():
            # Necessary condition violated -> solver must return None
            # (balanced margin m = (2 Vpi_min - Vpo_max - Vpi_max) / 4
            # can still be positive in edge cases; validate via is_valid
            # instead of asserting None outright).
            solved = solve_voltages(list(pop.vpi), list(pop.vpo))
            if solved is not None:
                assert all(
                    solved.is_valid(float(vpi), float(vpo))
                    for vpi, vpo in zip(pop.vpi, pop.vpo)
                )
