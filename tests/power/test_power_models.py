"""Tests for repro.power.dynamic / leakage / breakdown (Fig. 9)."""

import pytest

from repro.arch.params import ArchParams
from repro.arch.tile import build_inventory
from repro.circuits.ptm import PTM_22NM
from repro.core.variants import baseline_variant, optimized_nem_variant
from repro.power.breakdown import (
    PAPER_DYNAMIC_BREAKDOWN,
    PAPER_LEAKAGE_BREAKDOWN,
    compare_to_paper,
    fold_dynamic,
    fold_leakage,
    format_table,
    percentages,
)
from repro.power.dynamic import DynamicSpec, dynamic_power, total_dynamic
from repro.power.leakage import (
    cmos_switch_leakage,
    fpga_leakage,
    sram_bit_leakage,
    tile_leakage,
    total_leakage,
)

ARCH = ArchParams(channel_width=48)


@pytest.fixture(scope="module")
def baseline():
    return baseline_variant(ARCH)


@pytest.fixture(scope="module")
def nem_opt():
    return optimized_nem_variant(ARCH, downsize=8.0)


class TestLeakage:
    def test_tile_leakage_categories(self, baseline):
        breakdown = tile_leakage(baseline.inventory, baseline.leakage_spec())
        assert set(breakdown) == {
            "routing_buffers",
            "routing_pass_transistors",
            "routing_srams",
            "luts",
            "other",
        }
        assert all(v >= 0 for v in breakdown.values())

    def test_buffers_dominate_baseline(self, baseline):
        # Fig. 9: routing buffers ~ 70% of leakage.
        breakdown = tile_leakage(baseline.inventory, baseline.leakage_spec())
        pct = percentages(fold_leakage(breakdown))
        assert pct["routing_buffers"] > 50.0

    def test_nem_kills_switch_and_sram_leakage(self, nem_opt):
        breakdown = tile_leakage(nem_opt.inventory, nem_opt.leakage_spec())
        assert breakdown["routing_pass_transistors"] == 0.0
        assert breakdown["routing_srams"] == 0.0

    def test_nem_total_much_lower(self, baseline, nem_opt):
        base = total_leakage(tile_leakage(baseline.inventory, baseline.leakage_spec()))
        nem = total_leakage(tile_leakage(nem_opt.inventory, nem_opt.leakage_spec()))
        assert base / nem > 5.0

    def test_fpga_leakage_scales_with_tiles(self, baseline):
        one = fpga_leakage(baseline.inventory, baseline.leakage_spec(), 1)
        many = fpga_leakage(baseline.inventory, baseline.leakage_spec(), 64)
        assert total_leakage(many) == pytest.approx(64 * total_leakage(one))

    def test_rejects_zero_tiles(self, baseline):
        with pytest.raises(ValueError):
            fpga_leakage(baseline.inventory, baseline.leakage_spec(), 0)

    def test_unit_leakages_positive(self):
        t = PTM_22NM.transistor
        assert cmos_switch_leakage(t) > 0
        assert sram_bit_leakage(t) > 0


class TestDynamicModel:
    @pytest.fixture(scope="class")
    def parts(self):
        from repro.netlist.generate import GeneratorParams, generate
        from repro.vpr.flow import run_flow
        from repro.vpr.timing import analyze_timing
        from repro.power.activity import estimate_activities

        netlist = generate(GeneratorParams("dyn", num_luts=80, seed=4))
        flow = run_flow(netlist, ARCH)
        assert flow.success
        variant = baseline_variant(ARCH)
        report = analyze_timing(flow.placement, flow.routing, flow.graph, variant.fabric())
        activities = estimate_activities(netlist)
        return flow, variant, report, activities

    def test_categories_present(self, parts):
        flow, variant, report, activities = parts
        power = dynamic_power(
            flow.netlist, report.net_delays, activities, variant.dynamic_spec(),
            frequency=1e9, num_tiles=100,
        )
        assert set(power) == {
            "wire_interconnect", "routing_buffers", "routing_switches",
            "luts", "local_interconnect", "clocking",
        }
        assert all(v > 0 for v in power.values())

    def test_linear_in_frequency(self, parts):
        flow, variant, report, activities = parts
        p1 = dynamic_power(flow.netlist, report.net_delays, activities,
                           variant.dynamic_spec(), frequency=1e9, num_tiles=100)
        p2 = dynamic_power(flow.netlist, report.net_delays, activities,
                           variant.dynamic_spec(), frequency=2e9, num_tiles=100)
        assert total_dynamic(p2) == pytest.approx(2 * total_dynamic(p1))

    def test_rejects_nonpositive_frequency(self, parts):
        flow, variant, report, activities = parts
        with pytest.raises(ValueError):
            dynamic_power(flow.netlist, report.net_delays, activities,
                          variant.dynamic_spec(), frequency=0.0, num_tiles=100)

    def test_higher_activity_more_power(self, parts):
        flow, variant, report, activities = parts
        doubled = {k: min(2 * v, 2.0) for k, v in activities.items()}
        p1 = dynamic_power(flow.netlist, report.net_delays, activities,
                           variant.dynamic_spec(), frequency=1e9, num_tiles=100)
        p2 = dynamic_power(flow.netlist, report.net_delays, doubled,
                           variant.dynamic_spec(), frequency=1e9, num_tiles=100)
        assert p2["wire_interconnect"] > p1["wire_interconnect"]
        # Clock power does not depend on data activity.
        assert p2["clocking"] == pytest.approx(p1["clocking"])


class TestBreakdownReporting:
    def test_fold_dynamic_partitions_total(self):
        detailed = {
            "wire_interconnect": 4.0, "routing_buffers": 3.0,
            "routing_switches": 0.5, "luts": 1.0,
            "local_interconnect": 1.0, "clocking": 0.5,
        }
        folded = fold_dynamic(detailed)
        assert sum(folded.values()) == pytest.approx(sum(detailed.values()))

    def test_fold_leakage_partitions_total(self):
        detailed = {
            "routing_buffers": 7.0, "routing_srams": 1.2,
            "routing_pass_transistors": 1.0, "luts": 0.5, "other": 0.3,
        }
        folded = fold_leakage(detailed)
        assert sum(folded.values()) == pytest.approx(sum(detailed.values()))

    def test_percentages_sum_to_100(self):
        pct = percentages({"a": 1.0, "b": 3.0})
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_percentages_of_empty(self):
        assert percentages({"a": 0.0}) == {"a": 0.0}

    def test_paper_references_sum_to_100(self):
        assert sum(PAPER_DYNAMIC_BREAKDOWN.values()) == pytest.approx(100.0)
        assert sum(PAPER_LEAKAGE_BREAKDOWN.values()) == pytest.approx(100.0)

    def test_compare_to_paper(self):
        measured = {"routing_buffers": 65.0}
        cmp = compare_to_paper(measured, PAPER_LEAKAGE_BREAKDOWN)
        assert cmp["routing_buffers"]["abs_error_pct"] == pytest.approx(5.0)

    def test_format_table_contains_rows(self):
        text = format_table({"x": 1.0, "y": 3.0}, "T")
        assert "x" in text and "y" in text and "total" in text
