"""Tests for repro.power.activity."""

import pytest

from repro.netlist.core import Netlist
from repro.netlist.generate import GeneratorParams, generate
from repro.power.activity import ActivityModel, average_activity, estimate_activities


@pytest.fixture(scope="module")
def circuit():
    return generate(GeneratorParams("act", num_luts=100, ff_fraction=0.3, seed=5))


class TestEstimateActivities:
    def test_every_driver_has_density(self, circuit):
        densities = estimate_activities(circuit)
        for lut in circuit.luts:
            assert lut.name in densities
        for pi in circuit.inputs:
            assert pi.name in densities
        for ff in circuit.ffs:
            assert ff.name in densities

    def test_pi_density_is_model_value(self, circuit):
        model = ActivityModel(input_activity=0.3)
        densities = estimate_activities(circuit, model)
        for pi in circuit.inputs:
            assert densities[pi.name] == pytest.approx(0.3)

    def test_densities_positive_and_bounded(self, circuit):
        densities = estimate_activities(circuit)
        assert all(0 < d <= 2.0 for d in densities.values())

    def test_logic_attenuates(self, circuit):
        """Deep LUTs have lower density than the primary inputs."""
        densities = estimate_activities(circuit)
        model = ActivityModel()
        deep = [densities[lut.name] for lut in circuit.luts]
        assert min(deep) < model.input_activity

    def test_register_attenuation(self):
        n = Netlist("r")
        n.add_input("a")
        n.add_lut("l", ["a"])
        n.add_ff("f", "l")
        n.add_output("o", "f")
        densities = estimate_activities(n)
        assert densities["f"] < densities["l"]

    def test_sequential_loop_converges(self):
        n = Netlist("loop")
        n.add_input("a")
        n.add_lut("l", ["a", "f"])
        n.add_ff("f", "l")
        n.add_output("o", "f")
        densities = estimate_activities(n)
        assert 0 < densities["f"] < 1.0

    def test_higher_input_activity_raises_everything(self, circuit):
        low = estimate_activities(circuit, ActivityModel(input_activity=0.1))
        high = estimate_activities(circuit, ActivityModel(input_activity=0.4))
        assert all(high[k] >= low[k] for k in low)

    def test_average_activity(self, circuit):
        avg = average_activity(circuit)
        assert 0 < avg < 1.0

    def test_rejects_bad_model(self):
        with pytest.raises(ValueError):
            ActivityModel(input_activity=0.0)
        with pytest.raises(ValueError):
            ActivityModel(logic_attenuation=1.5)
