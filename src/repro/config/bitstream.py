"""From routed design to relay configuration ("bitstream").

The missing link the paper's two halves imply: Sec. 3 routes
applications over relay switches, Sec. 2 shows how relay arrays are
programmed.  This module connects them:

1. `extract_bitstream` walks a routed design and lists every
   programmable switch (RR-graph edge) that must conduct — the
   relay-FPGA equivalent of an SRAM bitstream;
2. `plan_tile_arrays` arranges each tile's switches into half-select
   crossbar arrays (gate rows x source columns);
3. `program_fabric` actually drives `RelayCrossbar` instances through
   the half-select protocol for every tile and verifies that exactly
   the required relays closed.

The result is an end-to-end demonstration that a placed-and-routed
application can be configured on the relay fabric with three voltage
levels and no SRAM.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..crossbar.array import RelayCrossbar
from ..crossbar.halfselect import HalfSelectProgrammer, ProgrammingVoltages, solve_voltages
from ..fabric import KIND_HWIRE, FabricIR, SwitchKind, as_fabric
from ..nemrelay.device import NEMRelay
from ..nemrelay.electrostatics import ActuationModel
from ..nemrelay.geometry import SCALED_22NM_DEVICE
from ..nemrelay.materials import AIR, POLYSILICON
from ..obs import get_registry, get_tracer
from ..vpr.route import RoutingResult

Edge = Tuple[int, int]
Tile = Tuple[int, int]


@dataclasses.dataclass
class Bitstream:
    """The set of relay switches a routed design turns on.

    Attributes:
        switches_by_tile: Tile -> sorted list of conducting RR edges
            (u, v); each edge is one relay crosspoint.
        net_of_edge: Edge -> net name (for diagnostics).
    """

    switches_by_tile: Dict[Tile, List[Edge]]
    net_of_edge: Dict[Edge, str]

    @property
    def total_switches(self) -> int:
        return sum(len(edges) for edges in self.switches_by_tile.values())

    @property
    def tiles(self) -> List[Tile]:
        return sorted(self.switches_by_tile)

    def utilization(self, switches_per_tile: int) -> float:
        """Fraction of fabric relays conducting, given the per-tile
        inventory count."""
        if switches_per_tile <= 0:
            raise ValueError("switches_per_tile must be positive")
        if not self.switches_by_tile:
            return 0.0
        return self.total_switches / (len(self.switches_by_tile) * switches_per_tile)


def _owning_tile(ir: FabricIR, u: int, v: int) -> Tile:
    """Attribute a programmable edge to a tile (for array grouping).

    Pin edges belong to the pin's tile; wire-wire switches to the tile
    at the downstream wire's origin (clamped to the grid).
    """
    kind, xs, ys = ir.kind, ir.xs, ir.ys
    if kind[v] < KIND_HWIRE:  # pins and collectors: the pin's tile
        return (int(xs[v]), int(ys[v]))
    if kind[u] < KIND_HWIRE:
        return (int(xs[u]), int(ys[u]))
    x = min(int(xs[v]), ir.nx - 1)
    y = min(int(ys[v]), ir.ny - 1)
    return (x, y)


def extract_bitstream(routing: RoutingResult, graph: FabricIR) -> Bitstream:
    """List every conducting switch of a routed design.

    An edge is a relay iff the IR's shared switch-kind table classifies
    it as one (OPIN->wire, wire->wire, wire->IPIN); SOURCE->OPIN and
    IPIN->SINK hops classify `SwitchKind.NONE` (hard-wired).
    """
    ir = as_fabric(graph)
    switches: Dict[Tile, Set[Edge]] = {}
    net_of_edge: Dict[Edge, str] = {}
    for name, tree in routing.trees.items():
        for node, parent in tree.parent.items():
            if parent < 0:
                continue
            if ir.switch_kind_between(parent, node) is SwitchKind.NONE:
                continue
            edge = (parent, node)
            tile = _owning_tile(ir, parent, node)
            switches.setdefault(tile, set()).add(edge)
            net_of_edge[edge] = name
    return Bitstream(
        switches_by_tile={t: sorted(s) for t, s in switches.items()},
        net_of_edge=net_of_edge,
    )


@dataclasses.dataclass
class TileArrayPlan:
    """Half-select array layout for one tile's conducting switches.

    Attributes:
        tile: Tile coordinate.
        rows / cols: Array dimensions.
        targets: Crosspoints to pull in.
        edge_of_target: Crosspoint -> RR edge it implements.
    """

    tile: Tile
    rows: int
    cols: int
    targets: Set[Tuple[int, int]]
    edge_of_target: Dict[Tuple[int, int], Edge]


def plan_tile_arrays(bitstream: Bitstream, max_rows: int = 32) -> List[TileArrayPlan]:
    """Arrange each tile's conducting switches into near-square arrays.

    Real layouts fix the crosspoint assignment at design time; for the
    demonstration we enumerate each tile's conducting switches row-major
    into an array big enough to hold them (bounded row count keeps the
    programming-line swing realistic).
    """
    if max_rows < 1:
        raise ValueError("max_rows must be positive")
    plans: List[TileArrayPlan] = []
    for tile, edges in bitstream.switches_by_tile.items():
        count = len(edges)
        rows = min(max_rows, max(1, math.isqrt(count)))
        cols = math.ceil(count / rows)
        targets: Set[Tuple[int, int]] = set()
        edge_of_target: Dict[Tuple[int, int], Edge] = {}
        for index, edge in enumerate(edges):
            coord = (index // cols, index % cols)
            targets.add(coord)
            edge_of_target[coord] = edge
        plans.append(
            TileArrayPlan(
                tile=tile, rows=rows, cols=cols, targets=targets,
                edge_of_target=edge_of_target,
            )
        )
    return plans


@dataclasses.dataclass
class ProgrammingReport:
    """Outcome of configuring the whole fabric.

    Attributes:
        arrays_programmed: Tile arrays configured.
        relays_closed: Total relays pulled in.
        failures: Tiles whose verification failed (must be empty).
        row_steps: Half-select row operations issued fabric-wide.
    """

    arrays_programmed: int
    relays_closed: int
    failures: List[Tile]
    row_steps: int

    @property
    def success(self) -> bool:
        return not self.failures


def program_fabric(
    bitstream: Bitstream,
    model: Optional[ActuationModel] = None,
    voltages: Optional[ProgrammingVoltages] = None,
    max_rows: int = 32,
) -> ProgrammingReport:
    """Configure every tile's relay array through half-select.

    Each tile's plan is programmed on a real `RelayCrossbar` of
    22nm-scaled relays and read back; a mismatch counts the tile as a
    failure (none are expected — this is the executable proof that the
    Sec. 2 programming scheme can carry a Sec. 3 routed design).
    """
    if model is None:
        model = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)
    if voltages is None:
        voltages = solve_voltages([model.pull_in], [model.pull_out])
        assert voltages is not None
    plans = plan_tile_arrays(bitstream, max_rows=max_rows)
    with get_tracer().span(
        "crossbar.program_fabric",
        tiles=len(plans),
        switches=bitstream.total_switches,
        v_hold=voltages.v_hold,
        v_select=voltages.v_select,
    ) as tspan:
        failures: List[Tile] = []
        relays_closed = 0
        row_steps = 0
        margin_worst: Optional[float] = None
        for plan in plans:
            crossbar = RelayCrossbar(plan.rows, plan.cols, lambda r, c: NEMRelay(model))
            programmer = HalfSelectProgrammer(crossbar, voltages)
            configured = programmer.program(plan.targets)
            row_steps += len({r for (r, _c) in plan.targets}) + 2  # + erase, hold
            margins = programmer.population_margins()
            if margin_worst is None or margins.worst < margin_worst:
                margin_worst = margins.worst
            if configured != plan.targets:
                failures.append(plan.tile)
            else:
                relays_closed += len(configured)
        tspan.set_many(
            arrays_programmed=len(plans),
            relays_closed=relays_closed,
            row_steps=row_steps,
            failures=len(failures),
            success=not failures,
            margin_worst_v=margin_worst,
        )
        registry = get_registry()
        registry.counter("crossbar.fabric_programs").inc()
        registry.counter("crossbar.fabric_failures").inc(len(failures))
        registry.gauge("crossbar.fabric_row_steps").set(row_steps)
        return ProgrammingReport(
            arrays_programmed=len(plans),
            relays_closed=relays_closed,
            failures=failures,
            row_steps=row_steps,
        )


def verify_bitstream_connectivity(
    bitstream: Bitstream, routing: RoutingResult, graph: FabricIR
) -> bool:
    """Cross-check: the conducting switches reconstruct every net.

    Walking only bitstream edges (plus the hops the IR's switch table
    classifies `SwitchKind.NONE`, i.e. hard-wired SOURCE/OPIN and
    IPIN/SINK) from each net's source must reach all its sinks.
    """
    ir = as_fabric(graph)
    on_edges: Set[Edge] = set()
    for edges in bitstream.switches_by_tile.values():
        on_edges.update(edges)
    for name, tree in routing.trees.items():
        for sink in tree.sink_nodes:
            node = sink
            while tree.parent[node] >= 0:
                parent = tree.parent[node]
                hardwired = (
                    ir.switch_kind_between(parent, node) is SwitchKind.NONE
                )
                if not hardwired and (parent, node) not in on_edges:
                    return False
                node = parent
    return True
