"""Configuration layer: routed design -> relay bitstream -> programming.

Bridges the paper's two halves: the Sec. 3 CAD flow produces routed
designs; the Sec. 2 half-select machinery programs relay arrays.  This
package extracts the conducting-switch set ("bitstream"), plans the
per-tile crossbar arrays, drives the programming protocol on real
relay models, and verifies the result reconstructs every routed net.
"""

from .bitstream import (
    Bitstream,
    ProgrammingReport,
    TileArrayPlan,
    extract_bitstream,
    plan_tile_arrays,
    program_fabric,
    verify_bitstream_connectivity,
)

__all__ = [
    "Bitstream",
    "ProgrammingReport",
    "TileArrayPlan",
    "extract_bitstream",
    "plan_tile_arrays",
    "program_fabric",
    "verify_bitstream_connectivity",
]
