"""Built-in self-test for relay crossbars (defect mapping).

Relays fail by stiction (stuck closed) or contact wear/contamination
(stuck open, the paper's ~100 kOhm-contact problem taken to its
limit).  Because the array is electrically observable — drive a beam,
watch the drains — a two-pattern BIST locates every stuck crosspoint:

1. program ALL crosspoints closed; any that read open is stuck open;
2. erase the array; any that still reads closed is stuck closed.

Read-out drives one column at a time (the same stimulus that verified
the paper's 2x2 exhaustively), so faults are located, not just
detected.  The resulting defect map feeds defect-avoidance routing
(`PathFinderRouter(blocked_nodes=...)`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Optional, Set

from ..nemrelay.device import EquivalentCircuit, NEMRelay, RelayState, SCALED_22NM_CIRCUIT
from ..nemrelay.electrostatics import ActuationModel
from .array import Coordinate, RelayCrossbar
from .halfselect import HalfSelectProgrammer, ProgrammingVoltages


class StuckMode(enum.Enum):
    """Permanent crosspoint fault classes."""

    STUCK_OPEN = "stuck-open"      # contact never conducts
    STUCK_CLOSED = "stuck-closed"  # beam adhered: never releases


class FaultyRelay(NEMRelay):
    """A relay with a permanent stuck fault injected."""

    def __init__(self, model: ActuationModel, mode: StuckMode,
                 circuit: EquivalentCircuit = SCALED_22NM_CIRCUIT) -> None:
        initial = RelayState.ON if mode is StuckMode.STUCK_CLOSED else RelayState.OFF
        super().__init__(model, circuit=circuit, state=initial)
        self.mode = mode

    def apply_gate_voltage(self, vgs: float) -> RelayState:
        self._vgs = vgs
        # The mechanical state never changes, whatever the bias.
        return self._state


def faulty_crossbar(
    rows: int,
    cols: int,
    model: ActuationModel,
    faults: Dict[Coordinate, StuckMode],
    circuit: EquivalentCircuit = SCALED_22NM_CIRCUIT,
) -> RelayCrossbar:
    """Crossbar with the given stuck faults injected."""
    for (r, c) in faults:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(f"fault at {(r, c)} outside {rows}x{cols}")

    def factory(r: int, c: int) -> NEMRelay:
        mode = faults.get((r, c))
        if mode is None:
            return NEMRelay(model, circuit=circuit)
        return FaultyRelay(model, mode, circuit=circuit)

    return RelayCrossbar(rows, cols, factory)


@dataclasses.dataclass
class DefectMap:
    """BIST outcome.

    Attributes:
        stuck_open: Crosspoints that cannot conduct.
        stuck_closed: Crosspoints that cannot release.
        rows / cols: Array bounds, when known (filled by `run_bist`);
            ``None`` keeps legacy maps constructible from bare sets.
    """

    stuck_open: Set[Coordinate]
    stuck_closed: Set[Coordinate]
    rows: Optional[int] = None
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.rows is None) != (self.cols is None):
            raise ValueError("rows and cols must be given together")
        if self.rows is not None:
            if self.rows < 1 or self.cols < 1:
                raise ValueError(
                    f"array bounds must be positive, got {self.rows}x{self.cols}")
            for r, c in set(self.stuck_open) | set(self.stuck_closed):
                if not (0 <= r < self.rows and 0 <= c < self.cols):
                    raise ValueError(
                        f"fault at {(r, c)} outside {self.rows}x{self.cols}")

    @property
    def total(self) -> int:
        return len(self.stuck_open) + len(self.stuck_closed)

    @property
    def clean(self) -> bool:
        return self.total == 0

    def usable(self, coord: Coordinate) -> bool:
        """Is the crosspoint fault-free?

        Raises ValueError for coordinates outside the array when the
        bounds are known — asking about a nonexistent relay is a
        caller bug, not a healthy device.
        """
        r, c = coord
        if self.rows is not None and not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"crosspoint {coord} outside {self.rows}x{self.cols}")
        return coord not in self.stuck_open and coord not in self.stuck_closed


def _read_configuration(crossbar: RelayCrossbar, probe: float = 0.5) -> Set[Coordinate]:
    """Electrically read which crosspoints conduct, one column at a
    time (no access to internal state — pure terminal behaviour)."""
    closed: Set[Coordinate] = set()
    for c in range(crossbar.cols):
        signals = [probe if cc == c else 0.0 for cc in range(crossbar.cols)]
        outputs = crossbar.route_signals(signals)
        for r in range(crossbar.rows):
            if outputs[r] > 1e-9:
                closed.add((r, c))
    return closed


def run_bist(crossbar: RelayCrossbar, voltages: ProgrammingVoltages) -> DefectMap:
    """Two-pattern BIST: all-closed then all-open (see module doc).

    Leaves the crossbar erased (all healthy relays open).
    """
    programmer = HalfSelectProgrammer(crossbar, voltages)
    every = {(r, c) for r in range(crossbar.rows) for c in range(crossbar.cols)}

    programmer.program(every)
    after_program = _read_configuration(crossbar)
    stuck_open = every - after_program

    programmer.erase()
    after_erase = _read_configuration(crossbar)
    stuck_closed = set(after_erase)
    return DefectMap(stuck_open=stuck_open, stuck_closed=stuck_closed,
                     rows=crossbar.rows, cols=crossbar.cols)


def yield_with_defect_map(
    defects: DefectMap, required: Set[Coordinate]
) -> bool:
    """Can a configuration be realised on a defective array?

    The required crosspoints must not be stuck open, and no
    stuck-closed crosspoint may short an unrelated signal pair (i.e.
    every stuck-closed crosspoint must be *wanted* by the config).
    """
    if any(coord in defects.stuck_open for coord in required):
        return False
    return all(coord in required for coord in defects.stuck_closed)
