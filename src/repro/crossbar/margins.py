"""Programming-window yield analysis under variation (paper Fig. 6).

Combines the nemrelay Monte-Carlo with the half-select voltage solver:
given a sampled (or measured) relay population, determine whether one
(Vhold, Vselect) pair programs every relay correctly, what the noise
margins are, and how yield falls off as arrays grow ("today's FPGAs
typically contain millions of configurable routing switches").
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..nemrelay.geometry import BeamGeometry
from ..nemrelay.materials import Ambient, Material
from ..nemrelay.variation import VariationResult, VariationSpec, sample_population
from .halfselect import NoiseMargins, ProgrammingVoltages, solve_voltages


@dataclasses.dataclass(frozen=True)
class WindowAnalysis:
    """Result of analysing a relay population for half-select use.

    Attributes:
        population: The underlying Vpi/Vpo samples.
        voltages: A valid (Vhold, Vselect), or None if infeasible.
        margins: Worst-case noise margins at that operating point.
    """

    population: VariationResult
    voltages: Optional[ProgrammingVoltages]
    margins: Optional[NoiseMargins]

    @property
    def feasible(self) -> bool:
        return self.voltages is not None


def analyze_population(population: VariationResult, guard: float = 0.0) -> WindowAnalysis:
    """Solve for programming voltages over a sampled population."""
    voltages = solve_voltages(list(population.vpi), list(population.vpo), guard=guard)
    margins = None
    if voltages is not None:
        margins = voltages.margins(
            population.vpi_min, population.vpi_max, population.vpo_max
        )
    return WindowAnalysis(population=population, voltages=voltages, margins=margins)


def array_yield(
    material: Material,
    nominal: BeamGeometry,
    ambient: Ambient,
    array_size: int,
    spec: VariationSpec,
    trials: int = 200,
    voltages: Optional[ProgrammingVoltages] = None,
    seed: int = 7,
) -> float:
    """Fraction of sampled arrays that program correctly.

    Each trial samples ``array_size`` relays; the array "yields" when a
    fixed operating point (if given) or a per-array solved point
    satisfies the constraints for every relay.  As array_size grows the
    min/max statistics widen and yield collapses — quantifying the
    paper's warning that large variations make million-switch FPGAs
    impossible to configure.
    """
    if array_size < 1:
        raise ValueError(f"array_size must be >= 1, got {array_size}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    passed = 0
    for trial in range(trials):
        pop = sample_population(
            material, nominal, ambient, count=array_size, spec=spec, seed=seed + trial
        )
        if voltages is None:
            ok = solve_voltages(list(pop.vpi), list(pop.vpo)) is not None
        else:
            ok = all(voltages.is_valid(vpi, vpo) for vpi, vpo in zip(pop.vpi, pop.vpo))
        passed += int(ok)
    return passed / trials


def yield_vs_array_size(
    material: Material,
    nominal: BeamGeometry,
    ambient: Ambient,
    sizes: Sequence[int],
    spec: VariationSpec,
    trials: int = 100,
    seed: int = 7,
) -> List[float]:
    """Yield curve over array sizes (feasibility solved per array)."""
    return [
        array_yield(material, nominal, ambient, size, spec, trials=trials, seed=seed)
        for size in sizes
    ]


def required_sigma_for_yield(
    material: Material,
    nominal: BeamGeometry,
    ambient: Ambient,
    array_size: int,
    target_yield: float = 0.99,
    spec: VariationSpec = VariationSpec(),
    trials: int = 100,
    seed: int = 7,
) -> float:
    """Largest uniform dimensional sigma meeting the yield target.

    Scales all four dimensional sigmas of ``spec`` by a common factor
    and bisects on that factor — a design-rule answer to the paper's
    "clear need to minimise variations in Vpi".  Returns the sigma
    scale factor (1.0 = the provided spec).
    """
    if not 0 < target_yield <= 1:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")

    def scaled_spec(factor: float) -> VariationSpec:
        return dataclasses.replace(
            spec,
            sigma_length=spec.sigma_length * factor,
            sigma_thickness=spec.sigma_thickness * factor,
            sigma_gap=spec.sigma_gap * factor,
            sigma_contact_gap=spec.sigma_contact_gap * factor,
        )

    def meets(factor: float) -> bool:
        y = array_yield(
            material, nominal, ambient, array_size, scaled_spec(factor), trials=trials, seed=seed
        )
        return y >= target_yield

    lo, hi = 0.0, 1.0
    if meets(hi):
        # Even the full spec meets the target; report the spec itself.
        return 1.0
    for _ in range(12):
        mid = 0.5 * (lo + hi)
        if mid == 0.0 or meets(mid):
            lo = mid
        else:
            hi = mid
    return lo


def margin_histogram_summary(population: VariationResult) -> dict:
    """Fig. 6-style summary: distribution stats plus the solved point."""
    analysis = analyze_population(population)
    summary = {
        "count": population.count,
        "vpi_mean": float(np.mean(population.vpi)),
        "vpi_std": float(np.std(population.vpi)),
        "vpi_min": population.vpi_min,
        "vpi_max": population.vpi_max,
        "vpo_mean": float(np.mean(population.vpo)),
        "vpo_std": float(np.std(population.vpo)),
        "vpo_min": population.vpo_min,
        "vpo_max": population.vpo_max,
        "min_hysteresis_window": population.min_hysteresis_window,
        "vpi_spread": population.vpi_spread,
        "feasible": analysis.feasible,
    }
    if analysis.feasible:
        assert analysis.voltages is not None and analysis.margins is not None
        summary.update(
            v_hold=analysis.voltages.v_hold,
            v_select=analysis.voltages.v_select,
            margin_hold=analysis.margins.hold_above_vpo,
            margin_half_select=analysis.margins.half_select_below_vpi,
            margin_full_select=analysis.margins.full_select_above_vpi,
        )
    return summary
