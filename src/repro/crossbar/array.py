"""NEM relay programmable routing crossbar (paper Sec. 2.2-2.3).

A crossbar is an R x C grid of relays.  Relay (r, c) has its **gate**
on programming row line r and its **source** (the beam) on programming
column line c; its drain taps the routed signal.  Programming applies
per-line voltages, so every relay sees Vgs = V(row r) - V(col c) — the
half-select trick biases those differences inside or outside the
hysteresis window.

After programming, a pulled-in relay (r, c) connects column signal c
to drain (output) r, turning the crossbar into a routing network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..nemrelay.device import NEMRelay, RelayState
from ..nemrelay.electrostatics import ActuationModel

Coordinate = Tuple[int, int]


class RelayCrossbar:
    """Grid of NEM relays with shared row (gate) / column (source) lines.

    Args:
        rows: Number of programming row lines (drain outputs).
        cols: Number of programming column lines (signal inputs).
        relay_factory: Called as ``relay_factory(row, col)`` to build
            each device; lets callers inject per-device variation.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        relay_factory: Callable[[int, int], NEMRelay],
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"crossbar must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.relays: Dict[Coordinate, NEMRelay] = {
            (r, c): relay_factory(r, c) for r in range(rows) for c in range(cols)
        }
        self.row_voltages: List[float] = [0.0] * rows
        self.col_voltages: List[float] = [0.0] * cols

    # -- programming ----------------------------------------------------

    def apply_line_voltages(
        self, row_voltages: Sequence[float], col_voltages: Sequence[float]
    ) -> None:
        """Drive all row/column lines and settle every relay's state.

        Each relay sees Vgs = V_row(gate) - V_col(source).
        """
        if len(row_voltages) != self.rows:
            raise ValueError(f"expected {self.rows} row voltages, got {len(row_voltages)}")
        if len(col_voltages) != self.cols:
            raise ValueError(f"expected {self.cols} column voltages, got {len(col_voltages)}")
        self.row_voltages = list(row_voltages)
        self.col_voltages = list(col_voltages)
        for (r, c), relay in self.relays.items():
            relay.apply_gate_voltage(self.row_voltages[r] - self.col_voltages[c])

    def reset_all(self) -> None:
        """Ground every line: all Vgs -> 0, every relay pulls out."""
        self.apply_line_voltages([0.0] * self.rows, [0.0] * self.cols)

    # -- state inspection ------------------------------------------------

    def state(self, row: int, col: int) -> RelayState:
        return self.relays[(row, col)].state

    def configuration(self) -> Set[Coordinate]:
        """Coordinates of all pulled-in (closed) relays."""
        return {coord for coord, relay in self.relays.items() if relay.is_on}

    def configuration_matrix(self) -> List[List[bool]]:
        """rows x cols boolean matrix; True means pulled in."""
        return [[self.relays[(r, c)].is_on for c in range(self.cols)] for r in range(self.rows)]

    # -- routing behaviour -------------------------------------------------

    def route_signals(self, column_signals: Sequence[float]) -> List[float]:
        """Propagate analog column (beam) signals to the drain rows.

        Each pulled-in relay ties its column's signal to its row's
        drain through Ron.  A drain driven by no closed relay floats
        (returned as 0.0); a drain driven by several closed relays
        returns their Ron-weighted parallel combination (for identical
        Ron this is the average — physically the resistively mixed
        value, and in correct FPGA configurations it never happens on
        distinct nets).
        """
        if len(column_signals) != self.cols:
            raise ValueError(f"expected {self.cols} column signals, got {len(column_signals)}")
        outputs: List[float] = []
        for r in range(self.rows):
            conductance_sum = 0.0
            weighted = 0.0
            for c in range(self.cols):
                relay = self.relays[(r, c)]
                if relay.is_on:
                    g_on = 1.0 / relay.circuit.r_on
                    conductance_sum += g_on
                    weighted += g_on * column_signals[c]
            outputs.append(weighted / conductance_sum if conductance_sum > 0 else 0.0)
        return outputs

    def path_resistance(self, row: int, col: int) -> float:
        """S-D resistance of the (row, col) cross-point (inf if open)."""
        return self.relays[(row, col)].resistance()

    def __repr__(self) -> str:
        closed = sorted(self.configuration())
        return f"RelayCrossbar({self.rows}x{self.cols}, closed={closed})"


def uniform_crossbar(rows: int, cols: int, model: ActuationModel, **relay_kwargs) -> RelayCrossbar:
    """Crossbar of identical relays sharing one actuation model."""
    return RelayCrossbar(rows, cols, lambda r, c: NEMRelay(model, **relay_kwargs))
