"""Program / test / reset waveform simulation (paper Fig. 5).

The paper demonstrates a 2x2 crossbar by:

1. **Program** — half-select sequence configures the target relays.
2. **Test** — two pulse trains with 180-degree phase shift drive the
   beams (columns); the drain (row) electrodes are monitored.  A drain
   reproduces the pulse of whichever column its closed relay connects
   to, which verifies the configuration.
3. **Reset** — all gates to 0 V; the drain signals disappear, which
   verifies the relays released.

`simulate_session` replays those three phases on a `RelayCrossbar`
and returns sampled waveforms for every line, mimicking the
oscilloscope traces of Figs. 5b/5c.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .array import Coordinate, RelayCrossbar
from .halfselect import HalfSelectProgrammer, ProgrammingVoltages


@dataclasses.dataclass(frozen=True)
class SessionWaveforms:
    """Sampled waveforms of one program/test/reset session.

    Attributes:
        times: Sample instants (s).
        gates: Per-row gate (programming row line) voltage traces.
        beams: Per-column beam/source drive traces.
        drains: Per-row drain read-out traces.
        phase_bounds: (t_program_end, t_test_end) phase boundaries.
        configuration: Closed relays after the program phase.
        reset_ok: True if every relay read open after the reset phase.
    """

    times: List[float]
    gates: Dict[int, List[float]]
    beams: Dict[int, List[float]]
    drains: Dict[int, List[float]]
    phase_bounds: Tuple[float, float]
    configuration: Set[Coordinate]
    reset_ok: bool

    def drain_amplitude(self, row: int) -> float:
        """Peak |drain| voltage during the test phase for one row."""
        t_prog, t_test = self.phase_bounds
        return max(
            (abs(v) for t, v in zip(self.times, self.drains[row]) if t_prog <= t < t_test),
            default=0.0,
        )


def test_pulse(t: float, period: float, amplitude: float, phase_shifted: bool) -> float:
    """Square test pulse: +A for the first half period, -A for the
    second (the paper's two stimuli are identical but 180 degrees out
    of phase)."""
    cycle_pos = (t / period) % 1.0
    level = amplitude if cycle_pos < 0.5 else -amplitude
    return -level if phase_shifted else level


def simulate_session(
    crossbar: RelayCrossbar,
    voltages: ProgrammingVoltages,
    targets: Iterable[Coordinate],
    program_step: float = 1.0,
    test_duration: float = 8.0,
    pulse_period: float = 4.0,
    pulse_amplitude: float = 0.5,
    reset_duration: float = 4.0,
    samples_per_unit: int = 8,
) -> SessionWaveforms:
    """Run one full programming session and sample every line.

    During programming, drains are monitored but undriven (traces show
    0).  During test, column c is driven by a pulse train whose phase
    alternates with column parity (paper Fig. 5: Pulse 1 / Pulse 2
    with 180-degree shift); drains resolve via the crossbar's resistive
    routing.  During reset, all programming lines are grounded and the
    drains must go quiet.

    Time units are arbitrary (the paper's scope shots span tens of
    seconds because programming was manual); waveform *shape* is the
    reproduced content.
    """
    programmer = HalfSelectProgrammer(crossbar, voltages)
    programmer.program(targets)
    configuration = crossbar.configuration()

    # Reconstruct programming-phase line voltages from the recorded steps.
    steps = programmer.history
    t_program_end = len(steps) * program_step
    t_test_end = t_program_end + test_duration
    t_total = t_test_end + reset_duration
    dt = 1.0 / samples_per_unit

    times: List[float] = []
    gates: Dict[int, List[float]] = {r: [] for r in range(crossbar.rows)}
    beams: Dict[int, List[float]] = {c: [] for c in range(crossbar.cols)}
    drains: Dict[int, List[float]] = {r: [] for r in range(crossbar.rows)}

    n_samples = int(round(t_total / dt))
    for i in range(n_samples):
        t = i * dt
        times.append(t)
        if t < t_program_end:
            row_v, col_v = steps[min(int(t / program_step), len(steps) - 1)]
            for r in range(crossbar.rows):
                gates[r].append(row_v[r])
            for c in range(crossbar.cols):
                beams[c].append(col_v[c])
            for r in range(crossbar.rows):
                drains[r].append(0.0)
        elif t < t_test_end:
            # Hold rows at Vhold to retain state; drive beams with the
            # anti-phase pulse pair and observe the drains.
            hold_rows = [voltages.v_hold] * crossbar.rows
            signals = [
                test_pulse(t - t_program_end, pulse_period, pulse_amplitude, phase_shifted=bool(c % 2))
                for c in range(crossbar.cols)
            ]
            crossbar.apply_line_voltages(hold_rows, [0.0] * crossbar.cols)
            outputs = crossbar.route_signals(signals)
            for r in range(crossbar.rows):
                gates[r].append(voltages.v_hold)
                drains[r].append(outputs[r])
            for c in range(crossbar.cols):
                beams[c].append(signals[c])
        else:
            # Reset: everything grounded; relays pull out, drains quiet.
            crossbar.reset_all()
            outputs = crossbar.route_signals([0.0] * crossbar.cols)
            for r in range(crossbar.rows):
                gates[r].append(0.0)
                drains[r].append(outputs[r])
            for c in range(crossbar.cols):
                beams[c].append(0.0)

    reset_ok = not crossbar.configuration()
    return SessionWaveforms(
        times=times,
        gates=gates,
        beams=beams,
        drains=drains,
        phase_bounds=(t_program_end, t_test_end),
        configuration=configuration,
        reset_ok=reset_ok,
    )


def exhaustive_verification(
    crossbar_factory,
    voltages: ProgrammingVoltages,
    rows: int = 2,
    cols: int = 2,
) -> Dict[frozenset, bool]:
    """Program/verify every possible configuration of an R x C crossbar.

    The paper states "all configurations exhaustively verified" for the
    2x2 array.  For each of the 2^(R*C) target sets, a fresh crossbar
    is programmed and electrically verified **one column at a time**
    (driving a single beam and reading all drains uniquely identifies
    the configuration matrix, whereas simultaneous anti-phase pulses —
    the Fig. 5 stimulus — cancel at a drain shorted to both columns).
    Finally the array is reset and re-read to confirm release.

    Returns {frozenset(targets): passed}.
    """
    from .halfselect import HalfSelectProgrammer

    all_coords = [(r, c) for r in range(rows) for c in range(cols)]
    results: Dict[frozenset, bool] = {}
    probe = 0.5
    for mask in range(2 ** len(all_coords)):
        targets = frozenset(coord for bit, coord in enumerate(all_coords) if mask >> bit & 1)
        crossbar = crossbar_factory()
        programmer = HalfSelectProgrammer(crossbar, voltages)
        programmer.program(targets)
        configured_ok = crossbar.configuration() == set(targets)
        drains_ok = True
        for c in range(cols):
            signals = [probe if cc == c else 0.0 for cc in range(cols)]
            outputs = crossbar.route_signals(signals)
            for r in range(rows):
                # When row r also closes another (grounded) column, that
                # column loads the drain resistively: the read-out drops
                # but stays nonzero; any positive response counts.
                responds = outputs[r] > 1e-6
                if ((r, c) in targets) != responds:
                    drains_ok = False
        crossbar.reset_all()
        reset_ok = not crossbar.configuration() and all(
            out == 0.0 for out in crossbar.route_signals([probe] * cols)
        )
        results[targets] = configured_ok and drains_ok and reset_ok
    return results
