"""Configuration cost and endurance for relay-based FPGAs.

Extension of the paper's Sec. 1 argument: relay drawbacks (mechanical
delay, limited switching endurance) do not matter for FPGA routing
because switches only toggle at (re)configuration, and FPGAs see few
reconfigurations (~500 over a lifetime [Kuon 07]) against billions of
reliable relay cycles [Kam 09, Parsa 10].

This module makes those claims quantitative for a whole fabric:

* configuration time — half-select programs row by row; each row step
  must wait out the mechanical pull-in (plus margin);
* configuration energy — each step (dis)charges the programming lines
  and relay gates (capacitive only: holding costs no DC power);
* endurance margin — reliable cycles vs lifetime actuations.
"""

from __future__ import annotations

import dataclasses
import math

from ..nemrelay.device import EquivalentCircuit, SCALED_22NM_CIRCUIT
from .halfselect import ProgrammingVoltages

#: Reconfigurations an FPGA typically sees over its lifetime [Kuon 07].
TYPICAL_LIFETIME_RECONFIGURATIONS = 500

#: Reliable switching cycles demonstrated for NEM relays [Kam 09].
DEMONSTRATED_RELIABLE_CYCLES = 1e9

#: Settling margin applied on top of the mechanical switching time per
#: programming row step (drive, settle, verify slack).
ROW_STEP_MARGIN = 3.0


@dataclasses.dataclass(frozen=True)
class ConfigurationCost:
    """Cost of one full-fabric configuration pass.

    Attributes:
        row_steps: Half-select row operations performed.
        total_time: Wall-clock configuration time (s).
        total_energy: Capacitive programming energy (J).
        hold_power: Static power while holding state (W) — zero for
            relays (capacitive gates), the SRAM-free advantage.
    """

    row_steps: int
    total_time: float
    total_energy: float
    hold_power: float = 0.0


def configuration_cost(
    num_relays: int,
    rows_per_array: int,
    switching_time: float,
    voltages: ProgrammingVoltages,
    relay: EquivalentCircuit = SCALED_22NM_CIRCUIT,
    line_capacitance_per_relay: float = 50e-18,
    arrays_in_parallel: int = 1,
) -> ConfigurationCost:
    """Cost of configuring ``num_relays`` organised as crossbar arrays.

    Args:
        num_relays: Total routing relays in the fabric.
        rows_per_array: Programming rows per crossbar array (the
            half-select scheme programs one row per step).
        switching_time: Mechanical pull-in time of one relay (s).
        voltages: The (Vhold, Vselect) operating point.
        relay: Gate capacitance source (C_on bounds the gate cap).
        line_capacitance_per_relay: Programming row/column wire
            capacitance attributable to each relay crosspoint (F).
        arrays_in_parallel: Independent arrays programmed concurrently
            (per-tile programming peripheries allow parallelism).
    """
    if num_relays < 1 or rows_per_array < 1 or arrays_in_parallel < 1:
        raise ValueError("counts must be positive")
    if switching_time <= 0:
        raise ValueError(f"switching time must be positive, got {switching_time}")
    num_arrays = math.ceil(num_relays / (rows_per_array * max(1, rows_per_array)))
    num_arrays = max(num_arrays, 1)
    total_rows = math.ceil(num_relays / rows_per_array)
    sequential_rows = math.ceil(total_rows / arrays_in_parallel)
    step_time = ROW_STEP_MARGIN * switching_time
    total_time = sequential_rows * step_time

    # Per row step: the selected row swings by Vselect, the selected
    # columns swing by Vselect, and every relay gate on the row sees a
    # bias change; energy ~ C V^2 summed over affected capacitances.
    v_swing = voltages.v_select
    c_per_row = rows_per_array * (relay.c_on + line_capacitance_per_relay)
    energy_per_step = c_per_row * v_swing**2
    total_energy = total_rows * energy_per_step
    return ConfigurationCost(
        row_steps=total_rows, total_time=total_time, total_energy=total_energy
    )


@dataclasses.dataclass(frozen=True)
class EnduranceReport:
    """Relay endurance vs FPGA lifetime demand.

    Attributes:
        actuations_per_relay: Worst-case actuations one relay sees
            (every reconfiguration toggles it twice: erase + program).
        reliable_cycles: Demonstrated reliable switching cycles.
        margin: reliable_cycles / actuations_per_relay.
    """

    actuations_per_relay: float
    reliable_cycles: float
    margin: float

    @property
    def sufficient(self) -> bool:
        return self.margin >= 1.0


def endurance_margin(
    reconfigurations: int = TYPICAL_LIFETIME_RECONFIGURATIONS,
    reliable_cycles: float = DEMONSTRATED_RELIABLE_CYCLES,
    actuations_per_reconfig: int = 2,
) -> EnduranceReport:
    """The paper's Sec. 1 reliability argument, quantified.

    With ~500 lifetime reconfigurations and two actuations each
    (erase + program), a billion-cycle relay has a ~10^6 margin.
    """
    if reconfigurations < 0 or actuations_per_reconfig < 1:
        raise ValueError("invalid reconfiguration counts")
    if reliable_cycles <= 0:
        raise ValueError("reliable cycles must be positive")
    actuations = float(reconfigurations * actuations_per_reconfig)
    margin = reliable_cycles / actuations if actuations else float("inf")
    return EnduranceReport(
        actuations_per_relay=actuations,
        reliable_cycles=reliable_cycles,
        margin=margin,
    )
