"""Half-select programmable NEM relay crossbar substrate.

Reproduces the paper's Sec. 2: SRAM-free programmable routing crossbars
(Fig. 3b), the half-select programming scheme (Fig. 4), the 2x2
program/test/reset demonstration (Fig. 5), and the variation /
noise-margin analysis (Fig. 6).
"""

from .array import Coordinate, RelayCrossbar, uniform_crossbar
from .halfselect import (
    HalfSelectProgrammer,
    NoiseMargins,
    PAPER_2X2_VOLTAGES,
    ProgrammingVoltages,
    solve_voltages,
)
from .waveforms import SessionWaveforms, exhaustive_verification, simulate_session, test_pulse
from .margins import (
    WindowAnalysis,
    analyze_population,
    array_yield,
    margin_histogram_summary,
    required_sigma_for_yield,
    yield_vs_array_size,
)
from .bist import (
    DefectMap,
    FaultyRelay,
    StuckMode,
    faulty_crossbar,
    run_bist,
    yield_with_defect_map,
)
from .programming_cost import (
    ConfigurationCost,
    DEMONSTRATED_RELIABLE_CYCLES,
    EnduranceReport,
    TYPICAL_LIFETIME_RECONFIGURATIONS,
    configuration_cost,
    endurance_margin,
)

__all__ = [
    "ConfigurationCost",
    "Coordinate",
    "DEMONSTRATED_RELIABLE_CYCLES",
    "DefectMap",
    "EnduranceReport",
    "FaultyRelay",
    "StuckMode",
    "faulty_crossbar",
    "run_bist",
    "yield_with_defect_map",
    "HalfSelectProgrammer",
    "TYPICAL_LIFETIME_RECONFIGURATIONS",
    "configuration_cost",
    "endurance_margin",
    "NoiseMargins",
    "PAPER_2X2_VOLTAGES",
    "ProgrammingVoltages",
    "RelayCrossbar",
    "SessionWaveforms",
    "WindowAnalysis",
    "analyze_population",
    "array_yield",
    "exhaustive_verification",
    "margin_histogram_summary",
    "required_sigma_for_yield",
    "simulate_session",
    "solve_voltages",
    "test_pulse",
    "uniform_crossbar",
    "yield_vs_array_size",
]
