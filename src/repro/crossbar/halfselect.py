"""Half-select programming of relay crossbars (paper Sec. 2.2).

Three voltage levels program the whole array without SRAM:

* ``Vhold``            on every unselected row,
* ``Vhold + Vselect``  on the selected row,
* ``-Vselect``         on the selected column(s), 0 V elsewhere.

Validity constraints (paper Fig. 4):

    Vpo < Vhold           < Vpi
    Vpo < Vhold + Vselect < Vpi
          Vhold + 2 Vselect > Vpi

so a selected relay sees Vhold + 2 Vselect (> Vpi: pulls in), every
half-selected relay sees Vhold + Vselect or Vhold (inside the window:
holds), and programming proceeds row by row.  After programming, all
rows idle at Vhold to retain state.

With device variation, Vpi/Vpo become per-relay; `solve_voltages`
finds (Vhold, Vselect) valid for a whole measured population and
reports the noise margins of paper Fig. 6.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import get_registry, get_tracer
from .array import Coordinate, RelayCrossbar


@dataclasses.dataclass(frozen=True)
class ProgrammingVoltages:
    """A (Vhold, Vselect) operating point for half-select programming."""

    v_hold: float
    v_select: float

    def __post_init__(self) -> None:
        if self.v_hold <= 0 or self.v_select <= 0:
            raise ValueError("Vhold and Vselect must be positive")

    @property
    def full_select(self) -> float:
        """Vgs seen by the selected relay: Vhold + 2 Vselect."""
        return self.v_hold + 2.0 * self.v_select

    @property
    def half_select(self) -> float:
        """Vgs seen by row-only or column-only selected relays."""
        return self.v_hold + self.v_select

    def is_valid(self, vpi: float, vpo: float) -> bool:
        """Paper Fig. 4 constraints for a single relay's (Vpi, Vpo)."""
        return (
            vpo < self.v_hold < vpi
            and vpo < self.half_select < vpi
            and self.full_select > vpi
        )

    def margins(self, vpi_min: float, vpi_max: float, vpo_max: float) -> "NoiseMargins":
        """Worst-case programming noise margins over a population."""
        return NoiseMargins(
            hold_above_vpo=self.v_hold - vpo_max,
            half_select_below_vpi=vpi_min - self.half_select,
            full_select_above_vpi=self.full_select - vpi_max,
        )


@dataclasses.dataclass(frozen=True)
class NoiseMargins:
    """The three noise margins annotated on paper Fig. 6.

    All must be positive for every relay in the array to program
    correctly:

    * ``hold_above_vpo``: Vhold - Vpo_max (held relays stay held),
    * ``half_select_below_vpi``: Vpi_min - (Vhold + Vselect)
      (half-selected relays must not pull in),
    * ``full_select_above_vpi``: (Vhold + 2 Vselect) - Vpi_max
      (selected relays must pull in).
    """

    hold_above_vpo: float
    half_select_below_vpi: float
    full_select_above_vpi: float

    @property
    def worst(self) -> float:
        return min(self.hold_above_vpo, self.half_select_below_vpi, self.full_select_above_vpi)

    @property
    def all_positive(self) -> bool:
        return self.worst > 0.0


#: The operating point used to configure the paper's fabricated 2x2
#: crossbar (Sec. 2.3): Vhold = 5.2 V, Vselect = 0.8 V.
PAPER_2X2_VOLTAGES = ProgrammingVoltages(v_hold=5.2, v_select=0.8)


def solve_voltages(
    vpi_values: Sequence[float],
    vpo_values: Sequence[float],
    guard: float = 0.0,
) -> Optional[ProgrammingVoltages]:
    """Find (Vhold, Vselect) valid for every relay in a population.

    Strategy (maximises the worst noise margin):  the three margins
    trade off along Vhold and Vselect; centring Vhold and Vhold+Vselect
    inside [Vpo_max, Vpi_min] and pushing Vhold+2Vselect past Vpi_max
    gives the balanced solution

        Vselect = (Vpi_max - Vpo_max) / 3
        Vhold   = Vpo_max + Vselect - guard-correction

    then we nudge to equalise margins.  Returns None when the paper's
    feasibility condition min{Vpi-Vpo} <= Vpi_max - Vpi_min makes any
    choice invalid.

    Args:
        vpi_values / vpo_values: Per-relay measured or simulated
            voltages (same device order not required).
        guard: Extra margin (V) required on each constraint.
    """
    if not vpi_values or not vpo_values:
        raise ValueError("need at least one Vpi and one Vpo sample")
    if guard < 0:
        raise ValueError(f"guard must be non-negative, got {guard}")
    vpi_min, vpi_max = min(vpi_values), max(vpi_values)
    vpo_max = max(vpo_values)

    # Balanced point: equalise the three margins m:
    #   Vhold = Vpo_max + m
    #   Vhold + Vselect = Vpi_min - m     => Vselect = Vpi_min - Vpo_max - 2m
    #   Vhold + 2 Vselect = Vpi_max + m   => solve for m:
    #   Vpo_max + m + 2(Vpi_min - Vpo_max - 2m) = Vpi_max + m
    #   => m = (2 Vpi_min - Vpo_max - Vpi_max) / 4
    margin = (2.0 * vpi_min - vpo_max - vpi_max) / 4.0
    if margin <= guard:
        return None
    v_hold = vpo_max + margin
    v_select = vpi_min - vpo_max - 2.0 * margin
    if v_select <= 0:
        return None
    candidate = ProgrammingVoltages(v_hold=v_hold, v_select=v_select)
    margins = candidate.margins(vpi_min, vpi_max, vpo_max)
    if margins.worst <= guard:
        return None
    return candidate


class HalfSelectProgrammer:
    """Drives a `RelayCrossbar` through half-select programming.

    The programmer issues the paper's row-by-row sequence and records
    every (row_voltages, col_voltages) step so waveform reconstruction
    (Fig. 5) can replay it.
    """

    def __init__(self, crossbar: RelayCrossbar, voltages: ProgrammingVoltages) -> None:
        self.crossbar = crossbar
        self.voltages = voltages
        self.history: List[Tuple[List[float], List[float]]] = []

    def _drive(self, row_v: List[float], col_v: List[float]) -> None:
        self.crossbar.apply_line_voltages(row_v, col_v)
        self.history.append((list(row_v), list(col_v)))

    def erase(self) -> None:
        """Ground all lines: every relay pulls out (paper reset phase)."""
        self._drive([0.0] * self.crossbar.rows, [0.0] * self.crossbar.cols)

    def hold(self) -> None:
        """Idle state: all rows at Vhold, columns grounded."""
        self._drive([self.voltages.v_hold] * self.crossbar.rows, [0.0] * self.crossbar.cols)

    def program(self, targets: Iterable[Coordinate], erase_first: bool = True) -> Set[Coordinate]:
        """Program the crossbar so exactly ``targets`` are pulled in.

        Row-by-row: for each row with targets, raise that row to
        Vhold + Vselect and drop the target columns to -Vselect;
        every other row sits at Vhold and other columns at ground
        (paper Sec. 2.2).  Finishes in the hold state.

        Returns the resulting configuration (set of closed coords).
        """
        target_set = set(targets)
        for r, c in target_set:
            if not (0 <= r < self.crossbar.rows and 0 <= c < self.crossbar.cols):
                raise ValueError(f"target {(r, c)} outside {self.crossbar.rows}x{self.crossbar.cols}")
        with get_tracer().span(
            "crossbar.program",
            rows=self.crossbar.rows,
            cols=self.crossbar.cols,
            targets=len(target_set),
        ) as tspan:
            pulses_before = len(self.history)
            if erase_first:
                self.erase()
            self.hold()
            v = self.voltages
            row_pulses = 0
            for row in range(self.crossbar.rows):
                cols_in_row = sorted(c for (r, c) in target_set if r == row)
                if not cols_in_row:
                    continue
                row_v = [v.v_hold] * self.crossbar.rows
                row_v[row] = v.v_hold + v.v_select
                col_v = [0.0] * self.crossbar.cols
                for c in cols_in_row:
                    col_v[c] = -v.v_select
                self._drive(row_v, col_v)
                self.hold()
                row_pulses += 1
            configured = self.crossbar.configuration()
            margins = self.population_margins()
            tspan.set_many(
                row_pulses=row_pulses,
                line_steps=len(self.history) - pulses_before,
                relays_closed=len(configured),
                verified=configured == target_set,
                margin_worst_v=margins.worst,
                margins_ok=margins.all_positive,
            )
            registry = get_registry()
            registry.counter("crossbar.programs").inc()
            registry.counter("crossbar.row_pulses").inc(row_pulses)
            registry.counter("crossbar.relays_closed").inc(len(configured))
            registry.gauge("crossbar.margin_worst_v").set(margins.worst)
            if configured != target_set:
                registry.counter("crossbar.verify_failures").inc()
            return configured

    def population_margins(self) -> NoiseMargins:
        """Programming noise margins of the operating point over this
        crossbar's actual relay population (per-device Vpi/Vpo)."""
        vpis = [r.pull_in_voltage for r in self.crossbar.relays.values()]
        vpos = [r.pull_out_voltage for r in self.crossbar.relays.values()]
        return self.voltages.margins(min(vpis), max(vpis), max(vpos))

    def verify(self, targets: Iterable[Coordinate]) -> bool:
        """True if the crossbar configuration equals ``targets`` exactly."""
        return self.crossbar.configuration() == set(targets)
