"""repro — reproduction of "Nano-Electro-Mechanical Relays for FPGA
Routing: Experimental Demonstration and a Design Technique" (DATE
2012).

Subpackages:

* `repro.nemrelay` — NEM relay device physics (hysteresis, dynamics,
  variation, scaling; paper Sec. 2.1, Figs. 2/6/11).
* `repro.crossbar` — half-select programmable relay crossbars (paper
  Sec. 2.2-2.3, Figs. 4/5/6).
* `repro.arch`     — island-style FPGA architecture, RR graph, area
  model (paper Sec. 3.1, Table 1, Fig. 7).
* `repro.netlist`  — LUT netlists, BLIF I/O, synthetic benchmark
  suites (MCNC20 / Altera4).
* `repro.vpr`      — pack / place / route / timing flow (paper
  Fig. 10).
* `repro.circuits` — 22nm PTM-class circuit models (HSPICE stand-in).
* `repro.power`    — activity, dynamic and leakage power models
  (paper Fig. 9).
* `repro.core`     — the paper's contribution: CMOS-NEM FPGA variants,
  selective buffer removal/downsizing, Fig. 12 trade-offs, headline
  comparisons, architecture exploration.
* `repro.config`   — routed design -> relay bitstream -> half-select
  programming of the fabric (bridges Secs. 2 and 3).
* `repro.fabric`   — FabricIR: the flat array-backed RR-graph core
  (CSR adjacency, switch-kind table, keyed build cache) shared by the
  router, timing, bitstream and visualisation layers.
* `repro.obs`      — observability: span tracing, metrics registry,
  structured logs, JSONL telemetry export (inert by default).
"""

__version__ = "1.0.0"

from . import (
    arch,
    circuits,
    config,
    core,
    crossbar,
    fabric,
    nemrelay,
    netlist,
    obs,
    power,
    vpr,
)

__all__ = [
    "arch",
    "circuits",
    "config",
    "core",
    "crossbar",
    "fabric",
    "nemrelay",
    "netlist",
    "obs",
    "power",
    "vpr",
    "__version__",
]
