"""Command-line interface: ``repro <subcommand>``.

Exposes the library's main entry points without writing Python:

* ``repro device``    — relay design points (Fig. 2b / Fig. 11 anchors)
* ``repro crossbar``  — program a crossbar via half-select
* ``repro flow``      — pack/place/route/configure a benchmark + variants
* ``repro batch``     — a (circuit x variant x seed) job matrix over a
  worker-process pool, bit-identical to serial (see `repro.runner`)
* ``repro watch``     — the same batch with the live telemetry table
  (``batch --live``): per-job stage, PathFinder iteration, repair
  rung, RSS, and heartbeat age streamed from the workers
* ``repro faults``    — seeded stuck-fault campaigns + self-repair
  yield curves (see `repro.faults`)
* ``repro sweep``     — the Fig. 12 downsizing trade-off for a circuit
* ``repro headline``  — suite-level headline comparison vs the paper
* ``repro explore``   — future-work architecture sweeps

Telemetry consumers (see `repro.obs.analyze`):

* ``repro report``        — render one ``--metrics-out`` JSONL run
* ``repro diff``          — compare two runs, gate with ``--fail-on``
* ``repro bench-history`` — benchmark trajectory append / regression check
* ``repro db``            — sqlite telemetry warehouse: ingest runs, rank
  spans across runs, plot a measurement's trajectory, and attribute an
  end-to-end regression to the spans responsible (``db attribute``)

All circuits come from the built-in suite generator; ``--scale``
shrinks them for quick runs (see DESIGN.md Sec. 6).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import os
import sys
from typing import Dict, List, Optional


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace, arch=None, extra=None,
               root_span="cli.run"):
    """Scope a tracer for one command when observability flags ask.

    ``-v`` turns on structured logs to stderr; ``--metrics-out PATH``
    records spans and writes manifest + spans + metrics as JSONL on
    exit; ``--profile`` wraps the command in a ``root_span`` with the
    sampling profiler attached (collapsed stacks land on the span when
    exported, or print to stderr without ``--metrics-out``).  With no
    flag this yields None and the flow runs over the inert null tracer.
    """
    from .obs import (
        Tracer,
        export_run,
        get_registry,
        profiled,
        run_manifest,
        setup_logging,
        use_tracer,
    )

    verbosity = getattr(args, "verbose", 0)
    if verbosity:
        setup_logging(verbosity)
    metrics_out = getattr(args, "metrics_out", None)
    profile = bool(getattr(args, "profile", False))
    if not metrics_out and not profile:
        # Structured logs (if any) need no tracer; spans stay inert.
        yield None
        return
    tracer = Tracer()
    profile_attr = None
    try:
        with use_tracer(tracer):
            if profile:
                with tracer.span(root_span) as span:
                    with profiled(span):
                        yield tracer
                profile_attr = span.attrs.get("profile")
            else:
                yield tracer
    finally:
        if metrics_out:
            manifest = run_manifest(
                seed=getattr(args, "seed", None),
                arch=arch,
                argv=sys.argv[1:],
                extra=extra,
            )
            records = export_run(metrics_out, manifest, tracer, get_registry())
            print(f"wrote {records} telemetry records to {metrics_out}",
                  file=sys.stderr)
        elif profile_attr:
            stacks = profile_attr.get("stacks") or {}
            total = profile_attr.get("samples") or 0
            print(f"profile: {total} samples @ "
                  f"{profile_attr.get('interval_s')}s "
                  f"({profile_attr.get('backend')} backend)", file=sys.stderr)
            ranked = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
            for stack, count in ranked[:8]:
                share = 100.0 * count / total if total else 0.0
                print(f"  {share:5.1f}%  {stack}", file=sys.stderr)


def _cmd_device(args: argparse.Namespace) -> int:
    from .nemrelay import fabricated_relay, scaled_relay, switching_delay, sweep_iv

    relay = fabricated_relay() if args.fabricated else scaled_relay()
    label = "fabricated (23 um, oil)" if args.fabricated else "22nm scaled (Fig. 11)"
    print(f"device: {label}")
    print(f"  Vpi = {relay.pull_in_voltage:.3f} V")
    print(f"  Vpo = {relay.pull_out_voltage:.3f} V")
    print(f"  Ron = {relay.circuit.r_on:.3g} ohm, Con = {relay.circuit.c_on * 1e18:.1f} aF, "
          f"Coff = {relay.circuit.c_off * 1e18:.1f} aF")
    delay = switching_delay(relay.model)
    print(f"  mechanical switching delay (1.2x Vpi): {delay * 1e9:.2f} ns")
    curve = sweep_iv(relay)
    print(f"  swept I-V: pull-in {curve.pull_in_observed:.3f} V, "
          f"pull-out {curve.pull_out_observed:.3f} V, "
          f"window {curve.hysteresis_window:.3f} V")
    return 0


def _parse_targets(spec: str) -> set:
    targets = set()
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        r, c = part.split(",")
        targets.add((int(r), int(c)))
    return targets


def _cmd_crossbar(args: argparse.Namespace) -> int:
    from .crossbar import HalfSelectProgrammer, solve_voltages, uniform_crossbar
    from .nemrelay import fabricated_relay

    model = fabricated_relay().model
    voltages = solve_voltages([model.pull_in], [model.pull_out])
    xbar = uniform_crossbar(args.rows, args.cols, model)
    programmer = HalfSelectProgrammer(xbar, voltages)
    targets = _parse_targets(args.targets)
    with _telemetry(args, extra={"rows": args.rows, "cols": args.cols}):
        configured = programmer.program(targets)
    ok = configured == targets
    # Under --json the human-readable summary becomes a diagnostic:
    # stdout carries only the machine-readable result.
    out = sys.stderr if args.json else sys.stdout
    print(f"{args.rows}x{args.cols} crossbar, Vhold = {voltages.v_hold:.2f} V, "
          f"Vselect = {voltages.v_select:.2f} V", file=out)
    for r in range(args.rows):
        print("  " + " ".join("X" if (r, c) in configured else "." for c in range(args.cols)),
              file=out)
    print(f"programmed exactly the targets: {ok}", file=out)
    if args.json:
        margins = programmer.population_margins()
        print(json.dumps({
            "rows": args.rows,
            "cols": args.cols,
            "v_hold": voltages.v_hold,
            "v_select": voltages.v_select,
            "targets": sorted(targets),
            "configured": sorted(configured),
            "margin_worst_v": margins.worst,
            "success": ok,
        }, sort_keys=True))
    return 0 if ok else 1


def _cmd_flow_store(args: argparse.Namespace) -> int:
    """`repro flow --store`: the flow as one store-backed job.

    Builds the `JobSpec` the flags describe and serves it through the
    result store — a warm store answers without running P&R at all;
    a miss executes the normal worker flow and publishes the result.
    """
    import time as time_mod

    from .obs import setup_logging
    from .runner.executor import run_single_job
    from .runner.spec import JobSpec

    if getattr(args, "verbose", 0):
        setup_logging(args.verbose)
    spec = JobSpec(circuit=args.circuit, variant=args.variant,
                   seed=args.seed, width=args.width, scale=args.scale)
    store = _open_store(args)
    started = time_mod.perf_counter()
    result = run_single_job(spec, store=store, retries=1,
                            timeout_s=getattr(args, "timeout", None))
    wall_s = time_mod.perf_counter() - started
    cached = store.stats.hits > 0
    doc = {
        "job": spec.key,
        "status": result.status,
        "cached": cached,
        "wall_s": wall_s,
        "result": result.to_dict(),
    }
    if args.json:
        print(json.dumps(doc, sort_keys=True))
    else:
        qor = result.qor
        print(f"{spec.key}: {result.status}"
              f" ({'store hit' if cached else 'computed'}, {wall_s:.2f}s)")
        if result.ok:
            print(f"  wl={qor.get('wirelength')} it={qor.get('iterations')} "
                  f"crit={qor.get('critical_path_s', 0) * 1e9:.2f}ns "
                  f"W={qor.get('channel_width')}")
        elif result.error:
            print(f"  {result.error.splitlines()[0]}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import setup_logging
    from .serve import serve_async

    if getattr(args, "verbose", 0):
        setup_logging(args.verbose)
    store = _open_store(args)
    if store is None:
        print("error: repro serve needs --store DIR (the result store "
              "backing the service)", file=sys.stderr)
        return 2

    def ready(server):
        # Machine-readable bind line on stdout: launchers (CI, tests)
        # parse the ephemeral port from it.
        print(json.dumps({"serving": True, "host": server.host,
                          "port": server.port, "store": store.root,
                          "workers": server.workers}, sort_keys=True),
              flush=True)

    try:
        asyncio.run(serve_async(
            store, workers=args.workers, timeout_s=args.timeout,
            retries=args.retries, host=args.host, port=args.port,
            ready=ready))
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .config.bitstream import extract_bitstream, program_fabric
    from .core import (
        Comparison,
        baseline_variant,
        evaluate_design,
        naive_nem_variant,
        optimized_nem_variant,
    )
    from .netlist import load_circuit
    from .obs import get_tracer
    from .vpr import render_congestion, render_placement, run_flow, utilization_summary

    # Kernel choice is execution policy, not job identity: export it so
    # every router built downstream (store jobs, Wmin derivation)
    # inherits the same pick without it entering any cache key.
    if getattr(args, "route_kernel", None):
        os.environ["REPRO_ROUTE_KERNEL"] = args.route_kernel
    if getattr(args, "store", None):
        return _cmd_flow_store(args)
    arch = ArchParams(channel_width=args.width)
    netlist = load_circuit(args.circuit, scale=args.scale)
    # Progress and failure diagnostics go to stderr: stdout carries
    # only results (table or --json), so pipelines stay parseable.
    print(f"circuit: {netlist}", file=sys.stderr)
    with _telemetry(args, arch=arch, extra={"circuit": args.circuit,
                                            "scale": args.scale},
                    root_span="cli.flow"):
        flow = run_flow(netlist, arch, seed=args.seed,
                        route_kernel=getattr(args, "route_kernel", None))
        if not flow.success:
            print("routing FAILED at this channel width; try --width higher",
                  file=sys.stderr)
            if args.json:
                print(json.dumps({
                    "circuit": netlist.name,
                    "width": args.width,
                    "seed": args.seed,
                    "success": False,
                    "overused_nodes": flow.routing.overused_nodes,
                    "iterations": flow.routing.iterations,
                }, sort_keys=True))
            return 1
        # Configure the relay fabric for the routed design (Sec. 2 meets
        # Sec. 3): extract the "bitstream" and drive every tile's
        # crossbar through half-select programming.
        with get_tracer().span("flow.configure", circuit=netlist.name):
            bitstream = extract_bitstream(flow.routing, flow.graph)
            config = program_fabric(bitstream)
        if not config.success:
            print(f"fabric programming FAILED on {len(config.failures)} tile(s)",
                  file=sys.stderr)
        variants = [
            ("naive CMOS-NEM", naive_nem_variant(arch)),
            (f"optimised (downsize {args.downsize:g})",
             optimized_nem_variant(arch, args.downsize)),
        ]
        base = evaluate_design(flow, baseline_variant(arch))
        comparisons = []
        for label, variant in variants:
            point = evaluate_design(flow, variant, frequency=base.frequency)
            comparisons.append((label, Comparison.of(base, point)))
        if args.json:
            print(json.dumps({
                "circuit": netlist.name,
                "width": args.width,
                "seed": args.seed,
                "success": True,
                "wirelength": flow.routing.wirelength,
                "iterations": flow.routing.iterations,
                "config": {
                    "switches": bitstream.total_switches,
                    "arrays_programmed": config.arrays_programmed,
                    "relays_closed": config.relays_closed,
                    "row_steps": config.row_steps,
                    "success": config.success,
                },
                "convergence": [dataclasses.asdict(it)
                                for it in flow.routing.convergence],
                "baseline": {
                    "critical_path_s": base.critical_path,
                    "dynamic_w": base.total_dynamic,
                    "leakage_w": base.total_leakage,
                },
                "variants": [
                    {"label": label, **dataclasses.asdict(cmp)}
                    for label, cmp in comparisons
                ],
            }, sort_keys=True))
            return 0
        print(f"routed at W = {args.width}: wirelength {flow.routing.wirelength}, "
              f"{flow.routing.iterations} iterations")
        print(f"configured fabric: {config.relays_closed} relays closed across "
              f"{config.arrays_programmed} tile arrays in {config.row_steps} "
              f"row steps ({'ok' if config.success else 'FAILED'})")
        if args.show_maps:
            print("\nfloorplan:")
            print(render_placement(flow.placement))
            print("\ncongestion:")
            print(render_congestion(flow.routing, flow.graph))
            summary = utilization_summary(flow.routing, flow.graph)
            print(f"channel utilisation mean {100 * summary['mean']:.0f}% "
                  f"peak {100 * summary['max']:.0f}%")
        print(f"\nbaseline: crit {base.critical_path * 1e9:.2f} ns, "
              f"dyn {base.total_dynamic * 1e3:.3f} mW, leak {base.total_leakage * 1e3:.3f} mW")
        print(f"{'variant':30s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s} {'area.red':>9s}")
        for label, cmp in comparisons:
            print(f"{label:30s} {cmp.speedup:8.2f} {cmp.dynamic_reduction:8.2f} "
                  f"{cmp.leakage_reduction:9.2f} {cmp.area_reduction:9.2f}")
        return 0


def _cmd_rrgraph(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .fabric import get_fabric

    params = ArchParams(
        channel_width=args.width,
        segment_length=args.seg_length,
        directionality=args.directionality,
    )
    with _telemetry(args, arch=params,
                    extra={"nx": args.nx, "ny": args.ny}):
        ir = get_fabric(params, args.nx, args.ny)
        stats = ir.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    grid = stats["grid"]
    print(f"RR graph {grid[0]}x{grid[1]}, W = {stats['channel_width']}, "
          f"L = {params.segment_length}, {stats['directionality']}")
    print(f"  nodes: {stats['num_nodes']}")
    for name, count in stats["nodes_by_kind"].items():
        print(f"    {name:<8} {count}")
    print(f"  edges: {stats['num_edges']}")
    for name, count in stats["edges_by_switch"].items():
        print(f"    {name:<10} {count}")
    print(f"  memory: {stats['memory_bytes']} bytes")
    build = stats["build"]
    print(f"  build: {build['build_wall_s'] * 1e3:.2f} ms "
          f"({build['constructor']})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .core import fig12_series, format_headline, headline_summary, sweep_circuit
    from .netlist import load_circuit
    from .vpr import run_flow

    arch = ArchParams(channel_width=args.width)
    netlist = load_circuit(args.circuit, scale=args.scale)
    with _telemetry(args, arch=arch, extra={"circuit": args.circuit,
                                            "scale": args.scale}):
        flow = run_flow(netlist, arch, seed=args.seed)
        if not flow.success:
            print("routing FAILED; try --width higher", file=sys.stderr)
            if args.json:
                print(json.dumps({
                    "circuit": netlist.name,
                    "width": args.width,
                    "seed": args.seed,
                    "success": False,
                }, sort_keys=True))
            return 1
        curve = sweep_circuit(flow, arch)
    series = fig12_series(curve)
    summary = headline_summary([curve])
    if args.json:
        print(json.dumps({
            "circuit": netlist.name,
            "width": args.width,
            "seed": args.seed,
            "success": True,
            "series": series,
            "corner": dataclasses.asdict(summary.corner),
            "naive": (dataclasses.asdict(summary.naive)
                      if summary.naive is not None else None),
        }, sort_keys=True))
        return 0
    print(f"{'downsize':>9s} {'speed-up':>9s} {'dyn.red':>8s} {'leak.red':>9s}")
    for ds, sp, dyn, leak in zip(
        series["downsize"], series["speedup"],
        series["dynamic_reduction"], series["leakage_reduction"],
    ):
        print(f"{ds:9.1f} {sp:9.2f} {dyn:8.2f} {leak:9.2f}")
    print()
    print(format_headline(summary))
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .core import format_headline, headline_summary, sweep_circuit
    from .netlist import generate, suite
    from .vpr import run_flow

    arch = ArchParams(channel_width=args.width)
    curves = []
    with _telemetry(args, arch=arch, extra={"suite": args.suite,
                                            "scale": args.scale}):
        for params in suite(args.suite, scale=args.scale):
            netlist = generate(params)
            flow = run_flow(netlist, arch, seed=args.seed)
            if not flow.success:
                print(f"  {params.name}: unroutable at W = {args.width}, skipped",
                      file=sys.stderr)
                continue
            curves.append(sweep_circuit(flow, arch))
            print(f"  {params.name}: done ({netlist.num_luts} LUTs)", file=sys.stderr)
    if not curves:
        print("no circuit routed; try --width higher", file=sys.stderr)
        return 1
    summary = headline_summary(curves)
    if args.json:
        print(json.dumps({
            "suite": args.suite,
            "width": args.width,
            "seed": args.seed,
            "circuits": [c.circuit for c in curves],
            "corner": dataclasses.asdict(summary.corner),
            "naive": (dataclasses.asdict(summary.naive)
                      if summary.naive is not None else None),
            "per_circuit": {name: dataclasses.asdict(point)
                            for name, point in summary.per_circuit.items()},
        }, sort_keys=True))
        return 0
    print(format_headline(summary))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from .netlist import (
        check_equivalence,
        map_to_luts,
        mapping_stats,
        random_gate_circuit,
        write_blif,
    )

    gates = random_gate_circuit(
        "mapped",
        num_gates=args.gates,
        num_inputs=args.inputs,
        num_outputs=args.pos,
        ff_fraction=args.ff_fraction,
        seed=args.seed,
    )
    mapped = map_to_luts(gates, k=args.k)
    stats = mapping_stats(gates, mapped)
    print(f"{stats['gates']:.0f} gates -> {stats['luts']:.0f} {args.k}-LUTs "
          f"({stats['gates_per_lut']:.2f} gates/LUT, depth {stats['lut_depth']:.0f})")
    equivalent = check_equivalence(gates, mapped, vectors=args.vectors, seed=args.seed)
    print(f"functional equivalence over {args.vectors} random vectors: {equivalent}")
    if args.blif:
        with open(args.blif, "w") as handle:
            write_blif(mapped, handle)
        print(f"wrote mapped BLIF to {args.blif}")
    return 0 if equivalent else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .core import format_sweep, sweep_connection_flexibility, sweep_segment_length
    from .netlist import load_circuit

    arch = ArchParams(channel_width=args.width)
    netlist = load_circuit(args.circuit, scale=args.scale)
    with _telemetry(args, arch=arch, extra={"circuit": args.circuit,
                                            "knob": args.knob}):
        if args.knob == "segment_length":
            points = sweep_segment_length(netlist, arch, seed=args.seed)
        else:
            points = sweep_connection_flexibility(netlist, arch, seed=args.seed)
    print(format_sweep(points, args.knob))
    return 0


def _parse_csv(spec: str, cast=str) -> List:
    return [cast(part.strip()) for part in spec.split(",") if part.strip()]


def _cmd_faults(args: argparse.Namespace) -> int:
    from .arch import ArchParams
    from .faults import run_defect_sweep
    from .netlist import load_circuit

    arch = ArchParams(channel_width=args.width)
    netlist = load_circuit(args.circuit, scale=args.scale)
    rates = _parse_csv(args.rates, float)
    print(f"circuit: {netlist}", file=sys.stderr)
    with _telemetry(args, arch=arch, extra={
        "circuit": args.circuit, "scale": args.scale,
        "rates": rates, "campaigns": args.campaigns, "mode": args.mode,
    }):
        try:
            sweep = run_defect_sweep(
                netlist, arch,
                channel_width=args.width,
                rates=rates,
                campaigns=args.campaigns,
                base_seed=args.base_seed,
                mode=args.mode,
                stuck_closed_fraction=args.stuck_closed_fraction,
                seed=args.seed,
            )
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    doc = sweep.to_dict()
    if args.out:
        from .obs import write_json

        write_json(args.out, doc)
        print(f"wrote defect sweep to {args.out}", file=sys.stderr)
    curve = sweep.yield_curve()
    all_repaired = all(row["yield"] == 1.0 for row in curve)
    if args.json:
        print(json.dumps(doc, sort_keys=True))
    else:
        print(f"{args.circuit} @ W={sweep.channel_width}: clean wirelength "
              f"{sweep.clean_wirelength}, {args.campaigns} campaign(s)/rate, "
              f"mode={args.mode}")
        print(f"{'rate':>7s} {'defects':>8s} {'yield':>6s} {'increm.':>7s} "
              f"{'ripped':>7s} {'wl.ovh':>7s}  stages")
        for row in curve:
            stages = ",".join(f"{k}:{v}" for k, v in row["stages"].items())
            print(f"{row['rate']:7.3%} {row['mean_defects']:8.1f} "
                  f"{row['yield']:6.0%} {row['incremental_yield']:7.0%} "
                  f"{row['mean_nets_ripped']:7.1f} "
                  f"{row['wirelength_overhead']:7.1%}  {stages}")
        print(f"all campaigns repaired: {all_repaired}")
    return 0 if all_repaired else 1


def _cmd_mission(args: argparse.Namespace) -> int:
    from .faults.mission import aggregate_degradation, resolve_policy
    from .obs import setup_logging, write_json
    from .runner import BatchSpec, results_identical, run_batch

    if getattr(args, "verbose", 0):
        setup_logging(args.verbose)
    policies = _parse_csv(args.policy)
    try:
        for name in policies:
            resolve_policy(name)
        if args.campaigns < 1:
            raise ValueError("--campaigns must be >= 1")
        spec = BatchSpec.from_matrix(
            circuits=[args.circuit],
            seeds=[args.seed],
            widths=[args.width],
            scale=args.scale,
            mission_epochs=args.epochs,
            mission_policies=policies,
            mission_seeds=list(range(
                args.base_seed, args.base_seed + args.campaigns)),
            mission_years=args.years,
            timeout_s=args.timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(result, done, total):
        print(f"[{done}/{total}] {result.key}: {result.status} "
              f"({result.wall_s:.2f}s)", file=sys.stderr)

    workers = args.workers
    batch = run_batch(spec, workers=workers, metrics_out=args.metrics_out,
                      progress=progress, store=_open_store(args))

    deterministic = None
    if args.verify_serial and workers > 1:
        print("verify-serial: re-running the mission with 1 worker...",
              file=sys.stderr)
        serial = run_batch(spec, workers=1, progress=progress)
        deterministic = results_identical(batch.results, serial.results)
        print(f"verify-serial: parallel results are "
              f"{'bit-identical to' if deterministic else 'DIFFERENT from'} "
              f"serial execution", file=sys.stderr)

    # One job per (policy, campaign seed): re-assemble each policy's
    # degradation curve from its campaigns' per-epoch records.
    results_by_key = {r.key: r for r in batch.results}
    policy_docs: Dict[str, Dict[str, object]] = {}
    failed_jobs = [r for r in batch.results if not r.ok]
    for name in policies:
        curves = []
        ttfs = []
        for job in spec.jobs:
            if job.mission_policy != name:
                continue
            result = results_by_key[job.key]
            records = result.qor.get("mission.curve")
            if records:
                curves.append(records)
            ttf = result.qor.get("mission.ttf_years")
            if ttf is not None:
                ttfs.append(ttf)
        policy_docs[name] = {
            "campaigns": len(curves),
            "degradation_curve": aggregate_degradation(
                curves, args.epochs, args.years),
            "time_to_first_unrepairable": min(ttfs) if ttfs else None,
        }

    doc: Dict[str, object] = {
        "circuit": args.circuit,
        "scale": args.scale,
        "channel_width": args.width,
        "epochs": args.epochs,
        "years": args.years,
        "campaigns": args.campaigns,
        "base_seed": args.base_seed,
        "spec_digest": spec.digest,
        "policies": policy_docs,
        "results": [r.to_dict() for r in batch.results],
    }
    if deterministic is not None:
        doc["verify_serial"] = {"identical": deterministic}

    if args.out:
        write_json(args.out, doc)
        print(f"wrote mission document to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, sort_keys=True))
    else:
        print(f"{args.circuit} @ W={args.width}: {len(policies)} policy(ies) "
              f"x {args.campaigns} campaign(s), {args.epochs} epochs over "
              f"{args.years:g} device-years")
        print(f"{'policy':<18s} {'yield per epoch':<28s} {'ttf.y':>6s} "
              f"{'W.end':>6s} {'repairs':>7s}")
        for name in policies:
            pdoc = policy_docs[name]
            curve = pdoc["degradation_curve"]
            yields = " ".join(f"{row['yield']:.2f}" for row in curve)
            ttf = pdoc["time_to_first_unrepairable"]
            final_w = curve[-1]["mean_channel_width"] if curve else 0.0
            repairs = sum(row["repairs"] for row in curve)
            print(f"{name:<18s} {yields:<28s} "
                  f"{ttf if ttf is not None else '-':>6} "
                  f"{final_w:>6.1f} {repairs:>7d}")
    if batch.metrics_path:
        print(f"wrote merged mission telemetry to {batch.metrics_path}",
              file=sys.stderr)
    if failed_jobs:
        for result in failed_jobs:
            print(f"job failed: {result.key}: {result.status}",
                  file=sys.stderr)
        return 1
    if deterministic is False:
        return 3
    return 0


def _open_store(args: argparse.Namespace):
    """The `ResultStore` the command's flags describe, or None."""
    path = getattr(args, "store", None)
    if not path:
        return None
    from .store import ResultStore

    return ResultStore(path,
                       max_bytes=getattr(args, "store_max_bytes", None),
                       max_entries=getattr(args, "store_max_entries", None))


def _cmd_batch(args: argparse.Namespace) -> int:
    from .obs import setup_logging, write_json
    from .runner import BatchSpec, results_identical, run_batch

    if getattr(args, "verbose", 0):
        setup_logging(args.verbose)
    # Exported (not passed per-job) so worker processes inherit it; the
    # kernel never enters JobSpec identity because results are
    # bit-identical across kernels.
    if getattr(args, "route_kernel", None):
        os.environ["REPRO_ROUTE_KERNEL"] = args.route_kernel
    try:
        if args.spec:
            spec = BatchSpec.from_file(args.spec)
        else:
            if not args.circuits:
                raise ValueError("need --spec FILE or --circuits LIST")
            spec = BatchSpec.from_matrix(
                circuits=_parse_csv(args.circuits),
                variants=_parse_csv(args.variants),
                seeds=_parse_csv(args.seeds, int),
                widths=[args.width],
                scale=args.scale,
                defect_rates=(_parse_csv(args.defect_rates, float)
                              if args.defect_rates else [None]),
                defect_seed=args.defect_seed,
                defect_mode=args.defect_mode,
                timeout_s=args.timeout,
                retries=args.retries,
            )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else spec.workers
    live = getattr(args, "live", False)
    verify_stream = getattr(args, "verify_stream", False)
    ingest_db = getattr(args, "db", None)
    metrics_out = args.metrics_out
    if ingest_db and not metrics_out:
        print("error: --db needs --metrics-out (nothing to ingest)",
              file=sys.stderr)
        return 2
    if verify_stream and not metrics_out:
        # Byte-comparison needs the merged shard file to compare against.
        import tempfile
        metrics_out = os.path.join(
            tempfile.mkdtemp(prefix="repro-stream-"), "run.jsonl")

    def progress(result, done, total):
        print(f"[{done}/{total}] {result.key}: {result.status} "
              f"({result.wall_s:.2f}s"
              + (f", {result.attempts} attempts" if result.attempts > 1 else "")
              + ")", file=sys.stderr)

    batch = run_batch(
        spec, workers=workers, shard_dir=args.shard_dir,
        metrics_out=metrics_out,
        # The live table replaces the per-job progress lines.
        progress=None if live else progress,
        live=(live or verify_stream
              or getattr(args, "stall_after", None) is not None),
        profile=getattr(args, "profile", False),
        stall_after_s=getattr(args, "stall_after", None),
        stall_kill=getattr(args, "stall_kill", False),
        ingest_db=ingest_db,
        store=_open_store(args),
    )
    doc = {
        "spec_digest": spec.digest,
        **batch.summary(),
        "results": [r.to_dict() for r in batch.results],
    }
    if batch.stream_identical is not None:
        doc["stream_identical"] = batch.stream_identical
    if batch.collector is not None:
        doc["telemetry_dropped_events"] = batch.collector.dropped_events()

    deterministic = None
    if args.verify_serial and workers > 1:
        print("verify-serial: re-running the batch with 1 worker...",
              file=sys.stderr)
        serial = run_batch(spec, workers=1, progress=progress)
        deterministic = results_identical(batch.results, serial.results)
        doc["verify_serial"] = {
            "identical": deterministic,
            "serial_wall_s": serial.wall_s,
            "parallel_wall_s": batch.wall_s,
        }
        print(f"verify-serial: parallel results are "
              f"{'bit-identical to' if deterministic else 'DIFFERENT from'} "
              f"serial execution", file=sys.stderr)

    if args.results:
        write_json(args.results, doc)
        print(f"wrote batch results to {args.results}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, sort_keys=True))
    else:
        summary = batch.summary()
        print(f"{summary['ok']}/{summary['jobs']} jobs ok in "
              f"{summary['wall_s']:.2f}s with {summary['workers']} worker(s)")
        for result in batch.results:
            qor = result.qor
            line = f"  {result.key}: {result.status}"
            if result.ok:
                line += (f"  wl={qor.get('wirelength')} "
                         f"it={qor.get('iterations')} "
                         f"crit={qor.get('critical_path_s', 0) * 1e9:.2f}ns")
            print(line)
    if batch.store_stats is not None:
        stats = batch.store_stats
        print(f"result store {args.store}: {stats['hits']} hit(s), "
              f"{stats['misses']} miss(es), {stats['published']} published",
              file=sys.stderr)
    if batch.metrics_path:
        print(f"wrote merged batch telemetry to {batch.metrics_path}",
              file=sys.stderr)
    if batch.ingest is not None:
        state = ("ingested" if batch.ingest.inserted
                 else "already ingested (unchanged)")
        print(f"telemetry warehouse {ingest_db}: run "
              f"#{batch.ingest.run_id} {batch.ingest.digest[:12]} {state}",
              file=sys.stderr)
    if batch.stream_identical is not None:
        dropped = batch.collector.dropped_events() if batch.collector else 0
        print(f"live stream vs shard merge: "
              f"{'byte-identical' if batch.stream_identical else 'DIVERGED'}"
              + (f" ({dropped} events dropped)" if dropped else ""),
              file=sys.stderr)
    if deterministic is False:
        return 3
    if verify_stream and not batch.stream_identical:
        return 4
    return 0 if batch.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.analyze import load_run, render_html, render_report

    try:
        run = load_run(args.run)
    except OSError as exc:
        print(f"error: cannot read {args.run}: {exc}", file=sys.stderr)
        return 2
    for warning in run.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(run))
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    print(render_report(run, flame=not args.no_flame, max_depth=args.max_depth),
          end="")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .obs.analyze import (
        diff_runs,
        diff_to_dict,
        evaluate_thresholds,
        format_diff,
        load_run,
        parse_threshold,
    )

    try:
        thresholds = [parse_threshold(spec) for spec in (args.fail_on or [])]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        run_a, run_b = load_run(args.run_a), load_run(args.run_b)
    except OSError as exc:
        print(f"error: cannot read run: {exc}", file=sys.stderr)
        return 2
    for run in (run_a, run_b):
        for warning in run.warnings:
            print(f"warning: {run.source}: {warning}", file=sys.stderr)
    diff = diff_runs(run_a, run_b)
    verdict = evaluate_thresholds(diff, thresholds)
    if args.json:
        print(json.dumps(diff_to_dict(diff, verdict), sort_keys=True))
    else:
        keys = list(diff.entries) if args.all else None
        print(format_diff(diff, keys=keys, only_changed=args.changed), end="")
    for violation in verdict.violations:
        print(f"FAIL {violation}", file=sys.stderr)
    if thresholds and verdict.ok:
        print(f"OK: {len(thresholds)} regression gate(s) passed", file=sys.stderr)
    return 0 if verdict.ok else 1


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from .obs.analyze import (
        append_history,
        check_history,
        load_bench_file,
        load_history,
        prune_history,
    )

    if args.action == "prune":
        try:
            kept, dropped = prune_history(args.history, keep=args.keep)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"pruned {args.history}: kept {kept} row(s), "
              f"dropped {dropped}", file=sys.stderr)
        return 0
    try:
        rows = [load_bench_file(path) for path in args.bench]
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "append":
        written = append_history(args.history, rows)
        print(f"appended {written} row(s) to {args.history}", file=sys.stderr)
        return 0
    history, warnings = load_history(args.history)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    check = check_history(
        history, rows,
        window=args.window,
        band_pct=args.band,
        wall_times=not args.qor_only,
    )
    if args.json:
        print(json.dumps(check.to_dict(), sort_keys=True))
    else:
        for entry in check.compared:
            pct = entry["pct"]
            print(f"{entry['circuit']:>12s} {entry['measure']:<18s} "
                  f"{entry['current']:>12g} vs median {entry['baseline_median']:>12g} "
                  f"({'+inf' if pct is None else format(pct, '+.1f')}%) "
                  f"{'ok' if entry['ok'] else 'REGRESSION'}")
    for warning in check.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    for violation in check.violations:
        print(f"FAIL {violation}", file=sys.stderr)
    if check.ok:
        print(f"OK: {len(check.compared)} measure(s) within {args.band:g}% "
              f"of median-of-{args.window}", file=sys.stderr)
    return 0 if check.ok else 1


def _db_load_run(con_box: dict, args: argparse.Namespace, selector: str):
    """A `ParsedRun` from a warehouse selector *or* a JSONL file path.

    File paths keep `repro db attribute` usable without any store —
    e.g. against two committed baseline runs in CI — while selectors
    (``latest``, ``latest~1``, run ids, digest prefixes) hit the
    warehouse, connecting lazily on first use.
    """
    from .obs import store
    from .obs.analyze import load_run

    if os.path.exists(selector):
        return load_run(selector)
    if con_box.get("con") is None:
        con_box["con"] = store.connect(args.db)
    con = con_box["con"]
    return store.load_parsed_run(con, store.resolve_run(con, selector))


def _cmd_db(args: argparse.Namespace) -> int:
    from .obs import store

    try:
        if args.action == "ingest":
            con = store.connect(args.db)
            try:
                for path in args.run:
                    try:
                        result = store.ingest_file(con, path, label=args.label)
                    except (OSError, ValueError) as exc:
                        print(f"error: {path}: {exc}", file=sys.stderr)
                        return 2
                    for warning in result.warnings:
                        print(f"warning: {warning}", file=sys.stderr)
                    state = (f"ingested {result.spans} span(s)"
                             if result.inserted else "already ingested")
                    print(f"run #{result.run_id} {result.digest[:12]} "
                          f"{state}: {path}")
            finally:
                con.close()
            return 0

        if args.action == "runs":
            con = store.connect(args.db)
            try:
                rows = store.list_runs(con, limit=args.limit)
            finally:
                con.close()
            if args.json:
                print(json.dumps(rows, sort_keys=True))
                return 0
            print(f"{'id':>4s} {'digest':<12s} {'git sha':<12s} "
                  f"{'circuit':<10s} {'wall s':>9s} {'spans':>6s}  source")
            for row in rows:
                sha = (row["git_sha"] or "-")[:12]
                wall = row["total_wall_s"]
                print(f"{row['run_id']:>4d} {row['digest'][:12]:<12s} "
                      f"{sha:<12s} {(row['circuit'] or '-'):<10s} "
                      f"{'-' if wall is None else format(wall, '9.3f'):>9s} "
                      f"{row['span_count']:>6d}  {row['source']}")
            return 0

        if args.action == "top":
            con = store.connect(args.db)
            try:
                runs = None
                if args.last is not None:
                    runs = [row["run_id"]
                            for row in store.list_runs(con, limit=args.last)]
                rows = store.top_spans(con, k=args.k, runs=runs, by=args.by,
                                       min_count=args.min_count)
            finally:
                con.close()
            if args.json:
                print(json.dumps(rows, sort_keys=True))
                return 0
            print(f"{'agg ' + args.by:>12s} {'mean':>9s} {'max':>9s} "
                  f"{'runs':>5s}  path")
            for row in rows:
                print(f"{row['agg_s']:12.4f} {row['mean_s']:9.4f} "
                      f"{row['max_s']:9.4f} {row['runs']:>5d}  {row['path']}")
            return 0

        if args.action == "trend":
            con = store.connect(args.db)
            try:
                rows = store.trend(con, args.key, since_sha=args.since)
            finally:
                con.close()
            if args.json:
                print(json.dumps(rows, sort_keys=True))
                return 0
            if not rows:
                print(f"no ingested run has measurement {args.key!r}",
                      file=sys.stderr)
                return 1
            values = [row["value"] for row in rows]
            lo, hi = min(values), max(values)
            for row in rows:
                # A 30-column inline bar makes the trajectory legible
                # without plotting dependencies.
                width = (30 if hi == lo
                         else int(round(30 * (row["value"] - lo) / (hi - lo))))
                sha = (row["git_sha"] or "-")[:12]
                print(f"run#{row['run_id']:<4d} {sha:<12s} "
                      f"{row['value']:>12.6g}  {'#' * width}")
            return 0

        # attribute
        from .obs.analyze import (
            attribute_runs,
            format_attribution,
            parse_threshold,
            render_attribution_html,
        )

        try:
            thresholds = [parse_threshold(spec)
                          for spec in (args.fail_on or [])]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        con_box: dict = {"con": None}
        try:
            run_a = _db_load_run(con_box, args, args.run_a)
            run_b = _db_load_run(con_box, args, args.run_b)
        except OSError as exc:
            print(f"error: cannot read run: {exc}", file=sys.stderr)
            return 2
        finally:
            if con_box.get("con") is not None:
                con_box["con"].close()
        for run in (run_a, run_b):
            for warning in run.warnings:
                print(f"warning: {run.source}: {warning}", file=sys.stderr)
        attr = attribute_runs(run_a, run_b)
        violations = attr.check(thresholds)
        if args.html:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(render_attribution_html(attr))
            print(f"wrote attribution HTML to {args.html}", file=sys.stderr)
        if args.json:
            doc = attr.to_dict()
            doc["ok"] = not violations
            doc["violations"] = violations
            print(json.dumps(doc, sort_keys=True))
        else:
            print(format_attribution(attr, top=args.top), end="")
        for violation in violations:
            print(f"FAIL {violation}", file=sys.stderr)
        if thresholds and not violations:
            print(f"OK: {len(thresholds)} attribution gate(s) passed",
                  file=sys.stderr)
        return 0 if not violations else 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMOS-NEM FPGA reproduction (DATE 2012) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_device = sub.add_parser("device", help="relay design-point summary")
    p_device.add_argument("--fabricated", action="store_true",
                          help="the 23um lab device instead of the 22nm point")
    p_device.set_defaults(func=_cmd_device)

    def add_obs_args(p):
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write run manifest + spans + metrics as JSONL")
        p.add_argument("-v", "--verbose", action="count", default=0,
                       help="structured logs to stderr (-vv for debug)")

    def add_store_args(p):
        p.add_argument("--store", metavar="DIR", default=None,
                       help="content-addressed result store: serve cached "
                            "job results instead of re-running, publish "
                            "fresh ones back (see DESIGN.md Sec 5h)")
        p.add_argument("--store-max-bytes", type=int, default=None,
                       metavar="N", help="GC the store down to N blob bytes "
                                         "after publishing")
        p.add_argument("--store-max-entries", type=int, default=None,
                       metavar="N", help="GC the store down to N results "
                                         "after publishing")

    p_xbar = sub.add_parser("crossbar", help="program a crossbar via half-select")
    p_xbar.add_argument("--rows", type=int, default=2)
    p_xbar.add_argument("--cols", type=int, default=2)
    p_xbar.add_argument("--targets", default="0,0;1,1",
                        help="semicolon-separated r,c pairs")
    p_xbar.add_argument("--json", action="store_true",
                        help="machine-readable result on stdout")
    add_obs_args(p_xbar)
    p_xbar.set_defaults(func=_cmd_crossbar)

    def add_flow_args(p, width_default=64):
        p.add_argument("--circuit", default="ava", help="suite circuit name")
        p.add_argument("--scale", type=float, default=0.02,
                       help="circuit shrink factor (DESIGN.md Sec. 6)")
        p.add_argument("--width", type=int, default=width_default, help="channel width W")
        p.add_argument("--seed", type=int, default=1)
        add_obs_args(p)

    p_flow = sub.add_parser("flow", help="pack/place/route + variant table")
    add_flow_args(p_flow)
    add_store_args(p_flow)
    p_flow.add_argument("--variant", default="baseline",
                        help="job variant for --store mode: baseline, "
                             "nem-naive, nem-opt[:downsize]")
    p_flow.add_argument("--timeout", type=float, default=None,
                        help="wall-clock limit for --store mode (seconds)")
    p_flow.add_argument("--downsize", type=float, default=8.0)
    p_flow.add_argument("--show-maps", action="store_true",
                        help="print floorplan and congestion maps")
    p_flow.add_argument("--json", action="store_true",
                        help="machine-readable result on stdout")
    p_flow.add_argument("--profile", action="store_true",
                        help="attach the sampling profiler to the flow; "
                             "stacks land on the cli.flow span under "
                             "--metrics-out, else print to stderr")
    p_flow.add_argument("--route-kernel", default=None,
                        choices=["auto", "python", "numpy", "numba"],
                        help="PathFinder expansion kernel (bit-identical "
                             "results; execution policy only). Default: "
                             "auto, or $REPRO_ROUTE_KERNEL")
    p_flow.set_defaults(func=_cmd_flow)

    p_rr = sub.add_parser(
        "rrgraph", help="FabricIR routing-resource graph statistics")
    p_rr.add_argument("--stats", action="store_true",
                      help="print node/edge counts, memory and build time "
                           "(the default and only mode)")
    p_rr.add_argument("--nx", type=int, default=8, help="grid width in tiles")
    p_rr.add_argument("--ny", type=int, default=8, help="grid height in tiles")
    p_rr.add_argument("--width", type=int, default=64, help="channel width W")
    p_rr.add_argument("--seg-length", type=int, default=4,
                      help="wire segment length L")
    p_rr.add_argument("--directionality", choices=["bidir", "unidir"],
                      default="bidir")
    p_rr.add_argument("--json", action="store_true",
                      help="machine-readable stats on stdout")
    add_obs_args(p_rr)
    p_rr.set_defaults(func=_cmd_rrgraph)

    p_sweep = sub.add_parser("sweep", help="Fig. 12 downsizing trade-off")
    add_flow_args(p_sweep)
    p_sweep.add_argument("--json", action="store_true",
                         help="machine-readable result on stdout")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_headline = sub.add_parser("headline", help="suite-level headline table")
    p_headline.add_argument("--suite", default="altera4", choices=["altera4", "mcnc20"])
    p_headline.add_argument("--scale", type=float, default=0.02)
    p_headline.add_argument("--width", type=int, default=64)
    p_headline.add_argument("--seed", type=int, default=1)
    p_headline.add_argument("--json", action="store_true",
                            help="machine-readable result on stdout")
    add_obs_args(p_headline)
    p_headline.set_defaults(func=_cmd_headline)

    p_map = sub.add_parser("map", help="technology-map a random gate circuit")
    p_map.add_argument("--gates", type=int, default=400)
    p_map.add_argument("--inputs", type=int, default=16)
    p_map.add_argument("--pos", type=int, default=8)
    p_map.add_argument("--ff-fraction", type=float, default=0.2)
    p_map.add_argument("--k", type=int, default=4)
    p_map.add_argument("--seed", type=int, default=1)
    p_map.add_argument("--vectors", type=int, default=128)
    p_map.add_argument("--blif", help="write the mapped netlist to this BLIF file")
    p_map.set_defaults(func=_cmd_map)

    p_explore = sub.add_parser("explore", help="architecture exploration sweeps")
    p_explore.add_argument("--knob", choices=["segment_length", "fc_in"],
                           default="segment_length")
    add_flow_args(p_explore, width_default=48)
    p_explore.set_defaults(func=_cmd_explore)

    def add_batch_args(p):
        p.add_argument("--spec", metavar="PATH",
                       help="batch spec JSON ('jobs' list or 'matrix' object)")
        p.add_argument("--circuits", metavar="LIST",
                       help="comma-separated suite circuit names")
        p.add_argument("--variants", default="baseline", metavar="LIST",
                       help="comma-separated variants: baseline, nem-naive, "
                            "nem-opt[:downsize] (default: baseline)")
        p.add_argument("--seeds", default="1", metavar="LIST",
                       help="comma-separated placement seeds (default: 1)")
        p.add_argument("--width", type=int, default=None,
                       help="channel width W (omit to derive Wmin per job)")
        p.add_argument("--scale", type=float, default=0.02,
                       help="circuit shrink factor (DESIGN.md Sec. 6)")
        p.add_argument("--defect-rates", metavar="LIST", default=None,
                       help="comma-separated fault-campaign rates; each "
                            "adds a flow+inject+self-repair job per matrix "
                            "point (default: no fault axis)")
        p.add_argument("--defect-seed", type=int, default=0,
                       help="fault-campaign seed (default 0)")
        p.add_argument("--defect-mode", default="uniform",
                       choices=["uniform", "variation", "aging"],
                       help="fault-campaign sampling mode")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: the spec's, or 1)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
        p.add_argument("--retries", type=int, default=1,
                       help="relaunch budget per job after a worker crash")
        p.add_argument("--shard-dir", metavar="PATH",
                       help="directory for per-job telemetry/result shards "
                            "(default: a fresh temp dir)")
        p.add_argument("--profile", action="store_true",
                       help="attach the sampling profiler to every job; "
                            "collapsed stacks land on each job's root span "
                            "in the merged telemetry")
        p.add_argument("--stall-after", type=float, default=None, metavar="S",
                       help="flag a worker STALLED? after S seconds without "
                            "a telemetry event (implies the live collector)")
        p.add_argument("--stall-kill", action="store_true",
                       help="soft-kill flagged stalled workers with status "
                            "'stalled' instead of waiting for --timeout")
        p.add_argument("--verify-stream", action="store_true",
                       help="assemble the run model from the live stream "
                            "too and fail (exit 4) unless it is "
                            "byte-identical to the merged shards")
        p.add_argument("--db", metavar="PATH", default=None,
                       help="ingest the merged telemetry into this "
                            "warehouse (needs --metrics-out; see repro db)")
        p.add_argument("--results", metavar="PATH",
                       help="write the full results document as JSON")
        p.add_argument("--verify-serial", action="store_true",
                       help="re-run serially and fail (exit 3) unless the "
                            "parallel results are bit-identical")
        p.add_argument("--json", action="store_true",
                       help="machine-readable results on stdout")
        p.add_argument("--route-kernel", default=None,
                       choices=["auto", "python", "numpy", "numba"],
                       help="PathFinder expansion kernel for every job "
                            "(bit-identical results; never part of job "
                            "identity). Default: auto, or "
                            "$REPRO_ROUTE_KERNEL")
        add_store_args(p)
        add_obs_args(p)

    p_batch = sub.add_parser(
        "batch",
        help="run a (circuit x variant x seed) job matrix over worker processes")
    p_batch.add_argument("--live", action="store_true",
                         help="stream worker telemetry to a live status "
                              "table on stderr while jobs run")
    add_batch_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_watch = sub.add_parser(
        "watch",
        help="run a batch with the live telemetry table (batch --live)")
    add_batch_args(p_watch)
    p_watch.set_defaults(func=_cmd_batch, live=True)

    p_serve = sub.add_parser(
        "serve",
        help="serve flow/batch/sweep requests over a local HTTP JSON API "
             "backed by the result store")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: loopback only)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0: pick an ephemeral port; "
                              "the bind line on stdout carries the choice)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="max concurrent worker processes")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock limit in seconds")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="relaunch budget per job after a worker crash")
    add_store_args(p_serve)
    add_obs_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_faults = sub.add_parser(
        "faults",
        help="defect-injection yield curve: route clean, inject seeded fault "
             "campaigns, self-repair via the degradation ladder")
    p_faults.add_argument("--circuit", default="tseng", help="suite circuit name")
    p_faults.add_argument("--scale", type=float, default=0.02,
                          help="circuit shrink factor (DESIGN.md Sec. 6)")
    p_faults.add_argument("--width", type=int, default=56, help="channel width W")
    p_faults.add_argument("--seed", type=int, default=1, help="placement seed")
    p_faults.add_argument("--rates", default="0.005,0.01,0.02", metavar="LIST",
                          help="comma-separated per-switch defect rates")
    p_faults.add_argument("--campaigns", type=int, default=5,
                          help="independent campaigns per rate (default 5)")
    p_faults.add_argument("--base-seed", type=int, default=0,
                          help="first campaign seed (default 0)")
    p_faults.add_argument("--mode", default="uniform",
                          choices=["uniform", "variation", "aging"],
                          help="campaign sampling mode")
    p_faults.add_argument("--stuck-closed-fraction", type=float, default=0.0,
                          help="portion of each rate sampled as stuck-closed "
                               "stiction faults (default 0 = all stuck-open)")
    p_faults.add_argument("--out", metavar="PATH",
                          help="write the full sweep document as JSON")
    p_faults.add_argument("--json", action="store_true",
                          help="machine-readable sweep on stdout")
    add_obs_args(p_faults)
    p_faults.set_defaults(func=_cmd_faults)

    p_mission = sub.add_parser(
        "mission",
        help="lifetime mission simulation: epoch-stepped Weibull aging with "
             "BIST-triggered self-repair, per-policy degradation curves")
    p_mission.add_argument("--circuit", default="tseng",
                           help="suite circuit name")
    p_mission.add_argument("--scale", type=float, default=0.02,
                           help="circuit shrink factor (DESIGN.md Sec. 6)")
    p_mission.add_argument("--width", type=int, default=56,
                           help="channel width W")
    p_mission.add_argument("--seed", type=int, default=1,
                           help="placement seed")
    p_mission.add_argument("--epochs", type=int, default=8,
                           help="device-time steps (default 8)")
    p_mission.add_argument("--years", type=float, default=10.0,
                           help="mission length in device-years (default 10)")
    p_mission.add_argument("--policy", default="on-failure", metavar="LIST",
                           help="comma-separated repair policies: never, "
                                "on-failure, periodic-<k>, every-epoch-bist, "
                                "widen-early (default: on-failure)")
    p_mission.add_argument("--campaigns", type=int, default=3,
                           help="independent aging trajectories per policy "
                                "(default 3)")
    p_mission.add_argument("--base-seed", type=int, default=0,
                           help="first aging-campaign seed (default 0)")
    p_mission.add_argument("--workers", type=int, default=1,
                           help="worker processes (one job per "
                                "policy x campaign cell)")
    p_mission.add_argument("--timeout", type=float, default=None,
                           help="per-job wall-clock limit in seconds")
    p_mission.add_argument("--verify-serial", action="store_true",
                           help="re-run serially and fail (exit 3) unless "
                                "the parallel results are bit-identical")
    p_mission.add_argument("--out", metavar="PATH",
                           help="write the full mission document as JSON")
    p_mission.add_argument("--json", action="store_true",
                           help="machine-readable document on stdout")
    add_store_args(p_mission)
    add_obs_args(p_mission)
    p_mission.set_defaults(func=_cmd_mission)

    p_report = sub.add_parser(
        "report", help="render a --metrics-out JSONL run as a readable report")
    p_report.add_argument("run", help="telemetry JSONL file")
    p_report.add_argument("--html", metavar="PATH",
                          help="additionally write a standalone HTML report")
    p_report.add_argument("--max-depth", type=int, default=None,
                          help="limit span timeline depth")
    p_report.add_argument("--no-flame", action="store_true",
                          help="skip the text flamegraph section")
    p_report.set_defaults(func=_cmd_report)

    p_diff = sub.add_parser(
        "diff", help="compare two telemetry runs; gate with --fail-on")
    p_diff.add_argument("run_a", help="baseline run JSONL (A)")
    p_diff.add_argument("run_b", help="candidate run JSONL (B)")
    p_diff.add_argument("--fail-on", action="append", metavar="EXPR",
                        help="regression gate, e.g. 'route.wall_s>+10%%' or "
                             "'route.wirelength>+0' (repeatable); exit 1 when "
                             "violated")
    p_diff.add_argument("--changed", action="store_true",
                        help="only show metrics that changed")
    p_diff.add_argument("--all", action="store_true",
                        help="include per-span and per-circuit metrics in the table")
    p_diff.add_argument("--json", action="store_true",
                        help="machine-readable verdict on stdout")
    p_diff.set_defaults(func=_cmd_diff)

    p_hist = sub.add_parser(
        "bench-history",
        help="benchmark-history trajectory: append BENCH_*.json, check regressions")
    hist_sub = p_hist.add_subparsers(dest="action", required=True)
    p_append = hist_sub.add_parser(
        "append", help="summarise BENCH_*.json files into the history JSONL")
    p_append.add_argument("--history", required=True, metavar="PATH",
                          help="history JSONL file (created if absent)")
    p_append.add_argument("bench", nargs="+", help="BENCH_<circuit>.json files")
    p_append.set_defaults(func=_cmd_bench_history)
    p_check = hist_sub.add_parser(
        "check", help="gate BENCH_*.json files against the history median")
    p_check.add_argument("--history", required=True, metavar="PATH")
    p_check.add_argument("--window", type=int, default=5,
                         help="median over the last N history rows (default 5)")
    p_check.add_argument("--band", type=float, default=25.0,
                         help="allowed regression in percent (default 25)")
    p_check.add_argument("--qor-only", action="store_true",
                         help="gate only QoR measures, not wall times "
                              "(for cross-machine comparisons)")
    p_check.add_argument("--json", action="store_true",
                         help="machine-readable verdict on stdout")
    p_check.add_argument("bench", nargs="+", help="BENCH_<circuit>.json files")
    p_check.set_defaults(func=_cmd_bench_history)
    p_prune = hist_sub.add_parser(
        "prune", help="deduplicate the history; optionally trim per circuit")
    p_prune.add_argument("--history", required=True, metavar="PATH")
    p_prune.add_argument("--keep", type=int, default=None, metavar="N",
                         help="keep only the newest N rows per circuit")
    p_prune.set_defaults(func=_cmd_bench_history, bench=[])

    p_db = sub.add_parser(
        "db",
        help="telemetry warehouse: ingest runs into sqlite, query across them")
    p_db.add_argument("--db", default="telemetry.sqlite", metavar="PATH",
                      help="warehouse file (default: telemetry.sqlite)")
    db_sub = p_db.add_subparsers(dest="action", required=True)
    p_ingest = db_sub.add_parser(
        "ingest", help="ingest --metrics-out JSONL runs (idempotent)")
    p_ingest.add_argument("run", nargs="+", help="telemetry JSONL file(s)")
    p_ingest.add_argument("--label", default=None,
                          help="free-form label stored with each run")
    p_ingest.set_defaults(func=_cmd_db)
    p_runs = db_sub.add_parser("runs", help="list ingested runs, newest first")
    p_runs.add_argument("--limit", type=int, default=20)
    p_runs.add_argument("--json", action="store_true",
                        help="machine-readable rows on stdout")
    p_runs.set_defaults(func=_cmd_db)
    p_top = db_sub.add_parser(
        "top", help="top-k span paths by aggregate wall time across runs")
    p_top.add_argument("--k", type=int, default=10)
    p_top.add_argument("--by", choices=["self", "total"], default="self",
                       help="rank by clamped self-time (default) or "
                            "inclusive time")
    p_top.add_argument("--last", type=int, default=None, metavar="N",
                       help="restrict to the newest N runs")
    p_top.add_argument("--min-count", type=int, default=1,
                       help="drop paths seen in fewer runs than this")
    p_top.add_argument("--json", action="store_true",
                       help="machine-readable rows on stdout")
    p_top.set_defaults(func=_cmd_db)
    p_trend = db_sub.add_parser(
        "trend", help="one measurement's trajectory across ingested runs")
    p_trend.add_argument("key",
                         help="measurement name, e.g. route.wall_s, "
                              "total.wall_s, metric.route.net_route_s.p95")
    p_trend.add_argument("--since", metavar="SHA", default=None,
                         help="drop rows older than this git SHA's first run")
    p_trend.add_argument("--json", action="store_true",
                         help="machine-readable rows on stdout")
    p_trend.set_defaults(func=_cmd_db)
    p_attr = db_sub.add_parser(
        "attribute",
        help="decompose the wall-time delta between two runs into exact "
             "per-span contributions, stage roll-ups and critical paths")
    p_attr.add_argument("run_a",
                        help="baseline: a warehouse selector (run id, digest "
                             "prefix, latest[~N]) or a JSONL file path")
    p_attr.add_argument("run_b", help="candidate: selector or JSONL path")
    p_attr.add_argument("--fail-on", action="append", metavar="EXPR",
                        help="stage gate, e.g. 'route>+20%%' or 'total>+1.0' "
                             "(keys: stage alias, total, span.<path>); "
                             "repeatable; exit 1 when violated")
    p_attr.add_argument("--top", type=int, default=15,
                        help="per-span contribution rows shown (default 15)")
    p_attr.add_argument("--html", metavar="PATH",
                        help="write a standalone HTML report with "
                             "differential flamegraphs")
    p_attr.add_argument("--json", action="store_true",
                        help="machine-readable attribution on stdout")
    p_attr.set_defaults(func=_cmd_db)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
