"""Relay reliability: endurance, stiction, and array survival.

The paper's Sec. 1 argument rests on two reliability facts: relays
survive ~billions of cycles [Kam 09, Parsa 10], and FPGA routing only
actuates them at reconfiguration (~500 lifetime events).  This module
provides the standard quantitative machinery behind such claims:

* Weibull cycles-to-failure: ``R(n) = exp(-(n/eta)^beta)`` per device;
* per-actuation stiction: a pulled-in relay fails to release with
  probability p_stick (contact adhesion exceeding the spring force);
* fabric survival: probability that *every* relay in an array still
  works after a number of reconfiguration cycles, with and without
  spare-row repair.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class WeibullEndurance:
    """Weibull cycles-to-failure model for one relay.

    Attributes:
        eta: Characteristic life (cycles at 63.2% failure).
        beta: Shape parameter (>1 = wear-out dominated, typical for
            contact degradation).
    """

    eta: float = 1e9
    beta: float = 1.6

    def __post_init__(self) -> None:
        if self.eta <= 0 or self.beta <= 0:
            raise ValueError("eta and beta must be positive")

    def survival(self, cycles: float) -> float:
        """P(device still functional after ``cycles`` actuations)."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return math.exp(-((cycles / self.eta) ** self.beta))

    def failure_probability(self, cycles: float) -> float:
        return 1.0 - self.survival(cycles)

    def cycles_at_survival(self, target: float) -> float:
        """Cycles at which per-device survival drops to ``target``."""
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        return self.eta * (-math.log(target)) ** (1.0 / self.beta)


@dataclasses.dataclass(frozen=True)
class StictionModel:
    """Per-actuation stiction failure.

    ``p_stick`` is the probability that one pull-in/pull-out cycle
    leaves the contact permanently stuck (adhesion grew past the
    spring restoring force).  Independent per cycle:
    ``P(alive after n) = (1 - p_stick)^n``.
    """

    p_stick: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_stick < 1.0:
            raise ValueError(f"p_stick must be in [0, 1), got {self.p_stick}")

    def survival(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if self.p_stick == 0.0:
            return 1.0
        return math.exp(cycles * math.log(1.0 - self.p_stick))


@dataclasses.dataclass(frozen=True)
class ArrayReliability:
    """Fabric-level survival of ``num_relays`` devices.

    Combines wear-out and stiction per device; the fabric works when
    every (non-repairable) relay works.  ``spare_fraction`` models
    row-level redundancy: the fabric tolerates failures up to the
    spare budget (binomial tail approximated by a Poisson bound, valid
    for the small per-device failure probabilities of interest).
    """

    num_relays: int
    endurance: WeibullEndurance = WeibullEndurance()
    stiction: StictionModel = StictionModel()
    spare_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_relays < 1:
            raise ValueError("num_relays must be positive")
        if not 0.0 <= self.spare_fraction < 1.0:
            raise ValueError("spare_fraction must be in [0, 1)")

    def device_survival(self, cycles: float) -> float:
        return self.endurance.survival(cycles) * self.stiction.survival(cycles)

    def fabric_survival(self, cycles: float) -> float:
        """P(fabric functional after every relay saw ``cycles``)."""
        p_fail = 1.0 - self.device_survival(cycles)
        if p_fail <= 0.0:
            return 1.0
        mean_failures = self.num_relays * p_fail
        spares = int(self.spare_fraction * self.num_relays)
        if spares == 0:
            # All must survive.
            return math.exp(self.num_relays * math.log1p(-p_fail))
        # Poisson tail P(failures <= spares), computed by scipy to stay
        # stable for large means (a hand-rolled term recursion
        # underflows at exp(-mean)).
        from scipy import stats

        return float(stats.poisson.cdf(spares, mean_failures))

    def reconfigurations_at_survival(
        self, target: float = 0.99, actuations_per_reconfig: int = 2
    ) -> int:
        """Max reconfigurations keeping fabric survival >= target."""
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        lo, hi = 0, 1
        while self.fabric_survival(hi * actuations_per_reconfig) >= target and hi < 2**60:
            hi *= 2
        if hi == 1:
            return 0
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.fabric_survival(mid * actuations_per_reconfig) >= target:
                lo = mid
            else:
                hi = mid
        return lo


def required_stiction(num_relays: int, cycles: float, target: float = 0.99) -> float:
    """Max per-actuation stiction probability for a *bare* fabric
    (no spares) to survive at ``target``:

        ((1 - p)^cycles)^N >= target  ->  p <= 1 - target^(1/(N cycles))
    """
    if num_relays < 1 or cycles <= 0:
        raise ValueError("num_relays and cycles must be positive")
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    return 1.0 - target ** (1.0 / (num_relays * cycles))


def paper_scale_report(
    num_relays: int = 7_600_000,
    reconfigurations: int = 500,
    endurance: WeibullEndurance = WeibullEndurance(),
    stiction: StictionModel = StictionModel(),
    spare_fraction: float = 1e-4,
) -> dict:
    """The paper's Sec. 1 argument at fabric scale, quantified.

    Defaults: a mid-size CMOS-NEM FPGA (7.6M relays), the cited ~500
    lifetime reconfigurations, billion-cycle endurance, 1e-9 stiction
    per actuation.  The interesting quantitative finding: per-device
    endurance is overwhelming at 1000 cycles, but a *million-relay*
    bare fabric is stiction-limited — it needs either ~1e-12-class
    stiction or a sliver of spare rows.  (The paper's future-work call
    for consistent contacts, in numbers.)
    """
    bare = ArrayReliability(num_relays=num_relays, endurance=endurance, stiction=stiction)
    spared = ArrayReliability(
        num_relays=num_relays, endurance=endurance, stiction=stiction,
        spare_fraction=spare_fraction,
    )
    cycles = 2.0 * reconfigurations
    return {
        "cycles_per_relay": cycles,
        "device_survival": bare.device_survival(cycles),
        "bare_fabric_survival": bare.fabric_survival(cycles),
        "spared_fabric_survival": spared.fabric_survival(cycles),
        "spared_max_reconfigs_99pct": spared.reconfigurations_at_survival(0.99),
        "required_p_stick_bare_99pct": required_stiction(num_relays, cycles, 0.99),
    }
