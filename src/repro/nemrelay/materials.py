"""Material and ambient constants for NEM relay modelling.

The paper's relays are composite polysilicon--platinum lateral
cantilevers [Parsa 10] measured in oil; the scaled 22nm device is
modelled in air/vacuum.  This module collects the physical constants
the closed-form pull-in/pull-out expressions need.

All quantities are SI unless a suffix says otherwise.
"""

from __future__ import annotations

import dataclasses

#: Vacuum permittivity (F/m).
EPSILON_0 = 8.8541878128e-12


@dataclasses.dataclass(frozen=True)
class Material:
    """Mechanical properties of a beam material.

    Attributes:
        name: Human-readable identifier.
        youngs_modulus: Young's modulus ``E`` in Pa.
        density: Mass density in kg/m^3 (used by the dynamic model).
    """

    name: str
    youngs_modulus: float
    density: float

    def __post_init__(self) -> None:
        if self.youngs_modulus <= 0:
            raise ValueError(f"Young's modulus must be positive, got {self.youngs_modulus}")
        if self.density <= 0:
            raise ValueError(f"density must be positive, got {self.density}")


@dataclasses.dataclass(frozen=True)
class Ambient:
    """Dielectric ambient surrounding the relay.

    Attributes:
        name: Human-readable identifier.
        relative_permittivity: epsilon_r of the medium in the
            actuation gap.
        damping_quality_factor: Effective mechanical quality factor Q
            of the beam in this medium.  Oil is strongly damping
            (Q < 1); vacuum/sealed ambients have high Q.
    """

    name: str
    relative_permittivity: float
    damping_quality_factor: float

    def __post_init__(self) -> None:
        if self.relative_permittivity < 1.0:
            raise ValueError(
                f"relative permittivity must be >= 1, got {self.relative_permittivity}"
            )
        if self.damping_quality_factor <= 0:
            raise ValueError(f"quality factor must be positive, got {self.damping_quality_factor}")

    @property
    def permittivity(self) -> float:
        """Absolute permittivity (F/m)."""
        return self.relative_permittivity * EPSILON_0


#: Polycrystalline silicon, the canonical NEM relay structural material.
POLYSILICON = Material(name="polysilicon", youngs_modulus=160e9, density=2330.0)

#: Composite polysilicon-platinum beam of [Parsa 10].  The *effective*
#: modulus is a calibration constant: with the paper's fabricated
#: dimensions (L=23um, h=500nm, g0=600nm) and oil ambient, the
#: closed-form pull-in voltage reproduces the measured Vpi = 6.2 V
#: (paper Fig. 2b).  The resulting analytic Vpo (~4.3 V) then sits
#: above the measured 2-3.4 V, consistent with the paper's note that
#: neglected surface forces lower the real pull-out voltage.
POLY_PLATINUM = Material(name="poly-platinum", youngs_modulus=39.3e9, density=5200.0)

#: Platinum (contact material in [Parsa 10]).
PLATINUM = Material(name="platinum", youngs_modulus=168e9, density=21450.0)

#: Vacuum / hermetic micro-shell ambient [Gaddi 10, Xie 10].
VACUUM = Ambient(name="vacuum", relative_permittivity=1.0, damping_quality_factor=50.0)

#: Air at atmospheric pressure.
AIR = Ambient(name="air", relative_permittivity=1.0006, damping_quality_factor=2.0)

#: Insulating test oil [Lee 09]: larger permittivity lowers Vpi/Vpo and
#: the viscosity strongly damps the beam.
OIL = Ambient(name="oil", relative_permittivity=2.2, damping_quality_factor=0.4)

#: Dry nitrogen, the other controlled test ambient the paper mentions.
NITROGEN = Ambient(name="nitrogen", relative_permittivity=1.0005, damping_quality_factor=3.0)

AMBIENTS = {a.name: a for a in (VACUUM, AIR, OIL, NITROGEN)}
MATERIALS = {m.name: m for m in (POLYSILICON, POLY_PLATINUM, PLATINUM)}
