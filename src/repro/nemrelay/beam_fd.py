"""Finite-difference Euler-Bernoulli beam solver (model validation).

The paper's closed-form Vpi/Vpo (Sec. 2.1) come from the lumped
spring/parallel-plate model.  This module solves the *distributed*
problem — a cantilever under the nonuniform electrostatic load

    E I w''''(x) = q(x) = eps * width * V^2 / (2 (g0 - w(x))^2)

with clamped-free boundary conditions — by damped Picard iteration on
a fourth-order finite-difference operator, and locates pull-in as the
loss of a converged static solution.  Tests use it to bound the lumped
model's error; it is also a better estimate of the deflection profile
for contact-design studies.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .electrostatics import pull_in_voltage
from .geometry import BeamGeometry
from .materials import Ambient, Material


@dataclasses.dataclass
class BeamSolution:
    """Converged static deflection profile.

    Attributes:
        positions: x samples along the beam (m).
        deflections: w(x) toward the gate (m).
        converged: Whether Picard iteration settled.
    """

    positions: np.ndarray
    deflections: np.ndarray
    converged: bool

    @property
    def tip_deflection(self) -> float:
        return float(self.deflections[-1])


def _bending_operator(n: int, dx: float, flexural_rigidity: float) -> np.ndarray:
    """E I d4/dx4 with clamped (x=0) / free (x=L) boundary conditions.

    Unknowns are w at nodes 1..n (node 0 is the clamp, w=0).  The
    clamped slope (w'(0)=0) is imposed with a ghost node w(-1)=w(1);
    the free end imposes w''=w'''=0 with standard ghost eliminations.
    """
    a = np.zeros((n, n))
    stencil = np.array([1.0, -4.0, 6.0, -4.0, 1.0])
    for i in range(n):
        # Row for node i+1 (1-based physical node index).
        for k, coeff in enumerate(stencil):
            j = i + k - 2  # neighbour physical index - 1
            phys = i + 1 + (k - 2)
            if phys == 0:
                continue  # w = 0 at the clamp
            if phys == -1:
                # ghost: w(-1) = w(1) (clamped slope)
                a[i, 0] += coeff
            elif phys == n + 1:
                # ghost beyond free end: from w''(L)=0 -> w(n+1) =
                # 2 w(n) - w(n-1)
                a[i, n - 1] += 2.0 * coeff
                a[i, n - 2] += -1.0 * coeff
            elif phys == n + 2:
                # second ghost from w'''(L)=0 combined with w''(L)=0:
                # w(n+2) = 3 w(n) - 2 w(n-1)
                a[i, n - 1] += 3.0 * coeff
                a[i, n - 2] += -2.0 * coeff
            else:
                a[i, phys - 1] += coeff
    return flexural_rigidity * a / dx**4


def solve_deflection(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    voltage: float,
    nodes: int = 60,
    max_iterations: int = 400,
    relaxation: float = 0.35,
    tolerance: float = 1e-12,
) -> BeamSolution:
    """Static deflection under gate bias ``voltage`` (damped Picard).

    Divergence (tip running past ~ 0.55 g0 or iteration blow-up) is
    reported as ``converged = False`` — the electromechanical
    instability, i.e. pull-in.
    """
    if nodes < 10:
        raise ValueError(f"need >= 10 nodes, got {nodes}")
    g = geometry
    inertia = g.width * g.thickness**3 / 12.0
    rigidity = material.youngs_modulus * inertia
    dx = g.length / nodes
    operator = _bending_operator(nodes, dx, rigidity)
    lu = np.linalg.inv(operator)
    x = np.linspace(dx, g.length, nodes)
    w = np.zeros(nodes)
    force_scale = 0.5 * ambient.permittivity * g.width * voltage**2
    limit = 0.55 * g.gap  # past the instability for any static branch
    converged = False
    for _ in range(max_iterations):
        gap = g.gap - w
        if np.any(gap <= 0.1 * g.gap):
            break
        load = force_scale / gap**2
        w_new = lu @ load
        w_next = (1.0 - relaxation) * w + relaxation * w_new
        if np.max(w_next) > limit:
            w = w_next
            break
        if np.max(np.abs(w_next - w)) < tolerance * g.gap:
            w = w_next
            converged = True
            break
        w = w_next
    return BeamSolution(positions=x, deflections=w, converged=converged)


def pull_in_voltage_fd(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    nodes: int = 60,
    bisection_steps: int = 22,
) -> float:
    """Pull-in voltage from the distributed model (bisection on the
    existence of a converged static solution)."""
    # Bracket around the lumped estimate.
    v_lumped = pull_in_voltage(material, geometry, ambient)
    lo, hi = 0.2 * v_lumped, 3.0 * v_lumped
    if solve_deflection(material, geometry, ambient, lo, nodes=nodes).converged is False:
        raise RuntimeError("lower bracket already pulls in; geometry out of range")
    if solve_deflection(material, geometry, ambient, hi, nodes=nodes).converged:
        raise RuntimeError("upper bracket does not pull in; geometry out of range")
    for _ in range(bisection_steps):
        mid = 0.5 * (lo + hi)
        if solve_deflection(material, geometry, ambient, mid, nodes=nodes).converged:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def tip_compliance_fd(
    material: Material, geometry: BeamGeometry, nodes: int = 60
) -> float:
    """Tip deflection per unit *uniform* load (m per N/m), from the FD
    operator — cross-checks the analytic q L^4 / (8 E I)."""
    g = geometry
    inertia = g.width * g.thickness**3 / 12.0
    rigidity = material.youngs_modulus * inertia
    dx = g.length / nodes
    operator = _bending_operator(nodes, dx, rigidity)
    w = np.linalg.solve(operator, np.ones(nodes))
    return float(w[-1])
