"""Switching dynamics of the relay beam (mechanical delay).

The paper stresses that NEM relays have *large mechanical switching
delays* (> 1 ns) which is why they are a poor fit for logic but a fine
fit for FPGA routing configuration, where switches only toggle during
(re)programming.  This module quantifies that delay with the standard
1-DOF transient model:

    m_eff x'' + b x' + k_eff x = eps A V^2 / (2 (g0 - x)^2)

integrated with a fixed-step RK4 until the beam crosses the drain
contact plane (x = g0 - gmin).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

from .electrostatics import ActuationModel

#: Effective modal mass fraction of a cantilever's first bending mode.
CANTILEVER_MODAL_MASS_FRACTION = 0.25


def effective_mass(model: ActuationModel) -> float:
    """Effective lumped mass (kg) of the first bending mode."""
    g = model.geometry
    volume = g.length * g.width * g.thickness
    return CANTILEVER_MODAL_MASS_FRACTION * model.material.density * volume


def natural_frequency(model: ActuationModel) -> float:
    """Angular natural frequency omega_0 (rad/s) of the beam."""
    return math.sqrt(model.spring_constant / effective_mass(model))


def damping_coefficient(model: ActuationModel) -> float:
    """Viscous damping b (N s/m) from the ambient's quality factor."""
    q = model.ambient.damping_quality_factor
    return effective_mass(model) * natural_frequency(model) / q


@dataclasses.dataclass(frozen=True)
class Transient:
    """Result of a pull-in (or release) transient simulation.

    Attributes:
        times: Sample instants (s).
        displacements: Beam tip displacement (m) at each instant.
        switching_time: Time to contact (pull-in) or full release, or
            None if the event did not occur within the simulated span.
    """

    times: List[float]
    displacements: List[float]
    switching_time: Optional[float]

    @property
    def switched(self) -> bool:
        return self.switching_time is not None


def _accel(model: ActuationModel, m: float, b: float, x: float, v: float, volt: float) -> float:
    g0 = model.geometry.gap
    gap = max(g0 - x, 1e-12)
    f_elec = 0.5 * model.ambient.permittivity * model.area * (volt / gap) ** 2
    return (f_elec - model.spring_constant * x - b * v) / m


def pull_in_transient(
    model: ActuationModel,
    voltage: float,
    t_max: Optional[float] = None,
    steps: int = 20000,
) -> Transient:
    """Simulate the beam from rest with a gate-voltage step applied.

    Args:
        model: Relay electromechanics.
        voltage: Step magnitude |Vgs|; must exceed Vpi for contact to
            occur (sub-Vpi steps settle at the stable equilibrium and
            the transient reports ``switching_time = None``).
        t_max: Simulation span; defaults to 50 natural periods, ample
            for both inertial and heavily-damped (oil) regimes.
        steps: RK4 steps across the span.

    Returns:
        `Transient` sampled at every integration step.
    """
    if steps < 10:
        raise ValueError(f"steps must be >= 10, got {steps}")
    m = effective_mass(model)
    b = damping_coefficient(model)
    omega0 = natural_frequency(model)
    if t_max is None:
        t_max = 50.0 * 2.0 * math.pi / omega0
    dt = t_max / steps
    travel = model.geometry.travel
    volt = abs(voltage)

    x, v = 0.0, 0.0
    times, xs = [0.0], [0.0]
    switching_time: Optional[float] = None
    for i in range(steps):
        t = i * dt
        # RK4 on the (x, v) system.
        a1 = _accel(model, m, b, x, v, volt)
        k1x, k1v = v, a1
        a2 = _accel(model, m, b, x + 0.5 * dt * k1x, v + 0.5 * dt * k1v, volt)
        k2x, k2v = v + 0.5 * dt * k1v, a2
        a3 = _accel(model, m, b, x + 0.5 * dt * k2x, v + 0.5 * dt * k2v, volt)
        k3x, k3v = v + 0.5 * dt * k2v, a3
        a4 = _accel(model, m, b, x + dt * k3x, v + dt * k3v, volt)
        k4x, k4v = v + dt * k3v, a4
        x = x + dt / 6.0 * (k1x + 2 * k2x + 2 * k3x + k4x)
        v = v + dt / 6.0 * (k1v + 2 * k2v + 2 * k3v + k4v)
        x = max(x, 0.0)
        times.append(t + dt)
        if x >= travel:
            xs.append(travel)
            switching_time = t + dt
            break
        xs.append(x)
    return Transient(times=times, displacements=xs, switching_time=switching_time)


def switching_delay(model: ActuationModel, overdrive: float = 1.2) -> Optional[float]:
    """Mechanical switching delay (s) at ``overdrive x Vpi`` gate step.

    This is the figure of merit the paper quotes as "> 1 ns" for
    scaled relays [Chen 08, 10a].
    """
    if overdrive <= 1.0:
        raise ValueError(f"overdrive must exceed 1.0 for pull-in, got {overdrive}")
    transient = pull_in_transient(model, overdrive * model.pull_in)
    return transient.switching_time


def release_time_constant(model: ActuationModel) -> float:
    """Characteristic release (pull-out) time scale (s).

    After the hold voltage is removed, the beam relaxes as a damped
    oscillator; the release time is of order one natural period for
    underdamped beams and Q-stretched for overdamped ambients.
    """
    omega0 = natural_frequency(model)
    q = model.ambient.damping_quality_factor
    period = 2.0 * math.pi / omega0
    if q >= 0.5:
        return period
    return period / (2.0 * q)


def resonant_frequencies(model: ActuationModel) -> Tuple[float, float]:
    """(f0 in Hz, omega0 in rad/s) of the beam's first mode."""
    omega0 = natural_frequency(model)
    return omega0 / (2.0 * math.pi), omega0
