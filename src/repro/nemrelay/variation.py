"""Fabrication variation Monte-Carlo (paper Fig. 6).

The paper measures Vpi/Vpo for 100 nominally identical relays and
attributes the spread "mostly to variations in the dimensions of the
fabricated relays (such as L, h, and g0)".  This module samples those
dimensions from truncated Gaussians, pushes each sample through the
closed-form Vpi/Vpo, and reports the distributions plus the statistics
the half-select feasibility condition needs:

    min{Vpi - Vpo}  >  Vpi_max - Vpi_min        (paper Sec. 2.3)
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..obs import get_registry, get_tracer
from .electrostatics import pull_in_voltage, pull_out_voltage
from .geometry import BeamGeometry
from .materials import Ambient, Material


@dataclasses.dataclass(frozen=True)
class VariationSpec:
    """Relative 1-sigma variation of each beam dimension.

    The defaults (~2% on lithographic dimensions, ~4% on the contact
    gap which is set by etch/roughness) reproduce the qualitative
    spread of paper Fig. 6: Vpi between ~5.7 and ~6.9 V with a
    programming window that exists but has small noise margins.
    """

    sigma_length: float = 0.02
    sigma_thickness: float = 0.02
    sigma_gap: float = 0.02
    sigma_contact_gap: float = 0.04
    #: Adhesion force spread (absolute, N); contact-surface randomness
    #: widens the Vpo distribution as the paper's Fig. 6 shows.
    sigma_adhesion: float = 0.0
    mean_adhesion: float = 0.0
    #: Samples beyond this many sigmas are re-drawn (keeps dimensions
    #: physical and matches the bounded spread of a real process).
    truncate_sigma: float = 3.0

    def __post_init__(self) -> None:
        for name in ("sigma_length", "sigma_thickness", "sigma_gap", "sigma_contact_gap"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.truncate_sigma <= 0:
            raise ValueError("truncate_sigma must be positive")


@dataclasses.dataclass(frozen=True)
class VariationResult:
    """Monte-Carlo outcome over a population of relays.

    Attributes:
        vpi: Sampled pull-in voltages (V).
        vpo: Sampled pull-out voltages (V).
        geometries: The sampled beam geometries (same order).
    """

    vpi: np.ndarray
    vpo: np.ndarray
    geometries: List[BeamGeometry]

    @property
    def count(self) -> int:
        return len(self.vpi)

    @property
    def vpi_min(self) -> float:
        return float(np.min(self.vpi))

    @property
    def vpi_max(self) -> float:
        return float(np.max(self.vpi))

    @property
    def vpo_min(self) -> float:
        return float(np.min(self.vpo))

    @property
    def vpo_max(self) -> float:
        return float(np.max(self.vpo))

    @property
    def min_hysteresis_window(self) -> float:
        """min over relays of (Vpi - Vpo)."""
        return float(np.min(self.vpi - self.vpo))

    @property
    def vpi_spread(self) -> float:
        """Vpi_max - Vpi_min, the right side of the feasibility rule."""
        return self.vpi_max - self.vpi_min

    def half_select_feasible(self) -> bool:
        """Paper Sec. 2.3 condition: min{Vpi-Vpo} > Vpi_max - Vpi_min."""
        return self.min_hysteresis_window > self.vpi_spread

    def histogram(self, bins: int = 28, voltage_range: Optional[Sequence[float]] = None):
        """(bin_edges, vpi_counts, vpo_counts) as in paper Fig. 6."""
        if voltage_range is None:
            lo = min(self.vpo_min, self.vpi_min)
            hi = max(self.vpo_max, self.vpi_max)
            pad = 0.05 * (hi - lo + 1e-12)
            voltage_range = (lo - pad, hi + pad)
        edges = np.linspace(voltage_range[0], voltage_range[1], bins + 1)
        vpi_counts, _ = np.histogram(self.vpi, bins=edges)
        vpo_counts, _ = np.histogram(self.vpo, bins=edges)
        return edges, vpi_counts, vpo_counts


def _truncated_normal(
    rng: np.random.Generator, mean: float, sigma: float, bound_sigma: float, size: int
) -> np.ndarray:
    """Gaussian samples rejected outside mean +- bound_sigma * sigma."""
    if sigma == 0.0:
        return np.full(size, mean)
    out = rng.normal(mean, sigma, size)
    bad = np.abs(out - mean) > bound_sigma * sigma
    while np.any(bad):
        out[bad] = rng.normal(mean, sigma, int(np.count_nonzero(bad)))
        bad = np.abs(out - mean) > bound_sigma * sigma
    return out


#: Calibrated to paper Fig. 6 (100 fabricated relays measured in oil):
#: ~1.2% lithographic dimension sigma gives Vpi in ~[5.7, 7.0] V, and a
#: ~33 nN mean contact adhesion (same order as published poly-Pt
#: stiction forces) pulls Vpo down into the measured 2-3.4 V band,
#: well below the analytic surface-force-free estimate.
FIG6_VARIATION_SPEC = VariationSpec(
    sigma_length=0.012,
    sigma_thickness=0.012,
    sigma_gap=0.012,
    sigma_contact_gap=0.025,
    mean_adhesion=3.3e-8,
    sigma_adhesion=5.0e-9,
)


def sample_population(
    material: Material,
    nominal: BeamGeometry,
    ambient: Ambient,
    count: int = 100,
    spec: VariationSpec = VariationSpec(),
    seed: int = 2012,
) -> VariationResult:
    """Sample ``count`` relays and evaluate their Vpi/Vpo.

    The default ``count=100`` matches the paper's measured population.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    with get_tracer().span("nemrelay.variation_mc", count=count, seed=seed) as tspan:
        result = _sample_population_impl(material, nominal, ambient, count, spec, seed)
        tspan.set_many(
            vpi_min=result.vpi_min,
            vpi_max=result.vpi_max,
            vpo_min=result.vpo_min,
            vpo_max=result.vpo_max,
            vpi_spread=result.vpi_spread,
            min_hysteresis_window=result.min_hysteresis_window,
            half_select_feasible=result.half_select_feasible(),
        )
        registry = get_registry()
        registry.counter("nemrelay.mc_runs").inc()
        registry.counter("nemrelay.mc_samples").inc(count)
        registry.gauge("nemrelay.vpi_spread_v").set(result.vpi_spread)
        registry.gauge("nemrelay.min_window_v").set(result.min_hysteresis_window)
        vpi_hist = registry.histogram("nemrelay.vpi_v")
        vpo_hist = registry.histogram("nemrelay.vpo_v")
        for vpi_sample, vpo_sample in zip(result.vpi, result.vpo):
            vpi_hist.observe(float(vpi_sample))
            vpo_hist.observe(float(vpo_sample))
        return result


def _sample_population_impl(
    material: Material,
    nominal: BeamGeometry,
    ambient: Ambient,
    count: int,
    spec: VariationSpec,
    seed: int,
) -> VariationResult:
    rng = np.random.default_rng(seed)
    ts = spec.truncate_sigma
    lengths = _truncated_normal(rng, nominal.length, spec.sigma_length * nominal.length, ts, count)
    thicknesses = _truncated_normal(
        rng, nominal.thickness, spec.sigma_thickness * nominal.thickness, ts, count
    )
    gaps = _truncated_normal(rng, nominal.gap, spec.sigma_gap * nominal.gap, ts, count)
    contact_gaps = _truncated_normal(
        rng, nominal.contact_gap, spec.sigma_contact_gap * nominal.contact_gap, ts, count
    )
    adhesions = _truncated_normal(rng, spec.mean_adhesion, spec.sigma_adhesion, ts, count)

    vpi = np.empty(count)
    vpo = np.empty(count)
    geometries: List[BeamGeometry] = []
    for i in range(count):
        contact = min(contact_gaps[i], 0.95 * gaps[i])
        geom = BeamGeometry(
            length=lengths[i],
            thickness=thicknesses[i],
            gap=gaps[i],
            contact_gap=contact,
        )
        geometries.append(geom)
        vpi[i] = pull_in_voltage(material, geom, ambient)
        vpo[i] = pull_out_voltage(material, geom, ambient, max(adhesions[i], 0.0))
    return VariationResult(vpi=vpi, vpo=vpo, geometries=geometries)
