"""3-terminal NEM relay device model.

A `NEMRelay` is a stateful switch:

* **off (pulled-out)**: source and drain disconnected; drain-source
  leakage is zero (the paper measures it below a 10 pA noise floor).
* **on (pulled-in)**: source and drain connected through the beam/drain
  contact resistance ``Ron``.

State transitions follow the hysteretic gate-source voltage rule:
|Vgs| >= Vpi pulls in, |Vgs| <= Vpo releases, and anything inside the
hysteresis window (Vpo, Vpi) *holds* whatever state the relay is in —
this is the property half-select programming exploits (paper Sec. 2.2).

The equivalent circuit (paper Fig. 11) is:

* on-state : series ``Ron`` between S and D, gate capacitance ``Con``,
* off-state: gap capacitance ``Coff`` between S and D.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from .electrostatics import ActuationModel
from .geometry import BeamGeometry, FABRICATED_DEVICE, SCALED_22NM_DEVICE
from .materials import AIR, OIL, Ambient, Material, POLYSILICON, POLY_PLATINUM


class RelayState(enum.Enum):
    """Mechanical state of the relay beam."""

    OFF = "pulled-out"
    ON = "pulled-in"


@dataclasses.dataclass(frozen=True)
class EquivalentCircuit:
    """Small-signal equivalent circuit (paper Fig. 11).

    Attributes:
        r_on: Beam + contact series resistance in the on state (ohm).
        c_on: Gate-side capacitance in the on state (F).
        c_off: Source-drain gap capacitance in the off state (F).
    """

    r_on: float
    c_on: float
    c_off: float

    def __post_init__(self) -> None:
        if self.r_on <= 0:
            raise ValueError(f"r_on must be positive, got {self.r_on}")
        if self.c_on < 0 or self.c_off < 0:
            raise ValueError("capacitances must be non-negative")


#: Equivalent-circuit values of the scaled 22nm relay (paper Fig. 11):
#: Ron from [Parsa 10] experimental data, capacitances from simulation.
SCALED_22NM_CIRCUIT = EquivalentCircuit(r_on=2e3, c_on=20e-18, c_off=6.7e-18)

#: The crossbar relays of paper Sec. 2.3 measured ~100 kOhm contacts
#: (surface contamination without encapsulation).
CROSSBAR_MEASURED_CIRCUIT = EquivalentCircuit(r_on=100e3, c_on=20e-15, c_off=6.7e-15)


class NEMRelay:
    """A stateful 3-terminal NEM relay.

    Args:
        model: The electromechanical actuation model (material,
            geometry, ambient, adhesion).
        circuit: On/off equivalent circuit values.  Defaults to the
            paper's scaled-device values.
        state: Initial mechanical state (default pulled-out).

    The relay exposes `apply_gate_voltage` for quasi-static programming
    (used by the crossbar array and the hysteresis sweeper) and
    `drain_current` for read-out given a drain-source bias.
    """

    def __init__(
        self,
        model: ActuationModel,
        circuit: EquivalentCircuit = SCALED_22NM_CIRCUIT,
        state: RelayState = RelayState.OFF,
    ) -> None:
        self.model = model
        self.circuit = circuit
        self._state = state
        self._vgs = 0.0
        self.switch_count = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> RelayState:
        return self._state

    @property
    def is_on(self) -> bool:
        return self._state is RelayState.ON

    @property
    def gate_voltage(self) -> float:
        """Most recently applied gate-source voltage."""
        return self._vgs

    @property
    def pull_in_voltage(self) -> float:
        return self.model.pull_in

    @property
    def pull_out_voltage(self) -> float:
        return self.model.pull_out

    # -- behaviour -----------------------------------------------------

    def apply_gate_voltage(self, vgs: float) -> RelayState:
        """Quasi-statically apply Vgs and settle the mechanical state.

        Electrostatic force is attractive regardless of polarity, so
        only |Vgs| matters (the half-select scheme exploits this with
        its negative column bias).
        """
        self._vgs = vgs
        magnitude = abs(vgs)
        if self._state is RelayState.OFF and magnitude >= self.model.pull_in:
            self._state = RelayState.ON
            self.switch_count += 1
        elif self._state is RelayState.ON and magnitude <= self.model.pull_out:
            self._state = RelayState.OFF
            self.switch_count += 1
        return self._state

    def drain_current(self, vds: float, compliance: Optional[float] = None) -> float:
        """Drain-source current (A) at bias ``vds``.

        Off-state current is exactly zero (the defining relay
        property).  On-state current is ohmic through Ron, optionally
        clipped at a measurement ``compliance`` limit as in the paper's
        Fig. 2b testing (100 nA compliance).
        """
        if self._state is RelayState.OFF:
            return 0.0
        current = vds / self.circuit.r_on
        if compliance is not None:
            current = max(-compliance, min(compliance, current))
        return current

    def resistance(self) -> float:
        """Source-drain resistance: Ron when on, infinity when off."""
        return self.circuit.r_on if self.is_on else float("inf")

    def capacitance(self) -> float:
        """State-dependent S-D coupling capacitance of Fig. 11."""
        return self.circuit.c_on if self.is_on else self.circuit.c_off

    def reset(self) -> None:
        """Force the relay to the pulled-out state (gate grounded)."""
        self.apply_gate_voltage(0.0)

    def __repr__(self) -> str:
        return (
            f"NEMRelay(state={self._state.value}, Vpi={self.pull_in_voltage:.3g} V, "
            f"Vpo={self.pull_out_voltage:.3g} V, Ron={self.circuit.r_on:.3g} ohm)"
        )


def fabricated_relay(
    adhesion_force: float = 0.0,
    material: Material = POLY_PLATINUM,
    ambient: Ambient = OIL,
    geometry: BeamGeometry = FABRICATED_DEVICE,
) -> NEMRelay:
    """The paper's fabricated large-geometry relay, tested in oil.

    With the calibrated composite-beam modulus the model's Vpi lands on
    the measured 6.2 V (paper Fig. 2b).
    """
    model = ActuationModel(material, geometry, ambient, adhesion_force)
    return NEMRelay(model, circuit=CROSSBAR_MEASURED_CIRCUIT)


def scaled_relay(
    adhesion_force: float = 0.0,
    material: Material = POLYSILICON,
    ambient: Ambient = AIR,
    geometry: BeamGeometry = SCALED_22NM_DEVICE,
) -> NEMRelay:
    """The paper's 22nm-scaled relay (Fig. 11), ~1 V operation."""
    model = ActuationModel(material, geometry, ambient, adhesion_force)
    return NEMRelay(model, circuit=SCALED_22NM_CIRCUIT)
