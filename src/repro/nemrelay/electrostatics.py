"""Electrostatic actuation physics for cantilever NEM relays.

Implements the paper's closed-form pull-in / pull-out voltages
(Sec. 2.1, after [Kaajakari 09]) plus the underlying lumped
spring / parallel-plate model those forms derive from:

``Vpi = sqrt(16 E h^3 g0^3 / (81 eps L^4))``
``Vpo = sqrt( 4 E h^3 gmin^2 (g0 - gmin) / (3 eps L^4))``

The lumped model treats the beam as a linear spring of stiffness
``k_eff`` with a parallel-plate capacitor of area ``A = w * L`` across
the gap.  Pull-in happens at 1/3 gap travel where the electrostatic
force gradient overwhelms the spring (electromechanical instability);
pull-out happens when, at ``x = g0 - gmin``, the spring restoring force
exceeds the electrostatic hold force plus contact adhesion.

The closed forms above are exactly the lumped-model results with the
effective cantilever constants folded in; `pull_in_voltage` /
`pull_out_voltage` evaluate them directly so the module agrees with the
paper symbol-for-symbol, while `equilibrium_gap` exposes the underlying
force-balance solver used by the hysteresis sweep engine.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from .geometry import BeamGeometry
from .materials import Ambient, Material


def effective_spring_constant(material: Material, geometry: BeamGeometry) -> float:
    """Effective tip stiffness of the cantilever (N/m).

    Chosen such that the lumped spring/parallel-plate pull-in result
    ``Vpi = sqrt(8 k g0^3 / (27 eps A))`` reproduces the paper's
    closed form with plate area ``A = w L``:

        k_eff = (2/3) * E * w * (h/L)^3

    (For the distributed electrostatic load on a cantilever this is the
    standard effective stiffness, cf. Kaajakari, Practical MEMS.)
    """
    e_mod = material.youngs_modulus
    g = geometry
    return (2.0 / 3.0) * e_mod * g.width * (g.thickness / g.length) ** 3


def actuation_area(geometry: BeamGeometry) -> float:
    """Electrostatic plate area between gate and beam (m^2)."""
    return geometry.width * geometry.length


def electrostatic_force(voltage: float, gap: float, area: float, permittivity: float) -> float:
    """Attractive parallel-plate force (N) at the given remaining gap."""
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    return 0.5 * permittivity * area * (voltage / gap) ** 2


def pull_in_voltage(material: Material, geometry: BeamGeometry, ambient: Ambient) -> float:
    """Pull-in voltage Vpi (V) — paper Sec. 2.1 closed form.

    ``Vpi = sqrt(16 E h^3 g0^3 / (81 eps L^4))``
    """
    g = geometry
    num = 16.0 * material.youngs_modulus * g.thickness**3 * g.gap**3
    den = 81.0 * ambient.permittivity * g.length**4
    return math.sqrt(num / den)


def pull_out_voltage(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    adhesion_force: float = 0.0,
) -> float:
    """Pull-out voltage Vpo (V) — paper Sec. 2.1 closed form.

    ``Vpo = sqrt(4 E h^3 gmin^2 (g0 - gmin) / (3 eps L^4))``

    ``adhesion_force`` (N) models the surface forces (van der Waals,
    metallic bonding) at the beam-drain contact that the paper notes
    make the *actual* Vpo smaller than the analytic estimate.  The beam
    releases when spring force exceeds electrostatic + adhesion force:

        k (g0 - gmin) = eps A V^2 / (2 gmin^2) + F_adh

    which with F_adh = 0 reduces to the closed form above.
    """
    if adhesion_force < 0:
        raise ValueError(f"adhesion force must be non-negative, got {adhesion_force}")
    g = geometry
    k_eff = effective_spring_constant(material, geometry)
    area = actuation_area(geometry)
    spring_force = k_eff * g.travel
    held = spring_force - adhesion_force
    if held <= 0:
        # Adhesion exceeds the spring restoring force: the relay is
        # permanently stuck (stiction failure); no voltage releases it.
        return 0.0
    return math.sqrt(2.0 * held * g.contact_gap**2 / (ambient.permittivity * area))


def hysteresis_window(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    adhesion_force: float = 0.0,
) -> float:
    """Width of the hysteresis window Vpi - Vpo (V)."""
    return pull_in_voltage(material, geometry, ambient) - pull_out_voltage(
        material, geometry, ambient, adhesion_force
    )


@dataclasses.dataclass(frozen=True)
class ActuationModel:
    """Lumped 1-DOF electromechanical model of one relay.

    Bundles material/geometry/ambient and exposes force balance,
    Vpi/Vpo, and quasi-static equilibrium solutions.  This is the
    substrate for `hysteresis.sweep_iv` and `dynamics.pull_in_transient`.
    """

    material: Material
    geometry: BeamGeometry
    ambient: Ambient
    adhesion_force: float = 0.0

    @property
    def spring_constant(self) -> float:
        return effective_spring_constant(self.material, self.geometry)

    @property
    def area(self) -> float:
        return actuation_area(self.geometry)

    @property
    def pull_in(self) -> float:
        return pull_in_voltage(self.material, self.geometry, self.ambient)

    @property
    def pull_out(self) -> float:
        return pull_out_voltage(self.material, self.geometry, self.ambient, self.adhesion_force)

    def net_force(self, displacement: float, voltage: float) -> float:
        """Net tip force (N, positive toward the gate) at displacement x.

        F = eps A V^2 / (2 (g0 - x)^2) - k x
        """
        g = self.geometry
        if not 0 <= displacement < g.gap:
            raise ValueError(f"displacement {displacement} outside [0, g0={g.gap})")
        f_elec = electrostatic_force(voltage, g.gap - displacement, self.area, self.ambient.permittivity)
        return f_elec - self.spring_constant * displacement

    def equilibrium_gap(self, voltage: float) -> Optional[float]:
        """Stable equilibrium displacement for |V| below pull-in.

        Returns the stable root of the force balance in [0, g0/3], or
        None when |V| >= Vpi (no stable free position: the beam snaps
        to the drain).  Solved by bisection on the net force, which is
        positive at x=0+ and changes sign at the stable root.
        """
        v_abs = abs(voltage)
        if v_abs >= self.pull_in:
            return None
        if v_abs == 0.0:
            return 0.0
        g0 = self.geometry.gap
        lo, hi = 0.0, g0 / 3.0
        # net_force(0, V) > 0 for V > 0; net_force(g0/3, V) < 0 for V < Vpi.
        f_hi = self.net_force(hi, v_abs)
        if f_hi > 0:
            # Numerical edge exactly at the instability point.
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.net_force(mid, v_abs) > 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def is_held(self, voltage: float) -> bool:
        """True if a pulled-in beam stays pulled in at this gate voltage.

        The beam stays down while electrostatic hold force at gmin plus
        adhesion exceeds the spring restoring force, i.e. |V| > Vpo.
        """
        return abs(voltage) > self.pull_out
