"""Technology scaling of NEM relay devices.

The paper's fabricated relays are optical-lithography sized
(L = 23 um) and thus need Vpi = 6.2 V; "CMOS-compatible operation
voltages (~1 V) can be achieved through scaling" [Akarvardar 09,
Chong 11, Kam 09], and Fig. 11 gives the scaled 22nm-node dimensions.

This module provides:

* `scale_to_pull_in` — given a target Vpi, shrink a geometry along a
  constant-shape trajectory (all lateral dimensions by one factor) and
  solve for the factor analytically: for isomorphic scaling by s,
  Vpi scales as sqrt(h^3 g0^3 / L^4) ~ s^(3/2+3/2-2) = s, so the
  factor is simply Vpi_target / Vpi_now.
* `node_device` — the paper's published per-node device (22nm from
  Fig. 11) plus constant-Vpi projections to neighbouring nodes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from .electrostatics import pull_in_voltage, pull_out_voltage
from .geometry import BeamGeometry, SCALED_22NM_DEVICE
from .materials import AIR, Ambient, Material, POLYSILICON


def isomorphic_vpi_scaling_exponent() -> float:
    """d(log Vpi)/d(log s) for uniform scaling of (L, h, g0) by s.

    Vpi ~ sqrt(h^3 g0^3 / L^4) -> exponent (3 + 3 - 4)/2 = 1.
    """
    return 1.0


def scale_to_pull_in(
    geometry: BeamGeometry,
    material: Material,
    ambient: Ambient,
    target_vpi: float,
) -> BeamGeometry:
    """Uniformly scale a geometry so its analytic Vpi hits the target.

    Because Vpi is linear in the isomorphic scale factor, the solution
    is exact in one step (verified by the returned geometry's Vpi).
    """
    if target_vpi <= 0:
        raise ValueError(f"target Vpi must be positive, got {target_vpi}")
    current = pull_in_voltage(material, geometry, ambient)
    factor = target_vpi / current
    return geometry.scaled(factor)


@dataclasses.dataclass(frozen=True)
class NodeDevice:
    """A NEM relay design point at a CMOS technology node."""

    node_nm: int
    geometry: BeamGeometry
    material: Material = POLYSILICON
    ambient: Ambient = AIR

    @property
    def vpi(self) -> float:
        return pull_in_voltage(self.material, self.geometry, self.ambient)

    @property
    def vpo(self) -> float:
        return pull_out_voltage(self.material, self.geometry, self.ambient)


def node_device(node_nm: int) -> NodeDevice:
    """Relay design point for a technology node.

    22nm returns exactly the paper's Fig. 11 device.  Other nodes are
    isomorphic projections: all dimensions track the node's
    feature-size ratio relative to 22nm (relay dimensions are
    lithography limited).  Vpi is linear in that factor, so coarser
    nodes need proportionally higher programming voltages and the
    ~1 V CMOS-compatible point is reached at 22nm — the paper's
    stated scaling goal.
    """
    supported = (45, 32, 22, 16, 14)
    if node_nm not in supported:
        raise ValueError(f"unsupported node {node_nm} nm; choose from {supported}")
    factor = node_nm / 22.0
    geometry = SCALED_22NM_DEVICE if node_nm == 22 else SCALED_22NM_DEVICE.scaled(factor)
    return NodeDevice(node_nm=node_nm, geometry=geometry)


def scaling_table(nodes=(45, 32, 22, 16, 14)) -> Dict[int, Dict[str, float]]:
    """Summary table of device dimensions and voltages per node."""
    table: Dict[int, Dict[str, float]] = {}
    for node in nodes:
        dev = node_device(node)
        g = dev.geometry
        table[node] = {
            "length_nm": g.length * 1e9,
            "thickness_nm": g.thickness * 1e9,
            "gap_nm": g.gap * 1e9,
            "contact_gap_nm": g.contact_gap * 1e9,
            "vpi_v": dev.vpi,
            "vpo_v": dev.vpo,
        }
    return table
