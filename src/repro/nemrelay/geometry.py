"""Beam geometry for 3-terminal NEM relays.

The relay (paper Fig. 2a) is a cantilever beam anchored at the source
electrode.  A gate electrode runs alongside the beam across an
actuation gap ``g0``; the drain contact sits so that when the beam
pulls in, a residual gap ``gmin`` remains between beam and gate while
beam and drain touch.

Geometry conventions (paper Fig. 2b / Fig. 11):

* ``length``   — beam length L along the cantilever axis,
* ``thickness``— beam thickness h in the direction of motion,
* ``width``    — beam depth w orthogonal to motion (out-of-plane for
  the paper's lateral relays; defaults to the film thickness),
* ``gap``      — as-fabricated gate-to-beam gap g0,
* ``contact_gap`` — gmin, the gate-to-beam gap in the pulled-in state
  (so the beam tip travels g0 - gmin before hitting the drain).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class BeamGeometry:
    """Dimensions of a NEM relay cantilever, all in meters."""

    length: float
    thickness: float
    gap: float
    contact_gap: float
    width: float = 0.0

    def __post_init__(self) -> None:
        for name in ("length", "thickness", "gap", "contact_gap"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.contact_gap >= self.gap:
            raise ValueError(
                f"contact_gap (gmin={self.contact_gap}) must be smaller than "
                f"the as-fabricated gap (g0={self.gap})"
            )
        if self.width < 0:
            raise ValueError(f"width must be non-negative, got {self.width}")
        if self.width == 0.0:
            # Lateral relays: the out-of-plane depth equals the structural
            # film thickness; default to a square cross-section which keeps
            # the closed-form Vpi/Vpo independent of width (it cancels).
            object.__setattr__(self, "width", self.thickness)

    @property
    def travel(self) -> float:
        """Tip travel distance from released to pulled-in (m)."""
        return self.gap - self.contact_gap

    @property
    def aspect_ratio(self) -> float:
        """Slenderness L/h; Euler-Bernoulli theory wants >~ 10."""
        return self.length / self.thickness

    def scaled(self, factor: float) -> "BeamGeometry":
        """Return geometry with every dimension multiplied by ``factor``.

        Isomorphic scaling keeps Vpi invariant only if L^4 scales like
        h^3 g0^3 (i.e. it does not); use `repro.nemrelay.scaling` for
        constant-field style scaling recipes.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return BeamGeometry(
            length=self.length * factor,
            thickness=self.thickness * factor,
            gap=self.gap * factor,
            contact_gap=self.contact_gap * factor,
            width=self.width * factor,
        )


#: The fabricated device of paper Fig. 2b (L ~ 23 um, h ~ 500 nm,
#: g0 ~ 600 nm).  gmin is not reported for this device; we use the same
#: gmin/g0 ratio as the scaled device of Fig. 11 (3.6/11).
FABRICATED_DEVICE = BeamGeometry(
    length=23e-6,
    thickness=500e-9,
    gap=600e-9,
    contact_gap=196e-9,
)

#: The scaled 22nm-node device of paper Fig. 11.
SCALED_22NM_DEVICE = BeamGeometry(
    length=275e-9,
    thickness=11e-9,
    gap=11e-9,
    contact_gap=3.6e-9,
)
