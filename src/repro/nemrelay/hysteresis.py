"""Quasi-static I-V hysteresis sweeps (paper Fig. 2b).

The paper characterises relays by sweeping Vgs up and down while
biasing the drain and recording Ids on a log scale with a 100 nA
current compliance.  `sweep_iv` reproduces that measurement on a
`NEMRelay`: the up-sweep shows zero current (below an emulated
instrument noise floor) until Vpi, then compliance-limited on-current;
the down-sweep holds the on state until Vpo.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from .device import NEMRelay, RelayState

#: The paper's measurement noise floor: off-state currents read as
#: "zero leakage (below noise floor)" at 10 pA.
NOISE_FLOOR_A = 10e-12

#: Current compliance applied during the paper's Fig. 2b testing.
COMPLIANCE_A = 100e-9


@dataclasses.dataclass(frozen=True)
class IVPoint:
    """One point of a swept I-V characteristic."""

    vgs: float
    ids: float
    state: RelayState


@dataclasses.dataclass(frozen=True)
class IVCurve:
    """A full up+down Vgs sweep.

    Attributes:
        points: Samples in sweep order (up then down).
        pull_in_observed: Vgs at which the relay turned on, or None.
        pull_out_observed: Vgs at which the relay turned off, or None.
    """

    points: List[IVPoint]
    pull_in_observed: Optional[float]
    pull_out_observed: Optional[float]

    @property
    def hysteresis_window(self) -> Optional[float]:
        """Observed Vpi - Vpo, or None if either edge was not seen."""
        if self.pull_in_observed is None or self.pull_out_observed is None:
            return None
        return self.pull_in_observed - self.pull_out_observed

    def up_branch(self) -> List[IVPoint]:
        """Points of the increasing-Vgs half of the sweep."""
        half = len(self.points) // 2
        return self.points[:half]

    def down_branch(self) -> List[IVPoint]:
        """Points of the decreasing-Vgs half of the sweep."""
        half = len(self.points) // 2
        return self.points[half:]


def triangle_sweep(v_max: float, steps: int) -> List[float]:
    """Vgs values for a 0 -> v_max -> 0 triangular sweep."""
    if v_max <= 0:
        raise ValueError(f"v_max must be positive, got {v_max}")
    if steps < 2:
        raise ValueError(f"steps must be >= 2, got {steps}")
    up = [v_max * i / (steps - 1) for i in range(steps)]
    down = list(reversed(up))
    return up + down


def sweep_iv(
    relay: NEMRelay,
    vgs_values: Optional[Sequence[float]] = None,
    vds: float = 0.1,
    compliance: float = COMPLIANCE_A,
    noise_floor: float = NOISE_FLOOR_A,
) -> IVCurve:
    """Measure an I-V curve by quasi-statically stepping Vgs.

    Args:
        relay: Device under test (left in its final swept state).
        vgs_values: Sweep points; defaults to a triangular sweep to
            1.3x the relay's Vpi, mirroring the paper's sweeps past
            pull-in.
        vds: Read-out drain bias.
        compliance: Instrument current limit (paper: 100 nA).
        noise_floor: Currents below this read as the floor value, so
            off-state points plot at the 10 pA floor exactly as in
            Fig. 2b ("zero leakage, below noise floor").

    Returns:
        The recorded `IVCurve` with observed pull-in/pull-out voltages.
    """
    if vgs_values is None:
        vgs_values = triangle_sweep(1.3 * relay.pull_in_voltage, steps=200)
    points: List[IVPoint] = []
    pull_in_observed: Optional[float] = None
    pull_out_observed: Optional[float] = None
    previous = relay.state
    for vgs in vgs_values:
        state = relay.apply_gate_voltage(vgs)
        if previous is RelayState.OFF and state is RelayState.ON:
            pull_in_observed = vgs
        elif previous is RelayState.ON and state is RelayState.OFF:
            pull_out_observed = vgs
        previous = state
        ids = relay.drain_current(vds, compliance=compliance)
        if abs(ids) < noise_floor:
            ids = noise_floor
        points.append(IVPoint(vgs=vgs, ids=ids, state=state))
    return IVCurve(points, pull_in_observed, pull_out_observed)


def repeated_sweeps(relay: NEMRelay, cycles: int, **kwargs) -> List[IVCurve]:
    """Multiple pull-in/pull-out cycles (Fig. 2b overlays several).

    Resets the relay before each sweep and returns one curve per cycle.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    curves = []
    for _ in range(cycles):
        relay.reset()
        curves.append(sweep_iv(relay, **kwargs))
    return curves
