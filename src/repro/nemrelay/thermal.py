"""Temperature dependence of relay switching voltages.

Related work the paper cites ([Wang 11]) runs NEM FPGAs above 500 C;
and any real CMOS-NEM part must hold its *room-temperature-chosen*
programming point across the operating range.  First-order physics:

* Young's modulus softens roughly linearly,
  ``E(T) = E0 (1 - k_E (T - T0))`` with k_E ~ 60 ppm/K for silicon;
* thermal expansion reshapes the beam isotropically by
  ``1 + alpha (T - T0)`` (alpha ~ 2.6 ppm/K for Si) — a second-order
  effect on Vpi since the closed form is scale-linear.

Both Vpi and Vpo scale as sqrt(E), so the hysteresis window narrows
with temperature while a fixed (Vhold, Vselect) stays put:
`max_hold_temperature` finds where the hold/select constraints break.
"""

from __future__ import annotations

import dataclasses

from .electrostatics import pull_in_voltage, pull_out_voltage
from .geometry import BeamGeometry
from .materials import Ambient, Material

#: Young's modulus softening of silicon-class materials (1/K).
SILICON_SOFTENING_PER_K = 60e-6

#: Linear thermal expansion of silicon (1/K).
SILICON_EXPANSION_PER_K = 2.6e-6

ROOM_TEMPERATURE_K = 300.0


@dataclasses.dataclass(frozen=True)
class ThermalModel:
    """First-order thermal coefficients of the beam material."""

    softening_per_k: float = SILICON_SOFTENING_PER_K
    expansion_per_k: float = SILICON_EXPANSION_PER_K
    reference_k: float = ROOM_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.softening_per_k < 0 or self.expansion_per_k < 0:
            raise ValueError("thermal coefficients must be non-negative")

    def modulus_scale(self, temperature_k: float) -> float:
        scale = 1.0 - self.softening_per_k * (temperature_k - self.reference_k)
        if scale <= 0.0:
            raise ValueError(
                f"temperature {temperature_k} K beyond the linear softening model"
            )
        return scale

    def dimension_scale(self, temperature_k: float) -> float:
        return 1.0 + self.expansion_per_k * (temperature_k - self.reference_k)


def material_at(material: Material, model: ThermalModel, temperature_k: float) -> Material:
    """Material with its modulus softened to ``temperature_k``."""
    return dataclasses.replace(
        material,
        name=f"{material.name}@{temperature_k:.0f}K",
        youngs_modulus=material.youngs_modulus * model.modulus_scale(temperature_k),
    )


def geometry_at(geometry: BeamGeometry, model: ThermalModel, temperature_k: float) -> BeamGeometry:
    """Geometry isotropically expanded to ``temperature_k``."""
    return geometry.scaled(model.dimension_scale(temperature_k))


def vpi_at(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    temperature_k: float,
    model: ThermalModel = ThermalModel(),
) -> float:
    """Pull-in voltage at temperature (softened E, expanded dims)."""
    return pull_in_voltage(
        material_at(material, model, temperature_k),
        geometry_at(geometry, model, temperature_k),
        ambient,
    )


def vpo_at(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    temperature_k: float,
    model: ThermalModel = ThermalModel(),
) -> float:
    """Pull-out voltage at temperature."""
    return pull_out_voltage(
        material_at(material, model, temperature_k),
        geometry_at(geometry, model, temperature_k),
        ambient,
    )


def max_hold_temperature(
    material: Material,
    geometry: BeamGeometry,
    ambient: Ambient,
    v_hold: float,
    v_select: float,
    model: ThermalModel = ThermalModel(),
    t_max_k: float = 1000.0,
) -> float:
    """Highest temperature at which a fixed programming point stays
    valid (Fig. 4 constraints re-checked with thermally drifted
    Vpi/Vpo).  Vpi falls as silicon softens, so the binding failure is
    usually the half-select level crossing pull-in.
    """
    from ..crossbar.halfselect import ProgrammingVoltages

    point = ProgrammingVoltages(v_hold=v_hold, v_select=v_select)

    def valid(t: float) -> bool:
        vpi = vpi_at(material, geometry, ambient, t, model)
        vpo = vpo_at(material, geometry, ambient, t, model)
        return point.is_valid(vpi, vpo)

    t0 = model.reference_k
    if not valid(t0):
        raise ValueError("programming point invalid even at the reference temperature")
    if valid(t_max_k):
        return t_max_k
    lo, hi = t0, t_max_k
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if valid(mid):
            lo = mid
        else:
            hi = mid
    return lo
