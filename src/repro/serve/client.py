"""Blocking stdlib client for a `repro serve` endpoint.

`ServeClient` is the programmatic (and test/CI) counterpart of the
server's JSON API: submit a flow/batch/sweep, read stats, subscribe to
the NDJSON event stream.  Plain `http.client` underneath — callers
embedding it (benchmarks, smoke tests, notebooks) need nothing beyond
the standard library.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional

from ..runner.spec import JobResult, JobSpec


class ServeError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, body: str) -> None:
        super().__init__(f"serve returned {status}: {body[:200]}")
        self.status = status
        self.body = body


class ServeClient:
    """One logical client of a running `repro serve`.

    Args:
        host / port: The server's TCP address.
        name: Client identity sent with every submission — the unit
            of the server's round-robin fairness.
        timeout_s: Socket timeout per request (None = wait forever;
            jobs can take a while, so the default is generous).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 name: str = "anon", timeout_s: Optional[float] = 600.0):
        self.host = host
        self.port = port
        self.name = name
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read().decode("utf-8")
            if response.status != 200:
                raise ServeError(response.status, raw)
            return json.loads(raw)
        finally:
            connection.close()

    # -- API -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def flow(self, job: JobSpec, priority: int = 0) -> Dict[str, object]:
        """Run (or fetch) one job; returns the raw response document
        (``result`` / ``how`` / ``wall_s``)."""
        doc = self._request("POST", "/flow", {
            "job": job.to_dict(), "client": self.name,
            "priority": priority})
        doc["result"] = JobResult.from_dict(doc["result"])
        return doc

    def batch(self, jobs: List[JobSpec],
              priority: int = 0) -> Dict[str, object]:
        """Run a list of jobs; ``results`` comes back in request order
        as `JobResult`s, ``how`` as per-disposition counts."""
        doc = self._request("POST", "/batch", {
            "jobs": [job.to_dict() for job in jobs],
            "client": self.name, "priority": priority})
        doc["results"] = [JobResult.from_dict(r) for r in doc["results"]]
        return doc

    def sweep(self, priority: int = 0, **matrix) -> Dict[str, object]:
        """Run a matrix/fault sweep (`BatchSpec.from_matrix` axes)."""
        doc = self._request("POST", "/sweep", {
            **matrix, "client": self.name, "priority": priority})
        doc["results"] = [JobResult.from_dict(r) for r in doc["results"]]
        return doc

    def gc(self) -> dict:
        return self._request("POST", "/gc")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def events(self, max_events: Optional[int] = None,
               timeout_s: Optional[float] = None) -> Iterator[dict]:
        """Subscribe to the server's telemetry stream.

        Yields one event dict per NDJSON line (the first is always
        ``serve.hello``) until the stream closes, ``max_events`` have
        arrived, or the socket times out.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s)
        try:
            connection.request("GET", "/events")
            response = connection.getresponse()
            if response.status != 200:
                raise ServeError(response.status,
                                 response.read().decode("utf-8"))
            seen = 0
            while max_events is None or seen < max_events:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
                seen += 1
        finally:
            connection.close()
