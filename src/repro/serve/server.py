"""The `repro serve` asyncio front-end (see package docstring).

One process, three planes:

* **HTTP plane** — a hand-rolled HTTP/1.1 JSON API on an asyncio
  stream server (stdlib only; a local service does not need a web
  framework).  Request bodies and responses are plain JSON; the
  ``/events`` response is an NDJSON stream that stays open.
* **Scheduling plane** — submissions dedup single-flight on the
  result-store key (identical in-flight requests await one
  execution), then enter a priority queue drained round-robin across
  clients within each priority class, so one chatty client cannot
  starve the rest.  A semaphore caps concurrent worker processes.
* **Execution plane** — each dispatched job runs through
  `repro.runner.executor.run_single_job` in a thread
  (`asyncio.to_thread`), which forks the same process-per-job worker
  the batch runner uses; worker telemetry events flow back over one
  multiprocessing queue, get folded into a `TelemetryCollector`, and
  fan out to every connected ``/events`` subscriber.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import json
import tempfile
import time
from typing import Deque, Dict, List, Optional, Tuple

from ..obs import TelemetryCollector, TraceContext, get_logger, kv
from ..runner.executor import _mp_context, run_single_job
from ..runner.spec import BatchSpec, JobResult, JobSpec
from ..store import ResultStore

_log = get_logger("serve.server")

#: Bump when a request/response shape changes incompatibly.
SERVE_SCHEMA_VERSION = 1

#: How often the event-queue pump folds worker events (s).
_PUMP_S = 0.05

_MAX_BODY = 8 * 1024 * 1024


@dataclasses.dataclass
class _Submission:
    """One job admitted to the scheduler."""

    spec: JobSpec
    client: str
    priority: int
    future: "asyncio.Future"
    index: int


class Server:
    """The serve scheduler + HTTP front-end.

    Args:
        store: Result store backing the service (every request is
            checked against it, and fresh results are published).
        workers: Max concurrent worker processes.
        timeout_s / retries: Per-job execution policy.
        host / port: TCP bind (port 0 picks an ephemeral port).
    """

    def __init__(self, store: ResultStore, workers: int = 2,
                 timeout_s: Optional[float] = None, retries: int = 1,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.retries = retries
        self.host = host
        self.port = port
        self.collector = TelemetryCollector()
        self.started = time.time()
        # priority -> client -> FIFO of submissions; clients rotate.
        self._queues: Dict[int, Dict[str, Deque[_Submission]]] = {}
        self._rotation: Dict[int, Deque[str]] = {}
        self._queued = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._event_queue = _mp_context().Queue()
        self._shard_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self._index = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task"] = []
        self._stopping: Optional[asyncio.Event] = None
        self.stats: Dict[str, int] = collections.defaultdict(int)

    # -- scheduling ----------------------------------------------------

    def _flight_key(self, spec: JobSpec) -> str:
        """Single-flight identity: the store key when the job is
        cacheable, the bare job key otherwise (fault-injected jobs
        still coalesce — two clients asking for the same crash test
        get the same crash)."""
        if spec.fault:
            return f"fault:{spec.key}"
        return self.store.entry_id(spec)

    async def submit(self, spec: JobSpec, client: str = "anon",
                     priority: int = 0) -> Tuple[JobResult, str]:
        """Admit one job; returns ``(result, how)`` where ``how`` is
        ``"hit"`` (served from the store), ``"coalesced"`` (attached
        to an identical in-flight request) or ``"executed"``."""
        self.stats["requests"] += 1
        hit = await asyncio.to_thread(self.store.get, spec)
        if hit is not None:
            self.stats["hits"] += 1
            return hit, "hit"
        key = self._flight_key(spec)
        flight = self._inflight.get(key)
        if flight is not None:
            self.stats["coalesced"] += 1
            return await asyncio.shield(flight), "coalesced"
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._index += 1
        submission = _Submission(spec=spec, client=str(client or "anon"),
                                 priority=int(priority), future=future,
                                 index=self._index)
        self._enqueue(submission)
        try:
            result = await asyncio.shield(future)
        finally:
            self._inflight.pop(key, None)
        self.stats["executed"] += 1
        return result, "executed"

    def _enqueue(self, submission: _Submission) -> None:
        per_client = self._queues.setdefault(submission.priority, {})
        if submission.client not in per_client:
            per_client[submission.client] = collections.deque()
            self._rotation.setdefault(
                submission.priority, collections.deque()).append(
                    submission.client)
        per_client[submission.client].append(submission)
        self._queued += 1
        if self._wakeup is not None:
            self._wakeup.set()

    def _next_submission(self) -> Optional[_Submission]:
        """Lowest priority class first; round-robin across clients
        within the class (take one job, rotate the client to the
        back), so interleaved clients make equal progress."""
        for priority in sorted(self._queues):
            rotation = self._rotation[priority]
            per_client = self._queues[priority]
            for _ in range(len(rotation)):
                client = rotation[0]
                rotation.rotate(-1)
                queue = per_client.get(client)
                if queue:
                    self._queued -= 1
                    return queue.popleft()
        return None

    def queue_depth(self) -> int:
        return self._queued

    async def _dispatcher(self) -> None:
        assert self._slots is not None and self._wakeup is not None
        while True:
            submission = self._next_submission()
            if submission is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._slots.acquire()
            task = asyncio.ensure_future(self._run(submission))
            self._tasks.append(task)
            task.add_done_callback(self._tasks.remove)

    async def _run(self, submission: _Submission) -> None:
        assert self._slots is not None
        spec = submission.spec
        trace = TraceContext(trace_id=f"serve-{submission.index}",
                             span_prefix=f"j{submission.index}.")
        self.collector.expect(spec.key, submission.index)
        self.stats["running"] += 1
        try:
            result = await asyncio.to_thread(
                run_single_job, spec,
                timeout_s=self.timeout_s, retries=self.retries,
                shard_dir=self._shard_dir, index=submission.index,
                trace=trace, event_queue=self._event_queue,
                store=None if spec.fault else self.store)
            if not submission.future.done():
                submission.future.set_result(result)
        except Exception as exc:  # noqa: BLE001 - surface to the caller
            if not submission.future.done():
                submission.future.set_exception(exc)
        finally:
            self.stats["running"] -= 1
            self._slots.release()

    async def _pump(self) -> None:
        while True:
            self.collector.pump(self._event_queue)
            await asyncio.sleep(_PUMP_S)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._stopping = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for coro in (self._dispatcher(), self._pump()):
            task = loop.create_task(coro)
            self._tasks.append(task)
        _log.info("serve listening %s", kv(host=self.host, port=self.port,
                                           store=self.store.root,
                                           workers=self.workers))

    async def wait_stopped(self) -> None:
        assert self._stopping is not None
        await self._stopping.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._stopping is not None:
            self._stopping.set()

    # -- HTTP plane ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request must
            # not take the service down
            _log.info("request failed %s", kv(error=repr(exc)))
            try:
                await _respond(writer, 500, {"error": repr(exc)})
            except Exception:  # noqa: BLE001 # pragma: no cover
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 # pragma: no cover
                pass

    async def _route(self, method: str, path: str, body: Optional[dict],
                     writer: asyncio.StreamWriter) -> None:
        if method == "GET" and path == "/healthz":
            await _respond(writer, 200, {
                "ok": True, "schema": SERVE_SCHEMA_VERSION,
                "uptime_s": time.time() - self.started})
        elif method == "GET" and path == "/stats":
            await _respond(writer, 200, self.snapshot())
        elif method == "GET" and path == "/events":
            await self._stream_events(writer)
        elif method == "POST" and path == "/flow":
            await self._handle_flow(body or {}, writer)
        elif method == "POST" and path in ("/batch", "/sweep"):
            await self._handle_batch(body or {}, writer)
        elif method == "POST" and path == "/gc":
            gc = await asyncio.to_thread(self.store.gc)
            await _respond(writer, 200, dataclasses.asdict(gc))
        elif method == "POST" and path == "/shutdown":
            await _respond(writer, 200, {"stopping": True})
            assert self._stopping is not None
            self._stopping.set()
        else:
            await _respond(writer, 404, {"error": f"no route {method} {path}"})

    def snapshot(self) -> Dict[str, object]:
        store_size = self.store.size()
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "uptime_s": time.time() - self.started,
            "workers": self.workers,
            "queue_depth": self.queue_depth(),
            "requests": self.stats["requests"],
            "hits": self.stats["hits"],
            "coalesced": self.stats["coalesced"],
            "executed": self.stats["executed"],
            "running": self.stats["running"],
            "store": {"root": self.store.root, "code": self.store.code[:12],
                      **store_size},
        }

    async def _handle_flow(self, body: dict,
                           writer: asyncio.StreamWriter) -> None:
        spec = JobSpec.from_dict(body.get("job") or {})
        started = time.perf_counter()
        result, how = await self.submit(
            spec, client=body.get("client", "anon"),
            priority=body.get("priority", 0))
        await _respond(writer, 200, {
            "result": result.to_dict(), "how": how,
            "wall_s": time.perf_counter() - started})

    async def _handle_batch(self, body: dict,
                            writer: asyncio.StreamWriter) -> None:
        jobs = _batch_jobs(body)
        client = body.get("client", "anon")
        priority = body.get("priority", 0)
        started = time.perf_counter()
        outcomes = await asyncio.gather(*[
            self.submit(spec, client=client, priority=priority)
            for spec in jobs
        ])
        how_counts: Dict[str, int] = collections.defaultdict(int)
        for _result, how in outcomes:
            how_counts[how] += 1
        await _respond(writer, 200, {
            "results": [result.to_dict() for result, _how in outcomes],
            "how": dict(how_counts),
            "wall_s": time.perf_counter() - started})

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        """NDJSON event stream: one JSON object per line until the
        client hangs up.  Backed by the collector's fan-out subscriber
        path; a slow consumer only ever delays itself."""
        queue: "asyncio.Queue" = asyncio.Queue()
        self.collector.add_subscriber(queue.put_nowait)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        writer.write((json.dumps(
            {"ev": "serve.hello", "schema": SERVE_SCHEMA_VERSION},
            sort_keys=True) + "\n").encode("utf-8"))
        try:
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write((json.dumps(event, sort_keys=True,
                                         default=repr) + "\n")
                             .encode("utf-8"))
                await writer.drain()
        finally:
            self.collector.remove_subscriber(queue.put_nowait)


def _batch_jobs(body: dict) -> List[JobSpec]:
    """Job list from a ``/batch`` or ``/sweep`` request body.

    Accepts ``{"jobs": [<spec doc>...]}`` or a matrix document with
    the `BatchSpec.from_matrix` axes (``circuits``/``variants``/
    ``seeds``/``widths``/``scale``/``defect_rates``...), which is how
    a fault sweep is phrased.
    """
    if "jobs" in body:
        return [JobSpec.from_dict(doc) for doc in body["jobs"]]
    matrix = {k: v for k, v in body.items()
              if k not in ("client", "priority")}
    return list(BatchSpec.from_matrix(**matrix).jobs)


async def _read_request(
        reader: asyncio.StreamReader
) -> Optional[Tuple[str, str, Optional[dict]]]:
    """Parse one HTTP/1.1 request; returns (method, path, json body)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    body = None
    if content_length:
        if content_length > _MAX_BODY:
            raise ValueError(f"body too large ({content_length} bytes)")
        raw = await reader.readexactly(content_length)
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
    return method, path, body


async def _respond(writer: asyncio.StreamWriter, status: int,
                   doc: Dict[str, object]) -> None:
    payload = json.dumps(doc, sort_keys=True, default=repr).encode("utf-8")
    reason = {200: "OK", 404: "Not Found", 500: "Internal Server Error"}.get(
        status, "OK")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + payload)
    await writer.drain()


async def serve_async(store: ResultStore, workers: int = 2,
                      timeout_s: Optional[float] = None, retries: int = 1,
                      host: str = "127.0.0.1", port: int = 0,
                      ready=None) -> Server:
    """Start a `Server`, run until ``/shutdown`` (or cancellation),
    then stop it.  ``ready`` is called with the server once the port
    is bound (the CLI prints the address from it)."""
    server = Server(store, workers=workers, timeout_s=timeout_s,
                    retries=retries, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.wait_stopped()
    finally:
        await server.stop()
    return server
