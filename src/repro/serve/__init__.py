"""`repro serve`: an async batch service on the result store.

The multi-tenant front-end of the reproduction: clients POST flow,
batch and fault-sweep requests to a local HTTP JSON API; the service
answers from the content-addressed result store (`repro.store`) when
it can, coalesces identical in-flight requests single-flight style,
and otherwise feeds the process-per-job executor through a priority
queue with per-client round-robin fairness.  Worker telemetry streams
to any number of ``/events`` subscribers via the collector's fan-out
path.

`server.Server` is the asyncio back half, `client.ServeClient` the
blocking stdlib front half; ``repro serve`` (cli.py) wires the former
to a socket.
"""

from .client import ServeClient, ServeError
from .server import SERVE_SCHEMA_VERSION, Server, serve_async

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "ServeClient",
    "ServeError",
    "Server",
    "serve_async",
]
