"""ASCII visualisation of placements and routing congestion.

Terminal-friendly renderers for inspecting flow results: a floorplan
map (logic / IO / empty tiles), a channel-occupancy heat map from a
routing result, and a per-net route overlay.  Pure-text output keeps
the library dependency-free; examples print these directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..fabric import (
    KIND_HWIRE,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
    FabricIR,
    as_fabric,
)
from .place import Placement
from .route import RoutingResult


def render_placement(placement: Placement) -> str:
    """Floorplan map: '#' logic cluster, digits = IO count, '.' empty.

    Row y is printed top-down (largest y first), matching the usual
    die-plot orientation.
    """
    lines: List[str] = []
    for y in range(placement.grid_height - 1, -1, -1):
        row = []
        for x in range(placement.grid_width):
            blocks = placement.blocks_at.get((x, y), [])
            if not blocks:
                row.append(".")
            elif placement.is_perimeter(x, y):
                row.append(str(min(len(blocks), 9)))
            else:
                row.append("#")
        lines.append("".join(row))
    return "\n".join(lines)


def channel_occupancy(routing: RoutingResult, graph: FabricIR) -> Dict[Tuple[str, int, int], int]:
    """(direction, channel index, position) -> wires in use.

    Direction is 'h' or 'v'; position is the tile offset along the
    channel.  Each used wire segment contributes to every position it
    spans.
    """
    ir = as_fabric(graph)
    kind, xs, ys, spans = ir.kind, ir.xs, ir.ys, ir.spans
    occupancy: Dict[Tuple[str, int, int], int] = {}
    for tree in routing.trees.values():
        for node_id in tree.nodes:
            k = kind[node_id]
            if k == KIND_HWIRE:
                x, y = int(xs[node_id]), int(ys[node_id])
                for pos in range(x, x + int(spans[node_id])):
                    key = ("h", y, pos)
                    occupancy[key] = occupancy.get(key, 0) + 1
            elif k == KIND_VWIRE:
                x, y = int(xs[node_id]), int(ys[node_id])
                for pos in range(y, y + int(spans[node_id])):
                    key = ("v", x, pos)
                    occupancy[key] = occupancy.get(key, 0) + 1
    return occupancy


def render_congestion(routing: RoutingResult, graph: FabricIR) -> str:
    """Heat map of horizontal-channel utilisation per tile position.

    Each cell shows utilisation of the channel *below* the tile row as
    a digit 0-9 (fraction of W in use, scaled), or '*' at >= 95%.
    """
    occupancy = channel_occupancy(routing, graph)
    w = graph.params.channel_width
    lines: List[str] = []
    for chan in range(graph.ny, -1, -1):
        row = []
        for pos in range(graph.nx):
            used = occupancy.get(("h", chan, pos), 0)
            frac = used / w
            row.append("*" if frac >= 0.95 else str(min(9, int(frac * 10))))
        lines.append("".join(row))
    return "\n".join(lines)


def render_net(
    routing: RoutingResult, graph: FabricIR, net_name: str
) -> str:
    """Overlay of one routed net: S source tile, T sink tiles, '+'
    tiles its wires pass."""
    if net_name not in routing.trees:
        raise KeyError(f"net {net_name!r} not in routing result")
    ir = as_fabric(graph)
    kind, xs, ys, spans = ir.kind, ir.xs, ir.ys, ir.spans
    tree = routing.trees[net_name]
    marks: Dict[Tuple[int, int], str] = {}
    for node_id in tree.nodes:
        k = kind[node_id]
        x, y = int(xs[node_id]), int(ys[node_id])
        if k == KIND_HWIRE:
            for pos in range(x, x + int(spans[node_id])):
                marks.setdefault((pos, min(y, ir.ny - 1)), "+")
        elif k == KIND_VWIRE:
            for pos in range(y, y + int(spans[node_id])):
                marks.setdefault((min(x, ir.nx - 1), pos), "+")
        elif k == KIND_SOURCE:
            marks[(x, y)] = "S"
        elif k == KIND_SINK:
            marks[(x, y)] = "T"
    lines: List[str] = []
    for y in range(graph.ny - 1, -1, -1):
        lines.append(
            "".join(marks.get((x, y), ".") for x in range(graph.nx))
        )
    return "\n".join(lines)


def utilization_summary(routing: RoutingResult, graph: FabricIR) -> Dict[str, float]:
    """Channel-utilisation statistics of a routed design."""
    occupancy = channel_occupancy(routing, graph)
    w = graph.params.channel_width
    if not occupancy:
        return {"mean": 0.0, "max": 0.0, "positions": 0}
    fractions = [used / w for used in occupancy.values()]
    return {
        "mean": sum(fractions) / len(fractions),
        "max": max(fractions),
        "positions": len(fractions),
    }
