"""VPR-like place-and-route substrate (paper Fig. 10).

Pure-Python reimplementation of the flow the paper drives with VPR
5.0: VPack clustering, simulated-annealing placement, PathFinder
negotiated-congestion routing, Elmore-based static timing analysis,
and the Wmin / low-stress channel-width derivation.
"""

from .pack import BLE, Cluster, ClusteredNetlist, form_bles, pack, packing_stats
from .place import (
    IO_CAPACITY,
    AnnealStage,
    Placement,
    PlacementBlock,
    crossing_factor,
    place,
)
from .route import (
    PathFinderRouter,
    RouteNet,
    RouterIteration,
    RouteTree,
    RoutingResult,
    build_route_nets,
    route_design,
)
from .timing import (
    FabricElectrical,
    NetDelays,
    TimingReport,
    analyze_net,
    analyze_timing,
    estimate_hop_delay,
    node_delay_costs,
)
from .flow import (
    FlowResult,
    LOW_STRESS_MARGIN,
    StageCache,
    derive_architecture_width,
    find_min_channel_width,
    low_stress_width,
    run_flow,
    run_flow_min_width,
    run_timing_driven_flow,
)
from .visualize import (
    channel_occupancy,
    render_congestion,
    render_net,
    render_placement,
    utilization_summary,
)

__all__ = [
    "AnnealStage",
    "BLE",
    "Cluster",
    "ClusteredNetlist",
    "FabricElectrical",
    "FlowResult",
    "IO_CAPACITY",
    "LOW_STRESS_MARGIN",
    "NetDelays",
    "PathFinderRouter",
    "Placement",
    "PlacementBlock",
    "RouteNet",
    "RouteTree",
    "RouterIteration",
    "RoutingResult",
    "TimingReport",
    "analyze_net",
    "analyze_timing",
    "build_route_nets",
    "estimate_hop_delay",
    "node_delay_costs",
    "run_timing_driven_flow",
    "StageCache",
    "channel_occupancy",
    "crossing_factor",
    "render_congestion",
    "render_net",
    "render_placement",
    "utilization_summary",
    "derive_architecture_width",
    "find_min_channel_width",
    "form_bles",
    "low_stress_width",
    "pack",
    "packing_stats",
    "place",
    "route_design",
    "run_flow",
    "run_flow_min_width",
]
