"""VPack-style clustering of LUTs/FFs into logic blocks (paper Fig. 7b).

Stage 1 of the VPR flow: group the netlist's LUTs and FFs into Basic
Logic Elements (one LUT + optional FF behind the 2:1 output mux), then
greedily pack BLEs into clusters of N with at most I distinct external
input nets, maximising shared nets (the classic VPack attraction
function [Betz 99]).

The result (`ClusteredNetlist`) carries the inter-cluster nets that
placement and routing operate on; LUT-to-LUT connections inside one
cluster ride the LB's internal crossbar and never touch the routing
fabric.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.params import ArchParams
from ..netlist.core import Block, BlockType, Netlist
from ..obs import get_registry, get_tracer


@dataclasses.dataclass
class BLE:
    """Basic Logic Element: a LUT and/or the FF registered on it.

    Attributes:
        name: The BLE's output net name (the signal it exposes).
        lut: LUT block name, or None for a lone-FF BLE.
        ff: FF block name, or None for a combinational BLE.
        input_nets: External nets this BLE consumes (LUT inputs, or
            the FF's D input for a lone FF).
    """

    name: str
    lut: Optional[str]
    ff: Optional[str]
    input_nets: List[str]

    @property
    def output_net(self) -> str:
        return self.name


@dataclasses.dataclass
class Cluster:
    """One packed logic block.

    Attributes:
        index: Cluster id (placement block id).
        bles: Members, at most N.
        input_nets: Distinct external nets entering the cluster
            (at most I).
        output_nets: BLE outputs consumed outside the cluster (or by
            primary outputs).
    """

    index: int
    bles: List[BLE]
    input_nets: Set[str]
    output_nets: Set[str]


@dataclasses.dataclass
class ClusteredNetlist:
    """Packing result.

    Attributes:
        netlist: The source netlist.
        params: Architecture parameters used (N, I, K).
        clusters: The packed logic blocks.
        cluster_of: Signal name -> cluster index for every BLE output.
        nets: Inter-cluster nets: driver signal -> endpoint list, where
            endpoints are ("cluster", index) or ("po", po name); the
            driver is a BLE output or ("pi", name) handled via
            `driver_of`.
    """

    netlist: Netlist
    params: ArchParams
    clusters: List[Cluster]
    cluster_of: Dict[str, int]

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def external_nets(self) -> Dict[str, List[str]]:
        """Nets that must be routed: driver signal -> sink block names.

        Includes PI-driven nets and BLE outputs used outside their
        cluster or by POs.  Sinks are netlist block names; map them to
        clusters with `cluster_of` / PI-PO identity.
        """
        routed: Dict[str, List[str]] = {}
        fanout = self.netlist.fanout()
        for driver, sinks in fanout.items():
            driver_block = self.netlist.blocks[driver]
            driver_cluster = self.cluster_of.get(self._ble_signal(driver))
            external_sinks: List[str] = []
            for sink_name, _pin in sinks:
                sink_block = self.netlist.blocks[sink_name]
                if sink_block.type is BlockType.OUTPUT:
                    external_sinks.append(sink_name)
                    continue
                sink_cluster = self.cluster_of.get(self._sink_signal(sink_name))
                if driver_block.type is BlockType.INPUT:
                    external_sinks.append(sink_name)
                elif sink_cluster != driver_cluster:
                    external_sinks.append(sink_name)
            if external_sinks:
                routed[driver] = external_sinks
        return routed

    def _ble_signal(self, block_name: str) -> str:
        """The BLE output signal a block's output belongs to."""
        return block_name

    def _sink_signal(self, block_name: str) -> str:
        """The BLE signal that owns a sink block (FF merged into its
        LUT's BLE answers with the BLE output name)."""
        return block_name


def form_bles(netlist: Netlist) -> List[BLE]:
    """Pair each FF with its driving LUT when the FF is the LUT's only
    sink (the 2:1 output mux exposes one signal per BLE); otherwise
    the FF occupies its own BLE."""
    fanout = netlist.fanout()
    bles: List[BLE] = []
    merged_luts: Set[str] = set()
    merged_ffs: Set[str] = set()
    for ff in netlist.ffs:
        source = ff.inputs[0]
        source_block = netlist.blocks.get(source)
        if (
            source_block is not None
            and source_block.type is BlockType.LUT
            and len(fanout.get(source, [])) == 1
            and source not in merged_luts
        ):
            bles.append(BLE(name=ff.name, lut=source, ff=ff.name, input_nets=list(source_block.inputs)))
            merged_luts.add(source)
            merged_ffs.add(ff.name)
    for lut in netlist.luts:
        if lut.name not in merged_luts:
            bles.append(BLE(name=lut.name, lut=lut.name, ff=None, input_nets=list(lut.inputs)))
    for ff in netlist.ffs:
        if ff.name not in merged_ffs:
            bles.append(BLE(name=ff.name, lut=None, ff=ff.name, input_nets=list(ff.inputs)))
    return bles


def _cluster_inputs(members: Sequence[BLE], member_outputs: Set[str]) -> Set[str]:
    """Distinct external input nets of a candidate member set."""
    inputs: Set[str] = set()
    for ble in members:
        for net in ble.input_nets:
            if net not in member_outputs:
                inputs.add(net)
    return inputs


def pack(netlist: Netlist, params: ArchParams) -> ClusteredNetlist:
    """Greedy VPack clustering.

    Seed each cluster with the unpacked BLE with the most inputs, then
    repeatedly absorb the unpacked BLE with the highest attraction
    (shared nets with the cluster, with a bonus for absorbing a net
    entirely) that keeps the cluster within N BLEs and I inputs.
    """
    with get_tracer().span("pack.vpack", circuit=netlist.name) as tspan:
        clustered = _pack_impl(netlist, params)
        stats = packing_stats(clustered)
        tspan.set_many(bles=sum(len(c.bles) for c in clustered.clusters), **stats)
        registry = get_registry()
        registry.counter("pack.runs").inc()
        registry.gauge("pack.clusters").set(stats["clusters"])
        registry.gauge("pack.external_nets").set(stats["external_nets"])
        registry.gauge("pack.avg_fill").set(stats["avg_fill"])
        fill = registry.histogram("pack.cluster_size")
        for cluster in clustered.clusters:
            fill.observe(len(cluster.bles))
        return clustered


def _pack_impl(netlist: Netlist, params: ArchParams) -> ClusteredNetlist:
    netlist.validate()
    bles = form_bles(netlist)
    by_name: Dict[str, BLE] = {b.name: b for b in bles}

    # Attraction bookkeeping: net -> BLEs touching it (as input or output).
    net_users: Dict[str, Set[str]] = defaultdict(set)
    for ble in bles:
        net_users[ble.output_net].add(ble.name)
        for net in ble.input_nets:
            net_users[net].add(ble.name)

    unpacked: Set[str] = {b.name for b in bles}
    clusters: List[Cluster] = []
    cluster_of: Dict[str, int] = {}

    while unpacked:
        seed_name = max(unpacked, key=lambda n: (len(by_name[n].input_nets), n))
        members: List[BLE] = [by_name[seed_name]]
        member_outputs: Set[str] = {seed_name}
        unpacked.discard(seed_name)
        cluster_nets: Set[str] = set(by_name[seed_name].input_nets) | {seed_name}

        while len(members) < params.n:
            # Candidates: unpacked BLEs sharing any net with the cluster.
            candidates: Dict[str, int] = defaultdict(int)
            for net in cluster_nets:
                for user in net_users[net]:
                    if user in unpacked:
                        candidates[user] += 1
            # Deterministic greedy: best attraction first (name-ordered
            # tie-break), take the first candidate that fits.  Plain
            # dict iteration would make packing hash-seed dependent.
            best_name = None
            ranked = sorted(candidates.items(), key=lambda kv: (-kv[1], kv[0]))
            for cand, _shared in ranked:
                trial_inputs = _cluster_inputs(
                    members + [by_name[cand]], member_outputs | {cand}
                )
                if len(trial_inputs) <= params.inputs_per_lb:
                    best_name = cand
                    break
            if best_name is None:
                # No connected candidate fits; top up with any fitting
                # BLE (keeps cluster count minimal, like VPack's
                # unrelated-logic fill).
                for cand in sorted(unpacked):
                    trial_inputs = _cluster_inputs(
                        members + [by_name[cand]], member_outputs | {cand}
                    )
                    if len(trial_inputs) <= params.inputs_per_lb:
                        best_name = cand
                        break
                if best_name is None:
                    break
            ble = by_name[best_name]
            members.append(ble)
            member_outputs.add(best_name)
            unpacked.discard(best_name)
            cluster_nets.add(best_name)
            cluster_nets.update(ble.input_nets)

        index = len(clusters)
        input_nets = _cluster_inputs(members, member_outputs)
        clusters.append(
            Cluster(index=index, bles=members, input_nets=input_nets, output_nets=set())
        )
        for ble in members:
            cluster_of[ble.name] = index
            if ble.lut is not None:
                cluster_of[ble.lut] = index
            if ble.ff is not None:
                cluster_of[ble.ff] = index

    clustered = ClusteredNetlist(
        netlist=netlist, params=params, clusters=clusters, cluster_of=cluster_of
    )
    # Fill in output_nets: BLE outputs with sinks outside the cluster.
    for driver, sinks in clustered.external_nets().items():
        block = netlist.blocks[driver]
        if block.type is BlockType.INPUT:
            continue
        clusters[cluster_of[driver]].output_nets.add(driver)
    return clustered


def packing_stats(clustered: ClusteredNetlist) -> Dict[str, float]:
    sizes = [len(c.bles) for c in clustered.clusters]
    inputs = [len(c.input_nets) for c in clustered.clusters]
    return {
        "clusters": len(sizes),
        "avg_fill": sum(sizes) / (len(sizes) * clustered.params.n),
        "max_inputs": max(inputs, default=0),
        "avg_inputs": sum(inputs) / len(inputs) if inputs else 0.0,
        "external_nets": len(clustered.external_nets()),
    }
