"""Simulated-annealing placement (VPR-style).

Places packed logic clusters on the interior tile grid and primary
I/Os on the perimeter ring, minimising the classic bounding-box
wirelength cost

    cost = sum over nets of q(fanout) * (bb_width + bb_height)

with the VPR adaptive annealing schedule (automatic initial
temperature, per-temperature move budget ~ 10 * Nblocks^(4/3), range
limiting, exponential cooling).
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.params import ArchParams
from ..netlist.core import BlockType
from ..obs import get_logger, get_tracer, kv
from .pack import ClusteredNetlist

_log = get_logger("vpr.place")

#: VPR's q(num_terminals) compensation factors for net bounding boxes
#: (piecewise from [Betz 99]; >50 terminals extrapolates linearly).
_Q_TABLE = [
    1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
    1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
    1.8924,
]


def crossing_factor(terminals: int) -> float:
    """q(terminals) bounding-box wirelength compensation."""
    if terminals < 1:
        raise ValueError(f"terminals must be >= 1, got {terminals}")
    if terminals <= 20:
        return _Q_TABLE[terminals]
    return 1.8924 + 0.02616 * (terminals - 20)


#: Primary I/Os a perimeter tile can host.
IO_CAPACITY = 8


@dataclasses.dataclass
class PlacementBlock:
    """A placeable object: a logic cluster or one primary I/O.

    Attributes:
        name: Cluster index string or the PI/PO block name.
        kind: "logic", "pi", or "po".
    """

    name: str
    kind: str


@dataclasses.dataclass
class AnnealStage:
    """Telemetry for one temperature step of the annealing schedule.

    Attributes:
        temperature: Temperature the step's moves ran at.
        acceptance_rate: Accepted / proposed moves (VPR's alpha).
        cost: Bounding-box cost at the end of the step.
        range_limit: Move range limit during the step (tiles).
    """

    temperature: float
    acceptance_rate: float
    cost: float
    range_limit: float


@dataclasses.dataclass
class Placement:
    """Placement result.

    Attributes:
        grid_width / grid_height: Full grid dimensions in tiles
            (interior logic region plus the IO perimeter ring).
        location_of: Block name -> (x, y) tile.
        blocks_at: (x, y) -> block names (IO tiles hold several).
        clustered: The packed netlist this placement is for.
        cost: Final bounding-box cost.
        trajectory: Per-temperature anneal telemetry (acceptance rate
            and cost trajectory; empty for degenerate placements that
            skip annealing).
    """

    grid_width: int
    grid_height: int
    location_of: Dict[str, Tuple[int, int]]
    blocks_at: Dict[Tuple[int, int], List[str]]
    clustered: ClusteredNetlist
    cost: float
    trajectory: List[AnnealStage] = dataclasses.field(default_factory=list)

    def is_perimeter(self, x: int, y: int) -> bool:
        return x in (0, self.grid_width - 1) or y in (0, self.grid_height - 1)


def _flat_nets(clustered: ClusteredNetlist) -> List[Tuple[str, List[str]]]:
    """Placement nets: (driver placement-block, sink placement-blocks).

    Placement blocks are "c<index>" for clusters, PI names, PO names.
    Sinks collapse to one entry per cluster.
    """
    netlist = clustered.netlist
    nets: List[Tuple[str, List[str]]] = []
    for driver, sinks in clustered.external_nets().items():
        driver_block = netlist.blocks[driver]
        if driver_block.type is BlockType.INPUT:
            driver_pb = driver
        else:
            driver_pb = f"c{clustered.cluster_of[driver]}"
        sink_pbs: List[str] = []
        seen: Set[str] = set()
        for sink in sinks:
            sink_block = netlist.blocks[sink]
            if sink_block.type is BlockType.OUTPUT:
                pb = sink
            else:
                pb = f"c{clustered.cluster_of[sink]}"
            if pb not in seen and pb != driver_pb:
                seen.add(pb)
                sink_pbs.append(pb)
        if sink_pbs:
            nets.append((driver_pb, sink_pbs))
    return nets


class _Annealer:
    """Incremental-cost simulated annealing over block locations."""

    def __init__(
        self,
        blocks: Dict[str, PlacementBlock],
        nets: List[Tuple[str, List[str]]],
        grid_w: int,
        grid_h: int,
        rng: random.Random,
        net_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        self.blocks = blocks
        self.nets = nets
        self.grid_w = grid_w
        self.grid_h = grid_h
        self.rng = rng
        self.net_weights = net_weights or {}
        self.location: Dict[str, Tuple[int, int]] = {}
        self.at: Dict[Tuple[int, int], List[str]] = defaultdict(list)
        self.nets_of: Dict[str, List[int]] = defaultdict(list)
        for i, (driver, sinks) in enumerate(nets):
            self.nets_of[driver].append(i)
            for s in sinks:
                self.nets_of[s].append(i)
        self.net_cost: List[float] = [0.0] * len(nets)
        self.trajectory: List[AnnealStage] = []

    # -- geometry helpers ------------------------------------------------

    def interior_tiles(self) -> List[Tuple[int, int]]:
        return [
            (x, y)
            for x in range(1, self.grid_w - 1)
            for y in range(1, self.grid_h - 1)
        ]

    def perimeter_tiles(self) -> List[Tuple[int, int]]:
        tiles = []
        for x in range(self.grid_w):
            tiles.append((x, 0))
            tiles.append((x, self.grid_h - 1))
        for y in range(1, self.grid_h - 1):
            tiles.append((0, y))
            tiles.append((self.grid_w - 1, y))
        return tiles

    def _capacity(self, tile: Tuple[int, int], kind: str) -> int:
        perimeter = tile[0] in (0, self.grid_w - 1) or tile[1] in (0, self.grid_h - 1)
        if kind == "logic":
            return 0 if perimeter else 1
        return IO_CAPACITY if perimeter else 0

    # -- cost -------------------------------------------------------------

    def _bb_cost(self, net_index: int) -> float:
        driver, sinks = self.nets[net_index]
        xs = [self.location[driver][0]] + [self.location[s][0] for s in sinks]
        ys = [self.location[driver][1]] + [self.location[s][1] for s in sinks]
        q = crossing_factor(len(sinks) + 1)
        weight = self.net_weights.get(driver, 1.0)
        return weight * q * ((max(xs) - min(xs)) + (max(ys) - min(ys)))

    def total_cost(self) -> float:
        return sum(self.net_cost)

    def recompute_all(self) -> float:
        for i in range(len(self.nets)):
            self.net_cost[i] = self._bb_cost(i)
        return self.total_cost()

    # -- moves --------------------------------------------------------------

    def random_initial(self) -> None:
        interior = self.interior_tiles()
        perimeter = self.perimeter_tiles()
        self.rng.shuffle(interior)
        self.rng.shuffle(perimeter)
        logic = [b for b in self.blocks.values() if b.kind == "logic"]
        ios = [b for b in self.blocks.values() if b.kind in ("pi", "po")]
        if len(logic) > len(interior):
            raise ValueError(
                f"{len(logic)} clusters exceed {len(interior)} interior tiles"
            )
        if len(ios) > len(perimeter) * IO_CAPACITY:
            raise ValueError(
                f"{len(ios)} I/Os exceed perimeter capacity {len(perimeter) * IO_CAPACITY}"
            )
        for block, tile in zip(logic, interior):
            self.location[block.name] = tile
            self.at[tile].append(block.name)
        slot = 0
        for block in ios:
            tile = perimeter[slot // IO_CAPACITY]
            self.location[block.name] = tile
            self.at[tile].append(block.name)
            slot += 1

    def _affected_nets(self, names: Sequence[str]) -> Set[int]:
        result: Set[int] = set()
        for name in names:
            result.update(self.nets_of.get(name, ()))
        return result

    def propose_and_apply(self, temperature: float, range_limit: int) -> bool:
        """One SA move: pick a block, try a move/swap, accept by
        Metropolis.  Returns True if accepted."""
        name = self.rng.choice(self._movable)
        block = self.blocks[name]
        old_tile = self.location[name]
        if block.kind == "logic":
            # Target: random interior tile within range limit.
            x = self._clip(old_tile[0] + self.rng.randint(-range_limit, range_limit), 1, self.grid_w - 2)
            y = self._clip(old_tile[1] + self.rng.randint(-range_limit, range_limit), 1, self.grid_h - 2)
            new_tile = (x, y)
            if new_tile == old_tile:
                return False
            occupants = [n for n in self.at[new_tile] if self.blocks[n].kind == "logic"]
            swap_with = occupants[0] if occupants else None
        else:
            perimeter = self._perimeter_cache
            new_tile = perimeter[self.rng.randrange(len(perimeter))]
            if new_tile == old_tile:
                return False
            if len(self.at[new_tile]) >= IO_CAPACITY:
                ios = [n for n in self.at[new_tile] if self.blocks[n].kind in ("pi", "po")]
                swap_with = self.rng.choice(ios)
            else:
                swap_with = None

        moved = [name] + ([swap_with] if swap_with else [])
        affected = self._affected_nets(moved)
        old_costs = {i: self.net_cost[i] for i in affected}

        # Apply tentatively.
        self._relocate(name, old_tile, new_tile)
        if swap_with:
            self._relocate(swap_with, new_tile, old_tile)
        delta = 0.0
        for i in affected:
            new_cost = self._bb_cost(i)
            delta += new_cost - old_costs[i]
            self.net_cost[i] = new_cost

        if delta <= 0 or self.rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            return True
        # Revert.
        self._relocate(name, new_tile, old_tile)
        if swap_with:
            self._relocate(swap_with, old_tile, new_tile)
        for i, c in old_costs.items():
            self.net_cost[i] = c
        return False

    def _relocate(self, name: str, src: Tuple[int, int], dst: Tuple[int, int]) -> None:
        self.at[src].remove(name)
        self.at[dst].append(name)
        self.location[name] = dst

    @staticmethod
    def _clip(v: int, lo: int, hi: int) -> int:
        return max(lo, min(hi, v))

    def anneal(self, seed_moves: int = 60, inner_num: float = 1.0) -> float:
        """Run the annealing schedule.

        ``inner_num`` scales the per-temperature move budget
        (inner_num * Nblocks^(4/3)); 1.0 matches VPR's -fast mode,
        10.0 the default-quality mode.
        """
        self._movable = sorted(self.blocks)
        self._perimeter_cache = self.perimeter_tiles()
        cost = self.recompute_all()
        if not self.nets or len(self._movable) < 2:
            return cost

        # Initial temperature: 20 x the std-dev of random move deltas.
        deltas: List[float] = []
        for _ in range(min(seed_moves, 10 * len(self._movable))):
            before = self.total_cost()
            self.propose_and_apply(temperature=1e18, range_limit=max(self.grid_w, self.grid_h))
            deltas.append(self.total_cost() - before)
        mean = sum(deltas) / len(deltas)
        var = sum((d - mean) ** 2 for d in deltas) / len(deltas)
        temperature = 20.0 * math.sqrt(var) + 1e-9

        n_blocks = len(self._movable)
        moves_per_t = max(10, int(inner_num * n_blocks ** (4.0 / 3.0)))
        range_limit = float(max(self.grid_w, self.grid_h))
        while temperature > 0.005 * self.total_cost() / max(len(self.nets), 1):
            accepted = 0
            for _ in range(moves_per_t):
                if self.propose_and_apply(temperature, max(1, int(range_limit))):
                    accepted += 1
            alpha = accepted / moves_per_t
            self.trajectory.append(AnnealStage(
                temperature=temperature,
                acceptance_rate=alpha,
                cost=self.total_cost(),
                range_limit=range_limit,
            ))
            _log.debug("anneal step %s", kv(
                temperature=temperature, alpha=alpha, cost=self.total_cost()))
            # VPR adaptive cooling: cool slowly near alpha ~ 0.44.
            if alpha > 0.96:
                gamma = 0.5
            elif alpha > 0.8:
                gamma = 0.9
            elif alpha > 0.15:
                gamma = 0.95
            else:
                gamma = 0.8
            temperature *= gamma
            range_limit = max(1.0, min(range_limit * (1.0 - 0.44 + alpha), float(max(self.grid_w, self.grid_h))))
        return self.total_cost()


def place(
    clustered: ClusteredNetlist,
    seed: int = 1,
    grid_side: Optional[int] = None,
    inner_num: float = 1.0,
    net_weights: Optional[Dict[str, float]] = None,
) -> Placement:
    """Anneal a placement for a packed netlist.

    Args:
        clustered: Packing result.
        seed: RNG seed (placement is deterministic given the seed).
        grid_side: Interior (logic) grid side; default = minimal square
            that fits the clusters and whose perimeter fits the I/Os.
        inner_num: Move budget scale (1.0 = VPR -fast, 10.0 = VPR
            default quality).
        net_weights: Optional per-net cost multipliers keyed by driver
            signal (timing-driven placement passes criticalities here:
            critical nets shrink at the expense of relaxed ones).
    """
    netlist = clustered.netlist
    blocks: Dict[str, PlacementBlock] = {}
    for cluster in clustered.clusters:
        blocks[f"c{cluster.index}"] = PlacementBlock(name=f"c{cluster.index}", kind="logic")
    for pi in netlist.inputs:
        blocks[pi.name] = PlacementBlock(name=pi.name, kind="pi")
    for po in netlist.outputs:
        blocks[po.name] = PlacementBlock(name=po.name, kind="po")

    n_logic = clustered.num_clusters
    n_io = len(netlist.inputs) + len(netlist.outputs)
    side = grid_side
    if side is None:
        side = 1
        while side * side < n_logic or (4 * (side + 2) - 4) * IO_CAPACITY < n_io:
            side += 1
    grid_w = grid_h = side + 2

    rng = random.Random(seed)
    nets = _flat_nets(clustered)
    tracer = get_tracer()
    with tracer.span(
        "place.anneal",
        blocks=len(blocks),
        nets=len(nets),
        grid=f"{grid_w}x{grid_h}",
        seed=seed,
        inner_num=inner_num,
    ) as span:
        annealer = _Annealer(blocks, nets, grid_w, grid_h, rng, net_weights=net_weights)
        annealer.random_initial()
        cost = annealer.anneal(inner_num=inner_num)
        span.set_many(cost=cost, temperature_steps=len(annealer.trajectory))
        if tracer.enabled:
            span.set(
                "trajectory",
                [dataclasses.asdict(stage) for stage in annealer.trajectory],
            )
        return Placement(
            grid_width=grid_w,
            grid_height=grid_h,
            location_of=dict(annealer.location),
            blocks_at={k: list(v) for k, v in annealer.at.items() if v},
            clustered=clustered,
            cost=cost,
            trajectory=list(annealer.trajectory),
        )
