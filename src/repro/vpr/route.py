"""PathFinder negotiated-congestion routing (VPR-style).

Routes every inter-cluster net over the routing-resource graph.  The
classic algorithm [McMurchie-Ebeling / Betz 99]:

* every RR node has a congestion cost
  ``(base + history) * presence`` where presence grows with current
  overuse and history accumulates overuse across iterations;
* each iteration rips up and re-routes (only) the nets that touch
  overused nodes, as a Steiner tree grown sink-by-sink with A*
  (Manhattan-distance/L lookahead);
* iteration ends when no node is shared by two nets (legal routing)
  or the iteration limit is hit (unroutable at this channel width).
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.params import ArchParams
from ..fabric import (
    KIND_IPIN,
    KIND_OPIN,
    FabricIR,
    as_fabric,
    get_fabric,
)
from ..netlist.core import BlockType
from ..obs import get_logger, get_publisher, get_registry, get_tracer, kv
from .place import Placement

_log = get_logger("vpr.route")

#: Deterministic tie-break jitter, cached per node count: it depends
#: only on ``n``, so routers sharing a FabricIR (or probing equal-size
#: graphs) skip regenerating it.
_JITTER_CACHE: Dict[int, List[float]] = {}


def _jitter_for(n: int) -> List[float]:
    cached = _JITTER_CACHE.get(n)
    if cached is None:
        rng = __import__("random").Random(0xF9A4)
        cached = _JITTER_CACHE[n] = [1.0 + 0.03 * rng.random() for _ in range(n)]
    return cached


@dataclasses.dataclass
class RouteNet:
    """A net to route: one source tile, one or more sink tiles."""

    name: str
    source_tile: Tuple[int, int]
    sink_tiles: List[Tuple[int, int]]


@dataclasses.dataclass
class RouteTree:
    """Routed result for one net.

    Attributes:
        nodes: All RR node ids used (tree order not guaranteed).
        parent: node id -> upstream node id (source's parent is -1).
        sink_nodes: SINK node ids reached.
    """

    nodes: List[int]
    parent: Dict[int, int]
    sink_nodes: List[int]


@dataclasses.dataclass
class RouterIteration:
    """Convergence telemetry for one PathFinder rip-up/re-route pass.

    Attributes:
        iteration: 1-based pass number.
        overused_nodes: Nodes still shared at the end of the pass.
        pres_fac: Presence factor the pass routed with.
        wirelength: Total wirelength of the current route trees.
        rerouted_nets: Nets ripped up and re-routed this pass.
    """

    iteration: int
    overused_nodes: int
    pres_fac: float
    wirelength: int
    rerouted_nets: int


@dataclasses.dataclass
class RoutingResult:
    """Outcome of a routing attempt.

    Attributes:
        success: True when fully legal (no overuse).
        iterations: PathFinder iterations used.
        trees: Net name -> route tree (present even on failure).
        overused_nodes: Count of still-overused nodes (0 on success).
        wirelength: Total wire-segment tiles used by all routes.
        convergence: Per-iteration telemetry series (always recorded;
            `overused_nodes` per entry is the router's convergence
            signal, ending at 0 on success).
    """

    success: bool
    iterations: int
    trees: Dict[str, RouteTree]
    overused_nodes: int
    wirelength: int
    convergence: List[RouterIteration] = dataclasses.field(default_factory=list)


def build_route_nets(placement: Placement) -> List[RouteNet]:
    """Derive the routable nets from a placement.

    Sinks collapse per tile (one SINK per LB / IO tile); sinks landing
    on the source tile are intra-tile (crossbar feedback) and drop out.
    """
    clustered = placement.clustered
    netlist = clustered.netlist
    nets: List[RouteNet] = []
    for driver, sinks in clustered.external_nets().items():
        driver_block = netlist.blocks[driver]
        if driver_block.type is BlockType.INPUT:
            source_tile = placement.location_of[driver]
        else:
            source_tile = placement.location_of[f"c{clustered.cluster_of[driver]}"]
        sink_tiles: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for sink in sinks:
            sink_block = netlist.blocks[sink]
            if sink_block.type is BlockType.OUTPUT:
                tile = placement.location_of[sink]
            else:
                tile = placement.location_of[f"c{clustered.cluster_of[sink]}"]
            if tile != source_tile and tile not in seen:
                seen.add(tile)
                sink_tiles.append(tile)
        if sink_tiles:
            nets.append(RouteNet(name=driver, source_tile=source_tile, sink_tiles=sink_tiles))
    return nets


class PathFinderRouter:
    """Negotiated-congestion router over one RR graph.

    Args:
        graph: The routing-resource graph — a `FabricIR` (preferred)
            or a legacy `RRGraph` (coerced via `as_fabric`).
        pres_fac_init / pres_fac_mult: Presence penalty schedule.
        hist_fac: History cost accumulation factor.
        max_iterations: Give up after this many rip-up passes.
        astar_fac: A* lookahead aggressiveness (1.0 = admissible).
    """

    def __init__(
        self,
        graph,
        pres_fac_init: float = 0.5,
        pres_fac_mult: float = 1.3,
        hist_fac: float = 0.4,
        max_iterations: int = 120,
        astar_fac: float = 1.2,
        delay_costs: Optional[Sequence[float]] = None,
        blocked_nodes: Optional[Set[int]] = None,
        blocked_edges: Optional[Set[Tuple[int, int]]] = None,
    ) -> None:
        """``delay_costs`` (one weight per RR node, normalised so a
        typical wire hop ~ its base cost) enables timing-driven mode:
        a net with criticality k pays k * delay + (1 - k) * congestion
        per node, VPR-style.  None = pure routability mode.

        ``blocked_nodes`` marks defective resources (e.g. relays that
        failed programming verification): the router never uses them —
        defect-avoidance reconfiguration for relay fabrics.

        ``blocked_edges`` marks individual defective switches as
        directed ``(u, v)`` pairs: the wires stay usable, only that
        hop is forbidden (a stuck-open relay kills one crosspoint, not
        the whole track).
        """
        self.graph = graph
        ir = self.fabric = as_fabric(graph)
        self.pres_fac_init = pres_fac_init
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.max_iterations = max_iterations
        self.astar_fac = astar_fac
        if delay_costs is not None and len(delay_costs) != ir.num_nodes:
            raise ValueError("delay_costs must have one entry per RR node")
        self._delay_costs = list(delay_costs) if delay_costs is not None else None
        self._blocked = frozenset(blocked_nodes or ())
        n = ir.num_nodes
        # Directed blocked edges, encoded u*n+v so the hot loop does a
        # single int set-probe instead of building a tuple per edge.
        self._blocked_edges = frozenset(
            u * n + v for (u, v) in (blocked_edges or ()))
        # Per-router mutable state; the shared (cached) IR views are
        # read-only, so copies are taken only where the router writes.
        self._base = ir.base_costs.tolist()
        self._cap = ir.capacities.tolist()
        self._occ = [0] * n
        self._hist = [0.0] * n
        self._static = list(self._base)
        self._is_sink = ir.sink_flags
        self._is_source = ir.source_flags
        # CSR adjacency in hot-loop (plain list) form.
        self._edge_offsets = ir.csr_offsets()
        self._edge_targets = ir.csr_targets()
        # Search scratch arrays reused across nets (epoch-stamped).
        self._dist = [0.0] * n
        self._came = [0] * n
        self._stamp = [0] * n
        self._epoch = 0
        # Deterministic tie-break jitter: symmetric conflicts otherwise
        # oscillate forever because both nets see identical costs.
        self._jitter = _jitter_for(max(n, 1))
        self._route_calls = 0
        # Wire node positions for the A* lookahead.
        self._pos: List[Tuple[float, float]] = ir.positions
        self._pin_groups: Optional[Dict[Tuple[int, int, int], List[int]]] = None

    # -- congestion cost ----------------------------------------------------

    def _node_cost(self, node_id: int, pres_fac: float) -> float:
        """Congestion cost of adding one more net to a node (kept as a
        reference implementation; the router inlines this)."""
        over = self._occ[node_id] + 1 - self._cap[node_id]
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return (self._base[node_id] + self._hist[node_id]) * pres

    def _refresh_static_costs(self) -> None:
        """base + history, recomputed once per PathFinder iteration."""
        self._static = [b + h for b, h in zip(self._base, self._hist)]

    # -- single net ---------------------------------------------------------

    def _route_net(
        self,
        net: RouteNet,
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ) -> Optional[RouteTree]:
        ir = self.fabric
        source = ir.source_of[net.source_tile]
        targets = {ir.sink_of[tile]: tile for tile in net.sink_tiles}
        tree_nodes: List[int] = [source]
        tree_set: Set[int] = {source}
        parent: Dict[int, int] = {source: -1}
        sink_nodes: List[int] = []
        remaining = dict(targets)

        # Net bounding box (+margin) restricts the search, VPR-style.
        xs = [net.source_tile[0]] + [t[0] for t in net.sink_tiles]
        ys = [net.source_tile[1]] + [t[1] for t in net.sink_tiles]
        bb = (min(xs) - bb_margin, max(xs) + bb_margin, min(ys) - bb_margin, max(ys) + bb_margin)

        # Local bindings for the hot loop.
        edge_offsets = self._edge_offsets
        edge_targets = self._edge_targets
        blocked = self._blocked
        blocked_edges = self._blocked_edges
        n_enc = self.fabric.num_nodes
        pos = self._pos
        static = self._static
        occ = self._occ
        cap = self._cap
        is_sink = self._is_sink
        is_source = self._is_source
        astar_per_tile = self.astar_fac
        dist = self._dist
        came = self._came
        stamp = self._stamp
        heappush, heappop = heapq.heappush, heapq.heappop
        jitter = self._jitter
        self._route_calls += 1
        n_nodes = len(jitter)
        # Stable string hash: Python's hash() is salted per process,
        # which would make routing (and thus Wmin) non-reproducible.
        name_hash = __import__("zlib").crc32(net.name.encode())
        salt = (name_hash * 31 + self._route_calls * 7919) % n_nodes
        # Timing-driven blend (VPR): crit * delay + (1 - crit) * cong.
        delay_costs = self._delay_costs
        crit = min(max(criticality, 0.0), 0.99) if delay_costs is not None else 0.0
        cong_weight = 1.0 - crit

        # Optional sink-order shuffle: the default nearest-first order
        # can commit the tree trunk so the last sink is boxed into one
        # conflicted IPIN; a reshuffled order escapes such wedges.
        shuffled_order: List[int] = []
        if sink_shuffle:
            rng = __import__("random").Random(sink_shuffle)
            shuffled_order = sorted(targets)
            rng.shuffle(shuffled_order)

        while remaining:
            self._epoch += 1
            epoch = self._epoch
            if shuffled_order:
                target_sink = next(s for s in shuffled_order if s in remaining)
            else:
                target_sink = min(
                    remaining,
                    key=lambda s: abs(pos[s][0] - pos[source][0])
                    + abs(pos[s][1] - pos[source][1]),
                )
            tx, ty = pos[target_sink]
            heap: List[Tuple[float, float, int]] = []
            for node in tree_nodes:
                # Once the first sink is routed, the SOURCE stops being
                # a seed: otherwise later sinks branch at the source and
                # the net consumes several OPINs, oversubscribing the
                # LB's N output pins.
                if node == source and len(tree_nodes) > 1:
                    continue
                dist[node] = 0.0
                stamp[node] = epoch
                nx, ny = pos[node]
                heappush(heap, (astar_per_tile * (abs(nx - tx) + abs(ny - ty)), 0.0, node))
            found = False
            bb_x0, bb_x1, bb_y0, bb_y1 = bb
            while heap:
                _f, g, u = heappop(heap)
                if stamp[u] == epoch and g > dist[u]:
                    continue
                if u == target_sink:
                    found = True
                    break
                u_base = u * n_enc if blocked_edges else 0
                # CSR neighbor expansion: one contiguous slice per pop.
                for v in edge_targets[edge_offsets[u]:edge_offsets[u + 1]]:
                    if v in tree_set:
                        continue
                    if blocked and v in blocked:
                        continue
                    if blocked_edges and u_base + v in blocked_edges:
                        continue
                    if is_sink[v]:
                        if v != target_sink:
                            continue
                    elif is_source[v]:
                        continue
                    vx, vy = pos[v]
                    if not (bb_x0 <= vx <= bb_x1 and bb_y0 <= vy <= bb_y1):
                        continue
                    c = static[v] * jitter[v - salt]
                    over = occ[v] + 1 - cap[v]
                    if over > 0:
                        c *= 1.0 + pres_fac * over
                    if crit > 0.0:
                        c = cong_weight * c + crit * delay_costs[v]
                    ng = g + c
                    if stamp[v] != epoch or ng < dist[v]:
                        dist[v] = ng
                        stamp[v] = epoch
                        came[v] = u
                        heappush(heap, (ng + astar_per_tile * (abs(vx - tx) + abs(vy - ty)), ng, v))
            if not found:
                return None
            # Trace back, splice into tree.
            path: List[int] = []
            node = target_sink
            while node not in tree_set:
                path.append(node)
                node = came[node]
            for n in reversed(path):
                parent[n] = node
                tree_set.add(n)
                tree_nodes.append(n)
                node = n
            sink_nodes.append(target_sink)
            del remaining[target_sink]
        return RouteTree(nodes=tree_nodes, parent=parent, sink_nodes=sink_nodes)

    # -- occupancy bookkeeping -----------------------------------------------

    def _sibling_pins(self, pin_id: int) -> List[int]:
        """All pins of the same kind on the same tile (lazy cache)."""
        ir = self.fabric
        if self._pin_groups is None:
            groups: Dict[Tuple[int, int, int], List[int]] = {}
            kinds = ir.kind
            pin_ids = ((kinds == KIND_OPIN) | (kinds == KIND_IPIN)).nonzero()[0]
            xs, ys = ir.xs, ir.ys
            for i in pin_ids.tolist():
                groups.setdefault((int(xs[i]), int(ys[i]), int(kinds[i])), []).append(i)
            self._pin_groups = groups
        key = (int(ir.xs[pin_id]), int(ir.ys[pin_id]), int(ir.kind[pin_id]))
        return self._pin_groups.get(key, [])

    def _occupy(self, tree: RouteTree, delta: int) -> None:
        for node in tree.nodes:
            self._occ[node] += delta

    def _overused(self) -> List[int]:
        return [i for i, occ in enumerate(self._occ) if occ > self._cap[i]]

    # -- main loop --------------------------------------------------------------

    def route(
        self,
        nets: Sequence[RouteNet],
        criticality: Optional[Dict[str, float]] = None,
        fixed_trees: Optional[Dict[str, RouteTree]] = None,
    ) -> RoutingResult:
        """Route all nets; returns success iff fully legal.

        ``criticality`` (net name -> [0, 1], used with delay_costs)
        turns on timing-driven costing per net.  Aborts early (failure)
        when congestion stops improving — the VPR "routing predictor"
        heuristic that makes Wmin binary searches affordable.

        ``fixed_trees`` (net name -> existing `RouteTree`) pre-occupies
        resources that must not move: incremental self-repair routes
        only the victim ``nets`` while every healthy net's tree stays
        pinned in place.  Fixed nets are never ripped up — negotiation
        pushes the rerouted nets around them — and the returned result
        contains only the newly routed trees.

        The per-iteration convergence series (overuse, pres_fac,
        wirelength, rip-up counts) is always recorded on the result;
        when a tracer is active it is also attached to the
        ``route.pathfinder`` span.
        """
        tracer = get_tracer()
        with tracer.span(
            "route.pathfinder",
            nets=len(nets),
            channel_width=self.fabric.params.channel_width,
            timing_driven=self._delay_costs is not None,
            fixed_nets=len(fixed_trees or ()),
        ) as span:
            registry = get_registry()
            registry.gauge("route.blocked_nodes").set(len(self._blocked))
            registry.gauge("route.blocked_edges").set(len(self._blocked_edges))
            result = self._route_impl(nets, criticality, fixed_trees)
            span.set_many(
                success=result.success,
                iterations=result.iterations,
                overused_nodes=result.overused_nodes,
                wirelength=result.wirelength,
            )
            if tracer.enabled:
                span.set(
                    "convergence",
                    [dataclasses.asdict(it) for it in result.convergence],
                )
            return result

    def _route_impl(
        self,
        nets: Sequence[RouteNet],
        criticality: Optional[Dict[str, float]] = None,
        fixed_trees: Optional[Dict[str, RouteTree]] = None,
    ) -> RoutingResult:
        if fixed_trees:
            overlap = {net.name for net in nets} & set(fixed_trees)
            if overlap:
                raise ValueError(
                    f"nets both routed and fixed: {sorted(overlap)}")
            # Pin the healthy nets' resources before the first pass;
            # their occupancy never drops, so victims negotiate around
            # them exactly as against any other net they cannot evict.
            for tree in fixed_trees.values():
                self._occupy(tree, +1)
        crit_of = criticality or {}
        # Hoisted out of the iteration loop: the disabled (null) path
        # costs one attribute check per iteration, nothing more.
        pub = get_publisher()
        order = sorted(nets, key=lambda n: (-len(n.sink_tiles), n.name))
        if criticality:
            # Critical nets route first so they get the short paths.
            order = sorted(order, key=lambda n: -crit_of.get(n.name, 0.0))
        trees: Dict[str, RouteTree] = {}
        pres_fac = self.pres_fac_init
        iteration = 0
        overuse_history: List[int] = []
        convergence: List[RouterIteration] = []
        stall = 0
        for iteration in range(1, self.max_iterations + 1):
            escalate = False
            if iteration == 1:
                to_route = list(order)
            else:
                overused = set(self._overused())
                if not overused:
                    break
                # Stall detection: the same small conflict persisting
                # means the default nearest-sink order and reroute set
                # are wedged; escalate by also ripping up neighbouring
                # "blocker" nets and shuffling sink order.
                if overuse_history and len(overused) == overuse_history[-1] and len(overused) < 40:
                    stall += 1
                else:
                    stall = 0
                escalate = stall >= 4 and stall % 2 == 0
                hot = set(overused)
                if escalate:
                    offsets = self._edge_offsets
                    targets = self._edge_targets
                    kinds = self.fabric.kind
                    for node in overused:
                        hot.update(targets[offsets[node]:offsets[node + 1]])
                        # Pin conflicts are matching problems: a tile's
                        # nets must pair off with its pins.  Rip the
                        # sibling pins' users too, or the one free pin
                        # stays walled off by their taps forever.
                        k = kinds[node]
                        if k == KIND_OPIN or k == KIND_IPIN:
                            hot.update(self._sibling_pins(node))
                    for net in order:
                        tree = trees.get(net.name)
                        if tree is None:
                            continue
                        for n in tree.nodes:
                            if any(v in overused
                                   for v in targets[offsets[n]:offsets[n + 1]]):
                                hot.add(n)
                                break
                to_route = [
                    net
                    for net in order
                    if net.name not in trees
                    or any(n in hot for n in trees[net.name].nodes)
                ]
            if not to_route and iteration > 1:
                break
            self._refresh_static_costs()
            shuffle_seed = iteration if escalate else 0
            for net in to_route:
                old = trees.pop(net.name, None)
                if old is not None:
                    self._occupy(old, -1)
                net_crit = crit_of.get(net.name, 0.0)
                tree = self._route_net(
                    net, pres_fac, sink_shuffle=shuffle_seed, criticality=net_crit
                )
                if tree is None:
                    # Bounding-box restriction may have cut off the only
                    # path; retry unbounded before declaring failure.
                    tree = self._route_net(
                        net, pres_fac, bb_margin=1e9, criticality=net_crit
                    )
                if tree is None:
                    # Even congestion-tolerant search failed (graph
                    # disconnection at this width): hard failure.
                    overused_now = len(self._overused())
                    wirelength = self._wirelength(trees)
                    convergence.append(RouterIteration(
                        iteration=iteration,
                        overused_nodes=overused_now,
                        pres_fac=pres_fac,
                        wirelength=wirelength,
                        rerouted_nets=len(to_route),
                    ))
                    _log.info("route hard-fail %s", kv(
                        net=net.name, iteration=iteration, overused=overused_now))
                    return RoutingResult(
                        success=False,
                        iterations=iteration,
                        trees=trees,
                        overused_nodes=overused_now,
                        wirelength=wirelength,
                        convergence=convergence,
                    )
                trees[net.name] = tree
                self._occupy(tree, +1)
            overused = self._overused()
            wirelength = self._wirelength(trees)
            convergence.append(RouterIteration(
                iteration=iteration,
                overused_nodes=len(overused),
                pres_fac=pres_fac,
                wirelength=wirelength,
                rerouted_nets=len(to_route),
            ))
            _log.debug("route iter %s", kv(
                iteration=iteration, overused=len(overused), pres_fac=pres_fac,
                wirelength=wirelength, rerouted=len(to_route)))
            if pub.enabled:
                pub.progress("route.iteration", iteration=iteration,
                             overused=len(overused), wirelength=wirelength,
                             rerouted=len(to_route))
            if not overused:
                return RoutingResult(
                    success=True,
                    iterations=iteration,
                    trees=trees,
                    overused_nodes=0,
                    wirelength=wirelength,
                    convergence=convergence,
                )
            for node in overused:
                self._hist[node] += self.hist_fac * (self._occ[node] - self._cap[node])
            pres_fac *= self.pres_fac_mult
            overuse_history.append(len(overused))
            # Routing predictor: hopeless widths abort early, marginal
            # ones get time to grind the congestion tail down.
            if len(overuse_history) >= 14 and overuse_history[-1] > len(nets) // 2:
                break
            if len(overuse_history) >= 24:
                recent = overuse_history[-14:]
                if recent[-1] > 0.85 * recent[0] and recent[-1] > max(10, len(nets) // 10):
                    break
        return RoutingResult(
            success=not self._overused(),
            iterations=iteration,
            trees=trees,
            overused_nodes=len(self._overused()),
            wirelength=self._wirelength(trees),
            convergence=convergence,
        )

    def _wirelength(self, trees: Dict[str, RouteTree]) -> int:
        wire_spans = self.fabric.wire_spans
        total = 0
        for tree in trees.values():
            for node_id in tree.nodes:
                total += wire_spans[node_id]
        return total


def merge_defect_kwargs(router_kwargs: Dict, defect_map) -> Dict:
    """Fold a resolved `FabricDefectMap` into router keyword args.

    Unions the map's avoidance sets with any explicitly supplied
    ``blocked_nodes`` / ``blocked_edges`` so callers can combine a
    campaign with manual blocks.
    """
    if defect_map is None or defect_map.clean:
        return router_kwargs
    kwargs = dict(router_kwargs)
    nodes = set(kwargs.pop("blocked_nodes", None) or ())
    edges = set(kwargs.pop("blocked_edges", None) or ())
    kwargs["blocked_nodes"] = nodes | defect_map.blocked_nodes()
    kwargs["blocked_edges"] = edges | defect_map.blocked_edges()
    return kwargs


def route_design(
    placement: Placement,
    params: Optional[ArchParams] = None,
    channel_width: Optional[int] = None,
    defects=None,
    **router_kwargs,
) -> Tuple[RoutingResult, FabricIR]:
    """Fetch (or build) the FabricIR for a placement and route it.

    The IR comes from the keyed process-wide cache, so repeated calls
    at a previously probed ``(params, nx, ny)`` — the channel-width
    binary search, variant evaluation, STA re-routes — skip the build
    entirely.

    Args:
        placement: Placed design.
        params: Architecture; defaults to the packing's parameters.
        channel_width: Override W (used by the Wmin binary search).
        defects: Optional fault state to route around — a
            `faults.FabricDefectMap` for *this* width, or a provider
            (`faults.FaultCampaign` / callable) re-sampled per
            concrete fabric; see `faults.resolve_defects`.  Providers
            are the only defect form that survives a width change.

    Returns:
        (result, graph) — the `FabricIR` is needed for timing/power.
    """
    if params is None:
        params = placement.clustered.params
    if channel_width is not None:
        params = params.with_channel_width(channel_width)
    graph = get_fabric(params, placement.grid_width, placement.grid_height)
    if defects is not None:
        from ..faults import resolve_defects  # local: faults imports us

        router_kwargs = merge_defect_kwargs(
            router_kwargs, resolve_defects(defects, graph))
    router = PathFinderRouter(graph, **router_kwargs)
    nets = build_route_nets(placement)
    return router.route(nets), graph
