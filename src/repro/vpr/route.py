"""PathFinder negotiated-congestion routing (VPR-style).

Routes every inter-cluster net over the routing-resource graph.  The
classic algorithm [McMurchie-Ebeling / Betz 99]:

* every RR node has a congestion cost
  ``(base + history) * presence`` where presence grows with current
  overuse and history accumulates overuse across iterations;
* each iteration rips up and re-routes (only) the nets that touch
  overused nodes, as a Steiner tree grown sink-by-sink with A*
  (Manhattan-distance/L lookahead);
* iteration ends when no node is shared by two nets (legal routing)
  or the iteration limit is hit (unroutable at this channel width).

The inner expansion/cost loop lives in a pluggable kernel
(`repro.vpr.route_kernels`): the pure-Python reference walk, a
vectorised numpy kernel, or a numba-compiled one — all bit-identical
by contract, so choosing a kernel changes speed and nothing else.
"""

from __future__ import annotations

import dataclasses
import random
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.params import ArchParams
from ..fabric import (
    KIND_IPIN,
    KIND_OPIN,
    FabricIR,
    as_fabric,
    get_fabric,
)
from ..netlist.core import BlockType
from ..obs import get_logger, get_publisher, get_registry, get_tracer, kv
from .place import Placement
from .route_kernels import make_kernel, resolve_kernel

_log = get_logger("vpr.route")

#: Deterministic tie-break jitter, cached per node count: it depends
#: only on ``n``, so routers sharing a FabricIR (or probing equal-size
#: graphs) skip regenerating it.  Lock-guarded: serve's thread-pool
#: workers construct routers concurrently.
_JITTER_CACHE: Dict[int, List[float]] = {}
_JITTER_LOCK = threading.Lock()


def _jitter_for(n: int) -> List[float]:
    with _JITTER_LOCK:
        cached = _JITTER_CACHE.get(n)
        if cached is None:
            rng = random.Random(0xF9A4)
            cached = _JITTER_CACHE[n] = [1.0 + 0.03 * rng.random() for _ in range(n)]
        return cached


@dataclasses.dataclass
class RouteNet:
    """A net to route: one source tile, one or more sink tiles."""

    name: str
    source_tile: Tuple[int, int]
    sink_tiles: List[Tuple[int, int]]


@dataclasses.dataclass
class RouteTree:
    """Routed result for one net.

    Attributes:
        nodes: All RR node ids used (tree order not guaranteed).
        parent: node id -> upstream node id (source's parent is -1).
        sink_nodes: SINK node ids reached.
    """

    nodes: List[int]
    parent: Dict[int, int]
    sink_nodes: List[int]


@dataclasses.dataclass
class RouterIteration:
    """Convergence telemetry for one PathFinder rip-up/re-route pass.

    Attributes:
        iteration: 1-based pass number.
        overused_nodes: Nodes still shared at the end of the pass.
        pres_fac: Presence factor the pass routed with.
        wirelength: Total wirelength of the current route trees.
        rerouted_nets: Nets ripped up and re-routed this pass.
    """

    iteration: int
    overused_nodes: int
    pres_fac: float
    wirelength: int
    rerouted_nets: int


@dataclasses.dataclass
class RoutingResult:
    """Outcome of a routing attempt.

    Attributes:
        success: True when fully legal (no overuse).
        iterations: PathFinder iterations used.
        trees: Net name -> route tree (present even on failure).
        overused_nodes: Count of still-overused nodes (0 on success).
        wirelength: Total wire-segment tiles used by all routes.
        convergence: Per-iteration telemetry series (always recorded;
            `overused_nodes` per entry is the router's convergence
            signal, ending at 0 on success).
    """

    success: bool
    iterations: int
    trees: Dict[str, RouteTree]
    overused_nodes: int
    wirelength: int
    convergence: List[RouterIteration] = dataclasses.field(default_factory=list)


def build_route_nets(placement: Placement) -> List[RouteNet]:
    """Derive the routable nets from a placement.

    Sinks collapse per tile (one SINK per LB / IO tile); sinks landing
    on the source tile are intra-tile (crossbar feedback) and drop out.
    """
    clustered = placement.clustered
    netlist = clustered.netlist
    nets: List[RouteNet] = []
    for driver, sinks in clustered.external_nets().items():
        driver_block = netlist.blocks[driver]
        if driver_block.type is BlockType.INPUT:
            source_tile = placement.location_of[driver]
        else:
            source_tile = placement.location_of[f"c{clustered.cluster_of[driver]}"]
        sink_tiles: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for sink in sinks:
            sink_block = netlist.blocks[sink]
            if sink_block.type is BlockType.OUTPUT:
                tile = placement.location_of[sink]
            else:
                tile = placement.location_of[f"c{clustered.cluster_of[sink]}"]
            if tile != source_tile and tile not in seen:
                seen.add(tile)
                sink_tiles.append(tile)
        if sink_tiles:
            nets.append(RouteNet(name=driver, source_tile=source_tile, sink_tiles=sink_tiles))
    return nets


class PathFinderRouter:
    """Negotiated-congestion router over one RR graph.

    Args:
        graph: The routing-resource graph — a `FabricIR` (preferred)
            or a legacy `RRGraph` (coerced via `as_fabric`).
        pres_fac_init / pres_fac_mult: Presence penalty schedule.
        hist_fac: History cost accumulation factor.
        max_iterations: Give up after this many rip-up passes.
        astar_fac: A* lookahead aggressiveness (1.0 = admissible).
        kernel: Expansion kernel — ``"python"`` / ``"numpy"`` /
            ``"numba"`` / ``"auto"`` / None.  None defers to the
            ``REPRO_ROUTE_KERNEL`` environment override, then auto
            (numba when importable, numpy on large graphs, reference
            otherwise).  Kernels are bit-identical by contract, so
            this only affects speed — never results, digests or cache
            keys.  The resolved name is exposed as ``self.kernel``.
    """

    def __init__(
        self,
        graph,
        pres_fac_init: float = 0.5,
        pres_fac_mult: float = 1.3,
        hist_fac: float = 0.4,
        max_iterations: int = 120,
        astar_fac: float = 1.2,
        delay_costs: Optional[Sequence[float]] = None,
        blocked_nodes: Optional[Set[int]] = None,
        blocked_edges: Optional[Set[Tuple[int, int]]] = None,
        kernel: Optional[str] = None,
    ) -> None:
        """``delay_costs`` (one weight per RR node, normalised so a
        typical wire hop ~ its base cost) enables timing-driven mode:
        a net with criticality k pays k * delay + (1 - k) * congestion
        per node, VPR-style.  None = pure routability mode.

        ``blocked_nodes`` marks defective resources (e.g. relays that
        failed programming verification): the router never uses them —
        defect-avoidance reconfiguration for relay fabrics.

        ``blocked_edges`` marks individual defective switches as
        directed ``(u, v)`` pairs: the wires stay usable, only that
        hop is forbidden (a stuck-open relay kills one crosspoint, not
        the whole track).
        """
        self.graph = graph
        ir = self.fabric = as_fabric(graph)
        self.pres_fac_init = pres_fac_init
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.max_iterations = max_iterations
        self.astar_fac = astar_fac
        if delay_costs is not None and len(delay_costs) != ir.num_nodes:
            raise ValueError("delay_costs must have one entry per RR node")
        self._delay_costs = list(delay_costs) if delay_costs is not None else None
        self._blocked = frozenset(blocked_nodes or ())
        n = ir.num_nodes
        # Directed blocked edges, encoded u*n+v so the hot loop does a
        # single int set-probe instead of building a tuple per edge.
        self._blocked_edges = frozenset(
            u * n + v for (u, v) in (blocked_edges or ()))
        # CSR adjacency in list form for the escalation scan.
        self._edge_offsets = ir.csr_offsets()
        self._edge_targets = ir.csr_targets()
        # Deterministic tie-break jitter: symmetric conflicts otherwise
        # oscillate forever because both nets see identical costs.
        self._jitter = _jitter_for(max(n, 1))
        self._route_calls = 0
        # Wire node positions for the A* lookahead.
        self._pos: List[Tuple[float, float]] = ir.positions
        self._pin_groups: Optional[Dict[Tuple[int, int, int], List[int]]] = None
        # The expansion kernel owns the mutable per-node state
        # (occupancy / history / static costs) and the search loop.
        self.kernel = resolve_kernel(kernel, n)
        self._kernel = make_kernel(self.kernel, self)

    # -- kernel delegation --------------------------------------------------

    def _refresh_static_costs(self) -> None:
        """base + history, recomputed once per PathFinder iteration."""
        self._kernel.refresh_static()

    def _route_net(
        self,
        net: RouteNet,
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ) -> Optional[RouteTree]:
        return self._kernel.route_net(
            net, pres_fac, bb_margin=bb_margin,
            sink_shuffle=sink_shuffle, criticality=criticality)

    # -- occupancy bookkeeping -----------------------------------------------

    def _sibling_pins(self, pin_id: int) -> List[int]:
        """All pins of the same kind on the same tile (lazy cache)."""
        ir = self.fabric
        if self._pin_groups is None:
            groups: Dict[Tuple[int, int, int], List[int]] = {}
            kinds = ir.kind
            pin_ids = ((kinds == KIND_OPIN) | (kinds == KIND_IPIN)).nonzero()[0]
            xs, ys = ir.xs, ir.ys
            for i in pin_ids.tolist():
                groups.setdefault((int(xs[i]), int(ys[i]), int(kinds[i])), []).append(i)
            self._pin_groups = groups
        key = (int(ir.xs[pin_id]), int(ir.ys[pin_id]), int(ir.kind[pin_id]))
        return self._pin_groups.get(key, [])

    def _occupy(self, tree: RouteTree, delta: int) -> None:
        self._kernel.occupy(tree.nodes, delta)

    def _overused(self) -> List[int]:
        return self._kernel.overused()

    # -- main loop --------------------------------------------------------------

    def route(
        self,
        nets: Sequence[RouteNet],
        criticality: Optional[Dict[str, float]] = None,
        fixed_trees: Optional[Dict[str, RouteTree]] = None,
    ) -> RoutingResult:
        """Route all nets; returns success iff fully legal.

        ``criticality`` (net name -> [0, 1], used with delay_costs)
        turns on timing-driven costing per net.  Aborts early (failure)
        when congestion stops improving — the VPR "routing predictor"
        heuristic that makes Wmin binary searches affordable.

        ``fixed_trees`` (net name -> existing `RouteTree`) pre-occupies
        resources that must not move: incremental self-repair routes
        only the victim ``nets`` while every healthy net's tree stays
        pinned in place.  Fixed nets are never ripped up — negotiation
        pushes the rerouted nets around them — and the returned result
        contains only the newly routed trees.

        The per-iteration convergence series (overuse, pres_fac,
        wirelength, rip-up counts) is always recorded on the result;
        when a tracer is active it is also attached to the
        ``route.pathfinder`` span.
        """
        tracer = get_tracer()
        with tracer.span(
            "route.pathfinder",
            nets=len(nets),
            channel_width=self.fabric.params.channel_width,
            timing_driven=self._delay_costs is not None,
            fixed_nets=len(fixed_trees or ()),
            kernel=self.kernel,
        ) as span:
            registry = get_registry()
            registry.gauge("route.blocked_nodes").set(len(self._blocked))
            registry.gauge("route.blocked_edges").set(len(self._blocked_edges))
            pops_before = self._kernel.heap_pops
            pushes_before = self._kernel.heap_pushes
            result = self._route_impl(nets, criticality, fixed_trees)
            heap_pops = self._kernel.heap_pops - pops_before
            heap_pushes = self._kernel.heap_pushes - pushes_before
            registry.counter("route.heap_pops").inc(heap_pops)
            registry.counter("route.heap_pushes").inc(heap_pushes)
            span.set_many(
                success=result.success,
                iterations=result.iterations,
                overused_nodes=result.overused_nodes,
                wirelength=result.wirelength,
                heap_pops=heap_pops,
                heap_pushes=heap_pushes,
            )
            if tracer.enabled:
                span.set(
                    "convergence",
                    [dataclasses.asdict(it) for it in result.convergence],
                )
            return result

    def _route_impl(
        self,
        nets: Sequence[RouteNet],
        criticality: Optional[Dict[str, float]] = None,
        fixed_trees: Optional[Dict[str, RouteTree]] = None,
    ) -> RoutingResult:
        if fixed_trees:
            overlap = {net.name for net in nets} & set(fixed_trees)
            if overlap:
                raise ValueError(
                    f"nets both routed and fixed: {sorted(overlap)}")
            # Pin the healthy nets' resources before the first pass;
            # their occupancy never drops, so victims negotiate around
            # them exactly as against any other net they cannot evict.
            for tree in fixed_trees.values():
                self._occupy(tree, +1)
        crit_of = criticality or {}
        # Hoisted out of the iteration loop: the disabled (null) path
        # costs one attribute check per iteration, nothing more.
        pub = get_publisher()
        order = sorted(nets, key=lambda n: (-len(n.sink_tiles), n.name))
        if criticality:
            # Critical nets route first so they get the short paths.
            order = sorted(order, key=lambda n: -crit_of.get(n.name, 0.0))
        trees: Dict[str, RouteTree] = {}
        pres_fac = self.pres_fac_init
        iteration = 0
        overuse_history: List[int] = []
        convergence: List[RouterIteration] = []
        stall = 0
        last_pops = self._kernel.heap_pops
        for iteration in range(1, self.max_iterations + 1):
            escalate = False
            if iteration == 1:
                to_route = list(order)
            else:
                overused = set(self._overused())
                if not overused:
                    break
                # Stall detection: the same small conflict persisting
                # means the default nearest-sink order and reroute set
                # are wedged; escalate by also ripping up neighbouring
                # "blocker" nets and shuffling sink order.
                if overuse_history and len(overused) == overuse_history[-1] and len(overused) < 40:
                    stall += 1
                else:
                    stall = 0
                escalate = stall >= 4 and stall % 2 == 0
                hot = set(overused)
                if escalate:
                    offsets = self._edge_offsets
                    targets = self._edge_targets
                    kinds = self.fabric.kind
                    for node in overused:
                        hot.update(targets[offsets[node]:offsets[node + 1]])
                        # Pin conflicts are matching problems: a tile's
                        # nets must pair off with its pins.  Rip the
                        # sibling pins' users too, or the one free pin
                        # stays walled off by their taps forever.
                        k = kinds[node]
                        if k == KIND_OPIN or k == KIND_IPIN:
                            hot.update(self._sibling_pins(node))
                    for net in order:
                        tree = trees.get(net.name)
                        if tree is None:
                            continue
                        for n in tree.nodes:
                            if any(v in overused
                                   for v in targets[offsets[n]:offsets[n + 1]]):
                                hot.add(n)
                                break
                to_route = [
                    net
                    for net in order
                    if net.name not in trees
                    or any(n in hot for n in trees[net.name].nodes)
                ]
            if not to_route and iteration > 1:
                break
            self._refresh_static_costs()
            shuffle_seed = iteration if escalate else 0
            for net in to_route:
                old = trees.pop(net.name, None)
                if old is not None:
                    self._occupy(old, -1)
                net_crit = crit_of.get(net.name, 0.0)
                tree = self._route_net(
                    net, pres_fac, sink_shuffle=shuffle_seed, criticality=net_crit
                )
                if tree is None:
                    # Bounding-box restriction may have cut off the only
                    # path; retry unbounded before declaring failure.
                    tree = self._route_net(
                        net, pres_fac, bb_margin=1e9, criticality=net_crit
                    )
                if tree is None:
                    # Even congestion-tolerant search failed (graph
                    # disconnection at this width): hard failure.
                    overused_now = len(self._overused())
                    wirelength = self._wirelength(trees)
                    convergence.append(RouterIteration(
                        iteration=iteration,
                        overused_nodes=overused_now,
                        pres_fac=pres_fac,
                        wirelength=wirelength,
                        rerouted_nets=len(to_route),
                    ))
                    _log.info("route hard-fail %s", kv(
                        net=net.name, iteration=iteration, overused=overused_now))
                    return RoutingResult(
                        success=False,
                        iterations=iteration,
                        trees=trees,
                        overused_nodes=overused_now,
                        wirelength=wirelength,
                        convergence=convergence,
                    )
                trees[net.name] = tree
                self._occupy(tree, +1)
            overused = self._overused()
            wirelength = self._wirelength(trees)
            convergence.append(RouterIteration(
                iteration=iteration,
                overused_nodes=len(overused),
                pres_fac=pres_fac,
                wirelength=wirelength,
                rerouted_nets=len(to_route),
            ))
            expansions = self._kernel.heap_pops - last_pops
            last_pops = self._kernel.heap_pops
            _log.debug("route iter %s", kv(
                iteration=iteration, overused=len(overused), pres_fac=pres_fac,
                wirelength=wirelength, rerouted=len(to_route),
                expansions=expansions))
            if pub.enabled:
                pub.progress("route.iteration", iteration=iteration,
                             overused=len(overused), wirelength=wirelength,
                             rerouted=len(to_route), expansions=expansions)
            if not overused:
                return RoutingResult(
                    success=True,
                    iterations=iteration,
                    trees=trees,
                    overused_nodes=0,
                    wirelength=wirelength,
                    convergence=convergence,
                )
            self._kernel.add_history(overused, self.hist_fac)
            pres_fac *= self.pres_fac_mult
            overuse_history.append(len(overused))
            # Routing predictor: hopeless widths abort early, marginal
            # ones get time to grind the congestion tail down.
            if len(overuse_history) >= 14 and overuse_history[-1] > len(nets) // 2:
                break
            if len(overuse_history) >= 24:
                recent = overuse_history[-14:]
                if recent[-1] > 0.85 * recent[0] and recent[-1] > max(10, len(nets) // 10):
                    break
        return RoutingResult(
            success=not self._overused(),
            iterations=iteration,
            trees=trees,
            overused_nodes=len(self._overused()),
            wirelength=self._wirelength(trees),
            convergence=convergence,
        )

    def _wirelength(self, trees: Dict[str, RouteTree]) -> int:
        wire_spans = self.fabric.wire_spans
        total = 0
        for tree in trees.values():
            for node_id in tree.nodes:
                total += wire_spans[node_id]
        return total


def merge_defect_kwargs(router_kwargs: Dict, defect_map) -> Dict:
    """Fold a resolved `FabricDefectMap` into router keyword args.

    Unions the map's avoidance sets with any explicitly supplied
    ``blocked_nodes`` / ``blocked_edges`` so callers can combine a
    campaign with manual blocks.
    """
    if defect_map is None or defect_map.clean:
        return router_kwargs
    kwargs = dict(router_kwargs)
    nodes = set(kwargs.pop("blocked_nodes", None) or ())
    edges = set(kwargs.pop("blocked_edges", None) or ())
    kwargs["blocked_nodes"] = nodes | defect_map.blocked_nodes()
    kwargs["blocked_edges"] = edges | defect_map.blocked_edges()
    return kwargs


def route_design(
    placement: Placement,
    params: Optional[ArchParams] = None,
    channel_width: Optional[int] = None,
    defects=None,
    **router_kwargs,
) -> Tuple[RoutingResult, FabricIR]:
    """Fetch (or build) the FabricIR for a placement and route it.

    The IR comes from the keyed process-wide cache, so repeated calls
    at a previously probed ``(params, nx, ny)`` — the channel-width
    binary search, variant evaluation, STA re-routes — skip the build
    entirely.

    Args:
        placement: Placed design.
        params: Architecture; defaults to the packing's parameters.
        channel_width: Override W (used by the Wmin binary search).
        defects: Optional fault state to route around — a
            `faults.FabricDefectMap` for *this* width, or a provider
            (`faults.FaultCampaign` / callable) re-sampled per
            concrete fabric; see `faults.resolve_defects`.  Providers
            are the only defect form that survives a width change.

    Returns:
        (result, graph) — the `FabricIR` is needed for timing/power.
    """
    if params is None:
        params = placement.clustered.params
    if channel_width is not None:
        params = params.with_channel_width(channel_width)
    graph = get_fabric(params, placement.grid_width, placement.grid_height)
    if defects is not None:
        from ..faults import resolve_defects  # local: faults imports us

        router_kwargs = merge_defect_kwargs(
            router_kwargs, resolve_defects(defects, graph))
    router = PathFinderRouter(graph, **router_kwargs)
    nets = build_route_nets(placement)
    return router.route(nets), graph
