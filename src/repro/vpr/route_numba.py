"""Numba-compiled PathFinder expansion kernel.

The same array state as the numpy kernel (see
`repro.vpr.route_kernels._ArrayStateKernel`) drives an ``@njit``
compiled A* walk over the full CSR (blocked edges compacted out once).
Unlike the numpy kernel, IPINs stay admissible — exactly the
reference's rule — so no per-tile edge re-attachment is needed inside
compiled code; only the target sink is patched per search.

When numba is not importable the ``@njit`` decorator degrades to the
identity, so this module still imports and `NumbaKernel` runs the
exact same search in pure python — slow, but it lets the differential
harness exercise the compiled code path bit-for-bit on the CI arm
without the dependency.

Bit-exactness: compiled **without** ``fastmath`` so float64 arithmetic
keeps IEEE-754 semantics identical to the interpreter's, and the
array heap orders entries by the same unique total order
``(f, g, node)`` as ``heapq`` — hence the identical pop sequence and
identical route trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..fabric.build import KIND_SINK, KIND_SOURCE
from .route_kernels import INF, _ArrayStateKernel

try:
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - depends on environment
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity decorator stand-in when numba is unavailable."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


@njit(cache=True)
def _expand(offsets, targets, c, h, dist, came, stamp, epoch, seeds, target):
    """One target-sink A* search over the CSR.

    An array-backed binary min-heap (``hf``/``hg``/``hv`` columns,
    doubling growth) replaces ``heapq``; the lexicographic strict-less
    on ``(f, g, v)`` is the same unique total order, so the pop
    sequence is identical.  ``stamp``/``epoch`` make per-search state
    reset O(1): an entry is live iff ``stamp[v] == epoch``.

    Returns ``(found, pops, pushes)``.
    """
    hf = np.empty(1024, np.float64)
    hg = np.empty(1024, np.float64)
    hv = np.empty(1024, np.int64)
    size = 0
    pops = 0
    for i in range(seeds.shape[0]):
        node = seeds[i]
        dist[node] = 0.0
        stamp[node] = epoch
        if size == hf.shape[0]:
            nf = np.empty(size * 2, np.float64)
            nf[:size] = hf
            hf = nf
            ngr = np.empty(size * 2, np.float64)
            ngr[:size] = hg
            hg = ngr
            nv = np.empty(size * 2, np.int64)
            nv[:size] = hv
            hv = nv
        j = size
        hf[j] = h[node]
        hg[j] = 0.0
        hv[j] = node
        size += 1
        while j > 0:
            p = (j - 1) >> 1
            if (hf[p] > hf[j]) or (hf[p] == hf[j] and (
                    (hg[p] > hg[j]) or (hg[p] == hg[j] and hv[p] > hv[j]))):
                tf = hf[p]; hf[p] = hf[j]; hf[j] = tf
                tg = hg[p]; hg[p] = hg[j]; hg[j] = tg
                tv = hv[p]; hv[p] = hv[j]; hv[j] = tv
                j = p
            else:
                break
    found = False
    while size > 0:
        pops += 1
        g = hg[0]
        u = hv[0]
        size -= 1
        if size > 0:
            hf[0] = hf[size]
            hg[0] = hg[size]
            hv[0] = hv[size]
            j = 0
            while True:
                left = 2 * j + 1
                if left >= size:
                    break
                right = left + 1
                m = left
                if right < size and ((hf[right] < hf[left]) or (
                        hf[right] == hf[left] and (
                            (hg[right] < hg[left]) or
                            (hg[right] == hg[left] and hv[right] < hv[left])))):
                    m = right
                if (hf[m] < hf[j]) or (hf[m] == hf[j] and (
                        (hg[m] < hg[j]) or (hg[m] == hg[j] and hv[m] < hv[j]))):
                    tf = hf[m]; hf[m] = hf[j]; hf[j] = tf
                    tg = hg[m]; hg[m] = hg[j]; hg[j] = tg
                    tv = hv[m]; hv[m] = hv[j]; hv[j] = tv
                    j = m
                else:
                    break
        if g > dist[u]:
            continue
        if u == target:
            found = True
            break
        for e in range(offsets[u], offsets[u + 1]):
            v = targets[e]
            ng = g + c[v]
            if stamp[v] == epoch:
                lim = dist[v]
            else:
                lim = np.inf
            if ng < lim:
                dist[v] = ng
                stamp[v] = epoch
                came[v] = u
                if size == hf.shape[0]:
                    nf = np.empty(size * 2, np.float64)
                    nf[:size] = hf
                    hf = nf
                    ngr = np.empty(size * 2, np.float64)
                    ngr[:size] = hg
                    hg = ngr
                    nv = np.empty(size * 2, np.int64)
                    nv[:size] = hv
                    hv = nv
                j = size
                hf[j] = ng + h[v]
                hg[j] = ng
                hv[j] = v
                size += 1
                while j > 0:
                    p = (j - 1) >> 1
                    if (hf[p] > hf[j]) or (hf[p] == hf[j] and (
                            (hg[p] > hg[j]) or (hg[p] == hg[j] and hv[p] > hv[j]))):
                        tf = hf[p]; hf[p] = hf[j]; hf[j] = tf
                        tg = hg[p]; hg[p] = hg[j]; hg[j] = tg
                        tv = hv[p]; hv[p] = hv[j]; hv[j] = tv
                        j = p
                    else:
                        break
    return found, pops, pops + size


class NumbaKernel(_ArrayStateKernel):
    """Array-state kernel whose per-search walk is `_expand` above."""

    name = "numba"

    def __init__(self, router) -> None:
        super().__init__(router, (KIND_SINK, KIND_SOURCE))
        ir = router.fabric
        n = ir.num_nodes
        off = ir.edge_offsets
        tgt = ir.edge_targets
        if router._blocked_edges:
            src = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
            enc = src * n + tgt
            keep = ~np.isin(enc, np.fromiter(
                router._blocked_edges, dtype=np.int64,
                count=len(router._blocked_edges)))
            counts = np.bincount(src[keep], minlength=n)
            offs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offs[1:])
            self._k_offsets = offs
            self._k_targets = tgt[keep].astype(np.int64)
        else:
            self._k_offsets = np.ascontiguousarray(off, dtype=np.int64)
            self._k_targets = np.ascontiguousarray(tgt, dtype=np.int64)
        self._dist = np.full(n, INF, dtype=np.float64)
        self._came = np.zeros(n, dtype=np.int64)
        self._stamp = np.zeros(n, dtype=np.int64)
        self._epoch = 0

    def route_net(
        self,
        net,
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ):
        import random

        router = self._router
        ir = router.fabric
        source = ir.source_of[net.source_tile]
        targets = {ir.sink_of[tile]: tile for tile in net.sink_tiles}
        tree_nodes: List[int] = [source]
        tree_set: Set[int] = {source}
        parent: Dict[int, int] = {source: -1}
        sink_nodes: List[int] = []
        remaining = dict(targets)

        xs = [net.source_tile[0]] + [t[0] for t in net.sink_tiles]
        ys = [net.source_tile[1]] + [t[1] for t in net.sink_tiles]
        bb = (min(xs) - bb_margin, max(xs) + bb_margin,
              min(ys) - bb_margin, max(ys) + bb_margin)

        pos = router._pos
        crit = (min(max(criticality, 0.0), 0.99)
                if router._delay_costs is not None else 0.0)
        cong_weight = 1.0 - crit
        c, salt = self._cost_vector(net.name, pres_fac, crit, cong_weight, bb)

        shuffled_order: List[int] = []
        if sink_shuffle:
            rng = random.Random(sink_shuffle)
            shuffled_order = sorted(targets)
            rng.shuffle(shuffled_order)

        dist, came, stamp = self._dist, self._came, self._stamp
        blocked = router._blocked

        while remaining:
            if shuffled_order:
                target_sink = next(s for s in shuffled_order if s in remaining)
            else:
                target_sink = min(
                    remaining,
                    key=lambda s: abs(pos[s][0] - pos[source][0])
                    + abs(pos[s][1] - pos[source][1]),
                )
            ha = self._heuristic(target_sink)
            patch = target_sink not in blocked
            if patch:
                c[target_sink] = self._scalar_cost(
                    target_sink, salt, pres_fac, crit, cong_weight)
            self._epoch += 1
            if len(tree_nodes) > 1:
                seeds = np.asarray(
                    [node for node in tree_nodes if node != source],
                    dtype=np.int64)
            else:
                seeds = np.asarray(tree_nodes, dtype=np.int64)
            found, pops, pushes = _expand(
                self._k_offsets, self._k_targets, c, ha,
                dist, came, stamp, self._epoch, seeds, target_sink)
            self.heap_pops += int(pops)
            self.heap_pushes += int(pushes)
            if patch:
                c[target_sink] = INF
            if not found:
                return None
            path: List[int] = []
            node = target_sink
            while node not in tree_set:
                path.append(node)
                node = int(came[node])
            for step in reversed(path):
                parent[step] = node
                tree_set.add(step)
                tree_nodes.append(step)
                node = step
            sink_nodes.append(target_sink)
            del remaining[target_sink]
        return self._RouteTree(nodes=tree_nodes, parent=parent, sink_nodes=sink_nodes)
