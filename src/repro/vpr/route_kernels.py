"""Pluggable PathFinder expansion kernels (reference / numpy / numba).

`PathFinderRouter` delegates its inner loop — per-net cost evaluation,
neighbour expansion, the A* heap walk — to one of three interchangeable
kernels:

* ``python`` — the original pure-Python walk, kept verbatim as the
  *reference kernel* the differential harness pins the others against;
* ``numpy``  — vectorised cost evaluation over FabricIR's CSR arrays
  feeding a tight scalar heap walk (this module);
* ``numba``  — the same array state driving an ``@njit``-compiled
  search (`repro.vpr.route_numba`), auto-selected when numba imports.

Determinism contract
--------------------
Kernel selection must never change results, only speed.  All kernels
produce bit-identical `RoutingResult`s — same route trees, same
iteration/convergence trace, same failures — so Wmin, artefact digests
and the result store's cache keys are byte-identical across kernels
(which is also why the kernel name is *not* part of job identity).
The invariants that make this provable rather than hopeful:

* the heap key ``(f, g, node)`` is a unique total order over live
  entries (re-pushes of a node carry strictly smaller ``g``), so any
  correct min-heap pops the identical sequence;
* per-net cost vectors are built with the reference's exact IEEE-754
  float64 operations in the reference's order (elementwise numpy ops
  run the same machine arithmetic; ``x * 1.0`` preserves bits, which
  folds the reference's ``if over > 0`` branch into `np.maximum`);
* the jitter table, crc32 name-hash salt, stable CSR edge order,
  bounding-box rule and sink-shuffle RNG are shared with the
  reference;
* inadmissible nodes (sources, non-target sinks, out-of-box, blocked)
  fold to ``+inf`` cost — a relaxation ``g + inf < dist`` can never
  fire, which is exactly the reference's skip;
* structural prunings (compacting blocked edges out of the CSR,
  dropping wire->IPIN edges into non-target tiles) only remove
  expansions that provably cannot change ``dist``/``came`` along any
  traced path.

``REPRO_ROUTE_KERNEL`` (``python`` / ``numpy`` / ``numba`` / ``auto``)
overrides auto-selection; `tests/vpr/test_route_kernels.py` is the
differential harness that enforces the contract.
"""

from __future__ import annotations

import heapq
import os
import random
import zlib
from array import array
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from ..fabric.build import (
    KIND_HWIRE,
    KIND_IPIN,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .route import PathFinderRouter, RouteNet, RouteTree

INF = float("inf")

#: Selectable kernel names (``auto`` additionally accepted by
#: `resolve_kernel`).
KERNELS = ("python", "numpy", "numba")
#: Environment override consulted when the router gets no explicit
#: ``kernel=`` argument (batch workers inherit it from the parent).
ENV_VAR = "REPRO_ROUTE_KERNEL"
#: Below this node count the numpy kernel's per-net vector setup
#: outweighs the walk it saves; ``auto`` stays on the reference.
NUMPY_MIN_NODES = 4096
#: Byte budget for the per-target-sink A* heuristic cache (each entry
#: is one float64 per node).  Fill-up-to-cap, no eviction: PathFinder
#: revisits the same sinks cyclically, which would thrash an LRU.
H_CACHE_BYTES = 64 * 1024 * 1024
#: Entry cap for the per-bounding-box admissibility mask cache.
BB_CACHE_ENTRIES = 4096


def numba_available() -> bool:
    """True when ``import numba`` succeeds (absence is simulated in
    tests via ``monkeypatch.setitem(sys.modules, "numba", None)``,
    which makes the import raise)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def resolve_kernel(kernel: Optional[str], num_nodes: int) -> str:
    """Pick the kernel to run: explicit arg > ``REPRO_ROUTE_KERNEL``
    env > ``auto``.

    ``auto`` prefers numba when importable, numpy on graphs of at
    least `NUMPY_MIN_NODES` nodes, and the reference kernel otherwise.
    Unknown names raise `ValueError`; asking for ``numba`` explicitly
    when it is not importable raises `RuntimeError` (auto never does —
    it just falls back).
    """
    requested = kernel if kernel is not None else os.environ.get(ENV_VAR) or "auto"
    if requested not in KERNELS + ("auto",):
        raise ValueError(
            f"unknown route kernel {requested!r}; expected one of "
            f"{', '.join(KERNELS + ('auto',))}")
    if requested == "numba" and not numba_available():
        raise RuntimeError(
            "route kernel 'numba' requested but numba is not importable; "
            "use kernel='auto' to fall back automatically")
    if requested != "auto":
        return requested
    if numba_available():
        return "numba"
    return "numpy" if num_nodes >= NUMPY_MIN_NODES else "python"


def make_kernel(name: str, router: "PathFinderRouter") -> "RouteKernel":
    """Instantiate the named kernel bound to ``router``."""
    if name == "python":
        return PythonKernel(router)
    if name == "numpy":
        return NumpyKernel(router)
    if name == "numba":
        from .route_numba import NumbaKernel

        return NumbaKernel(router)
    raise ValueError(f"unknown route kernel {name!r}")


def _no_extra(_u: int) -> None:
    return None


class RouteKernel:
    """Interface between `PathFinderRouter` and an expansion kernel.

    A kernel owns the router's mutable per-node state (occupancy,
    history, static costs) and implements the sink-by-sink expansion
    search; the router keeps the negotiation schedule, net ordering
    and escalation logic.  Everything observable through this
    interface must be bit-identical across kernels — the differential
    harness enforces it — except the `heap_pops` / `heap_pushes`
    telemetry counters, which may legitimately differ because the
    array kernels prune expansions the reference performs and skips.
    """

    name = "abstract"

    def __init__(self, router: "PathFinderRouter") -> None:
        self._router = router
        #: Monotonic heap-operation telemetry (obs only, never part of
        #: the routing result).
        self.heap_pops = 0
        self.heap_pushes = 0

    def refresh_static(self) -> None:
        """Recompute static = base + history (once per iteration)."""
        raise NotImplementedError

    def occupy(self, nodes: List[int], delta: int) -> None:
        """Add ``delta`` to the occupancy of every node in ``nodes``."""
        raise NotImplementedError

    def overused(self) -> List[int]:
        """Node ids with occupancy above capacity, ascending."""
        raise NotImplementedError

    def add_history(self, nodes: List[int], hist_fac: float) -> None:
        """Accumulate history cost on the (distinct) overused nodes."""
        raise NotImplementedError

    def route_net(
        self,
        net: "RouteNet",
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ) -> Optional["RouteTree"]:
        """Grow one net's Steiner tree sink-by-sink; None on failure."""
        raise NotImplementedError


class PythonKernel(RouteKernel):
    """The original pure-Python walk — the reference kernel.

    Kept verbatim (modulo the heap-op counters) as the semantics
    oracle: the differential harness asserts the array kernels against
    this implementation, never the other way round.
    """

    name = "python"

    def __init__(self, router: "PathFinderRouter") -> None:
        super().__init__(router)
        ir = router.fabric
        n = ir.num_nodes
        self._base = ir.base_costs.tolist()
        self._cap = ir.capacities.tolist()
        self._occ = [0] * n
        self._hist = [0.0] * n
        self._static = list(self._base)
        self._is_sink = ir.sink_flags
        self._is_source = ir.source_flags
        self._edge_offsets = ir.csr_offsets()
        self._edge_targets = ir.csr_targets()
        # Search scratch arrays reused across nets (epoch-stamped).
        self._dist = [0.0] * n
        self._came = [0] * n
        self._stamp = [0] * n
        self._epoch = 0
        from .route import RouteTree

        self._RouteTree = RouteTree

    def refresh_static(self) -> None:
        self._static = [b + h for b, h in zip(self._base, self._hist)]

    def occupy(self, nodes: List[int], delta: int) -> None:
        occ = self._occ
        for node in nodes:
            occ[node] += delta

    def overused(self) -> List[int]:
        cap = self._cap
        return [i for i, occ in enumerate(self._occ) if occ > cap[i]]

    def add_history(self, nodes: List[int], hist_fac: float) -> None:
        occ, cap, hist = self._occ, self._cap, self._hist
        for node in nodes:
            hist[node] += hist_fac * (occ[node] - cap[node])

    def route_net(
        self,
        net: "RouteNet",
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ) -> Optional["RouteTree"]:
        router = self._router
        ir = router.fabric
        source = ir.source_of[net.source_tile]
        targets = {ir.sink_of[tile]: tile for tile in net.sink_tiles}
        tree_nodes: List[int] = [source]
        tree_set: Set[int] = {source}
        parent: Dict[int, int] = {source: -1}
        sink_nodes: List[int] = []
        remaining = dict(targets)

        # Net bounding box (+margin) restricts the search, VPR-style.
        xs = [net.source_tile[0]] + [t[0] for t in net.sink_tiles]
        ys = [net.source_tile[1]] + [t[1] for t in net.sink_tiles]
        bb = (min(xs) - bb_margin, max(xs) + bb_margin,
              min(ys) - bb_margin, max(ys) + bb_margin)

        # Local bindings for the hot loop.
        edge_offsets = self._edge_offsets
        edge_targets = self._edge_targets
        blocked = router._blocked
        blocked_edges = router._blocked_edges
        n_enc = ir.num_nodes
        pos = router._pos
        static = self._static
        occ = self._occ
        cap = self._cap
        is_sink = self._is_sink
        is_source = self._is_source
        astar_per_tile = router.astar_fac
        dist = self._dist
        came = self._came
        stamp = self._stamp
        heappush, heappop = heapq.heappush, heapq.heappop
        jitter = router._jitter
        router._route_calls += 1
        n_nodes = len(jitter)
        # Stable string hash: Python's hash() is salted per process,
        # which would make routing (and thus Wmin) non-reproducible.
        name_hash = zlib.crc32(net.name.encode())
        salt = (name_hash * 31 + router._route_calls * 7919) % n_nodes
        # Timing-driven blend (VPR): crit * delay + (1 - crit) * cong.
        delay_costs = router._delay_costs
        crit = min(max(criticality, 0.0), 0.99) if delay_costs is not None else 0.0
        cong_weight = 1.0 - crit

        # Optional sink-order shuffle: the default nearest-first order
        # can commit the tree trunk so the last sink is boxed into one
        # conflicted IPIN; a reshuffled order escapes such wedges.
        shuffled_order: List[int] = []
        if sink_shuffle:
            rng = random.Random(sink_shuffle)
            shuffled_order = sorted(targets)
            rng.shuffle(shuffled_order)

        pops_total = 0
        pushes_total = 0
        while remaining:
            self._epoch += 1
            epoch = self._epoch
            if shuffled_order:
                target_sink = next(s for s in shuffled_order if s in remaining)
            else:
                target_sink = min(
                    remaining,
                    key=lambda s: abs(pos[s][0] - pos[source][0])
                    + abs(pos[s][1] - pos[source][1]),
                )
            tx, ty = pos[target_sink]
            heap: List[Tuple[float, float, int]] = []
            for node in tree_nodes:
                # Once the first sink is routed, the SOURCE stops being
                # a seed: otherwise later sinks branch at the source and
                # the net consumes several OPINs, oversubscribing the
                # LB's N output pins.
                if node == source and len(tree_nodes) > 1:
                    continue
                dist[node] = 0.0
                stamp[node] = epoch
                nx, ny = pos[node]
                heappush(heap, (astar_per_tile * (abs(nx - tx) + abs(ny - ty)), 0.0, node))
            found = False
            pops = 0
            bb_x0, bb_x1, bb_y0, bb_y1 = bb
            while heap:
                pops += 1
                _f, g, u = heappop(heap)
                if stamp[u] == epoch and g > dist[u]:
                    continue
                if u == target_sink:
                    found = True
                    break
                u_base = u * n_enc if blocked_edges else 0
                # CSR neighbor expansion: one contiguous slice per pop.
                for v in edge_targets[edge_offsets[u]:edge_offsets[u + 1]]:
                    if v in tree_set:
                        continue
                    if blocked and v in blocked:
                        continue
                    if blocked_edges and u_base + v in blocked_edges:
                        continue
                    if is_sink[v]:
                        if v != target_sink:
                            continue
                    elif is_source[v]:
                        continue
                    vx, vy = pos[v]
                    if not (bb_x0 <= vx <= bb_x1 and bb_y0 <= vy <= bb_y1):
                        continue
                    c = static[v] * jitter[v - salt]
                    over = occ[v] + 1 - cap[v]
                    if over > 0:
                        c *= 1.0 + pres_fac * over
                    if crit > 0.0:
                        c = cong_weight * c + crit * delay_costs[v]
                    ng = g + c
                    if stamp[v] != epoch or ng < dist[v]:
                        dist[v] = ng
                        stamp[v] = epoch
                        came[v] = u
                        heappush(heap, (ng + astar_per_tile * (abs(vx - tx) + abs(vy - ty)), ng, v))
            pops_total += pops
            pushes_total += pops + len(heap)
            if not found:
                self.heap_pops += pops_total
                self.heap_pushes += pushes_total
                return None
            # Trace back, splice into tree.
            path: List[int] = []
            node = target_sink
            while node not in tree_set:
                path.append(node)
                node = came[node]
            for step in reversed(path):
                parent[step] = node
                tree_set.add(step)
                tree_nodes.append(step)
                node = step
            sink_nodes.append(target_sink)
            del remaining[target_sink]
        self.heap_pops += pops_total
        self.heap_pushes += pushes_total
        return self._RouteTree(nodes=tree_nodes, parent=parent, sink_nodes=sink_nodes)


class _ArrayStateKernel(RouteKernel):
    """Shared numpy state + cost-vector machinery for the array kernels.

    Subclasses choose the CSR form and the heap walk; everything here
    — the occupancy/history columns, the per-net cost vector, the
    cached per-target A* heuristic vectors and bounding-box masks —
    reproduces the reference kernel's IEEE-754 op order exactly.
    """

    def __init__(self, router: "PathFinderRouter",
                 inadmissible_kinds: Tuple[int, ...]) -> None:
        super().__init__(router)
        ir = router.fabric
        n = ir.num_nodes
        cols = ir.router_columns()
        self._base = cols.base
        self._cap = cols.capacity
        self._occ = cols.occupancy
        self._hist = cols.history
        self._static = cols.static
        self._px = ir.pos_x
        self._py = ir.pos_y
        jit = np.asarray(router._jitter, dtype=np.float64)
        # Jitter doubled so the reference's negative-index wrap
        # ``jitter[v - salt]`` becomes one contiguous view
        # ``jitter2[n - salt : 2n - salt]`` (no per-net np.roll copy).
        self._jitter2 = np.concatenate([jit, jit])
        self._n_jitter = len(jit)
        self._inadmissible = ir.nodes_of_kind(*inadmissible_kinds)
        blocked = sorted(router._blocked)
        self._blocked_idx = (
            np.asarray(blocked, dtype=np.int64) if blocked else None)
        self._delay_np = (
            np.asarray(router._delay_costs, dtype=np.float64)
            if router._delay_costs is not None else None)
        self._h_cache: Dict[int, object] = {}
        self._h_entries = max(1, H_CACHE_BYTES // max(8 * n, 8))
        self._bb_cache: Dict[Tuple[float, float, float, float], np.ndarray] = {}
        from .route import RouteTree

        self._RouteTree = RouteTree

    # -- router state -------------------------------------------------------

    def refresh_static(self) -> None:
        np.add(self._base, self._hist, out=self._static)

    def occupy(self, nodes: List[int], delta: int) -> None:
        # Tree nodes are distinct, so fancy-index += applies each once.
        self._occ[np.asarray(nodes, dtype=np.int64)] += delta

    def overused(self) -> List[int]:
        return np.nonzero(self._occ > self._cap)[0].tolist()

    def add_history(self, nodes: List[int], hist_fac: float) -> None:
        idx = np.asarray(nodes, dtype=np.int64)
        self._hist[idx] += hist_fac * (self._occ[idx] - self._cap[idx])

    # -- cost machinery -----------------------------------------------------

    def _cost_vector(self, name: str, pres_fac: float, crit: float,
                     cong_weight: float,
                     bb: Tuple[float, float, float, float]) -> Tuple[np.ndarray, int]:
        """Per-net cost vector in the reference's exact op order, with
        inadmissible nodes folded to ``+inf``.  Also advances the
        router's per-call salt sequence (one bump per route_net call,
        exactly like the reference)."""
        router = self._router
        router._route_calls += 1
        nj = self._n_jitter
        salt = (zlib.crc32(name.encode()) * 31 + router._route_calls * 7919) % nj
        c = self._static * self._jitter2[nj - salt:2 * nj - salt]
        # max(m, 1.0) folds the reference's ``if over > 0`` branch:
        # x * 1.0 is a bitwise identity for every routing cost.
        m = 1.0 + pres_fac * (self._occ + 1 - self._cap)
        np.maximum(m, 1.0, out=m)
        c *= m
        if crit > 0.0:
            c *= cong_weight
            c += crit * self._delay_np
        c[self._bbox_out(bb)] = INF
        c[self._inadmissible] = INF
        if self._blocked_idx is not None:
            c[self._blocked_idx] = INF
        return c, salt

    def _scalar_cost(self, v: int, salt: int, pres_fac: float, crit: float,
                     cong_weight: float) -> float:
        """The reference's scalar cost expression for one node — used
        to patch per-search admissible targets into the cost vector."""
        router = self._router
        cv = float(self._static[v]) * router._jitter[v - salt]
        over = int(self._occ[v]) + 1 - int(self._cap[v])
        if over > 0:
            cv *= 1.0 + pres_fac * over
        if crit > 0.0:
            cv = cong_weight * cv + crit * router._delay_costs[v]
        return cv

    def _h_vector(self, t: int) -> np.ndarray:
        """A* lookahead vector towards target ``t`` (reference op
        order: scale applied after the Manhattan sum)."""
        tx, ty = self._router._pos[t]
        return self._router.astar_fac * (np.abs(self._px - tx) + np.abs(self._py - ty))

    def _wrap_vector(self, vec: np.ndarray):
        """Hook: final in-memory form of a cached heuristic vector."""
        return vec

    def _heuristic(self, t: int):
        h = self._h_cache.get(t)
        if h is None:
            h = self._wrap_vector(self._h_vector(t))
            if len(self._h_cache) < self._h_entries:
                self._h_cache[t] = h
        return h

    def _bbox_out(self, bb: Tuple[float, float, float, float]) -> np.ndarray:
        mask = self._bb_cache.get(bb)
        if mask is None:
            x0, x1, y0, y1 = bb
            mask = (self._px < x0) | (self._px > x1) | (self._py < y0) | (self._py > y1)
            if len(self._bb_cache) < BB_CACHE_ENTRIES:
                self._bb_cache[bb] = mask
        return mask


class NumpyKernel(_ArrayStateKernel):
    """Vectorised cost build + reduced-CSR scalar heap walk.

    Structure: blocked edges are compacted out of the CSR once, and
    wire->IPIN edges are dropped — IPINs are only ever *entered* on
    the target tile, so those in-edges are re-attached per search from
    a precomputed per-tile table.  All sinks, sources and IPINs fold
    to ``+inf`` in the cost vector; each search patches the target
    sink and the target tile's IPINs admissible with the reference's
    scalar cost expression and restores them afterwards.
    """

    name = "numpy"

    def __init__(self, router: "PathFinderRouter") -> None:
        super().__init__(router, (KIND_SINK, KIND_SOURCE, KIND_IPIN))
        ir = router.fabric
        n = ir.num_nodes
        off = ir.edge_offsets
        tgt = ir.edge_targets
        kind = ir.kind
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
        wire = (kind == KIND_HWIRE) | (kind == KIND_VWIRE)
        if len(tgt):
            to_ipin = wire[src] & (kind[tgt] == KIND_IPIN)
        else:
            to_ipin = np.zeros(0, dtype=bool)
        if router._blocked_edges:
            enc = src * n + tgt
            edge_ok = ~np.isin(enc, np.fromiter(
                router._blocked_edges, dtype=np.int64,
                count=len(router._blocked_edges)))
        else:
            edge_ok = None
        keep = ~to_ipin if edge_ok is None else (~to_ipin & edge_ok)
        counts = np.bincount(src[keep], minlength=n)
        offs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offs[1:])
        self._k_offsets = offs.tolist()
        self._k_targets = tgt[keep].tolist()
        # Per-tile IPIN tables for the per-search re-attachment.
        ipin_sel = to_ipin if edge_ok is None else (to_ipin & edge_ok)
        xs, ys = ir.xs, ir.ys
        tile_extra: Dict[Tuple[int, int], Dict[int, List[int]]] = {}
        for u, v in zip(src[ipin_sel].tolist(), tgt[ipin_sel].tolist()):
            tile_extra.setdefault(
                (int(xs[v]), int(ys[v])), {}).setdefault(u, []).append(v)
        self._tile_extra = tile_extra
        tile_ipins: Dict[Tuple[int, int], List[int]] = {}
        for i in ir.nodes_of_kind(KIND_IPIN).tolist():
            tile_ipins.setdefault((int(xs[i]), int(ys[i])), []).append(i)
        self._tile_ipins = tile_ipins
        # INF-sentinel scratch (restored via the touched list).
        self._dist = [INF] * n
        self._came = [0] * n

    def _wrap_vector(self, vec: np.ndarray) -> array:
        # array('d') gives ~2x faster python-float item reads than a
        # numpy array in the scalar walk (no per-index boxing).
        out = array("d")
        out.frombytes(memoryview(vec).cast("B"))
        return out

    def route_net(
        self,
        net: "RouteNet",
        pres_fac: float,
        bb_margin: float = 3.0,
        sink_shuffle: int = 0,
        criticality: float = 0.0,
    ) -> Optional["RouteTree"]:
        router = self._router
        ir = router.fabric
        source = ir.source_of[net.source_tile]
        targets = {ir.sink_of[tile]: tile for tile in net.sink_tiles}
        tree_nodes: List[int] = [source]
        tree_set: Set[int] = {source}
        parent: Dict[int, int] = {source: -1}
        sink_nodes: List[int] = []
        remaining = dict(targets)

        xs = [net.source_tile[0]] + [t[0] for t in net.sink_tiles]
        ys = [net.source_tile[1]] + [t[1] for t in net.sink_tiles]
        bb = (min(xs) - bb_margin, max(xs) + bb_margin,
              min(ys) - bb_margin, max(ys) + bb_margin)

        pos = router._pos
        crit = (min(max(criticality, 0.0), 0.99)
                if router._delay_costs is not None else 0.0)
        cong_weight = 1.0 - crit
        c_np, salt = self._cost_vector(net.name, pres_fac, crit, cong_weight, bb)
        c = array("d")
        c.frombytes(memoryview(c_np).cast("B"))

        shuffled_order: List[int] = []
        if sink_shuffle:
            rng = random.Random(sink_shuffle)
            shuffled_order = sorted(targets)
            rng.shuffle(shuffled_order)

        dist = self._dist
        came = self._came
        offsets = self._k_offsets
        tgts = self._k_targets
        heappush, heappop = heapq.heappush, heapq.heappop
        blocked = router._blocked
        pops_total = 0
        pushes_total = 0

        while remaining:
            if shuffled_order:
                target_sink = next(s for s in shuffled_order if s in remaining)
            else:
                target_sink = min(
                    remaining,
                    key=lambda s: abs(pos[s][0] - pos[source][0])
                    + abs(pos[s][1] - pos[source][1]),
                )
            tile = targets[target_sink]
            ha = self._heuristic(target_sink)
            # Patch the search's admissible targets into the vector
            # (skipping tree members and blocked nodes, which the
            # reference skips at expansion time).
            patched: List[int] = []
            if target_sink not in blocked:
                patched.append(target_sink)
                c[target_sink] = self._scalar_cost(
                    target_sink, salt, pres_fac, crit, cong_weight)
            for v in self._tile_ipins.get(tile, ()):
                if v in tree_set or v in blocked:
                    continue
                patched.append(v)
                c[v] = self._scalar_cost(v, salt, pres_fac, crit, cong_weight)
            extra = self._tile_extra.get(tile)
            get_extra = extra.get if extra is not None else _no_extra
            touched: List[int] = []
            heap: List[Tuple[float, float, int]] = []
            for node in tree_nodes:
                if node == source and len(tree_nodes) > 1:
                    continue
                dist[node] = 0.0
                touched.append(node)
                heappush(heap, (ha[node], 0.0, node))
            found = False
            pops = 0
            while heap:
                pops += 1
                _f, g, u = heappop(heap)
                if g > dist[u]:
                    continue
                if u == target_sink:
                    found = True
                    break
                for v in tgts[offsets[u]:offsets[u + 1]]:
                    ng = g + c[v]
                    if ng < dist[v]:
                        dist[v] = ng
                        came[v] = u
                        touched.append(v)
                        heappush(heap, (ng + ha[v], ng, v))
                ev = get_extra(u)
                if ev is not None:
                    for v in ev:
                        ng = g + c[v]
                        if ng < dist[v]:
                            dist[v] = ng
                            came[v] = u
                            touched.append(v)
                            heappush(heap, (ng + ha[v], ng, v))
            pops_total += pops
            pushes_total += pops + len(heap)
            for v in touched:
                dist[v] = INF
            for v in patched:
                c[v] = INF
            if not found:
                self.heap_pops += pops_total
                self.heap_pushes += pushes_total
                return None
            path: List[int] = []
            node = target_sink
            while node not in tree_set:
                path.append(node)
                node = came[node]
            for step in reversed(path):
                parent[step] = node
                tree_set.add(step)
                tree_nodes.append(step)
                node = step
            sink_nodes.append(target_sink)
            del remaining[target_sink]
        self.heap_pops += pops_total
        self.heap_pushes += pushes_total
        return self._RouteTree(nodes=tree_nodes, parent=parent, sink_nodes=sink_nodes)
