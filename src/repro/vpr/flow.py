"""End-to-end VPR-like flow driver (paper Fig. 10, left column).

pack -> place -> (binary-search Wmin) -> route at the working channel
width.  The paper derives its architecture's channel width as Wmin
over all benchmark circuits plus 20% "low-stress routing" margin
[Betz 99b]; `find_min_channel_width` and `low_stress_width` reproduce
that derivation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.params import ArchParams
from ..fabric import FabricIR, get_fabric
from ..netlist.core import Netlist
from ..obs import get_logger, get_publisher, get_registry, get_tracer, kv
from .pack import ClusteredNetlist, pack
from .place import Placement, place
from .route import PathFinderRouter, RoutingResult, build_route_nets, route_design

_log = get_logger("vpr.flow")

#: The paper's low-stress margin over Wmin.
LOW_STRESS_MARGIN = 0.2


class StageCache:
    """Resumable stage boundaries for the flow drivers.

    Holds completed pack/place stage outputs keyed by everything that
    determines them (netlist object identity, `ArchParams`, seed), so
    a caller re-entering a flow — probing a second channel width,
    re-timing a placed design, a `repro serve` worker handling many
    requests for one circuit — resumes from the last completed
    boundary instead of recomputing it.  Strictly per-process and
    keyed by object identity where results are not value-keyed: a hit
    returns the *same* object the first flow produced, which is
    exactly what a rerun would have computed (stages are pure
    functions of their keys).

    LRU-bounded at ``max_entries``.  ``hits``/``misses`` count
    lookups; the same counts land in the current metrics registry as
    ``flow.stage_cache.hits`` / ``.misses``.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._data: Dict[Tuple, object] = {}

    def __len__(self) -> int:
        return len(self._data)

    def get_or_compute(self, stage: str, key: Tuple, compute):
        """The cached value for ``(stage, key)``, computing on miss."""
        full = (stage,) + tuple(key)
        if full in self._data:
            self._data[full] = self._data.pop(full)  # bump LRU recency
            self.hits += 1
            get_registry().counter("flow.stage_cache.hits").inc()
            return self._data[full], True
        self.misses += 1
        get_registry().counter("flow.stage_cache.misses").inc()
        value = compute()
        self._data[full] = value
        while len(self._data) > self.max_entries:
            self._data.pop(next(iter(self._data)))
        return value, False


def _staged(stage_cache: Optional[StageCache], stage: str, key: Tuple,
            compute):
    """Run ``compute`` through the stage cache when one is given."""
    if stage_cache is None:
        return compute(), False
    return stage_cache.get_or_compute(stage, key, compute)


@dataclasses.dataclass
class FlowResult:
    """Everything the evaluation stages need from one P&R run."""

    netlist: Netlist
    clustered: ClusteredNetlist
    placement: Placement
    routing: RoutingResult
    graph: FabricIR
    channel_width: int

    @property
    def success(self) -> bool:
        return self.routing.success

    def with_routing(
        self,
        routing: RoutingResult,
        graph: Optional[FabricIR] = None,
        channel_width: Optional[int] = None,
    ) -> "FlowResult":
        """This flow with its routed state replaced.

        The carry-over primitive for repaired designs: a self-repair
        (or one epoch of a lifetime mission) produces a new routing —
        possibly on a widened fabric — while the netlist, clustering
        and placement stand.  Returns a new `FlowResult`; the original
        is untouched.
        """
        return dataclasses.replace(
            self,
            routing=routing,
            graph=self.graph if graph is None else graph,
            channel_width=(self.channel_width if channel_width is None
                           else channel_width),
        )


def low_stress_width(wmin: int) -> int:
    """W = Wmin * 1.2 rounded up (paper Sec. 3.3)."""
    if wmin < 1:
        raise ValueError(f"wmin must be >= 1, got {wmin}")
    return int(math.ceil(wmin * (1.0 + LOW_STRESS_MARGIN)))


def find_min_channel_width(
    placement: Placement,
    params: Optional[ArchParams] = None,
    start: int = 12,
    max_width: int = 256,
    defects=None,
    route_kernel: Optional[str] = None,
    **router_kwargs,
) -> Tuple[int, RoutingResult, FabricIR]:
    """Binary-search the minimum routable channel width.

    Doubles from ``start`` until routable, then bisects.  Returns
    (wmin, routing at wmin, graph at wmin).

    ``route_kernel`` selects the expansion kernel for every probe
    (see `repro.vpr.route_kernels`); kernels are bit-identical, so
    the derived Wmin does not depend on the choice.

    ``defects`` must be a *provider* (`faults.FaultCampaign` or a
    callable) — the search probes many channel widths and RR node ids
    are not portable between them, so raw ``blocked_nodes`` /
    ``blocked_edges`` sets are rejected here: they would silently
    block the wrong resources at every width but the one they were
    sampled on.
    """
    if params is None:
        params = placement.clustered.params
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel
    for raw in ("blocked_nodes", "blocked_edges"):
        if router_kwargs.get(raw):
            raise ValueError(
                f"{raw} cannot be used in a channel-width search: node ids "
                "are fabric-specific and change with W; pass defects=<"
                "FaultCampaign or callable> so faults are re-sampled per "
                "probed width")
    from ..faults import FabricDefectMap

    if isinstance(defects, FabricDefectMap):
        raise ValueError(
            "a concrete FabricDefectMap is tied to one channel width; the "
            "Wmin search needs a provider (FaultCampaign or callable) that "
            "re-samples defects per probed width")
    tracer = get_tracer()
    pub = get_publisher()
    with tracer.span("flow.wmin_search", start=start, max_width=max_width) as span:
        probes = 0
        # Phase 1: find a routable upper bound.
        width = max(2, start)
        success: Optional[Tuple[int, RoutingResult, FabricIR]] = None
        fail_width = 0
        while width <= max_width:
            probes += 1
            with tracer.span("flow.route_probe", width=width, phase="double") as probe:
                result, graph = route_design(
                    placement, params, channel_width=width, defects=defects,
                    **router_kwargs
                )
                probe.set("success", result.success)
            _log.debug("wmin probe %s", kv(width=width, success=result.success))
            if pub.enabled:
                pub.progress("flow.wmin_probe", width=width, phase="double",
                             success=result.success, probes=probes)
            if result.success:
                success = (width, result, graph)
                break
            fail_width = width
            width *= 2
        if success is None:
            span.set_many(probes=probes, wmin=None)
            raise RuntimeError(f"unroutable even at channel width {max_width}")
        # Phase 2: bisect (fail_width, success_width].
        lo, (hi, best_result, best_graph) = fail_width, success
        while hi - lo > 1:
            mid = (lo + hi) // 2
            probes += 1
            with tracer.span("flow.route_probe", width=mid, phase="bisect") as probe:
                result, graph = route_design(
                    placement, params, channel_width=mid, defects=defects,
                    **router_kwargs
                )
                probe.set("success", result.success)
            _log.debug("wmin probe %s", kv(width=mid, success=result.success))
            if pub.enabled:
                pub.progress("flow.wmin_probe", width=mid, phase="bisect",
                             success=result.success, probes=probes)
            if result.success:
                hi, best_result, best_graph = mid, result, graph
            else:
                lo = mid
        span.set_many(probes=probes, wmin=hi)
        _log.info("wmin found %s", kv(wmin=hi, probes=probes))
        return hi, best_result, best_graph


def run_flow(
    netlist: Netlist,
    params: ArchParams,
    seed: int = 1,
    channel_width: Optional[int] = None,
    inner_num: float = 1.0,
    blocked_nodes=None,
    blocked_edges=None,
    defects=None,
    stage_cache: Optional[StageCache] = None,
    route_kernel: Optional[str] = None,
    **router_kwargs,
) -> FlowResult:
    """pack -> place -> route at a fixed channel width.

    ``channel_width`` defaults to the architecture's W; pass the
    low-stress width from `find_min_channel_width` to mirror the
    paper's methodology exactly.

    Fault-aware routing: ``blocked_nodes`` / ``blocked_edges`` are raw
    avoidance sets for *this* width's fabric; ``defects`` accepts a
    `faults.FabricDefectMap` or a provider (`faults.FaultCampaign` /
    callable) resolved against the concrete fabric — the sets union.

    ``stage_cache`` resumes completed pack/place boundaries from prior
    flows over the same netlist/params/seed (see `StageCache`); the
    skipped stage's span is emitted with ``cached=True``.

    ``route_kernel`` selects the router's expansion kernel (``python``
    / ``numpy`` / ``numba`` / ``auto``; see `repro.vpr.route_kernels`).
    Kernels are bit-identical by contract — the choice is execution
    policy, never part of the result.
    """
    if blocked_nodes:
        router_kwargs["blocked_nodes"] = blocked_nodes
    if blocked_edges:
        router_kwargs["blocked_edges"] = blocked_edges
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel
    tracer = get_tracer()
    with tracer.span("flow.run", circuit=netlist.name, seed=seed) as root:
        with tracer.span("flow.pack") as span:
            clustered, hit = _staged(
                stage_cache, "pack", (id(netlist), params),
                lambda: pack(netlist, params))
            span.set_many(
                luts=netlist.num_luts, clusters=clustered.num_clusters,
            )
            if hit:
                span.set("cached", True)
        with tracer.span("flow.place") as span:
            placement, hit = _staged(
                stage_cache, "place", (id(netlist), params, seed, inner_num),
                lambda: place(clustered, seed=seed, inner_num=inner_num))
            span.set_many(
                cost=placement.cost,
                grid=f"{placement.grid_width}x{placement.grid_height}",
            )
            if hit:
                span.set("cached", True)
        width = channel_width if channel_width is not None else params.channel_width
        with tracer.span("flow.route", channel_width=width) as span:
            routing, graph = route_design(
                placement, params, channel_width=width, defects=defects,
                **router_kwargs
            )
            span.set_many(
                success=routing.success,
                iterations=routing.iterations,
                wirelength=routing.wirelength,
                overused_nodes=routing.overused_nodes,
            )
        root.set_many(channel_width=width, success=routing.success)
        _log.info("flow done %s", kv(
            circuit=netlist.name, width=width, success=routing.success,
            wirelength=routing.wirelength, iterations=routing.iterations))
        return FlowResult(
            netlist=netlist,
            clustered=clustered,
            placement=placement,
            routing=routing,
            graph=graph,
            channel_width=width,
        )


def run_flow_min_width(
    netlist: Netlist,
    params: ArchParams,
    seed: int = 1,
    inner_num: float = 1.0,
    low_stress: bool = True,
    defects=None,
    stage_cache: Optional[StageCache] = None,
    route_kernel: Optional[str] = None,
    **router_kwargs,
) -> FlowResult:
    """pack -> place -> Wmin search -> route at the derived width.

    The job-level entry point for width-deriving runs (the batch
    runner's ``width=None`` jobs and the paper's W methodology): packs
    and places once, binary-searches Wmin on that placement, then
    returns the routing at ``low_stress_width(wmin)`` (or at Wmin
    itself when ``low_stress`` is False — the search already routed
    there, so that arm is free).  ``stage_cache`` resumes pack/place
    boundaries and ``route_kernel`` selects the expansion kernel, as
    in `run_flow`.
    """
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel
    tracer = get_tracer()
    with tracer.span("flow.run_min_width", circuit=netlist.name, seed=seed) as root:
        with tracer.span("flow.pack") as span:
            clustered, hit = _staged(
                stage_cache, "pack", (id(netlist), params),
                lambda: pack(netlist, params))
            span.set_many(luts=netlist.num_luts, clusters=clustered.num_clusters)
            if hit:
                span.set("cached", True)
        with tracer.span("flow.place") as span:
            placement, hit = _staged(
                stage_cache, "place", (id(netlist), params, seed, inner_num),
                lambda: place(clustered, seed=seed, inner_num=inner_num))
            span.set("cost", placement.cost)
            if hit:
                span.set("cached", True)
        wmin, routing, graph = find_min_channel_width(
            placement, params, defects=defects, **router_kwargs
        )
        width = low_stress_width(wmin) if low_stress else wmin
        if width != wmin:
            with tracer.span("flow.route", channel_width=width) as span:
                routing, graph = route_design(
                    placement, params, channel_width=width, defects=defects,
                    **router_kwargs
                )
                span.set_many(
                    success=routing.success,
                    iterations=routing.iterations,
                    wirelength=routing.wirelength,
                )
        root.set_many(wmin=wmin, channel_width=width, success=routing.success)
        _log.info("min-width flow done %s", kv(
            circuit=netlist.name, wmin=wmin, width=width, success=routing.success))
        return FlowResult(
            netlist=netlist,
            clustered=clustered,
            placement=placement,
            routing=routing,
            graph=graph,
            channel_width=width,
        )


def run_timing_driven_flow(
    netlist: Netlist,
    params: ArchParams,
    fabric,
    seed: int = 1,
    channel_width: Optional[int] = None,
    inner_num: float = 1.0,
    sta_passes: int = 2,
    blocked_nodes=None,
    blocked_edges=None,
    defects=None,
    stage_cache: Optional[StageCache] = None,
    route_kernel: Optional[str] = None,
    **router_kwargs,
):
    """Timing-driven pack/place/route (VPR-style criticality loop).

    After a routability-driven first route, STA produces per-net
    criticalities; critical nets are re-routed with delay-weighted
    costs.  Keeps the best legal result by critical path.

    Args:
        fabric: `FabricElectrical` supplying the delay model (the
            variant the design will be timed against).
        sta_passes: Criticality refinement iterations.
        blocked_nodes / blocked_edges / defects: Fault-aware routing,
            same semantics as `run_flow` — every STA re-route pass
            avoids the same defective resources.

    Returns:
        (FlowResult, TimingReport) for the best routing found.
    """
    from .route import merge_defect_kwargs
    from .timing import analyze_timing, node_delay_costs

    if blocked_nodes:
        router_kwargs["blocked_nodes"] = blocked_nodes
    if blocked_edges:
        router_kwargs["blocked_edges"] = blocked_edges
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel

    if sta_passes < 0:
        raise ValueError(f"sta_passes must be >= 0, got {sta_passes}")
    tracer = get_tracer()
    with tracer.span(
        "flow.timing_driven", circuit=netlist.name, seed=seed, sta_passes=sta_passes
    ) as root:
        with tracer.span("flow.pack") as span:
            clustered, hit = _staged(
                stage_cache, "pack", (id(netlist), params),
                lambda: pack(netlist, params))
            span.set_many(luts=netlist.num_luts, clusters=clustered.num_clusters)
            if hit:
                span.set("cached", True)
        with tracer.span("flow.place") as span:
            placement, hit = _staged(
                stage_cache, "place", (id(netlist), params, seed, inner_num),
                lambda: place(clustered, seed=seed, inner_num=inner_num))
            span.set("cost", placement.cost)
            if hit:
                span.set("cached", True)
        width = channel_width if channel_width is not None else params.channel_width
        arch = params.with_channel_width(width)
        graph = get_fabric(arch, placement.grid_width, placement.grid_height)
        if defects is not None:
            from ..faults import resolve_defects

            router_kwargs = merge_defect_kwargs(
                router_kwargs, resolve_defects(defects, graph))
        delay_costs = node_delay_costs(graph, fabric)
        nets = build_route_nets(placement)

        with tracer.span("flow.route", channel_width=width, sta_pass=0) as span:
            router = PathFinderRouter(graph, delay_costs=delay_costs, **router_kwargs)
            best_routing = router.route(nets)
            span.set("success", best_routing.success)
        if not best_routing.success:
            root.set("success", False)
            flow = FlowResult(
                netlist=netlist, clustered=clustered, placement=placement,
                routing=best_routing, graph=graph, channel_width=width,
            )
            return flow, None
        best_report = analyze_timing(placement, best_routing, graph, fabric)

        for sta_pass in range(1, sta_passes + 1):
            crit = best_report.net_criticality()
            with tracer.span("flow.route", channel_width=width, sta_pass=sta_pass) as span:
                router = PathFinderRouter(graph, delay_costs=delay_costs, **router_kwargs)
                candidate = router.route(nets, criticality=crit)
                span.set("success", candidate.success)
            if not candidate.success:
                continue
            report = analyze_timing(placement, candidate, graph, fabric)
            span.set("critical_path_s", report.critical_path)
            if report.critical_path < best_report.critical_path:
                best_routing, best_report = candidate, report
        root.set_many(success=True, critical_path_s=best_report.critical_path)
        flow = FlowResult(
            netlist=netlist, clustered=clustered, placement=placement,
            routing=best_routing, graph=graph, channel_width=width,
        )
        return flow, best_report


def derive_architecture_width(
    netlists: Sequence[Netlist],
    params: ArchParams,
    seed: int = 1,
    inner_num: float = 1.0,
    **router_kwargs,
) -> Dict[str, object]:
    """The paper's W derivation over a benchmark suite.

    Runs pack/place per circuit, binary-searches each circuit's Wmin,
    and returns max Wmin plus the +20% low-stress W (the paper lands
    on W = 118 for its suite at full scale).
    """
    tracer = get_tracer()
    per_circuit: Dict[str, int] = {}
    with tracer.span("flow.derive_width", circuits=len(netlists)) as span:
        for netlist in netlists:
            with tracer.span("flow.circuit_wmin", circuit=netlist.name) as circuit_span:
                clustered = pack(netlist, params)
                placement = place(clustered, seed=seed, inner_num=inner_num)
                wmin, _result, _graph = find_min_channel_width(
                    placement, params, **router_kwargs
                )
                circuit_span.set("wmin", wmin)
            per_circuit[netlist.name] = wmin
        overall = max(per_circuit.values())
        span.set_many(wmin=overall, low_stress_width=low_stress_width(overall))
        return {
            "wmin_per_circuit": per_circuit,
            "wmin": overall,
            "low_stress_width": low_stress_width(overall),
        }
