"""Post-route static timing analysis (the paper's "VPR timing
analysis" box, Fig. 10).

Net delays come from a stage-walk Elmore model over each routed tree:
every buffered wire segment is one RC stage (driver resistance, wire
RC, switch and tap parasitics, downstream buffer input load); switch
resistances and capacitances, buffer presence/sizing and off-switch
wire loading all come from a `FabricElectrical` spec, which is where
the CMOS-only / CMOS-NEM variants differ.  Arrival times then
propagate through the LUT netlist and the application critical path is
the maximum over FF data inputs and primary outputs.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.params import ArchParams
from ..circuits.buffers import RoutingBuffer, restorer_delay_factor
from ..circuits.ptm import Technology
from ..fabric import (
    KIND_HWIRE,
    KIND_IPIN,
    KIND_OPIN,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
    FabricIR,
    SwitchKind,
    as_fabric,
)
from ..netlist.core import BlockType
from ..obs import get_registry, get_tracer
from .place import Placement
from .route import RouteTree, RoutingResult


@dataclasses.dataclass(frozen=True)
class FabricElectrical:
    """Electrical view of one FPGA variant's routing fabric.

    Attributes:
        tech: Technology constants.
        switch_r / switch_c: Series resistance (ohm) and total
            parasitic capacitance (F) of one routing switch (pass
            transistor or NEM relay); half the capacitance loads each
            side.
        switch_c_off: Capacitance an *unused* (off) switch hangs on a
            wire (F) — diffusion cap for NMOS, C_off for a relay.
        off_taps_per_wire: Count of off switches loading one segment
            wire (CB taps along the span + SB taps at the ends).
        wire_r / wire_c: Total resistance/capacitance of one segment
            wire (F), from physical length at the variant's tile pitch.
        wire_buffer: Driver of each wire segment (never None in the
            paper's variants, but optional for ablations).
        lb_input_buffer / lb_output_buffer: None when removed (the
            paper's technique).
        t_lut: LUT input-to-output delay (s).
        t_local_in: IPIN -> LUT input delay (s): input buffer (if any)
            + internal crossbar traversal.
        t_local_out: LUT output -> OPIN delay (s): output mux +
            output buffer (if any).
        t_local_feedback: Intra-cluster LUT -> LUT delay (s).
        t_clk_q / t_su: FF clock-to-Q and setup (s).
        degraded_inputs: True when routing switches drop Vt (pass
            transistors), applying the level-restorer input penalty to
            buffer delays.
        crossbar_row_cap: Capacitance of one LB-internal crossbar row
            (F); what a route drives directly when the LB input buffer
            is removed.
    """

    tech: Technology
    switch_r: float
    switch_c: float
    switch_c_off: float
    off_taps_per_wire: float
    wire_r: float
    wire_c: float
    wire_buffer: Optional[RoutingBuffer]
    lb_input_buffer: Optional[RoutingBuffer]
    lb_output_buffer: Optional[RoutingBuffer]
    t_lut: float
    t_local_in: float
    t_local_out: float
    t_local_feedback: float
    t_clk_q: float
    t_su: float
    degraded_inputs: bool
    crossbar_row_cap: float = 0.0

    @property
    def wire_off_load(self) -> float:
        """Static parasitic load of unused switches on one wire (F)."""
        return self.off_taps_per_wire * self.switch_c_off

    def stage_input_cap(self) -> float:
        """Cap presented where a route enters a buffered segment (F)."""
        if self.wire_buffer is not None:
            return self.wire_buffer.input_capacitance
        return 0.0

    def sink_input_cap(self) -> float:
        """Cap presented at the IPIN side (F)."""
        if self.lb_input_buffer is not None:
            return self.lb_input_buffer.input_capacitance
        if self.crossbar_row_cap > 0.0:
            # Direct relay-crossbar entry: the route drives the row.
            return self.crossbar_row_cap
        return 2.0 * self.tech.transistor.inverter_input_cap

    def buffer_internal_delay(self, buffer: RoutingBuffer) -> float:
        """Chain delay up to (and including) the last stage switching
        its own output node, excluding the external RC tree (s).  The
        Vt-restoration penalty applies to the first stage only."""
        d = buffer.chain.delay(0.0)
        if self.degraded_inputs:
            d += (restorer_delay_factor(self.tech.transistor) - 1.0) * buffer.chain.first_stage_delay(0.0)
        return d


_ELMORE = 0.69


def estimate_hop_delay(fabric: FabricElectrical, span_fraction: float = 1.0) -> float:
    """First-order delay (s) of one buffered wire hop at a given span
    fraction — the per-node estimate timing-driven routing costs with.
    """
    if span_fraction <= 0:
        raise ValueError(f"span fraction must be positive, got {span_fraction}")
    r_up = (
        fabric.wire_buffer.output_resistance
        if fabric.wire_buffer is not None
        else fabric.tech.transistor.inverter_drive_resistance
    )
    c_here = (fabric.wire_c + fabric.wire_off_load) * span_fraction
    c_tail = 0.5 * fabric.switch_c + fabric.stage_input_cap()
    t = _ELMORE * (r_up + fabric.switch_r) * (0.5 * fabric.switch_c)
    if fabric.wire_buffer is not None:
        t += _ELMORE * (r_up + fabric.switch_r) * fabric.wire_buffer.input_capacitance
        t += fabric.buffer_internal_delay(fabric.wire_buffer)
        r_drv = fabric.wire_buffer.output_resistance
    else:
        r_drv = r_up + fabric.switch_r
    r_wire = fabric.wire_r * span_fraction
    t += _ELMORE * (r_drv * (c_here + c_tail) + r_wire * (0.5 * c_here + c_tail))
    return t


def node_delay_costs(graph, fabric: FabricElectrical) -> List[float]:
    """Per-RR-node delay weights for timing-driven PathFinder.

    Normalised so a full-span wire hop costs its congestion base cost
    (the segment length): a fully critical net then optimises hop
    count and span exactly as the physical delay model would rank them.
    """
    ir = as_fabric(graph)
    seg_len = ir.params.segment_length
    full = estimate_hop_delay(fabric, 1.0)
    kind = ir.kind
    costs = np.zeros(len(kind), dtype=np.float64)
    wire_mask = (kind == KIND_HWIRE) | (kind == KIND_VWIRE)
    # One scalar model evaluation per distinct span, broadcast over the
    # wire population sharing it.
    for span in np.unique(ir.spans[wire_mask]):
        cost = seg_len * estimate_hop_delay(fabric, float(span) / seg_len) / full
        costs[wire_mask & (ir.spans == span)] = cost
    costs[(kind == KIND_OPIN) | (kind == KIND_IPIN)] = 0.3
    return costs.tolist()


@dataclasses.dataclass
class NetDelays:
    """Per-net delays and switched capacitance.

    Attributes:
        delay_to_tile: Sink tile -> delay (s) from the driver block's
            output pin to that tile's LB input (crossbar side).
        cap_wire: Switched metal-wire capacitance incl. off-switch
            loading (F) — the paper's "wire interconnects" category.
        cap_buffer: Switched routing-buffer capacitance (F): buffer
            inputs + internal nodes.
        cap_switch: Switched on-path switch parasitics (F).
        num_stages: Wire segments used (buffered stages).
    """

    delay_to_tile: Dict[Tuple[int, int], float]
    cap_wire: float
    cap_buffer: float
    cap_switch: float
    num_stages: int

    @property
    def total_capacitance(self) -> float:
        return self.cap_wire + self.cap_buffer + self.cap_switch


def _tree_children(tree: RouteTree) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = defaultdict(list)
    for node, parent in tree.parent.items():
        if parent >= 0:
            children[parent].append(node)
    return children


def analyze_net(
    tree: RouteTree,
    graph: FabricIR,
    fabric: FabricElectrical,
) -> NetDelays:
    """Stage-walk delay/capacitance extraction for one routed tree.

    Wire segments are stages.  With wire buffers, each stage is driven
    by its buffer (previous stage sees only the buffer's input cap);
    without, resistance accumulates down the path (true unbuffered
    Elmore chain).  Off-switch loading applies to every wire.

    Tree-edge classification (what sits between a stage and the next)
    comes from the IR's shared switch-kind table rather than a local
    re-derivation from endpoint kinds.
    """
    ir = as_fabric(graph)
    children = _tree_children(tree)
    kind = ir.kind
    xs, ys = ir.xs, ir.ys
    seg_len = ir.params.segment_length

    # Per-wire-node stage load (excluding downstream-through-buffer).
    def wire_span_fraction(node_id: int) -> float:
        return float(ir.spans[node_id]) / seg_len

    def stage_load(node_id: int) -> Tuple[float, float]:
        """(c_here, c_tail): cap on this wire and cap at its far end."""
        frac = wire_span_fraction(node_id)
        c_here = fabric.wire_c * frac + fabric.wire_off_load * frac
        c_tail = 0.0
        for child in children.get(node_id, ()):
            sw = ir.switch_kind_between(node_id, child)
            if sw is SwitchKind.WIRE_WIRE:
                c_tail += 0.5 * fabric.switch_c + fabric.stage_input_cap()
            elif sw is SwitchKind.WIRE_IPIN:
                c_tail += 0.5 * fabric.switch_c + fabric.sink_input_cap()
        return c_here, c_tail

    # Switched capacitance of the net, split per Fig. 9 category.
    cap_wire = 0.0
    cap_buffer = 0.0
    cap_switch = 0.0
    for node_id in tree.nodes:
        k = kind[node_id]
        if k == KIND_HWIRE or k == KIND_VWIRE:
            frac = wire_span_fraction(node_id)
            cap_wire += fabric.wire_c * frac + fabric.wire_off_load * frac
            cap_switch += fabric.switch_c
            if fabric.wire_buffer is not None:
                cap_buffer += fabric.wire_buffer.input_capacitance
                cap_buffer += fabric.wire_buffer.chain.internal_switching_capacitance()
        elif k == KIND_IPIN:
            cap_switch += 0.5 * fabric.switch_c
            cap_buffer += fabric.sink_input_cap()

    # Driver stage resistance at the OPIN: the LB output buffer if
    # present, else the BLE's 2:1 output mux driver (a 2x inverter).
    if fabric.lb_output_buffer is not None:
        r_driver = fabric.lb_output_buffer.output_resistance
    else:
        r_driver = fabric.tech.transistor.inverter_drive_resistance / 2.0

    # Walk each root-to-sink path, accumulating stage delays.
    delay_to_tile: Dict[Tuple[int, int], float] = {}
    path_cache: Dict[int, float] = {}  # wire/ipin node -> arrival at node entry

    def arrival(node_id: int) -> float:
        """Delay from the net driver's output pin to the *output* of
        this RR node's stage (cached, computed recursively)."""
        if node_id in path_cache:
            return path_cache[node_id]
        parent = tree.parent[node_id]
        k = kind[node_id]
        if k == KIND_SOURCE or k == KIND_OPIN:
            path_cache[node_id] = 0.0
            return 0.0
        t_parent = arrival(parent)
        parent_kind = kind[parent]

        if k == KIND_HWIRE or k == KIND_VWIRE:
            c_here, c_tail = stage_load(node_id)
            frac = wire_span_fraction(node_id)
            r_wire = fabric.wire_r * frac
            if ir.switch_kind_between(parent, node_id) is not SwitchKind.WIRE_WIRE:
                # Entry from the driver side (OPIN -> wire switch).
                r_up = r_driver
            elif fabric.wire_buffer is not None:
                r_up = fabric.wire_buffer.output_resistance
            else:
                r_up = path_rres.get(parent, r_driver)
            # Through the entry switch:
            t = _ELMORE * (r_up + fabric.switch_r) * (0.5 * fabric.switch_c)
            if fabric.wire_buffer is not None:
                # Entry switch also charges the buffer input; then the
                # buffer drives the wire.
                t += _ELMORE * (r_up + fabric.switch_r) * fabric.wire_buffer.input_capacitance
                t += fabric.buffer_internal_delay(fabric.wire_buffer)
                r_drv = fabric.wire_buffer.output_resistance
                t += _ELMORE * (r_drv * (c_here + c_tail) + r_wire * (0.5 * c_here + c_tail))
                path_rres[node_id] = r_drv + r_wire
            else:
                r_total = r_up + fabric.switch_r
                t += _ELMORE * (r_total * (c_here + c_tail) + r_wire * (0.5 * c_here + c_tail))
                path_rres[node_id] = r_total + r_wire
            path_cache[node_id] = t_parent + t
            return path_cache[node_id]

        if k == KIND_IPIN:
            if parent_kind == KIND_HWIRE or parent_kind == KIND_VWIRE:
                if fabric.wire_buffer is not None:
                    r_up = path_rres.get(parent, fabric.wire_buffer.output_resistance)
                else:
                    r_up = path_rres.get(parent, r_driver)
            else:
                r_up = r_driver
            t = _ELMORE * (r_up + fabric.switch_r) * (
                0.5 * fabric.switch_c + fabric.sink_input_cap()
            )
            path_cache[node_id] = t_parent + t
            return path_cache[node_id]

        if k == KIND_SINK:
            path_cache[node_id] = arrival(parent)
            return path_cache[node_id]
        raise AssertionError(f"unexpected node kind {k}")

    path_rres: Dict[int, float] = {}
    stages = 0
    for sink in tree.sink_nodes:
        delay_to_tile[(int(xs[sink]), int(ys[sink]))] = arrival(sink)
    for node_id in tree.nodes:
        k = kind[node_id]
        if k == KIND_HWIRE or k == KIND_VWIRE:
            stages += 1
    return NetDelays(
        delay_to_tile=delay_to_tile,
        cap_wire=cap_wire,
        cap_buffer=cap_buffer,
        cap_switch=cap_switch,
        num_stages=stages,
    )


@dataclasses.dataclass
class TimingReport:
    """STA outcome.

    Attributes:
        critical_path: Application critical path delay (s).
        arrival: Block name -> arrival time (s).
        net_delays: Net name -> `NetDelays`.
        critical_block: Endpoint block realising the critical path.
        worst_predecessor: Combinational predecessor per block (the
            input that set its arrival); None at PIs and FF outputs
            (register boundaries).
        endpoint_predecessor: Endpoint (FF or PO) -> its data source,
            the first hop of a critical-path trace.
    """

    critical_path: float
    arrival: Dict[str, float]
    net_delays: Dict[str, NetDelays]
    critical_block: Optional[str]
    worst_predecessor: Dict[str, Optional[str]] = dataclasses.field(default_factory=dict)
    endpoint_predecessor: Dict[str, Optional[str]] = dataclasses.field(default_factory=dict)

    def critical_path_blocks(self) -> List[str]:
        """The critical path as a block chain: startpoint (PI or FF
        output) first, endpoint (FF D input or PO) last."""
        if self.critical_block is None:
            return []
        path = [self.critical_block]
        node = self.endpoint_predecessor.get(self.critical_block)
        seen = {self.critical_block}
        while node is not None and node not in seen:
            seen.add(node)
            path.append(node)
            node = self.worst_predecessor.get(node)
        path.reverse()
        return path

    def slacks(self, period: Optional[float] = None) -> Dict[str, float]:
        """Per-block slack against ``period`` (default: the critical
        path, so the critical chain has zero slack).

        Slack here is the simple endpoint form period - arrival; blocks
        on the critical chain bottom out at (near) zero.
        """
        target = period if period is not None else self.critical_path
        if target <= 0:
            raise ValueError(f"period must be positive, got {target}")
        return {name: target - t for name, t in self.arrival.items()}

    def net_criticality(self) -> Dict[str, float]:
        """Net name -> arrival(driver)/critical_path in [0, 1]; a cheap
        criticality proxy for timing-driven optimisation."""
        if self.critical_path <= 0:
            return {name: 0.0 for name in self.net_delays}
        return {
            name: min(1.0, max(0.0, self.arrival.get(name, 0.0) / self.critical_path))
            for name in self.net_delays
        }


def analyze_timing(
    placement: Placement,
    routing: RoutingResult,
    graph: FabricIR,
    fabric: FabricElectrical,
) -> TimingReport:
    """Full-design STA.

    Edge delay from driver block u to sink block v:

    * inter-cluster: t_local_out + routed net delay to v's tile +
      t_local_in (+ t_lut folded at the consuming LUT);
    * intra-cluster: t_local_feedback.

    Critical path = max arrival over FF D inputs and POs (+ setup).
    """
    with get_tracer().span(
        "timing.sta", circuit=placement.clustered.netlist.name
    ) as tspan:
        report = _analyze_timing_impl(placement, routing, graph, fabric)
        tspan.set_many(
            critical_path_s=report.critical_path,
            critical_block=report.critical_block,
            nets=len(report.net_delays),
            endpoints=len(report.endpoint_predecessor),
        )
        registry = get_registry()
        registry.counter("timing.sta_runs").inc()
        registry.gauge("timing.critical_path_s").set(report.critical_path)
        if report.critical_path > 0:
            slack_hist = registry.histogram("timing.slack_s")
            slacks = report.slacks()
            for slack in slacks.values():
                slack_hist.observe(slack)
            tspan.set(
                "near_critical_endpoints",
                sum(1 for s in slacks.values()
                    if s <= 0.05 * report.critical_path),
            )
        return report


def _analyze_timing_impl(
    placement: Placement,
    routing: RoutingResult,
    graph: FabricIR,
    fabric: FabricElectrical,
) -> TimingReport:
    clustered = placement.clustered
    netlist = clustered.netlist

    net_delays: Dict[str, NetDelays] = {}
    for name, tree in routing.trees.items():
        net_delays[name] = analyze_net(tree, graph, fabric)

    def tile_of_block(block_name: str) -> Tuple[int, int]:
        block = netlist.blocks[block_name]
        if block.type in (BlockType.INPUT, BlockType.OUTPUT):
            return placement.location_of[block_name]
        return placement.location_of[f"c{clustered.cluster_of[block_name]}"]

    def edge_delay(driver: str, sink_block: str) -> float:
        driver_block = netlist.blocks[driver]
        sink_tile = tile_of_block(sink_block)
        driver_tile = tile_of_block(driver)
        if driver_tile == sink_tile and driver_block.type not in (BlockType.INPUT,):
            return fabric.t_local_feedback
        nd = net_delays.get(driver)
        if nd is None or sink_tile not in nd.delay_to_tile:
            # Same-tile PI, or an unroutable leftover: local hop.
            return fabric.t_local_feedback
        base = nd.delay_to_tile[sink_tile] + fabric.t_local_in
        if driver_block.type is not BlockType.INPUT:
            base += fabric.t_local_out
        return base

    # Longest-path DAG propagation over combinational edges.
    order = netlist.topological_luts()
    assert order is not None, "validated netlists are acyclic"
    arrival: Dict[str, float] = {}
    predecessor: Dict[str, Optional[str]] = {}
    for pi in netlist.inputs:
        arrival[pi.name] = 0.0
        predecessor[pi.name] = None
    for ff in netlist.ffs:
        arrival[ff.name] = fabric.t_clk_q
        predecessor[ff.name] = None

    for lut_name in order:
        block = netlist.blocks[lut_name]
        t = 0.0
        worst: Optional[str] = None
        for src in block.inputs:
            candidate = arrival.get(src, 0.0) + edge_delay(src, lut_name)
            if candidate > t or worst is None:
                t, worst = candidate, src
        arrival[lut_name] = t + fabric.t_lut
        predecessor[lut_name] = worst

    critical = 0.0
    critical_block: Optional[str] = None
    endpoint_pred: Dict[str, Optional[str]] = {}
    for ff in netlist.ffs:
        src = ff.inputs[0]
        t = arrival.get(src, 0.0) + edge_delay(src, ff.name) + fabric.t_su
        arrival.setdefault(f"{ff.name}__d", t)
        endpoint_pred[ff.name] = src
        if t > critical:
            critical, critical_block = t, ff.name
    for po in netlist.outputs:
        src = po.inputs[0]
        t = arrival.get(src, 0.0) + edge_delay(src, po.name)
        arrival.setdefault(po.name, t)
        endpoint_pred[po.name] = src
        if t > critical:
            critical, critical_block = t, po.name
    return TimingReport(
        critical_path=critical,
        arrival=arrival,
        net_delays=net_delays,
        critical_block=critical_block,
        worst_predecessor=predecessor,
        endpoint_predecessor=endpoint_pred,
    )
