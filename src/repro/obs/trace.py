"""Span tracing: nested wall-time / peak-RSS instrumentation.

A `Tracer` records a tree of `Span`s — one per flow stage (pack,
place, Wmin search, route, evaluate...).  Library code always talks to
the *current* tracer (`get_tracer()`), which defaults to a `NullTracer`
whose spans are inert singletons, so uninstrumented callers pay only a
context-variable read and a no-op ``with`` per stage (<< 1 us — far
below the acceptance budget of 2% of a P&R run).

Usage::

    tracer = Tracer()
    with use_tracer(tracer):
        with get_tracer().span("flow.route", channel_width=64) as sp:
            ...
            sp.set("wirelength", 1234)
    for span in tracer.iter_spans():
        print(span.name, span.duration_s)

Spans capture wall time (`time.perf_counter`), a wall-clock timestamp
for export, and the process peak RSS at span end (`resource.getrusage`;
best-effort on platforms without it).
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import sys
import time
from typing import Dict, Iterator, List, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


def peak_rss_kb() -> Optional[int]:
    """Process peak resident-set size in KiB (None when unavailable).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise.
    """
    if _resource is None:  # pragma: no cover
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        rss //= 1024
    return int(rss)


@dataclasses.dataclass
class Span:
    """One timed, attributed region of the flow.

    Attributes:
        name: Dotted stage name, e.g. ``"flow.route"``.
        span_id: Tracer-unique id ("s1", "s2", ...).
        parent_id: Enclosing span's id (None for roots).
        attrs: Key -> JSON-serialisable value annotations.
        start_time: Wall-clock start (epoch seconds, for export).
        start_s / end_s: Monotonic clock endpoints.
        peak_rss_kb: Process peak RSS at span end (KiB).
        status: "ok", or "error" when the body raised.
        children: Nested spans, in start order.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    attrs: Dict[str, object]
    start_time: float
    start_s: float
    end_s: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    status: str = "ok"
    children: List["Span"] = dataclasses.field(default_factory=list)

    @property
    def duration_s(self) -> Optional[float]:
        """Wall time in seconds (None while the span is still open)."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def set_many(self, **attrs: object) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)


class Tracer:
    """Collects a forest of spans for one run.

    Not thread-safe by design: the CAD flow is single-threaded and the
    null default makes cross-thread use a non-issue for library users.

    Cross-process trace context: a batch supervisor hands each worker
    a ``span_prefix`` (making span ids globally unique, e.g.
    ``"j3.s1"``) and a ``root_parent_id`` (linking the worker's root
    spans under the supervisor's batch span), so the span ids of a
    multi-process run form one consistent tree.  Both default to the
    single-process behaviour ("s1", parentless roots).
    """

    enabled = True

    def __init__(
        self,
        trace_id: Optional[str] = None,
        span_prefix: str = "",
        root_parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_prefix = span_prefix
        self.root_parent_id = root_parent_id
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next = 0

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        """Create, register and push a new span (subclass hook)."""
        self._next += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=f"{self.span_prefix}s{self._next}",
            parent_id=parent.span_id if parent else self.root_parent_id,
            attrs=dict(attrs),
            start_time=time.time(),
            start_s=time.perf_counter(),
        )
        (parent.children if parent else self.roots).append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        """Finalise and pop the innermost span (subclass hook)."""
        span.end_s = time.perf_counter()
        span.peak_rss_kb = peak_rss_kb()
        self._stack.pop()

    @contextlib.contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        span = self._open(name, attrs)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self._close(span)

    def iter_spans(self) -> Iterator[Span]:
        """All finished-or-open spans, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, depth-first order."""
        return [s for s in self.iter_spans() if s.name == name]


class _NullSpan:
    """Inert singleton span: every operation is a no-op.

    Doubles as its own (reentrant, stateless) context manager so
    ``with tracer.span(...)`` costs two trivial method calls on the
    null path.
    """

    __slots__ = ()

    name = ""
    span_id = None
    parent_id = None
    status = "ok"
    duration_s = None
    peak_rss_kb = None

    @property
    def attrs(self) -> Dict[str, object]:
        return {}

    @property
    def children(self) -> List[Span]:
        return []

    def set(self, key: str, value: object) -> None:
        pass

    def set_many(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: collects nothing, costs (almost) nothing."""

    enabled = False
    roots: List[Span] = []

    def current(self) -> None:
        return None

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []


NULL_TRACER = NullTracer()

_current_tracer: contextvars.ContextVar = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def get_tracer():
    """The tracer instrumentation call sites should emit to."""
    return _current_tracer.get()


def set_tracer(tracer) -> object:
    """Install ``tracer`` as current; returns a token for `reset_tracer`."""
    return _current_tracer.set(tracer)


def reset_tracer(token: object) -> None:
    """Undo a `set_tracer` (restores the previous tracer)."""
    _current_tracer.reset(token)


@contextlib.contextmanager
def use_tracer(tracer) -> Iterator[object]:
    """Scope ``tracer`` as the current tracer for a ``with`` block."""
    token = _current_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _current_tracer.reset(token)
