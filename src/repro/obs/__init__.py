"""Observability layer: span tracing, metrics, structured logs, export.

The CAD flow (`repro.vpr`, `repro.core`) is instrumented against this
package's *current tracer*, which defaults to an inert `NullTracer` —
library users pay essentially nothing unless they opt in:

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        flow = run_flow(netlist, arch)          # spans recorded
    export_run("run.jsonl", run_manifest(seed=1, arch=arch), tracer)

The CLI exposes the same machinery as ``--metrics-out`` / ``-v``; the
benchmark harness auto-attaches a tracer (see benchmarks/conftest.py).

Modules:

* `trace`    — `Span` / `Tracer` / `NullTracer`, current-tracer scoping
* `metrics`  — `Counter`, `Gauge`, `Histogram`
* `registry` — named get-or-create `MetricsRegistry`
* `export`   — run manifest + JSON/JSONL writers (`export_run`)
* `shards`   — batch-worker telemetry shard merge (`merge_shards`)
* `stream`   — live worker -> supervisor event plane: publishers,
  heartbeats, `TelemetryCollector`, cross-process `TraceContext`
* `profile`  — dependency-free sampling profiler (`--profile`)
* `live`     — in-terminal live batch table (`repro watch`)
* `logging`  — structured stderr logging (`setup_logging`, `kv`)
* `analyze`  — the consumer side: run reports (`repro report`),
  run-to-run diffing with regression gates (`repro diff`), and the
  benchmark-history store (`repro bench-history`)
* `store`    — sqlite telemetry warehouse for cross-run queries
  (`repro db ingest/top/trend/attribute`)
"""

from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    peak_rss_kb,
    reset_tracer,
    set_tracer,
    use_tracer,
)
from .metrics import Counter, Gauge, Histogram
from .registry import (
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
    use_registry,
)
from .shards import (
    assemble_run,
    merge_metric_snapshots,
    merge_shard_records,
    merge_shards,
)
from .stream import (
    EVENT_SCHEMA_VERSION,
    NULL_PUBLISHER,
    EventPublisher,
    HeartbeatThread,
    JobLiveState,
    NullPublisher,
    StreamingTracer,
    TelemetryCollector,
    TraceContext,
    get_publisher,
    use_publisher,
)
from .profile import Profiler, merge_profiles, profiled
from .live import LiveDisplay, render_rows
from .export import (
    SCHEMA_VERSION,
    export_run,
    git_sha,
    read_jsonl,
    run_manifest,
    span_to_dict,
    telemetry_records,
    write_json,
    write_jsonl,
)
from .logging import StructuredFormatter, get_logger, kv, setup_logging
from . import analyze
# store imports from analyze (records/diff), so it must come after.
from . import store

__all__ = [
    "analyze",
    "store",
    "assemble_run",
    "Counter",
    "EVENT_SCHEMA_VERSION",
    "EventPublisher",
    "Gauge",
    "HeartbeatThread",
    "Histogram",
    "JobLiveState",
    "LiveDisplay",
    "MetricsRegistry",
    "NULL_PUBLISHER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullPublisher",
    "NullTracer",
    "Profiler",
    "SCHEMA_VERSION",
    "Span",
    "StreamingTracer",
    "StructuredFormatter",
    "TelemetryCollector",
    "TraceContext",
    "Tracer",
    "export_run",
    "get_logger",
    "get_publisher",
    "get_registry",
    "get_tracer",
    "git_sha",
    "kv",
    "merge_metric_snapshots",
    "merge_profiles",
    "merge_shard_records",
    "merge_shards",
    "peak_rss_kb",
    "profiled",
    "read_jsonl",
    "render_rows",
    "reset_registry",
    "reset_tracer",
    "run_manifest",
    "set_registry",
    "set_tracer",
    "setup_logging",
    "use_publisher",
    "use_registry",
    "span_to_dict",
    "telemetry_records",
    "use_tracer",
    "write_json",
    "write_jsonl",
]
