"""Structured logging setup for the CAD flow.

All repro loggers hang off the ``"repro"`` root so one `setup_logging`
call controls the whole library.  Records render as

    12:04:31.512 INFO repro.vpr.route route iter=3 overused=17 pres_fac=0.845

— a fixed prefix plus the caller's ``key=value`` payload (see `kv`),
grep- and awk-friendly without a JSON parser.  By default the library
emits nothing: no handler is installed until `setup_logging` runs, and
a ``NullHandler`` keeps the stdlib's "no handler" warning away.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: The library's logger namespace root.
ROOT_LOGGER = "repro"

#: Marker attribute so repeated setup calls replace only our handler.
_HANDLER_FLAG = "_repro_obs_handler"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


class StructuredFormatter(logging.Formatter):
    """``HH:MM:SS.mmm LEVEL logger message`` single-line records."""

    default_time_format = "%H:%M:%S"
    default_msec_format = "%s.%03d"

    def __init__(self) -> None:
        super().__init__(fmt="%(asctime)s %(levelname)s %(name)s %(message)s")


def kv(**fields: object) -> str:
    """Render keyword fields as a stable ``k=v`` payload string.

    Floats shorten to 6 significant digits; strings containing spaces
    are quoted so lines stay machine-splittable.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        elif isinstance(value, str) and (" " in value or not value):
            text = repr(value)
        else:
            text = str(value)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def get_logger(name: str) -> logging.Logger:
    """A logger under the repro namespace (``name`` may already be)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def setup_logging(verbosity: int = 1, stream: Optional[TextIO] = None) -> logging.Logger:
    """Install a structured stderr handler on the repro root logger.

    Args:
        verbosity: 0 disables output, 1 = INFO, >= 2 = DEBUG (the
            CLI maps ``-v``/``-vv`` here).
        stream: Destination; defaults to ``sys.stderr`` so stdout
            stays reserved for results.

    Idempotent: a second call replaces the previously installed
    handler rather than stacking duplicates.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    if verbosity <= 0:
        logger.setLevel(logging.WARNING)
        return logger
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(StructuredFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbosity >= 2 else logging.INFO)
    logger.propagate = False
    return logger
