"""Live telemetry streaming: the worker -> supervisor event plane.

Batch workers publish their telemetry as it happens — span opens and
closes, per-stage progress deltas (PathFinder iterations, Wmin probes,
repair-ladder rungs), periodic heartbeats — over a multiprocessing
queue to a supervisor-side `TelemetryCollector`.  The collector folds
the stream into the *same* schema-v1 run model the post-hoc shard
merge produces (`repro.obs.shards.assemble_run` is the single shared
assembly path), so ``repro report`` / ``repro diff`` consume a live
run and a replayed one identically — byte for byte.

Wire format (one plain-JSON dict per event, picklable, versioned):

* common envelope: ``ev`` (type), ``job`` (job key), ``seq``
  (per-publisher, 1-based, gap = dropped events), ``t`` (wall clock);
* ``hello``      — first event per attempt: ``v`` (schema), ``pid``,
  ``index`` (spec order), ``attempt``;
* ``span_open``  — ``span_id``, ``name``, ``parent_id``;
* ``span_close`` — ``span_id``, ``name``, ``status``, ``duration_s``;
  a *root* close additionally carries ``record``, the exact
  `span_to_dict` tree the worker writes to its shard — replaying the
  stream is replaying the shard;
* ``progress``   — ``kind`` plus free-form fields (live display only);
* ``metric``     — ``name``/``value`` delta (live display only);
* ``heartbeat``  — ``stage`` (innermost open span), ``rss_kb``;
* ``bye``        — last event: ``status``, final ``metrics`` registry
  snapshot, publisher-side ``dropped`` count.

Publishing is strictly best-effort: a full queue drops the event and
bumps a counter rather than ever blocking a P&R run, and the default
publisher is an inert `NullPublisher` behind the same contextvar
pattern as the null tracer, so uninstrumented callers pay one
attribute check per call site.

Trace context crosses the process boundary as a `TraceContext`: the
supervisor assigns each job a span-id prefix (``"j3."``) and the batch
span's id as root parent, so the span ids of an N-worker batch form
one consistent tree — and, because the context is applied whether or
not streaming is on, identical ids either way.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import threading
import time
from typing import Dict, Iterator, List, Optional

from .export import span_to_dict
from .shards import assemble_run
from .trace import Span, Tracer, peak_rss_kb

#: Bump when the event envelope or a payload shape changes
#: incompatibly.  Independent of the run-model SCHEMA_VERSION: the
#: stream is a transport, the run model is the artefact.
EVENT_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Cross-process span-identity context, supervisor -> worker.

    Attributes:
        trace_id: Batch-unique id shared by every job in the run.
        parent_span_id: Supervisor-side span the worker's roots hang
            under (the ``batch.run`` span).
        span_prefix: Per-job prefix making worker span ids globally
            unique (``"j3."`` -> ``"j3.s1"``...).
    """

    trace_id: str
    parent_span_id: Optional[str] = None
    span_prefix: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "span_prefix": self.span_prefix,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "TraceContext":
        return cls(
            trace_id=str(doc.get("trace_id", "")),
            parent_span_id=doc.get("parent_span_id"),
            span_prefix=str(doc.get("span_prefix", "")),
        )

    def make_tracer(self, publisher: Optional["EventPublisher"] = None) -> Tracer:
        """A (streaming, when publishing) tracer bound to this context."""
        if publisher is not None and publisher.enabled:
            return StreamingTracer(publisher, trace_id=self.trace_id,
                                   span_prefix=self.span_prefix,
                                   root_parent_id=self.parent_span_id)
        return Tracer(trace_id=self.trace_id, span_prefix=self.span_prefix,
                      root_parent_id=self.parent_span_id)


class EventPublisher:
    """Worker-side event source writing to a queue-like sink.

    Thread-safe (the heartbeat thread and the flow thread interleave);
    never blocks and never raises into instrumented code — a full or
    broken sink increments ``dropped`` and moves on.  `silence` stops
    all emission permanently (fault injection uses it to simulate a
    live-but-heartbeat-silent worker).
    """

    enabled = True

    def __init__(self, sink, job: str, index: int = -1) -> None:
        self._sink = sink
        self.job = job
        self.index = index
        self.dropped = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._silenced = False

    def emit(self, ev: str, **fields: object) -> None:
        if self._silenced:
            return
        with self._lock:
            self._seq += 1
            seq = self._seq
        event = {"ev": ev, "job": self.job, "seq": seq, "t": time.time()}
        event.update(fields)
        try:
            self._sink.put_nowait(event)
        except Exception:  # noqa: BLE001 - telemetry must never kill a job
            with self._lock:
                self.dropped += 1

    def silence(self) -> None:
        """Stop emitting anything, permanently (stall simulation)."""
        self._silenced = True

    def hello(self, attempt: int = 1) -> None:
        self.emit("hello", v=EVENT_SCHEMA_VERSION, pid=os.getpid(),
                  index=self.index, attempt=attempt)

    def span_open(self, span: Span) -> None:
        self.emit("span_open", span_id=span.span_id, name=span.name,
                  parent_id=span.parent_id)

    def span_close(self, span: Span,
                   record: Optional[Dict[str, object]] = None) -> None:
        fields: Dict[str, object] = {
            "span_id": span.span_id, "name": span.name,
            "status": span.status, "duration_s": span.duration_s,
        }
        if record is not None:
            fields["record"] = record
        self.emit("span_close", **fields)

    def progress(self, kind: str, **fields: object) -> None:
        self.emit("progress", kind=kind, **fields)

    def metric(self, name: str, value: float, kind: str = "counter") -> None:
        self.emit("metric", name=name, value=value, kind=kind)

    def heartbeat(self, stage: Optional[str] = None,
                  rss_kb: Optional[int] = None) -> None:
        self.emit("heartbeat", stage=stage, rss_kb=rss_kb)

    def bye(self, status: str = "ok",
            metrics: Optional[Dict[str, Dict[str, object]]] = None) -> None:
        self.emit("bye", status=status, metrics=metrics, dropped=self.dropped)


class NullPublisher:
    """Default publisher: emits nothing, costs one attribute check."""

    enabled = False
    dropped = 0
    job = ""
    index = -1

    def emit(self, ev: str, **fields: object) -> None:
        pass

    def silence(self) -> None:
        pass

    def hello(self, attempt: int = 1) -> None:
        pass

    def span_open(self, span) -> None:
        pass

    def span_close(self, span, record=None) -> None:
        pass

    def progress(self, kind: str, **fields: object) -> None:
        pass

    def metric(self, name: str, value: float, kind: str = "counter") -> None:
        pass

    def heartbeat(self, stage=None, rss_kb=None) -> None:
        pass

    def bye(self, status: str = "ok", metrics=None) -> None:
        pass


NULL_PUBLISHER = NullPublisher()

_current_publisher: contextvars.ContextVar = contextvars.ContextVar(
    "repro_publisher", default=NULL_PUBLISHER
)


def get_publisher():
    """The publisher progress call sites should emit to.

    Call sites hoist this out of hot loops and gate on ``.enabled`` —
    the disabled path is then one contextvar read per call plus one
    attribute check per loop iteration.
    """
    return _current_publisher.get()


@contextlib.contextmanager
def use_publisher(publisher) -> Iterator[object]:
    """Scope ``publisher`` as current for a ``with`` block."""
    token = _current_publisher.set(publisher)
    try:
        yield publisher
    finally:
        _current_publisher.reset(token)


class StreamingTracer(Tracer):
    """A `Tracer` that additionally streams span opens/closes.

    The recorded span forest is exactly what a plain `Tracer` with the
    same trace context records — streaming is a side channel, not a
    different data model.  A root span's close event carries the full
    `span_to_dict` record, so the collector ends up holding the same
    records the worker writes to its telemetry shard.
    """

    def __init__(self, publisher: EventPublisher,
                 trace_id: Optional[str] = None, span_prefix: str = "",
                 root_parent_id: Optional[str] = None) -> None:
        super().__init__(trace_id=trace_id, span_prefix=span_prefix,
                         root_parent_id=root_parent_id)
        self.publisher = publisher

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        span = super()._open(name, attrs)
        self.publisher.span_open(span)
        return span

    def _close(self, span: Span) -> None:
        super()._close(span)
        if not self._stack:  # a root closed: ship the full shard record
            self.publisher.span_close(span, record=span_to_dict(span))
        else:
            self.publisher.span_close(span)


class HeartbeatThread(threading.Thread):
    """Daemon ticking ``heartbeat`` events while a job runs.

    Reads the tracer's innermost span name cross-thread — an unlocked,
    read-only peek that can only ever be momentarily stale, which is
    fine for a display field.  Heartbeats keep flowing while the flow
    thread is busy inside a long stage, so heartbeat *silence* (not
    mere progress silence) is the collector's stall signal.
    """

    def __init__(self, publisher: EventPublisher, tracer=None,
                 interval_s: float = 0.2) -> None:
        super().__init__(name="repro-heartbeat", daemon=True)
        self._publisher = publisher
        self._tracer = tracer
        self._interval_s = max(0.01, float(interval_s))
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent loop
        while not self._halt.wait(self._interval_s):
            stage = None
            if self._tracer is not None:
                current = self._tracer.current()
                if current is not None:
                    stage = current.name
            self._publisher.heartbeat(stage=stage, rss_kb=peak_rss_kb())

    def stop(self, join_timeout_s: float = 1.0) -> None:
        self._halt.set()
        self.join(join_timeout_s)


@dataclasses.dataclass
class JobLiveState:
    """Everything the collector knows about one job, live.

    ``last_seen`` / ``first_seen`` are supervisor-side monotonic
    receive times — stall age is measured on the clock that also
    decides timeouts, so a worker with a skewed wall clock cannot
    fake liveness.
    """

    key: str
    index: int = -1
    pid: Optional[int] = None
    attempt: int = 1
    status: str = "pending"
    stage: Optional[str] = None
    rss_kb: Optional[int] = None
    last_seq: int = 0
    dropped: int = 0
    worker_dropped: int = 0
    bye_seen: bool = False
    first_seen: float = 0.0
    last_seen: float = 0.0
    done: bool = False
    stack: List[str] = dataclasses.field(default_factory=list)
    progress: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict)
    live_metrics: Dict[str, object] = dataclasses.field(default_factory=dict)
    records: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    metrics: Optional[Dict[str, Dict[str, object]]] = None

    def heartbeat_age_s(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        return now - self.last_seen


class TelemetryCollector:
    """Supervisor-side fold of the worker event stream.

    Feed it events (`pump` a queue, or `handle` one at a time) and it
    maintains per-job live state for display (`jobs`), detects stalls
    (`stalled`), and — once workers said ``bye`` — reassembles the
    schema-v1 run model (`run_records`) through the same
    `assemble_run` path the post-hoc shard merge uses.

    Retries reset a job's state on the fresh attempt's ``hello``: the
    failed attempt's partial records must not leak into the run model,
    mirroring how the retry overwrites the shard file.
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, JobLiveState] = {}
        self.malformed = 0
        self.warnings: List[str] = []
        self._subscribers: List = []

    def add_subscriber(self, callback) -> None:
        """Fan every handled event out to ``callback(event)`` too.

        The subscriber path is how `repro serve` re-broadcasts one
        batch's worker stream to any number of connected clients: the
        collector stays the single consumer of the multiprocessing
        queue (events must be folded exactly once), and subscribers
        get a read-only copy after the fold.  Callbacks must be cheap
        and must not raise; a raising subscriber is dropped so it can
        never stall or corrupt the event plane.
        """
        self._subscribers.append(callback)

    def remove_subscriber(self, callback) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def _fan_out(self, event: Dict[str, object]) -> None:
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - a bad subscriber must not
                # take down the batch; unsubscribe it and move on.
                self.remove_subscriber(callback)

    def expect(self, key: str, index: int = -1) -> JobLiveState:
        """Register a job at launch so pre-``hello`` silence counts as
        stall time too (a worker that dies before its first event is
        otherwise invisible to the stream)."""
        state = self.jobs.get(key)
        if state is None:
            state = JobLiveState(key=key, index=index)
            now = time.monotonic()
            state.first_seen = state.last_seen = now
            self.jobs[key] = state
        elif index >= 0:
            state.index = index
        return state

    def pump(self, queue) -> int:
        """Drain every currently-queued event; returns events handled."""
        import queue as _queue_mod

        handled = 0
        while True:
            try:
                event = queue.get_nowait()
            except _queue_mod.Empty:
                return handled
            except Exception:  # pragma: no cover - queue torn down or a
                # partial pickle from a killed worker; count and retry
                # on the next pump rather than looping here.
                self.malformed += 1
                return handled
            self.handle(event)
            handled += 1

    def handle(self, event: object) -> None:
        if not isinstance(event, dict) or not isinstance(event.get("job"), str):
            self.malformed += 1
            return
        key = event["job"]
        ev = event.get("ev")
        state = self.jobs.get(key)
        if ev == "hello" or state is None:
            fresh = JobLiveState(key=key)
            if state is not None:
                fresh.index = state.index
                fresh.first_seen = state.first_seen
            self.jobs[key] = state = fresh
        now = time.monotonic()
        if not state.first_seen:
            state.first_seen = now
        state.last_seen = now

        seq = event.get("seq")
        if isinstance(seq, int):
            if state.last_seq and seq > state.last_seq + 1:
                state.dropped += seq - state.last_seq - 1
            state.last_seq = max(state.last_seq, seq)

        if ev == "hello":
            state.status = "running"
            state.pid = event.get("pid")
            state.attempt = int(event.get("attempt", 1) or 1)
            if isinstance(event.get("index"), int) and event["index"] >= 0:
                state.index = event["index"]
            version = event.get("v")
            if version != EVENT_SCHEMA_VERSION:
                self.warnings.append(
                    f"job {key}: event schema {version!r}, "
                    f"expected {EVENT_SCHEMA_VERSION}")
        elif ev == "span_open":
            name = event.get("name")
            if isinstance(name, str):
                state.stack.append(name)
                state.stage = name
        elif ev == "span_close":
            name = event.get("name")
            if state.stack and state.stack[-1] == name:
                state.stack.pop()
            state.stage = state.stack[-1] if state.stack else None
            record = event.get("record")
            if isinstance(record, dict):
                state.records.append(record)
        elif ev == "progress":
            kind = event.get("kind")
            if isinstance(kind, str):
                fields = {k: v for k, v in event.items()
                          if k not in ("ev", "job", "seq", "t", "kind")}
                state.progress[kind] = fields
        elif ev == "metric":
            name = event.get("name")
            if isinstance(name, str):
                state.live_metrics[name] = event.get("value")
        elif ev == "heartbeat":
            if event.get("rss_kb") is not None:
                state.rss_kb = event.get("rss_kb")
            if event.get("stage") is not None:
                state.stage = event.get("stage")
        elif ev == "bye":
            state.done = True
            state.bye_seen = True
            state.status = str(event.get("status", "ok"))
            state.worker_dropped = int(event.get("dropped", 0) or 0)
            metrics = event.get("metrics")
            state.metrics = metrics if isinstance(metrics, dict) else None
        else:
            self.malformed += 1
            return
        self._fan_out(event)

    def mark_done(self, key: str, status: str) -> None:
        """Supervisor-side verdict for a job, applied once the
        executor settles it.  A ``bye`` the worker already sent wins —
        this only finalises jobs the stream could not finish itself
        (crash, timeout, stall-kill, or a dropped ``bye``)."""
        state = self.expect(key)
        if not state.bye_seen:
            state.done = True
            state.status = status

    def inject_records(self, key: str, records: List[Dict[str, object]],
                       status: str = "ok", index: int = -1) -> None:
        """Adopt shard-equivalent records for a job that never ran.

        A result-store cache hit skips execution, so no worker ever
        streams for the job — but the run model must still contain its
        (synthetic) span and metrics, byte-identical to the shard the
        supervisor writes on its behalf.  This installs exactly those
        records as if the worker had streamed them and said ``bye``,
        and fans a synthetic ``cached`` event out to subscribers so
        live watchers see the hit too.
        """
        state = self.expect(key, index)
        state.records = [
            {k: v for k, v in record.items() if k != "type"}
            for record in records
            if isinstance(record, dict) and record.get("type") == "span"
        ]
        state.metrics = None
        for record in records:
            if isinstance(record, dict) and record.get("type") == "metrics":
                metrics = record.get("metrics")
                if isinstance(metrics, dict):
                    state.metrics = metrics
        state.status = status
        state.stage = None
        state.done = True
        state.bye_seen = True
        state.last_seen = time.monotonic()
        self._fan_out({"ev": "cached", "job": key, "seq": 0,
                       "t": time.time(), "status": status, "index": index})

    def stalled(self, threshold_s: float,
                now: Optional[float] = None) -> List[JobLiveState]:
        """Jobs whose heartbeat has been silent for over ``threshold_s``."""
        now = time.monotonic() if now is None else now
        return [state for state in self.jobs.values()
                if not state.done and state.last_seen
                and now - state.last_seen > threshold_s]

    def dropped_events(self) -> int:
        """Total events lost anywhere in the plane (gaps + queue-full
        drops reported by workers + malformed)."""
        per_job = sum(s.dropped + s.worker_dropped for s in self.jobs.values())
        return per_job + self.malformed

    def job_records(self, key: str) -> List[Dict[str, object]]:
        """One job's shard-equivalent records (spans + metrics).

        Empty until the job's ``bye`` arrives: a crashed, killed or
        stalled attempt never writes its shard file, so its streamed
        partial records must equally stay out of the run model.
        """
        state = self.jobs.get(key)
        if state is None or not state.bye_seen:
            return []
        records: List[Dict[str, object]] = [
            {"type": "span", **record} for record in state.records
        ]
        if state.metrics:
            records.append({"type": "metrics", "metrics": state.metrics})
        return records

    def run_records(self, manifest: Dict[str, object],
                    job_keys: List[str]) -> List[Dict[str, object]]:
        """The full schema-v1 run model, reassembled from the stream."""
        shards = [self.job_records(key) for key in job_keys]
        return assemble_run(manifest, shards,
                            dropped_events=self.dropped_events())
