"""Dependency-free sampling profiler, attachable per span.

Two interchangeable backends behind one `Profiler` API:

* ``sigprof`` — ``signal.setitimer(ITIMER_PROF, ...)`` delivers
  SIGPROF on consumed CPU time; the handler collapses the interrupted
  frame stack.  Zero work between samples, samples only where CPU is
  actually burned — but POSIX-only and main-thread-only (signal
  handlers execute in the main thread, and the profiled code must be
  running there for the interrupted frame to be the interesting one).
* ``thread`` — a daemon thread wakes every interval and collapses the
  target thread's frame out of ``sys._current_frames()``.  Wall-clock
  sampling, works anywhere Python threads do; the pure-Python
  fallback when signals are unavailable or the caller is off the main
  thread.

``backend="auto"`` picks ``sigprof`` when it can and falls back.

Samples are *collapsed stacks* — ``"file:func;file:func;..." -> hit
count``, root frame first, the classic flamegraph input format — so a
profile aggregates in O(distinct stacks) memory no matter how long the
stage runs, serialises as a small JSON dict, and merges by plain
addition.  `profiled` attaches the finished profile to a span as its
``"profile"`` attribute, which the report layer renders as a
flamegraph (`repro report --html`).

Sampling guarantees, documented because users will ask: counts are
statistical (a function's share of samples estimates its share of
CPU/wall time with standard-error ~ 1/sqrt(hits)); stacks deeper than
`MAX_DEPTH` are truncated at the root end (the leaf — where time is
spent — always survives); the profiler never samples its own
machinery (the sampler thread skips itself; SIGPROF's handler sees
the interrupted frame, not the handler).
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from typing import Dict, Iterator, Optional

try:  # pragma: no cover - POSIX-only module
    import signal as _signal
except ImportError:  # pragma: no cover
    _signal = None

#: Default sampling interval: 5 ms ~ 200 Hz, coarse enough to stay
#: under ~1% overhead on the flows we profile, fine enough to resolve
#: PathFinder inner loops over a seconds-long route stage.
DEFAULT_INTERVAL_S = 0.005

#: Frames kept per sample, leaf-first (deep recursion truncates at the
#: root end so the hot leaf is never lost).
MAX_DEPTH = 64


def collapse_frame(frame, max_depth: int = MAX_DEPTH) -> str:
    """One frame stack as a collapsed-stack line, root first."""
    parts = []
    while frame is not None and len(parts) < max_depth:
        code = frame.f_code
        parts.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class Profiler:
    """Accumulates collapsed-stack samples from one backend.

    Usage::

        prof = Profiler(interval_s=0.005)
        prof.start()
        ...                      # the code under test
        prof.stop()
        span.set("profile", prof.as_attr())

    Not reentrant; one start/stop cycle per instance.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 backend: str = "auto") -> None:
        if backend not in ("auto", "sigprof", "thread"):
            raise ValueError(f"unknown profiler backend {backend!r}")
        self.interval_s = max(0.0005, float(interval_s))
        self.requested_backend = backend
        self.backend: Optional[str] = None
        self.samples = 0
        self.stacks: Dict[str, int] = {}
        self._sampler: Optional[_SamplerThread] = None
        self._prev_handler = None
        self._prev_timer = None

    def _record(self, frame) -> None:
        if frame is None:
            return
        stack = collapse_frame(frame)
        if stack:
            self.samples += 1
            self.stacks[stack] = self.stacks.get(stack, 0) + 1

    @staticmethod
    def _sigprof_available() -> bool:
        return (_signal is not None
                and hasattr(_signal, "setitimer")
                and hasattr(_signal, "SIGPROF")
                and threading.current_thread() is threading.main_thread())

    def start(self) -> "Profiler":
        if self.backend is not None:
            raise RuntimeError("profiler already started")
        use_sigprof = (self.requested_backend == "sigprof"
                       or (self.requested_backend == "auto"
                           and self._sigprof_available()))
        if use_sigprof:
            if not self._sigprof_available():
                raise RuntimeError(
                    "sigprof backend needs POSIX signals on the main thread")
            self.backend = "sigprof"

            def _handler(signum, frame):  # noqa: ARG001 - signal ABI
                self._record(frame)

            self._prev_handler = _signal.signal(_signal.SIGPROF, _handler)
            self._prev_timer = _signal.setitimer(
                _signal.ITIMER_PROF, self.interval_s, self.interval_s)
        else:
            self.backend = "thread"
            self._sampler = _SamplerThread(
                target_ident=threading.get_ident(),
                interval_s=self.interval_s,
                record=self._record,
            )
            self._sampler.start()
        return self

    def stop(self) -> "Profiler":
        if self.backend == "sigprof":
            _signal.setitimer(_signal.ITIMER_PROF, 0.0, 0.0)
            _signal.signal(_signal.SIGPROF,
                           self._prev_handler or _signal.SIG_DFL)
            self._prev_handler = None
        elif self.backend == "thread" and self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        return self

    def as_attr(self) -> Dict[str, object]:
        """The profile as a JSON-serialisable span attribute."""
        return {
            "interval_s": self.interval_s,
            "backend": self.backend,
            "samples": self.samples,
            "stacks": dict(self.stacks),
        }


class _SamplerThread(threading.Thread):
    """Wall-clock sampler for the pure-Python backend."""

    def __init__(self, target_ident: int, interval_s: float, record) -> None:
        super().__init__(name="repro-profiler", daemon=True)
        self._target_ident = target_ident
        self._interval_s = interval_s
        self._record = record
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            frame = sys._current_frames().get(self._target_ident)
            self._record(frame)

    def stop(self, join_timeout_s: float = 1.0) -> None:
        self._halt.set()
        self.join(join_timeout_s)


@contextlib.contextmanager
def profiled(span=None, interval_s: float = DEFAULT_INTERVAL_S,
             backend: str = "auto", enabled: bool = True) -> Iterator[Optional[Profiler]]:
    """Profile a ``with`` block; attach the result to ``span``.

    With ``enabled=False`` (the default CLI state) this is a bare
    ``yield None`` — no object allocation beyond the generator, no
    timers, no threads.
    """
    if not enabled:
        yield None
        return
    profiler = Profiler(interval_s=interval_s, backend=backend).start()
    try:
        yield profiler
    finally:
        profiler.stop()
        if span is not None:
            span.set("profile", profiler.as_attr())


def merge_profiles(profiles) -> Dict[str, object]:
    """Sum several profile attrs into one (report-level roll-up)."""
    merged: Dict[str, object] = {"interval_s": None, "backend": None,
                                 "samples": 0, "stacks": {}}
    stacks: Dict[str, int] = merged["stacks"]  # type: ignore[assignment]
    for profile in profiles:
        if not isinstance(profile, dict):
            continue
        merged["interval_s"] = merged["interval_s"] or profile.get("interval_s")
        merged["backend"] = merged["backend"] or profile.get("backend")
        merged["samples"] += int(profile.get("samples", 0) or 0)
        for stack, count in (profile.get("stacks") or {}).items():
            if isinstance(stack, str) and isinstance(count, (int, float)):
                stacks[stack] = stacks.get(stack, 0) + int(count)
    return merged
