"""Named-metric registry: get-or-create access + one-call snapshots.

A registry maps metric names to `Counter`/`Gauge`/`Histogram`
instances so instrumentation sites can say

    get_registry().counter("route.nets_ripped").inc()

without threading objects through every call, and exporters can dump
everything with `snapshot()`.  Like the tracer in `repro.obs.trace`,
the *current* registry is scoped through a context variable
(`use_registry`) and falls back to a process-wide default — batch
workers install a fresh registry per job so shard metrics stay
job-local and deterministic regardless of what the parent process
accumulated before forking.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, List

from .metrics import Counter, Gauge, Histogram


class MetricsRegistry:
    """Name -> metric store with typed get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str):
        """The metric registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as JSON-serialisable dicts, keyed by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def reset(self) -> None:
        """Drop all registered metrics (test isolation)."""
        self._metrics.clear()


_default_registry = MetricsRegistry()

_current_registry: contextvars.ContextVar = contextvars.ContextVar(
    "repro_registry", default=_default_registry
)


def get_registry() -> MetricsRegistry:
    """The registry instrumentation call sites should emit to.

    The process-wide default unless a `use_registry` /
    `set_registry` scope is active.
    """
    return _current_registry.get()


def set_registry(registry: MetricsRegistry) -> object:
    """Install ``registry`` as current; returns a token for
    `reset_registry`."""
    return _current_registry.set(registry)


def reset_registry(token: object) -> None:
    """Undo a `set_registry` (restores the previous registry)."""
    _current_registry.reset(token)


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the current registry for a ``with`` block."""
    token = _current_registry.set(registry)
    try:
        yield registry
    finally:
        _current_registry.reset(token)
