"""Named-metric registry: get-or-create access + one-call snapshots.

A registry maps metric names to `Counter`/`Gauge`/`Histogram`
instances so instrumentation sites can say

    get_registry().counter("route.nets_ripped").inc()

without threading objects through every call, and exporters can dump
everything with `snapshot()`.  A process-wide default registry mirrors
the tracer's current/default split in `repro.obs.trace`.
"""

from __future__ import annotations

from typing import Dict, List

from .metrics import Counter, Gauge, Histogram


class MetricsRegistry:
    """Name -> metric store with typed get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str):
        """The metric registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as JSON-serialisable dicts, keyed by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def reset(self) -> None:
        """Drop all registered metrics (test isolation)."""
        self._metrics.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry
