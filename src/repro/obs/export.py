"""Telemetry export: JSON / JSONL writers and the run manifest.

The JSONL layout (one JSON object per line, ``type`` discriminated):

* ``{"type": "manifest", ...}``  — first line: schema version, wall
  clock, python/platform, git SHA, seed, architecture parameters.
* ``{"type": "span", ...}``      — one line per *root* span, children
  nested under ``"children"`` (a whole flow stays one record).
* ``{"type": "metrics", ...}``   — final line: the metrics-registry
  snapshot, when a registry with content is supplied.

Everything in a record is plain JSON; non-serialisable attribute
values degrade to ``repr`` rather than failing the run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional

from .trace import Span

#: Bump when a record's shape changes incompatibly.
SCHEMA_VERSION = 1


#: Per-process memo for `git_sha`: the SHA cannot change under a
#: running process, and exporters call this once per record batch —
#: one subprocess per distinct cwd is plenty.
_git_sha_cache: Dict[str, Optional[str]] = {}


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit SHA, or None outside a repo / without git.

    Defaults to the installed package's checkout (not the caller's
    cwd), so the manifest records the *code* provenance even when the
    CLI runs from an unrelated directory.  Memoized per process and
    per cwd; a missing ``git`` binary or any subprocess failure
    degrades to None (and caches the None) instead of raising."""
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    if cwd in _git_sha_cache:
        return _git_sha_cache[cwd]
    sha: Optional[str]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError, ValueError):
        sha = None
    else:
        sha = (out.stdout.strip() or None) if out.returncode == 0 else None
    _git_sha_cache[cwd] = sha
    return sha


def _jsonable(value: object) -> object:
    """Best-effort conversion of an attribute value to plain JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def run_manifest(
    seed: Optional[int] = None,
    arch: Optional[object] = None,
    argv: Optional[List[str]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The provenance record written first in every export.

    Args:
        seed: Flow RNG seed (placement determinism anchor).
        arch: `ArchParams` (or any dataclass) describing the target.
        argv: Command-line arguments of the producing invocation.
        extra: Caller-specific additions (circuit name, scale, ...).
    """
    now = time.time()
    manifest: Dict[str, object] = {
        "type": "manifest",
        "schema": SCHEMA_VERSION,
        "created_unix": now,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "seed": seed,
        "arch": _jsonable(arch) if arch is not None else None,
    }
    if argv is not None:
        manifest["argv"] = list(argv)
    if extra:
        manifest.update({k: _jsonable(v) for k, v in extra.items()})
    return manifest


def span_to_dict(span: Span) -> Dict[str, object]:
    """One span (and its subtree) as a JSON-serialisable dict."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "status": span.status,
        "start_time": span.start_time,
        "duration_s": span.duration_s,
        "peak_rss_kb": span.peak_rss_kb,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        "children": [span_to_dict(child) for child in span.children],
    }


def telemetry_records(
    manifest: Optional[Dict[str, object]] = None,
    tracer=None,
    registry=None,
) -> List[Dict[str, object]]:
    """The full record sequence for one run, manifest first."""
    records: List[Dict[str, object]] = []
    if manifest is not None:
        records.append(manifest)
    if tracer is not None:
        for root in tracer.roots:
            records.append({"type": "span", **span_to_dict(root)})
    if registry is not None and len(registry):
        records.append({"type": "metrics", "metrics": registry.snapshot()})
    return records


def write_jsonl(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Write records one-per-line; returns the number written.

    Atomic: content lands in ``<path>.<pid>.tmp`` and is published with
    `os.replace`, so a reader (or a ``repro db ingest`` racing a run)
    sees either the previous complete file or the new complete file —
    never a torn half-write from a killed process.
    """
    _ensure_parent(path)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    count = 0
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                count += 1
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # publish failed: leave no litter
            try:
                os.remove(tmp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return count


def export_run(
    path: str,
    manifest: Optional[Dict[str, object]] = None,
    tracer=None,
    registry=None,
) -> int:
    """Convenience: manifest + spans + metrics to a JSONL file."""
    return write_jsonl(path, telemetry_records(manifest, tracer, registry))


def read_jsonl(path: str, strict: bool = True, return_errors: bool = False):
    """Load an exported JSONL file back into dicts (tests, analysis).

    With ``strict=False`` malformed lines are skipped instead of
    raising — including lines with broken UTF-8, which a worker killed
    mid-flush can leave behind (undecodable bytes are replaced before
    parsing, so the damage stays contained to the affected line) —
    and ``return_errors=True`` additionally returns the 1-based line
    numbers that were skipped as ``(records, bad_lines)`` — the
    analysis tools surface those as warnings.
    """
    records: List[Dict[str, object]] = []
    bad_lines: List[int] = []
    errors = "strict" if strict else "replace"
    with open(path, "r", encoding="utf-8", errors=errors) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                if strict:
                    raise
                bad_lines.append(lineno)
    if return_errors:
        return records, bad_lines
    return records


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_json(path: str, obj: object) -> None:
    """Pretty-printed single-document JSON (BENCH_*.json outputs).

    Atomic via tmp + `os.replace`, like `write_jsonl`.
    """
    _ensure_parent(path)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
