"""Telemetry warehouse: a queryable sqlite store of exported runs
(`repro db`).

Every telemetry consumer so far reads one or two JSONL files at a
time; the warehouse makes the *cross-run* questions cheap.  Schema-v1
runs (``--metrics-out`` files, merged batch runs, live-collector
output — anything `repro.obs.analyze.records.parse_run` accepts)
ingest into four indexed tables:

* ``runs`` — one row per ingested run: a content digest (sha256 over
  the canonical record bytes, which is what makes re-ingest
  idempotent), manifest provenance (git SHA, creation time, seed,
  circuit), the end-to-end wall time, and the raw metrics snapshot —
  enough to rebuild a `ParsedRun` losslessly for the analysis layer.
* ``spans`` — one row per span, keyed by the run and the stable
  alignment path, with total, clamped self and *raw* (unclamped) self
  wall time, the batch job index recovered from ``j<i>.`` span ids,
  status, peak RSS, and the attr dict as JSON.
* ``measurements`` — the flat name -> number map
  `repro.obs.analyze.diff.run_measurements` derives (stage aliases,
  per-span wall/self times, per-circuit and per-variant namespaces,
  metric stats).  Trend queries are one indexed lookup per key.
* ``profiles`` — collapsed profiler stacks per profiled span
  (`--profile` output), the input to differential flamegraphs.

The store is plain stdlib ``sqlite3``; a single file travels as a CI
artifact and any sqlite client can query it directly.

    con = connect("telemetry.sqlite")
    ingest_file(con, "run.jsonl", label="nightly")
    for row in top_spans(con, k=10):
        print(row["path"], row["self_s"])
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .export import read_jsonl
from .analyze.records import ParsedRun, SpanNode, parse_run
from .analyze.diff import run_measurements

#: Bump when the table layout changes incompatibly.  `connect` refuses
#: a store written by a newer layout rather than misreading it.
STORE_SCHEMA = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY,
    digest        TEXT NOT NULL UNIQUE,
    source        TEXT,
    label         TEXT,
    git_sha       TEXT,
    created_unix  REAL,
    schema        INTEGER,
    circuit       TEXT,
    seed          INTEGER,
    total_wall_s  REAL,
    span_count    INTEGER NOT NULL,
    manifest      TEXT,
    metrics       TEXT,
    ingested_unix REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_sha ON runs (git_sha);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs (created_unix);
CREATE TABLE IF NOT EXISTS spans (
    run_id       INTEGER NOT NULL REFERENCES runs (run_id) ON DELETE CASCADE,
    path         TEXT NOT NULL,
    name         TEXT NOT NULL,
    depth        INTEGER NOT NULL,
    parent_path  TEXT,
    job          INTEGER,
    start_time   REAL,
    duration_s   REAL,
    self_s       REAL,
    raw_self_s   REAL,
    status       TEXT NOT NULL,
    peak_rss_kb  INTEGER,
    attrs        TEXT,
    PRIMARY KEY (run_id, path)
);
CREATE INDEX IF NOT EXISTS idx_spans_path ON spans (path);
CREATE INDEX IF NOT EXISTS idx_spans_name ON spans (name);
CREATE TABLE IF NOT EXISTS measurements (
    run_id INTEGER NOT NULL REFERENCES runs (run_id) ON DELETE CASCADE,
    key    TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, key)
);
CREATE INDEX IF NOT EXISTS idx_measurements_key ON measurements (key);
CREATE TABLE IF NOT EXISTS profiles (
    run_id    INTEGER NOT NULL REFERENCES runs (run_id) ON DELETE CASCADE,
    span_path TEXT NOT NULL,
    stack     TEXT NOT NULL,
    samples   INTEGER NOT NULL,
    PRIMARY KEY (run_id, span_path, stack)
);
"""


def connect(path: str) -> sqlite3.Connection:
    """Open (creating if needed) a warehouse file.

    Refuses a store written by a newer `STORE_SCHEMA` — the caller
    should upgrade rather than silently misread the tables.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    con = sqlite3.connect(path)
    con.row_factory = sqlite3.Row
    con.execute("PRAGMA foreign_keys = ON")
    con.executescript(_TABLES)
    row = con.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
    if row is None:
        con.execute("INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (str(STORE_SCHEMA),))
        con.commit()
    elif int(row["value"]) > STORE_SCHEMA:
        con.close()
        raise ValueError(
            f"{path}: store schema {row['value']} is newer than supported "
            f"{STORE_SCHEMA}")
    return con


def run_digest(records: Sequence[object]) -> str:
    """Content digest of one run's record sequence.

    Canonical sorted-key JSON per record, newline-joined — the same
    bytes `repro.obs.export.write_jsonl` produces — so a file round
    trip does not change the digest, and ingesting the same run twice
    (same path or not) is a no-op.
    """
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


@dataclasses.dataclass
class IngestResult:
    """Outcome of one `ingest_records` call."""

    run_id: int
    digest: str
    inserted: bool
    source: str
    spans: int = 0
    warnings: List[str] = dataclasses.field(default_factory=list)


def _job_index(span_id: Optional[str]) -> Optional[int]:
    """Batch job index from a ``j<i>.s<n>`` span id, else None."""
    if not isinstance(span_id, str) or not span_id.startswith("j"):
        return None
    head, _sep, _tail = span_id.partition(".")
    try:
        return int(head[1:])
    except ValueError:
        return None


def ingest_records(
    con: sqlite3.Connection,
    records: Sequence[object],
    source: str = "<records>",
    label: Optional[str] = None,
) -> IngestResult:
    """Ingest one run's raw records; idempotent via the run digest."""
    digest = run_digest(records)
    existing = con.execute("SELECT run_id FROM runs WHERE digest = ?",
                           (digest,)).fetchone()
    if existing is not None:
        return IngestResult(run_id=existing["run_id"], digest=digest,
                            inserted=False, source=source)
    run = parse_run(list(records), source=source)
    manifest = run.manifest or {}
    cursor = con.execute(
        "INSERT INTO runs (digest, source, label, git_sha, created_unix,"
        " schema, circuit, seed, total_wall_s, span_count, manifest,"
        " metrics, ingested_unix)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (
            digest,
            source,
            label,
            manifest.get("git_sha"),
            _as_real(manifest.get("created_unix")),
            _as_integer(manifest.get("schema")),
            manifest.get("circuit") if isinstance(manifest.get("circuit"), str)
            else None,
            _as_integer(manifest.get("seed")),
            run.total_wall_s,
            sum(1 for _node, _depth in run.walk()),
            json.dumps(manifest, sort_keys=True) if manifest else None,
            json.dumps(run.metrics, sort_keys=True) if run.metrics else None,
            time.time(),
        ),
    )
    run_id = cursor.lastrowid
    span_rows = []
    profile_rows = []
    for root in run.spans:
        _flatten(root, 0, None, span_rows, profile_rows)
    con.executemany(
        "INSERT INTO spans (run_id, path, name, depth, parent_path, job,"
        " start_time, duration_s, self_s, raw_self_s, status, peak_rss_kb,"
        " attrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [(run_id, *row) for row in span_rows],
    )
    con.executemany(
        "INSERT INTO profiles (run_id, span_path, stack, samples)"
        " VALUES (?, ?, ?, ?)",
        [(run_id, *row) for row in profile_rows],
    )
    con.executemany(
        "INSERT INTO measurements (run_id, key, value) VALUES (?, ?, ?)",
        [(run_id, key, value)
         for key, value in sorted(run_measurements(run).items())],
    )
    con.commit()
    return IngestResult(run_id=run_id, digest=digest, inserted=True,
                        source=source, spans=len(span_rows),
                        warnings=list(run.warnings))


def _flatten(node: SpanNode, depth: int, parent_path: Optional[str],
             span_rows: List[tuple], profile_rows: List[tuple]) -> None:
    span_rows.append((
        node.path,
        node.name,
        depth,
        parent_path,
        _job_index(node.span_id),
        node.start_time,
        node.duration_s,
        node.self_s if node.duration_s is not None else None,
        node.raw_self_s if node.duration_s is not None else None,
        node.status,
        node.peak_rss_kb,
        json.dumps(node.attrs, sort_keys=True) if node.attrs else None,
    ))
    profile = node.attrs.get("profile")
    if isinstance(profile, dict):
        for stack, count in sorted((profile.get("stacks") or {}).items()):
            if isinstance(stack, str) and isinstance(count, (int, float)):
                profile_rows.append((node.path, stack, int(count)))
    for child in node.children:
        _flatten(child, depth + 1, node.path, span_rows, profile_rows)


def ingest_file(con: sqlite3.Connection, path: str,
                label: Optional[str] = None) -> IngestResult:
    """Ingest one exported JSONL run file (malformed lines skipped)."""
    records, bad_lines = read_jsonl(path, strict=False, return_errors=True)
    result = ingest_records(con, records, source=path, label=label)
    for lineno in bad_lines:
        result.warnings.insert(0, f"{path}:{lineno}: not valid JSON, skipped")
    return result


def list_runs(con: sqlite3.Connection,
              limit: Optional[int] = None) -> List[Dict[str, object]]:
    """Ingested runs, newest manifest first (ingest order breaks ties)."""
    sql = ("SELECT run_id, digest, source, label, git_sha, created_unix,"
           " circuit, seed, total_wall_s, span_count FROM runs"
           " ORDER BY created_unix DESC, run_id DESC")
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    return [dict(row) for row in con.execute(sql)]


def resolve_run(con: sqlite3.Connection, selector: str) -> int:
    """A run id from a user-facing selector.

    Accepted forms: a run id (``3`` / ``#3``), a unique digest prefix
    (>= 6 hex chars), ``latest`` / ``latest~N`` (by manifest creation
    time, newest first).  Raises ValueError when nothing (or more than
    one digest) matches.
    """
    selector = selector.strip()
    if selector.startswith("latest"):
        back = 0
        _base, sep, offset = selector.partition("~")
        if sep:
            try:
                back = int(offset)
            except ValueError:
                raise ValueError(f"bad run selector {selector!r}")
        rows = list_runs(con, limit=back + 1)
        if len(rows) <= back:
            raise ValueError(
                f"store has only {len(rows)} run(s), cannot resolve "
                f"{selector!r}")
        return int(rows[back]["run_id"])
    bare = selector[1:] if selector.startswith("#") else selector
    if bare.isdigit():
        row = con.execute("SELECT run_id FROM runs WHERE run_id = ?",
                          (int(bare),)).fetchone()
        if row is None:
            raise ValueError(f"no run with id {bare}")
        return int(row["run_id"])
    if len(bare) >= 6 and all(c in "0123456789abcdef" for c in bare.lower()):
        rows = con.execute(
            "SELECT run_id FROM runs WHERE digest LIKE ?",
            (bare.lower() + "%",)).fetchall()
        if len(rows) == 1:
            return int(rows[0]["run_id"])
        if len(rows) > 1:
            raise ValueError(f"digest prefix {bare!r} is ambiguous "
                             f"({len(rows)} runs)")
    raise ValueError(
        f"cannot resolve run {selector!r}: expected a run id, a digest "
        "prefix (>= 6 hex chars), or latest[~N]")


def load_parsed_run(con: sqlite3.Connection, run_id: int) -> ParsedRun:
    """Rebuild a `ParsedRun` (span forest + manifest) from the store.

    The reconstruction is faithful for everything the analysis layer
    reads — paths, durations, attrs, statuses, start times — so the
    attribution code runs identically on a warehouse run and a freshly
    parsed JSONL file.
    """
    run_row = con.execute("SELECT * FROM runs WHERE run_id = ?",
                          (run_id,)).fetchone()
    if run_row is None:
        raise ValueError(f"no run with id {run_id}")
    manifest = json.loads(run_row["manifest"]) if run_row["manifest"] else None
    run = ParsedRun(
        source=(run_row["source"] or f"run#{run_id}"),
        manifest=manifest,
    )
    if run_row["metrics"]:
        run.metrics = json.loads(run_row["metrics"])
    nodes: Dict[str, SpanNode] = {}
    for row in con.execute(
        "SELECT * FROM spans WHERE run_id = ? ORDER BY rowid", (run_id,)
    ):
        node = SpanNode(
            name=row["name"],
            path=row["path"],
            span_id=None,
            parent_id=None,
            status=row["status"],
            start_time=row["start_time"],
            duration_s=row["duration_s"],
            peak_rss_kb=row["peak_rss_kb"],
            attrs=json.loads(row["attrs"]) if row["attrs"] else {},
        )
        if row["job"] is not None:
            # Re-derivable job identity for critical-path extraction.
            node.span_id = f"j{row['job']}.s0"
        nodes[node.path] = node
        parent = nodes.get(row["parent_path"]) if row["parent_path"] else None
        if parent is not None:
            parent.children.append(node)
        else:
            run.spans.append(node)
    return run


def top_spans(
    con: sqlite3.Connection,
    k: int = 10,
    runs: Optional[Sequence[int]] = None,
    by: str = "self",
    min_count: int = 1,
) -> List[Dict[str, object]]:
    """Top-k span paths by aggregate wall time across runs.

    Args:
        runs: Restrict to these run ids (default: every ingested run).
        by: ``"self"`` ranks by summed clamped self-time (where is the
            work actually spent), ``"total"`` by summed inclusive time.
        min_count: Drop paths seen in fewer than this many runs.
    """
    if by not in ("self", "total"):
        raise ValueError(f"by must be 'self' or 'total', got {by!r}")
    column = "self_s" if by == "self" else "duration_s"
    where, params = "", []
    if runs is not None:
        if not runs:
            return []
        marks = ",".join("?" for _ in runs)
        where = f"WHERE run_id IN ({marks})"
        params = [int(r) for r in runs]
    sql = (
        f"SELECT path, name, COUNT(*) AS runs,"
        f" SUM({column}) AS agg_s, AVG({column}) AS mean_s,"
        f" MAX({column}) AS max_s,"
        f" SUM(duration_s) AS total_s, SUM(self_s) AS self_s"
        f" FROM spans {where}"
        f" GROUP BY path HAVING COUNT(*) >= ? AND agg_s IS NOT NULL"
        f" ORDER BY agg_s DESC, path LIMIT ?"
    )
    rows = con.execute(sql, (*params, int(min_count), int(k)))
    return [dict(row) for row in rows]


def trend(
    con: sqlite3.Connection,
    key: str,
    since_sha: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One measurement's trajectory across ingested runs.

    ``key`` is any `run_measurements` name — a stage alias
    (``route.wall_s``), a span path (``span.<path>.self_s``), a metric
    stat (``metric.route.net_route_s.p95``) — plus ``total.wall_s``.
    Rows come back oldest first (manifest creation time), each with
    the run's git SHA so the trajectory aligns with commit history;
    ``since_sha`` drops rows older than that SHA's first run.
    """
    rows = [dict(row) for row in con.execute(
        "SELECT m.run_id AS run_id, r.git_sha AS git_sha,"
        " r.created_unix AS created_unix, r.source AS source,"
        " r.circuit AS circuit, m.value AS value"
        " FROM measurements m JOIN runs r ON r.run_id = m.run_id"
        " WHERE m.key = ?"
        " ORDER BY r.created_unix ASC, m.run_id ASC",
        (key,),
    )]
    if since_sha:
        start = next(
            (index for index, row in enumerate(rows)
             if isinstance(row["git_sha"], str)
             and row["git_sha"].startswith(since_sha)),
            None,
        )
        if start is None:
            raise ValueError(f"no ingested run has git SHA {since_sha!r}")
        rows = rows[start:]
    return rows


def profile_stacks(con: sqlite3.Connection,
                   run_id: int) -> Dict[str, int]:
    """All collapsed profiler stacks of one run, summed across spans."""
    stacks: Dict[str, int] = {}
    for row in con.execute(
        "SELECT stack, SUM(samples) AS samples FROM profiles"
        " WHERE run_id = ? GROUP BY stack", (run_id,)
    ):
        stacks[row["stack"]] = int(row["samples"])
    return stacks


def _as_real(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _as_integer(value: object) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return int(value)
