"""Typed view of an exported telemetry run (schema-v1 JSONL).

`load_run` / `parse_run` turn the raw record dicts written by
`repro.obs.export` into a `ParsedRun`: the manifest, a forest of
`SpanNode`s, and the metrics snapshot.  The parser is deliberately
forward-compatible — records with an unknown ``type`` and manifests
declaring a newer ``SCHEMA_VERSION`` are *skipped with a warning*
(collected on ``ParsedRun.warnings``), never a crash, so a `repro
report` built today keeps working on telemetry written by a future
exporter.

Span identity for cross-run alignment is the *path*: the chain of
span names from the root, ``/``-joined, with ``#n`` suffixes
disambiguating repeated sibling names in start order
(``flow.run/flow.route``, ``flow.run/flow.route#2`` ...).  Paths are
stable across runs of the same flow, which is what `repro diff`
aligns on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from ..export import SCHEMA_VERSION, read_jsonl


@dataclasses.dataclass
class SpanNode:
    """One span of a parsed run (the analysis-side mirror of
    `repro.obs.trace.Span`).

    Attributes:
        name: Dotted stage name (``"flow.route"``).
        path: Root-anchored alignment key (see module docstring).
        duration_s: Wall time; None for spans exported while open.
        peak_rss_kb: Process peak RSS at span end, when recorded.
        attrs: Exported attribute dict (JSON values).
        children: Nested spans, in start order.
    """

    name: str
    path: str
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    status: str = "ok"
    start_time: Optional[float] = None
    duration_s: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)
    children: List["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def total_s(self) -> float:
        """Wall time including children (0.0 when unrecorded)."""
        return self.duration_s or 0.0

    @property
    def raw_self_s(self) -> float:
        """Unclamped own wall time: total minus summed child totals.

        Clock-resolution overlap can make children sum to *more* than
        the parent, so this may be slightly negative.  Attribution
        (`repro.obs.analyze.attribution`) uses the raw value because
        raw self-times telescope exactly: a tree's total equals the
        sum of its nodes' raw self-times, which is what lets a
        run-to-run delta decompose into per-span contributions with
        zero residual.  Reports should use `self_s` instead.
        """
        return self.total_s - sum(c.total_s for c in self.children)

    @property
    def self_s(self) -> float:
        """Wall time minus child wall time (own work only), clamped at
        0 so clock-resolution overlap never renders negative."""
        return max(0.0, self.raw_self_s)

    def walk(self, depth: int = 0) -> Iterator[Tuple["SpanNode", int]]:
        """(node, depth) pairs, depth-first in start order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclasses.dataclass
class ParsedRun:
    """Everything one telemetry JSONL file says, typed.

    Attributes:
        source: Where the records came from (path or label).
        manifest: The provenance record, or None if absent/unreadable.
        spans: Root spans, in export order.
        metrics: Metric name -> snapshot dict from the metrics record.
        warnings: Human-readable notes about skipped/odd records.
    """

    source: str
    manifest: Optional[Dict[str, object]] = None
    spans: List[SpanNode] = dataclasses.field(default_factory=list)
    metrics: Dict[str, Dict[str, object]] = dataclasses.field(default_factory=dict)
    warnings: List[str] = dataclasses.field(default_factory=list)

    def walk(self) -> Iterator[Tuple[SpanNode, int]]:
        """(node, depth) over every span tree."""
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> List[SpanNode]:
        """All spans with the given name, depth-first order."""
        return [node for node, _depth in self.walk() if node.name == name]

    def by_path(self) -> Dict[str, SpanNode]:
        """Path -> span for cross-run alignment (paths are unique)."""
        return {node.path: node for node, _depth in self.walk()}

    @property
    def total_wall_s(self) -> float:
        return sum(root.total_s for root in self.spans)


def _span_from_dict(record: Dict[str, object], parent_path: str,
                    sibling_names: Dict[str, int]) -> SpanNode:
    """Build one SpanNode (and subtree), tolerating missing keys."""
    name = str(record.get("name") or "<unnamed>")
    count = sibling_names.get(name, 0)
    sibling_names[name] = count + 1
    leaf = name if count == 0 else f"{name}#{count + 1}"
    path = f"{parent_path}/{leaf}" if parent_path else leaf
    node = SpanNode(
        name=name,
        path=path,
        span_id=record.get("span_id"),
        parent_id=record.get("parent_id"),
        status=str(record.get("status", "ok")),
        start_time=_as_float(record.get("start_time")),
        duration_s=_as_float(record.get("duration_s")),
        peak_rss_kb=_as_int(record.get("peak_rss_kb")),
        attrs=dict(record.get("attrs") or {}),
    )
    child_names: Dict[str, int] = {}
    for child in record.get("children") or ():
        if isinstance(child, dict):
            node.children.append(_span_from_dict(child, path, child_names))
    return node


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _as_int(value: object) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return int(value)


def parse_run(records: List[object], source: str = "<records>") -> ParsedRun:
    """Typed run from raw record dicts; never raises on odd records.

    Skipped-with-warning cases: non-dict records, records without a
    recognised ``type``, manifests declaring a schema newer than this
    reader's `SCHEMA_VERSION`.
    """
    run = ParsedRun(source=source)
    root_names: Dict[str, int] = {}
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            run.warnings.append(f"record {index}: not a JSON object, skipped")
            continue
        rtype = record.get("type")
        if rtype == "manifest":
            schema = record.get("schema")
            if isinstance(schema, (int, float)) and schema > SCHEMA_VERSION:
                run.warnings.append(
                    f"record {index}: manifest schema {schema} is newer than "
                    f"supported {SCHEMA_VERSION}, skipped"
                )
                continue
            if run.manifest is not None:
                run.warnings.append(f"record {index}: duplicate manifest, skipped")
                continue
            run.manifest = record
        elif rtype == "span":
            run.spans.append(_span_from_dict(record, "", root_names))
        elif rtype == "metrics":
            metrics = record.get("metrics")
            if isinstance(metrics, dict):
                run.metrics.update(metrics)
            else:
                run.warnings.append(f"record {index}: metrics record without "
                                    "a metrics dict, skipped")
        else:
            run.warnings.append(
                f"record {index}: unknown record type {rtype!r}, skipped"
            )
    return run


def load_run(path: str) -> ParsedRun:
    """Parse one exported JSONL file (tolerant of malformed lines)."""
    records, bad_lines = read_jsonl(path, strict=False, return_errors=True)
    run = parse_run(records, source=path)
    for lineno in bad_lines:
        run.warnings.insert(0, f"line {lineno}: not valid JSON, skipped")
    return run
