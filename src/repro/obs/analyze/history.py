"""Benchmark history: a compact JSONL trajectory of bench telemetry
(`repro bench-history append/check`).

The benchmark harness (benchmarks/conftest.py) writes one
``BENCH_<circuit>.json`` per traced circuit.  `summarize_bench`
reduces one of those documents to a single history *row* — git SHA,
timestamp, per-stage wall times, and QoR (wirelength, iterations,
channel width) — and `append_history` maintains a deduplicated
append-only JSONL file of rows keyed by (git SHA, circuit).

`check_history` is the noise-tolerant regression gate: each current
row is compared against the **median of the last N** prior rows for
its circuit (median-of-N absorbs machine noise on wall times), and a
measure fails when it exceeds the median by more than the relative
band.  QoR measures are gated with the same band; they are
deterministic per seed, so any drift within the band is a real —
if tolerable — change.
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from ..export import _ensure_parent

#: Bump when a history row's shape changes incompatibly.
HISTORY_SCHEMA = 1

#: Wall-time stages recorded per row (from BENCH telemetry.stages,
#: normalised to bare stage names).
_STAGE_KEYS = ("pack", "place", "route")


def _route_qor(flows: Sequence[dict]) -> Dict[str, float]:
    """Final-route QoR attrs from a BENCH document's flow span dumps."""
    qor: Dict[str, float] = {}
    for flow in flows:
        if not isinstance(flow, dict):
            continue
        for child in flow.get("children") or ():
            if not isinstance(child, dict) or child.get("name") != "flow.route":
                continue
            attrs = child.get("attrs") or {}
            for key in ("wirelength", "iterations", "channel_width", "overused_nodes"):
                value = attrs.get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    qor[key] = float(value)
    return qor


def summarize_bench(doc: dict, source: str = "<bench>") -> dict:
    """One history row from a loaded ``BENCH_<circuit>.json`` document."""
    if not isinstance(doc, dict) or "circuit" not in doc:
        raise ValueError(f"{source}: not a BENCH_<circuit>.json document "
                         "(missing 'circuit')")
    manifest = doc.get("manifest") or {}
    telemetry = doc.get("telemetry") or {}
    stages_in = telemetry.get("stages") or {}
    stages = {}
    for key, value in stages_in.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # "flow.pack" and bare "pack" both normalise to "pack".
            stages[str(key).split(".")[-1]] = float(value)
    row = {
        "type": "bench",
        "schema": HISTORY_SCHEMA,
        "circuit": doc["circuit"],
        "git_sha": manifest.get("git_sha"),
        "created_unix": manifest.get("created_unix"),
        "scale": manifest.get("bench_scale"),
        "stages": stages,
        "qor": _route_qor(telemetry.get("flows") or ()),
    }
    return row


def load_bench_file(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    return summarize_bench(doc, source=path)


def load_history(path: str) -> Tuple[List[dict], List[str]]:
    """(rows, warnings); unknown row types/schemas skip with a warning."""
    rows: List[dict] = []
    warnings: List[str] = []
    if not os.path.exists(path):
        return rows, warnings
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                warnings.append(f"{path}:{lineno}: not valid JSON, skipped")
                continue
            if not isinstance(row, dict) or row.get("type") != "bench":
                warnings.append(f"{path}:{lineno}: not a bench row, skipped")
                continue
            schema = row.get("schema")
            if isinstance(schema, (int, float)) and schema > HISTORY_SCHEMA:
                warnings.append(
                    f"{path}:{lineno}: history schema {schema} newer than "
                    f"supported {HISTORY_SCHEMA}, skipped")
                continue
            rows.append(row)
    return rows, warnings


def _row_key(row: dict) -> Optional[Tuple[str, str]]:
    sha, circuit = row.get("git_sha"), row.get("circuit")
    if isinstance(sha, str) and isinstance(circuit, str):
        return (sha, circuit)
    return None


def _row_canonical(row: dict) -> str:
    """Content identity for rows without a (git SHA, circuit) key."""
    return json.dumps(row, sort_keys=True)


def _write_rows(path: str, rows: Sequence[dict]) -> None:
    # Atomic tmp + replace: the history store is rewritten whole on
    # every append, so a killed run must leave the previous complete
    # trajectory, never a torn file the next gate chokes on.
    _ensure_parent(path)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def append_history(path: str, rows: Sequence[dict]) -> int:
    """Append rows, replacing any existing row with the same
    (git SHA, circuit) key so re-running a bench at one commit updates
    rather than duplicates.  Rows without a key (no git SHA — e.g. a
    tarball checkout) dedupe by exact content, so re-appending the
    same row is idempotent either way.  Returns the number of rows
    written."""
    existing, _warnings = load_history(path)
    new_keys = {_row_key(r) for r in rows if _row_key(r) is not None}
    new_content = {_row_canonical(r) for r in rows if _row_key(r) is None}
    kept = [r for r in existing
            if _row_key(r) not in new_keys
            and (_row_key(r) is not None
                 or _row_canonical(r) not in new_content)]
    _write_rows(path, kept + list(rows))
    return len(rows)


def prune_history(path: str, keep: Optional[int] = None) -> Tuple[int, int]:
    """Deduplicate an existing history store in place.

    Keeps the *last* row per (git SHA, circuit) key — and the last of
    each exact-content duplicate for unkeyed rows — so stores grown by
    pre-dedup appends collapse to what `append_history` would have
    produced.  With ``keep``, additionally trims each circuit to its
    newest ``keep`` rows (by ``created_unix``, file order breaking
    ties).  Returns ``(kept, dropped)`` row counts; a missing file is
    ``(0, 0)``.
    """
    if keep is not None and keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    rows, _warnings = load_history(path)
    if not rows:
        return 0, 0
    last_index: Dict[object, int] = {}
    for index, row in enumerate(rows):
        key = _row_key(row) or ("content", _row_canonical(row))
        last_index[key] = index
    deduped = [row for index, row in enumerate(rows)
               if last_index[_row_key(row) or ("content", _row_canonical(row))]
               == index]
    if keep is not None:
        by_circuit: Dict[object, List[int]] = {}
        for index, row in enumerate(deduped):
            by_circuit.setdefault(row.get("circuit"), []).append(index)
        keep_indices = set()
        for indices in by_circuit.values():
            ranked = sorted(indices,
                            key=lambda i: (deduped[i].get("created_unix") or 0, i))
            keep_indices.update(ranked[-keep:])
        deduped = [row for index, row in enumerate(deduped)
                   if index in keep_indices]
    _write_rows(path, deduped)
    return len(deduped), len(rows) - len(deduped)


def _measures(row: dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for stage, value in (row.get("stages") or {}).items():
        if stage in _STAGE_KEYS:
            out[f"{stage}.wall_s"] = value
    for key, value in (row.get("qor") or {}).items():
        out[f"qor.{key}"] = value
    return out


@dataclasses.dataclass
class HistoryCheck:
    """Outcome of gating current bench rows against the history."""

    window: int
    band_pct: float
    compared: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    violations: List[str] = dataclasses.field(default_factory=list)
    warnings: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "window": self.window,
            "band_pct": self.band_pct,
            "compared": self.compared,
            "violations": list(self.violations),
            "warnings": list(self.warnings),
        }


def check_history(
    history_rows: Sequence[dict],
    current_rows: Sequence[dict],
    window: int = 5,
    band_pct: float = 25.0,
    wall_times: bool = True,
) -> HistoryCheck:
    """Gate current rows against the median of the last ``window``
    history rows per circuit.

    Args:
        wall_times: Include ``<stage>.wall_s`` measures in the gate
            (disable when comparing across machines — QoR measures are
            machine-independent, wall times are not).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if band_pct < 0:
        raise ValueError(f"band_pct must be >= 0, got {band_pct}")
    result = HistoryCheck(window=window, band_pct=band_pct)
    by_circuit: Dict[str, List[dict]] = {}
    for row in history_rows:
        circuit = row.get("circuit")
        if isinstance(circuit, str):
            by_circuit.setdefault(circuit, []).append(row)
    # Chronological order so "last N" means the newest commits.
    for rows in by_circuit.values():
        rows.sort(key=lambda r: r.get("created_unix") or 0)

    for row in current_rows:
        circuit = row.get("circuit")
        prior = by_circuit.get(circuit, [])
        # Don't compare a row against itself when it was appended first.
        key = _row_key(row)
        prior = [p for p in prior if _row_key(p) != key or key is None]
        if not prior:
            result.warnings.append(
                f"{circuit}: no prior history rows, nothing to gate against")
            continue
        recent = prior[-window:]
        current = _measures(row)
        for measure, value in sorted(current.items()):
            if not wall_times and measure.endswith(".wall_s"):
                continue
            baseline_values = [m[measure] for m in map(_measures, recent)
                               if measure in m]
            if not baseline_values:
                continue
            baseline = statistics.median(baseline_values)
            if baseline == 0:
                pct = 0.0 if value == 0 else float("inf")
            else:
                pct = 100.0 * (value - baseline) / abs(baseline)
            ok = pct <= band_pct
            result.compared.append({
                "circuit": circuit,
                "measure": measure,
                "baseline_median": baseline,
                "samples": len(baseline_values),
                "current": value,
                "pct": None if pct == float("inf") else pct,
                "ok": ok,
            })
            if not ok:
                result.violations.append(
                    f"{circuit}: {measure} = {value:g} vs median-of-"
                    f"{len(baseline_values)} {baseline:g} "
                    f"(+{pct:.1f}% > band {band_pct:g}%)"
                )
    return result
