"""Run-to-run regression attribution (`repro db attribute`).

`repro diff` answers "which aligned measurement moved"; this module
answers the harder question — *which span is responsible for the
end-to-end wall-time delta, and by how much*.

The decomposition rests on a telescoping identity over **raw**
(unclamped) self-times: for any span tree,

    total(root) == sum(raw_self(node) for node in subtree(root))

because each node contributes ``duration - sum(child durations)`` and
the child durations cancel pairwise down the tree.  Aligning two runs
by span path (absent paths contribute 0) therefore gives an *exact*
decomposition:

    total_b - total_a == sum(raw_self_b(p) - raw_self_a(p) for p in paths)

with zero residual by construction — clock-resolution overlap moves
time between a parent's self and its children's, but never in or out
of the sum.  `Attribution.residual` is still computed and reported as
a cross-check (floating-point summation is the only term left in it).

On top of the per-span decomposition:

* per-stage roll-ups over `repro.obs.analyze.diff.STAGE_ALIASES`, the
  substrate for ``--fail-on`` gates that catch a stage regression even
  when the end-to-end gate passes (a 30% route regression hidden by a
  30% place improvement);
* critical-path extraction through the batch job DAG: batch runs hold
  parallel ``j<i>.``-prefixed job spans, and the makespan is governed
  by the longest chain of jobs ordered by wall-clock precedence
  (job A precedes job B when A ends before B starts — the barriers a
  bounded worker pool imposes), not by the sum of job times;
* a differential profile: collapsed-stack deltas when both runs carry
  sampler output (`--profile`), rendered as a differential flamegraph
  by `repro.obs.analyze.report.render_attribution_html`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .diff import STAGE_ALIASES, Threshold
from .records import ParsedRun, SpanNode


@dataclasses.dataclass
class SpanDelta:
    """One span path's contribution to the end-to-end delta."""

    path: str
    name: str
    total_a: Optional[float]
    total_b: Optional[float]
    self_a: float
    self_b: float

    @property
    def delta_self(self) -> float:
        """This path's exact contribution to the total delta."""
        return self.self_b - self.self_a

    @property
    def delta_total(self) -> Optional[float]:
        if self.total_a is None or self.total_b is None:
            return None
        return self.total_b - self.total_a

    def share_of(self, total_delta: float) -> Optional[float]:
        """Contribution as a fraction of the end-to-end delta."""
        if total_delta == 0:
            return None
        return self.delta_self / total_delta


@dataclasses.dataclass
class StageDelta:
    """A stage alias rolled up across both runs (inclusive time)."""

    stage: str
    wall_a: Optional[float]
    wall_b: Optional[float]
    self_a: float
    self_b: float

    @property
    def delta(self) -> Optional[float]:
        if self.wall_a is None or self.wall_b is None:
            return None
        return self.wall_b - self.wall_a

    @property
    def pct(self) -> Optional[float]:
        delta = self.delta
        if delta is None:
            return None
        if self.wall_a == 0:
            return 0.0 if delta == 0 else math.copysign(math.inf, delta)
        return 100.0 * delta / abs(self.wall_a)


@dataclasses.dataclass
class CriticalPathEntry:
    """One span on a run's critical path."""

    path: str
    name: str
    start_time: Optional[float]
    duration_s: float
    job: Optional[int] = None


@dataclasses.dataclass
class Attribution:
    """The full differential report between runs A and B."""

    source_a: str
    source_b: str
    total_a: float
    total_b: float
    deltas: List[SpanDelta]
    stages: Dict[str, StageDelta]
    critical_a: List[CriticalPathEntry]
    critical_b: List[CriticalPathEntry]
    profile_a: Dict[str, int]
    profile_b: Dict[str, int]

    @property
    def total_delta(self) -> float:
        return self.total_b - self.total_a

    @property
    def attributed_delta(self) -> float:
        """Sum of per-span contributions (== total delta, see module
        docstring; any difference is floating-point residue)."""
        return math.fsum(d.delta_self for d in self.deltas)

    @property
    def residual(self) -> float:
        return self.total_delta - self.attributed_delta

    @property
    def profile_delta(self) -> Dict[str, int]:
        """Collapsed-stack sample deltas (B - A), non-zero only."""
        out: Dict[str, int] = {}
        for stack in set(self.profile_a) | set(self.profile_b):
            delta = self.profile_b.get(stack, 0) - self.profile_a.get(stack, 0)
            if delta:
                out[stack] = delta
        return out

    def check(self, thresholds: Sequence[Threshold]) -> List[str]:
        """Stage-gate violations (empty = every gate passed).

        Threshold keys name a stage alias (``route``) or a span path
        prefixed ``span.`` (``span.flow.run/flow.route``).  Relative
        bounds (``%``) compare stage inclusive wall time B vs A;
        absolute bounds compare the delta in seconds.  A gated stage
        missing from either run is a violation, mirroring `repro diff`.
        """
        violations = []
        for threshold in thresholds:
            entry = self._gate_entry(threshold.key)
            if entry is None:
                violations.append(
                    f"{threshold.raw}: stage {threshold.key!r} is neither a "
                    f"stage alias {sorted(STAGE_ALIASES)} nor a span path")
                continue
            wall_a, wall_b = entry
            if wall_a is None or wall_b is None:
                missing = [label for label, value in
                           (("A", wall_a), ("B", wall_b)) if value is None]
                violations.append(
                    f"{threshold.raw}: stage {threshold.key!r} missing from "
                    f"run {' and '.join(missing)}")
                continue
            delta = wall_b - wall_a
            if threshold.relative:
                if wall_a == 0:
                    measured = 0.0 if delta == 0 else math.copysign(
                        math.inf, delta)
                else:
                    measured = 100.0 * delta / abs(wall_a)
            else:
                measured = delta
            exceeded = {
                ">": measured > threshold.bound,
                ">=": measured >= threshold.bound,
                "<": measured < threshold.bound,
                "<=": measured <= threshold.bound,
            }[threshold.op]
            if exceeded:
                unit = "%" if threshold.relative else "s"
                violations.append(
                    f"{threshold.raw}: {threshold.key} = {wall_a:g}s -> "
                    f"{wall_b:g}s (delta {measured:+.4g}{unit}, bound "
                    f"{threshold.op}{threshold.bound:+g}{unit})")
        return violations

    def _gate_entry(
        self, key: str,
    ) -> Optional[Tuple[Optional[float], Optional[float]]]:
        if key == "total":
            return (self.total_a, self.total_b)
        stage = self.stages.get(key)
        if stage is not None:
            return (stage.wall_a, stage.wall_b)
        if key in STAGE_ALIASES:
            return (None, None)
        if key.startswith("span."):
            path = key[len("span."):]
            for delta in self.deltas:
                if delta.path == path:
                    return (delta.total_a, delta.total_b)
            return (None, None)
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready structure for ``repro db attribute --json``."""
        return {
            "a": self.source_a,
            "b": self.source_b,
            "total_a_s": self.total_a,
            "total_b_s": self.total_b,
            "total_delta_s": self.total_delta,
            "attributed_delta_s": self.attributed_delta,
            "residual_s": self.residual,
            "spans": [
                {
                    "path": d.path,
                    "self_a_s": d.self_a,
                    "self_b_s": d.self_b,
                    "delta_self_s": d.delta_self,
                    "total_a_s": d.total_a,
                    "total_b_s": d.total_b,
                }
                for d in self.deltas
            ],
            "stages": {
                name: {
                    "wall_a_s": stage.wall_a,
                    "wall_b_s": stage.wall_b,
                    "delta_s": stage.delta,
                    "pct": None if stage.pct is None or math.isinf(stage.pct)
                    else stage.pct,
                }
                for name, stage in sorted(self.stages.items())
            },
            "critical_path": {
                "a": [dataclasses.asdict(e) for e in self.critical_a],
                "b": [dataclasses.asdict(e) for e in self.critical_b],
            },
            "profile_delta": self.profile_delta,
        }


def _self_times(run: ParsedRun) -> Dict[str, Tuple[SpanNode, float]]:
    """path -> (node, raw self seconds) over every recorded span."""
    out: Dict[str, Tuple[SpanNode, float]] = {}
    for node, _depth in run.walk():
        out[node.path] = (node, node.raw_self_s
                          if node.duration_s is not None else 0.0)
    return out


def _stage_deltas(run_a: ParsedRun, run_b: ParsedRun) -> Dict[str, StageDelta]:
    def per_run(run: ParsedRun) -> Dict[str, Tuple[float, float]]:
        flat = [node for node, _depth in run.walk()]
        out: Dict[str, Tuple[float, float]] = {}
        for alias, names in STAGE_ALIASES.items():
            matches = [s for s in flat if s.name in names]
            primary = [s for s in matches if s.name == names[0]] or matches
            if not primary:
                continue
            out[alias] = (
                sum(s.total_s for s in primary),
                sum(s.self_s for s in matches),
            )
        return out

    a, b = per_run(run_a), per_run(run_b)
    return {
        alias: StageDelta(
            stage=alias,
            wall_a=a[alias][0] if alias in a else None,
            wall_b=b[alias][0] if alias in b else None,
            self_a=a.get(alias, (0.0, 0.0))[1],
            self_b=b.get(alias, (0.0, 0.0))[1],
        )
        for alias in sorted(set(a) | set(b))
    }


def _job_of(node: SpanNode) -> Optional[int]:
    """Batch job index from a ``j<i>.s<n>`` span id, else None."""
    span_id = node.span_id
    if not isinstance(span_id, str) or not span_id.startswith("j"):
        return None
    head, sep, _tail = span_id.partition(".")
    if not sep:
        return None
    try:
        return int(head[1:])
    except ValueError:
        return None


def _dominant_chain(node: SpanNode, job: Optional[int],
                    out: List[CriticalPathEntry]) -> None:
    """Descend into the heaviest child while it dominates the parent."""
    out.append(CriticalPathEntry(
        path=node.path, name=node.name, start_time=node.start_time,
        duration_s=node.total_s, job=job))
    timed = [c for c in node.children if c.total_s > 0]
    if not timed:
        return
    heaviest = max(timed, key=lambda c: c.total_s)
    if node.total_s > 0 and heaviest.total_s >= 0.5 * node.total_s:
        _dominant_chain(heaviest, job, out)


def critical_path(run: ParsedRun) -> List[CriticalPathEntry]:
    """The longest wall-clock precedence chain through a run's spans.

    For batch runs the roots are per-job spans running in parallel
    under a bounded pool: job A *precedes* job B when A ends (start +
    duration) no later than B starts, and the critical path is the
    precedence chain maximising summed duration — the chain the
    makespan cannot undercut.  Roots without start times (or a
    single-root flow run) degrade to start order, which makes the
    serial case simply "every root".  Within each chain entry the
    dominant descendant chain (child covering >= 50% of its parent) is
    appended, so the report names the stage, not just the job.
    """
    roots = [r for r in run.spans if r.duration_s is not None]
    if not roots:
        return []
    intervals: List[Tuple[float, float, SpanNode]] = []
    serial = False
    for index, root in enumerate(roots):
        if root.start_time is None:
            serial = True
            break
        intervals.append((root.start_time, root.start_time + root.total_s,
                          root))
    if serial or len(roots) == 1:
        chain = roots
    else:
        order = sorted(range(len(intervals)), key=lambda i: intervals[i][0])
        # Longest path in the interval-precedence DAG, O(n^2): fine at
        # batch scale (thousands of jobs), exact, deterministic.
        best: List[float] = [0.0] * len(order)
        prev: List[Optional[int]] = [None] * len(order)
        for oi, i in enumerate(order):
            start_i, end_i, node_i = intervals[i]
            best[oi] = node_i.total_s
            for oj in range(oi):
                j = order[oj]
                _start_j, end_j, _node_j = intervals[j]
                if end_j <= start_i + 1e-9:
                    candidate = best[oj] + node_i.total_s
                    if candidate > best[oi]:
                        best[oi] = candidate
                        prev[oi] = oj
        tail = max(range(len(order)), key=lambda oi: best[oi])
        chain_idx: List[int] = []
        cursor: Optional[int] = tail
        while cursor is not None:
            chain_idx.append(order[cursor])
            cursor = prev[cursor]
        chain_idx.reverse()
        chain = [intervals[i][2] for i in chain_idx]
    out: List[CriticalPathEntry] = []
    for root in chain:
        _dominant_chain(root, _job_of(root), out)
    return out


def attribute_runs(run_a: ParsedRun, run_b: ParsedRun) -> Attribution:
    """Decompose the end-to-end wall-time delta between two runs."""
    selfs_a, selfs_b = _self_times(run_a), _self_times(run_b)
    deltas: List[SpanDelta] = []
    for path in sorted(set(selfs_a) | set(selfs_b)):
        node_a = selfs_a.get(path)
        node_b = selfs_b.get(path)
        node = (node_b or node_a)[0]
        deltas.append(SpanDelta(
            path=path,
            name=node.name,
            total_a=node_a[0].duration_s if node_a else None,
            total_b=node_b[0].duration_s if node_b else None,
            self_a=node_a[1] if node_a else 0.0,
            self_b=node_b[1] if node_b else 0.0,
        ))
    deltas.sort(key=lambda d: (-abs(d.delta_self), d.path))
    return Attribution(
        source_a=run_a.source,
        source_b=run_b.source,
        total_a=run_a.total_wall_s,
        total_b=run_b.total_wall_s,
        deltas=deltas,
        stages=_stage_deltas(run_a, run_b),
        critical_a=critical_path(run_a),
        critical_b=critical_path(run_b),
        profile_a=_run_profile(run_a),
        profile_b=_run_profile(run_b),
    )


def _run_profile(run: ParsedRun) -> Dict[str, int]:
    """Collapsed profiler stacks summed over every profiled span."""
    stacks: Dict[str, int] = {}
    for node, _depth in run.walk():
        profile = node.attrs.get("profile")
        if not isinstance(profile, dict):
            continue
        for stack, count in (profile.get("stacks") or {}).items():
            if isinstance(stack, str) and isinstance(count, (int, float)):
                stacks[stack] = stacks.get(stack, 0) + int(count)
    return stacks


def _fmt_s(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:+.4f}s" if value < 0 else f"{value:.4f}s"


def format_attribution(attr: Attribution, top: int = 15) -> str:
    """The text report for ``repro db attribute``."""
    lines = [
        f"A: {attr.source_a}",
        f"B: {attr.source_b}",
        f"end-to-end: {attr.total_a:.4f}s -> {attr.total_b:.4f}s "
        f"(delta {attr.total_delta:+.4f}s"
        + (f", {100.0 * attr.total_delta / attr.total_a:+.1f}%"
           if attr.total_a else "") + ")",
        f"attributed: {attr.attributed_delta:+.4f}s over "
        f"{sum(1 for d in attr.deltas if d.delta_self != 0)} span(s), "
        f"residual {attr.residual:+.2e}s",
    ]
    moved = [d for d in attr.deltas if d.delta_self != 0]
    if moved:
        lines += ["", "per-span contributions (self-time, largest first)",
                  f"{'delta':>12s} {'share':>7s} {'A self':>10s} "
                  f"{'B self':>10s}  path"]
        for delta in moved[:top]:
            share = delta.share_of(attr.total_delta)
            lines.append(
                f"{delta.delta_self:+12.4f} "
                f"{'' if share is None else format(100 * share, '6.1f') + '%':>7s} "
                f"{delta.self_a:10.4f} {delta.self_b:10.4f}  {delta.path}")
        if len(moved) > top:
            rest = math.fsum(d.delta_self for d in moved[top:])
            lines.append(f"{rest:+12.4f} {'':>7s} {'':>10s} {'':>10s}  "
                         f"({len(moved) - top} more span(s))")
    if attr.stages:
        lines += ["", "per-stage roll-up (inclusive wall time)",
                  f"{'stage':<10s} {'A':>10s} {'B':>10s} {'delta':>10s} "
                  f"{'delta%':>8s}"]
        for name, stage in sorted(attr.stages.items()):
            pct = stage.pct
            pct_text = ("-" if pct is None
                        else ("+inf%" if math.isinf(pct) and pct > 0
                              else ("-inf%" if math.isinf(pct)
                                    else f"{pct:+.1f}%")))
            lines.append(
                f"{name:<10s} {_fmt_s(stage.wall_a):>10s} "
                f"{_fmt_s(stage.wall_b):>10s} "
                f"{'-' if stage.delta is None else format(stage.delta, '+.4f') + 's':>10s} "
                f"{pct_text:>8s}")
    for label, chain in (("A", attr.critical_a), ("B", attr.critical_b)):
        if not chain:
            continue
        # Chain length counts only top-level entries (depth descent
        # repeats their time); summing roots is what bounds makespan.
        roots = [e for e in chain if "/" not in e.path]
        lines += ["", f"critical path {label} — "
                      f"{math.fsum(e.duration_s for e in roots):.4f}s over "
                      f"{len(roots)} chain entr"
                      f"{'y' if len(roots) == 1 else 'ies'}"]
        for entry in chain:
            job = f"j{entry.job} " if entry.job is not None else ""
            lines.append(f"  {entry.duration_s:10.4f}s  {job}{entry.path}")
    delta_stacks = attr.profile_delta
    if delta_stacks:
        lines += ["", "profile delta (samples, B - A)"]
        ranked = sorted(delta_stacks.items(),
                        key=lambda kv: (-abs(kv[1]), kv[0]))
        for stack, count in ranked[:8]:
            frames = stack.split(";")
            shown = stack if len(frames) <= 3 else "…;" + ";".join(frames[-3:])
            lines.append(f"  {count:+6d}  {shown}")
        if len(ranked) > 8:
            lines.append(f"  ... {len(ranked) - 8} more stacks")
    return "\n".join(lines) + "\n"
