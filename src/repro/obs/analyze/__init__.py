"""Telemetry analysis: the consumer side of `repro.obs`.

PR 1 made the flow *emit* telemetry; this package *consumes* it:

* `records` — typed, forward-compatible parsing of exported JSONL
  (`load_run` -> `ParsedRun` of `SpanNode` trees + metrics);
* `report`  — human-readable run reports (`repro report`);
* `diff`    — run-to-run alignment, delta tables and regression gates
  (`repro diff --fail-on 'route.wall_s>+10%'`);
* `history` — benchmark-history trajectory + median-of-N gating
  (`repro bench-history append/check`);
* `attribution` — cross-run regression attribution: exact raw-self-time
  delta decomposition, per-stage roll-up, batch critical paths, and
  profiler-stack deltas (`repro db attribute`).
"""

from .records import ParsedRun, SpanNode, load_run, parse_run
from .report import render_attribution_html, render_html, render_report
from .attribution import (
    Attribution,
    CriticalPathEntry,
    SpanDelta,
    StageDelta,
    attribute_runs,
    critical_path,
    format_attribution,
)
from .diff import (
    DiffEntry,
    RunDiff,
    Threshold,
    Verdict,
    diff_runs,
    diff_to_dict,
    evaluate_thresholds,
    format_diff,
    parse_threshold,
    run_measurements,
)
from .history import (
    HISTORY_SCHEMA,
    HistoryCheck,
    append_history,
    check_history,
    load_bench_file,
    load_history,
    prune_history,
    summarize_bench,
)

__all__ = [
    "Attribution",
    "CriticalPathEntry",
    "DiffEntry",
    "HISTORY_SCHEMA",
    "HistoryCheck",
    "ParsedRun",
    "RunDiff",
    "SpanDelta",
    "SpanNode",
    "StageDelta",
    "Threshold",
    "Verdict",
    "append_history",
    "attribute_runs",
    "check_history",
    "critical_path",
    "diff_runs",
    "diff_to_dict",
    "evaluate_thresholds",
    "format_attribution",
    "format_diff",
    "load_bench_file",
    "load_history",
    "load_run",
    "parse_run",
    "parse_threshold",
    "prune_history",
    "render_attribution_html",
    "render_html",
    "render_report",
    "run_measurements",
    "summarize_bench",
]
